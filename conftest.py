"""Ensure the src layout is importable even without an editable install."""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))

# Keep the suite hermetic: a developer's $REPRO_REMOTE_CACHE must not make
# tests read from -- let alone publish reduced-scale results to -- a real
# shared cache service.  Scrubbed at import time (not only via the fixture
# below) because session-scoped fixtures, e.g. the benchmark runner,
# instantiate before any function-scoped autouse fixture runs.
os.environ.pop("REPRO_REMOTE_CACHE", None)

# Background re-probing is opt-in per test: a RemoteStore deliberately
# killed by one fault-injection test must not wake up seconds later and
# emit its rejoin warning inside an unrelated test's warning assertions.
# The re-probe tests pass an explicit reprobe_interval instead.
os.environ["REPRO_REMOTE_REPROBE_S"] = "0"


@pytest.fixture(scope="session", autouse=True)
def _arena_leak_guard():
    """No shared-memory trace-arena segment may outlive the suite.

    Arena segments are parent-owned and refcount-unlinked per batch (plus
    an atexit sweep), so anything still named ``repro-arena-*`` in
    ``/dev/shm`` after the last test is a real leak.  The teardown print
    is load-bearing: CI greps for it to prove the guard actually ran.
    """
    shm_dir = os.path.join(os.sep, "dev", "shm")
    yield
    if not os.path.isdir(shm_dir):  # non-POSIX-shm platform: nothing to leak
        print("\narena leak guard: /dev/shm not present, skipped")
        return
    leaked = sorted(
        name for name in os.listdir(shm_dir) if name.startswith("repro-arena-")
    )
    print(f"\narena leak guard: {len(leaked)} orphaned repro-arena segments")
    assert not leaked, f"leaked trace-arena segments: {leaked}"


@pytest.fixture(autouse=True)
def _no_ambient_remote_cache(monkeypatch):
    """Per-test guard on top of the import-time scrub, so a test that sets
    REPRO_REMOTE_CACHE (see tests/test_cache_service.py) can never leak it
    into its neighbours."""
    monkeypatch.delenv("REPRO_REMOTE_CACHE", raising=False)
    monkeypatch.setenv("REPRO_REMOTE_REPROBE_S", "0")
