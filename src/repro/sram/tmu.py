"""Transpose Memory Unit (TMU) model.

The TMU (Section V-B) is built from 8T transpose bit-cells that can be read
and written both horizontally and vertically.  During a vector load the MVE
controller gathers data words from the regular half of the L2 cache through
the MSHRs, routes each word to its vertical slot through a crossbar, and --
once a control block's worth of elements (1024) has arrived -- streams the
bit-slices horizontally into the compute arrays.  Stores run the reverse
path.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

__all__ = ["TMUConfig", "TransposeMemoryUnit"]


@dataclass(frozen=True)
class TMUConfig:
    """Capacity and timing of the transpose memory unit."""

    #: number of elements buffered per control block (one physical register slice)
    capacity_elements: int = 1024
    #: crossbar routing throughput, elements per cycle
    crossbar_elements_per_cycle: int = 16
    #: cycles to stream one bit-slice row between TMU and the SRAM arrays
    row_transfer_cycles: int = 1


class TransposeMemoryUnit:
    """Latency model for transposing between memory layout and bit-lines."""

    def __init__(self, config: TMUConfig | None = None):
        self.config = config or TMUConfig()
        self.elements_transposed = 0

    def reset(self) -> None:
        self.elements_transposed = 0

    def fill_cycles(self, num_elements: int, element_bits: int) -> int:
        """Cycles to route ``num_elements`` words into the TMU and write the
        transposed bit-slices into the data arrays."""
        if num_elements <= 0:
            return 0
        cfg = self.config
        full_batches, remainder = divmod(num_elements, cfg.capacity_elements)
        stream = element_bits * cfg.row_transfer_cycles
        route_full = math.ceil(cfg.capacity_elements / cfg.crossbar_elements_per_cycle)
        cycles = full_batches * (route_full + stream)
        if remainder:
            # The final partial batch only routes the elements it actually
            # holds, not the unit's full capacity.
            cycles += math.ceil(remainder / cfg.crossbar_elements_per_cycle) + stream
        self.elements_transposed += num_elements
        return cycles

    def drain_cycles(self, num_elements: int, element_bits: int) -> int:
        """Cycles for the reverse (store) path; symmetric with :meth:`fill_cycles`."""
        return self.fill_cycles(num_elements, element_bits)
