"""In-SRAM computing substrate: array geometry, TMU, and compute schemes."""

from .array import EngineGeometry, SramArrayGeometry
from .schemes import (
    AssociativeScheme,
    BitHybridScheme,
    BitParallelScheme,
    BitSerialScheme,
    ComputeScheme,
    SCHEME_NAMES,
    get_scheme,
)
from .tmu import TMUConfig, TransposeMemoryUnit

__all__ = [
    "EngineGeometry",
    "SramArrayGeometry",
    "AssociativeScheme",
    "BitHybridScheme",
    "BitParallelScheme",
    "BitSerialScheme",
    "ComputeScheme",
    "SCHEME_NAMES",
    "get_scheme",
    "TMUConfig",
    "TransposeMemoryUnit",
]
