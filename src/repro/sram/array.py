"""SRAM array geometry for the in-cache compute engine.

One compute-enabled SRAM array is 256 word-lines by 256 bit-lines (8 KB).
With the bit-serial layout every bit-line is one SIMD lane, so a 256 KB L2
slice (32 arrays) forms an 8192-lane vector engine (Section II-B).
Control Blocks (CBs) group several arrays under a single FSM (Section V-B,
default four arrays per CB).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SramArrayGeometry", "EngineGeometry"]


@dataclass(frozen=True)
class SramArrayGeometry:
    """Geometry of a single compute-enabled SRAM array."""

    rows: int = 256
    cols: int = 256

    @property
    def bits(self) -> int:
        return self.rows * self.cols

    @property
    def size_bytes(self) -> int:
        return self.bits // 8


@dataclass(frozen=True)
class EngineGeometry:
    """Geometry of the whole in-cache vector engine."""

    num_arrays: int = 32
    arrays_per_control_block: int = 4
    array: SramArrayGeometry = SramArrayGeometry()

    def __post_init__(self) -> None:
        if self.num_arrays <= 0:
            raise ValueError("num_arrays must be positive")
        if self.arrays_per_control_block <= 0:
            raise ValueError("arrays_per_control_block must be positive")
        if self.num_arrays % self.arrays_per_control_block:
            raise ValueError("num_arrays must be a multiple of arrays_per_control_block")

    @property
    def num_control_blocks(self) -> int:
        return self.num_arrays // self.arrays_per_control_block

    @property
    def bitlines(self) -> int:
        """Total bit-lines (bit-serial SIMD lanes)."""
        return self.num_arrays * self.array.cols

    @property
    def lanes_per_control_block(self) -> int:
        return self.arrays_per_control_block * self.array.cols

    @property
    def compute_capacity_bytes(self) -> int:
        return self.num_arrays * self.array.size_bytes
