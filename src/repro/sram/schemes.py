"""In-SRAM computing schemes: latency and parallelism models.

The four schemes evaluated in the paper (Section II-B and VII-C):

* **Bit-Serial (BS)** -- Neural Cache [31]: elements vertical in bit-lines,
  maximum parallelism (one lane per bit-line), arithmetic latency grows with
  precision (Table II latencies).
* **Bit-Parallel (BP)** -- VRAM [9]: n-bit elements horizontal in a
  word-line, parallelism divided by n, latency divided by roughly n.
* **Bit-Hybrid (BH)** -- EVE [10]: elements split into p-bit segments,
  segments computed bit-parallel and combined bit-serially; balances the two.
* **Associative Computing (AC)** -- CAPE [19]: search/update on CAM
  structures; logical ops are O(1) but addition costs ``8n + 2`` cycles and
  every other arithmetic op decomposes into additions.

Each scheme exposes an operation latency in SRAM cycles given the element
precision, and the number of SIMD lanes it extracts from the engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..isa.instructions import Opcode
from .array import EngineGeometry

__all__ = [
    "ComputeScheme",
    "BitSerialScheme",
    "BitParallelScheme",
    "BitHybridScheme",
    "AssociativeScheme",
    "get_scheme",
    "SCHEME_NAMES",
]


class ComputeScheme:
    """Base class for in-SRAM computing latency/parallelism models."""

    name = "abstract"
    #: relative area overhead of the bit-line peripheral logic (1.0 = BS)
    peripheral_area_factor = 1.0
    #: relative energy per bit-line cycle (1.0 = BS)
    energy_per_cycle_factor = 1.0

    def lanes(self, geometry: EngineGeometry, element_bits: int) -> int:
        """Number of SIMD lanes available for elements of the given width."""
        raise NotImplementedError

    def op_latency(self, opcode: Opcode, element_bits: int) -> int:
        """Latency of one vector operation in SRAM cycles."""
        raise NotImplementedError

    def row_access_latency(self) -> int:
        """Cycles to read or write one bit-slice row (used by loads/stores)."""
        return 1

    def describe(self) -> str:
        return self.name


def _bit_serial_latency(opcode: Opcode, n: int) -> int:
    """Bit-serial latencies of Table II (signed integer, precision ``n``)."""
    if opcode in (Opcode.SET_DUP, Opcode.COPY, Opcode.CONVERT):
        return n
    if opcode in (Opcode.SHIFT_IMM, Opcode.ROTATE_IMM):
        return n
    if opcode is Opcode.SHIFT_REG:
        return n * max(1, math.ceil(math.log2(n)))
    if opcode is Opcode.ADD:
        return n
    if opcode is Opcode.SUB:
        return 2 * n
    if opcode is Opcode.MUL:
        return n * n + 5 * n
    if opcode is Opcode.MAC:
        return n * n + 6 * n
    if opcode is Opcode.DIV:
        # Division is decomposed into shift/subtract steps (not in Table II;
        # modelled as iterative restoring division).
        return 2 * n * n
    if opcode in (Opcode.MIN, Opcode.MAX):
        return 2 * n
    if opcode in (Opcode.XOR, Opcode.AND, Opcode.OR, Opcode.NOT):
        return n
    if opcode in (Opcode.GT, Opcode.GTE, Opcode.LT, Opcode.LTE, Opcode.EQ, Opcode.NEQ):
        return n
    raise ValueError(f"opcode {opcode} is not an in-SRAM compute operation")


class BitSerialScheme(ComputeScheme):
    """Neural Cache style bit-serial computing (the paper's default)."""

    name = "bit-serial"
    peripheral_area_factor = 1.0
    energy_per_cycle_factor = 1.0

    def lanes(self, geometry: EngineGeometry, element_bits: int) -> int:
        return geometry.bitlines

    def op_latency(self, opcode: Opcode, element_bits: int) -> int:
        # Floating point adds exponent handling; Duality Cache reports roughly
        # 2-3x the integer latency for the same mantissa width.  We use the
        # integer latency of the full width scaled by 2 for float types, which
        # is applied by the caller through `float_latency_factor`.
        return _bit_serial_latency(opcode, element_bits)


class BitParallelScheme(ComputeScheme):
    """VRAM-style bit-parallel computing."""

    name = "bit-parallel"
    peripheral_area_factor = 1.6
    energy_per_cycle_factor = 1.35

    def lanes(self, geometry: EngineGeometry, element_bits: int) -> int:
        return max(1, geometry.bitlines // element_bits)

    def op_latency(self, opcode: Opcode, element_bits: int) -> int:
        serial = _bit_serial_latency(opcode, element_bits)
        # Latency improves by a factor of ~n thanks to the carry chain across
        # bit-lines; keep a floor of 1 cycle plus one cycle of carry settle.
        return max(2, math.ceil(serial / element_bits) + 1)


class BitHybridScheme(ComputeScheme):
    """EVE-style bit-hybrid computing with p-bit segments."""

    name = "bit-hybrid"
    peripheral_area_factor = 1.3
    energy_per_cycle_factor = 1.2

    def __init__(self, segment_bits: int = 4):
        if segment_bits <= 0:
            raise ValueError("segment width must be positive")
        self.segment_bits = segment_bits

    def lanes(self, geometry: EngineGeometry, element_bits: int) -> int:
        return max(1, geometry.bitlines // self.segment_bits)

    def op_latency(self, opcode: Opcode, element_bits: int) -> int:
        segments = max(1, math.ceil(element_bits / self.segment_bits))
        serial = _bit_serial_latency(opcode, element_bits)
        # Within a segment the op is bit-parallel; across segments it is
        # bit-serial, so latency scales with the segment count.
        return max(2, math.ceil(serial / element_bits) * segments + 1)


class AssociativeScheme(ComputeScheme):
    """CAPE-style associative computing using BCAM search/update."""

    name = "associative"
    peripheral_area_factor = 0.9
    energy_per_cycle_factor = 1.1

    def lanes(self, geometry: EngineGeometry, element_bits: int) -> int:
        return geometry.bitlines

    def op_latency(self, opcode: Opcode, element_bits: int) -> int:
        n = element_bits
        add_latency = 8 * n + 2  # Section II-B(c)
        if opcode in (Opcode.XOR, Opcode.AND, Opcode.OR, Opcode.NOT):
            # O(1) search/update per truth-table row: 4 rows for 2-input ops.
            return 4
        if opcode in (Opcode.GT, Opcode.GTE, Opcode.LT, Opcode.LTE, Opcode.EQ, Opcode.NEQ):
            return 8
        if opcode in (Opcode.SET_DUP, Opcode.COPY, Opcode.CONVERT):
            return n
        if opcode in (Opcode.SHIFT_IMM, Opcode.ROTATE_IMM):
            return n
        if opcode is Opcode.SHIFT_REG:
            return n * max(1, math.ceil(math.log2(n)))
        if opcode in (Opcode.ADD, Opcode.SUB):
            return add_latency
        if opcode in (Opcode.MIN, Opcode.MAX):
            return add_latency + 8
        if opcode is Opcode.MUL:
            return n * add_latency
        if opcode is Opcode.MAC:
            return n * add_latency + add_latency
        if opcode is Opcode.DIV:
            return 2 * n * add_latency
        raise ValueError(f"opcode {opcode} is not an in-SRAM compute operation")


SCHEME_NAMES = ("bit-serial", "bit-hybrid", "bit-parallel", "associative")


def get_scheme(name: str) -> ComputeScheme:
    """Factory for compute schemes by name (``bit-serial``, ``bs``, ...)."""
    normalized = name.lower().replace("_", "-")
    aliases = {
        "bs": "bit-serial",
        "bp": "bit-parallel",
        "bh": "bit-hybrid",
        "ac": "associative",
    }
    normalized = aliases.get(normalized, normalized)
    if normalized == "bit-serial":
        return BitSerialScheme()
    if normalized == "bit-parallel":
        return BitParallelScheme()
    if normalized == "bit-hybrid":
        return BitHybridScheme()
    if normalized == "associative":
        return AssociativeScheme()
    raise ValueError(f"unknown in-SRAM computing scheme: {name!r}")
