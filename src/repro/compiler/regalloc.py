"""Greedy register allocation with spill insertion.

MVE's physical register file is unusual: the *vector length* is fixed
(8192 lanes) but the number of registers depends on the element width --
256 word-lines divided by the kernel's widest element type (Section III-G).
Spilling an in-cache register is expensive because all 8192 elements must be
stored to and reloaded from memory, so the allocator follows the paper:
greedy allocation with furthest-next-use (Belady) eviction, after the list
scheduler has shortened live ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..isa.datatypes import DataType
from ..isa.instructions import (
    ConfigInstruction,
    MemoryInstruction,
    Opcode,
    ScalarBlock,
    TraceEntry,
)
from ..isa.registers import PhysicalRegisterFile
from .liveness import LivenessInfo, analyze_liveness, defined_register, used_registers

__all__ = ["AllocationResult", "allocate_registers"]

#: Base byte address of the compiler-managed spill area.
SPILL_AREA_BASE = 0x4000_0000


@dataclass
class AllocationResult:
    """Outcome of register allocation on one kernel trace."""

    trace: list[TraceEntry]
    assignment: dict[int, int]
    num_physical_registers: int
    element_bits: int
    spill_stores: int = 0
    spill_loads: int = 0
    peak_pressure: int = 0

    @property
    def spill_count(self) -> int:
        return self.spill_stores + self.spill_loads


def _spill_dtype(bits: int) -> DataType:
    return {8: DataType.INT8, 16: DataType.INT16, 32: DataType.INT32, 64: DataType.INT64}[bits]


def _spill_instruction(
    virtual: int, slot: int, bits: int, lanes: int, is_store: bool
) -> MemoryInstruction:
    dtype = _spill_dtype(bits)
    address = SPILL_AREA_BASE + slot * lanes * dtype.bytes
    return MemoryInstruction(
        Opcode.STRIDED_STORE if is_store else Opcode.STRIDED_LOAD,
        dtype=dtype,
        register=virtual,
        base_address=address,
        stride_modes=(1,),
        is_store=is_store,
        is_random=False,
        resolved_strides=(1,),
        shape_lengths=(lanes,),
        mask=(),
        is_spill=True,
    )


def allocate_registers(
    trace: Sequence[TraceEntry],
    register_file: Optional[PhysicalRegisterFile] = None,
    liveness: Optional[LivenessInfo] = None,
) -> AllocationResult:
    """Assign virtual registers to physical registers, spilling when needed.

    Returns a new trace with a ``vsetwidth`` config instruction injected at
    the top (the compiler's single-kernel-width rule) and spill stores/fills
    inserted where the physical register file overflows.
    """
    register_file = register_file or PhysicalRegisterFile()
    trace = list(trace)
    liveness = liveness or analyze_liveness(trace)
    element_bits = liveness.widest_bits
    num_prs = max(2, register_file.register_count(element_bits))
    lanes = register_file.simd_lanes

    assignment: dict[int, int] = {}
    free_prs = list(range(num_prs))
    resident: dict[int, int] = {}  # virtual -> physical currently in the PR file
    spilled_slots: dict[int, int] = {}  # virtual -> spill slot index
    next_spill_slot = 0

    new_trace: list[TraceEntry] = [
        ConfigInstruction(Opcode.SET_WIDTH, operand_a=element_bits)
    ]
    spill_stores = 0
    spill_loads = 0
    peak_pressure = 0

    def evict_victim(index: int, needed: set[int]) -> int:
        """Spill the resident register with the furthest next use."""
        nonlocal next_spill_slot, spill_stores
        candidates = [v for v in resident if v not in needed]
        if not candidates:
            candidates = list(resident)

        def next_use(virtual: int) -> int:
            rng = liveness.ranges.get(virtual)
            if rng is None:
                return -1
            use = rng.next_use_after(index)
            return use if use is not None else 10**9

        victim = max(candidates, key=next_use)
        physical = resident.pop(victim)
        if next_use(victim) < 10**9:
            # Still needed later: write it to the spill area.
            if victim not in spilled_slots:
                spilled_slots[victim] = next_spill_slot
                next_spill_slot += 1
            new_trace.append(
                _spill_instruction(victim, spilled_slots[victim], element_bits, lanes, True)
            )
            spill_stores += 1
        return physical

    def ensure_resident(virtual: int, index: int, needed: set[int]) -> None:
        nonlocal spill_loads
        if virtual in resident:
            return
        if free_prs:
            physical = free_prs.pop(0)
        else:
            physical = evict_victim(index, needed)
        if virtual in spilled_slots:
            new_trace.append(
                _spill_instruction(virtual, spilled_slots[virtual], element_bits, lanes, False)
            )
            spill_loads += 1
        resident[virtual] = physical
        assignment[virtual] = physical

    def release_dead(index: int) -> None:
        dead = []
        for virtual in resident:
            rng = liveness.ranges.get(virtual)
            if rng is None or rng.next_use_after(index) is None:
                dead.append(virtual)
        for virtual in dead:
            free_prs.append(resident.pop(virtual))

    for index, entry in enumerate(trace):
        if isinstance(entry, ScalarBlock):
            new_trace.append(entry)
            continue
        uses = set(used_registers(entry))
        defined = defined_register(entry)
        needed = set(uses)
        if defined is not None:
            needed.add(defined)
        for virtual in uses:
            ensure_resident(virtual, index, needed)
        if defined is not None:
            ensure_resident(defined, index, needed)
        new_trace.append(entry)
        peak_pressure = max(peak_pressure, len(resident))
        release_dead(index)

    return AllocationResult(
        trace=new_trace,
        assignment=assignment,
        num_physical_registers=num_prs,
        element_bits=element_bits,
        spill_stores=spill_stores,
        spill_loads=spill_loads,
        peak_pressure=peak_pressure,
    )
