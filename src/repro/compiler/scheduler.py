"""List scheduling under register pressure.

The paper uses a bottom-up list-hybrid scheduler that tries to keep the
number of simultaneously live vector registers below the physical register
count by scheduling defining instructions close to their uses.  On a
straight-line dynamic trace the equivalent transformation is to *sink*
definitions toward their first use while respecting data dependences and the
ordering constraints of memory and config instructions.
"""

from __future__ import annotations

from typing import Sequence

from ..isa.instructions import (
    InstructionCategory,
    MemoryInstruction,
    ScalarBlock,
    TraceEntry,
)
from .liveness import defined_register, used_registers

__all__ = ["schedule_trace"]


def _is_barrier(entry: TraceEntry) -> bool:
    """Entries that must not be reordered across.

    Config instructions change the controller state every later instruction
    depends on; vector memory instructions must stay ordered with respect to
    each other (the controller executes one memory op at a time) and with
    scalar blocks (which may feed addresses).
    """
    if isinstance(entry, ScalarBlock):
        return True
    if isinstance(entry, MemoryInstruction):
        return True
    return entry.category is InstructionCategory.CONFIG


def schedule_trace(trace: Sequence[TraceEntry]) -> list[TraceEntry]:
    """Sink pure compute/move instructions toward their first use.

    The transformation walks the trace and delays every non-barrier defining
    instruction until just before the first entry that uses its result (or
    the next barrier), which shortens live ranges without changing program
    semantics.
    """
    result: list[TraceEntry] = []
    pending: list[TraceEntry] = []  # sunk definitions awaiting their first use

    def flush_pending() -> None:
        result.extend(pending)
        pending.clear()

    for entry in trace:
        if _is_barrier(entry):
            uses = set(used_registers(entry))
            if uses:
                _release_needed(pending, result, uses)
            flush_pending()
            result.append(entry)
            continue
        uses = set(used_registers(entry))
        if uses:
            _release_needed(pending, result, uses)
        if defined_register(entry) is not None:
            pending.append(entry)
        else:
            result.append(entry)
    flush_pending()
    return result


def _release_needed(
    pending: list[TraceEntry], result: list[TraceEntry], needed: set[int]
) -> None:
    """Move pending definitions (and their transitive inputs) to the result."""
    progress = True
    while progress:
        progress = False
        for i, candidate in enumerate(pending):
            defined = defined_register(candidate)
            if defined in needed:
                needed.update(used_registers(candidate))
                # Everything the candidate depends on that is still pending
                # must be released first; restart the scan.
                earlier = pending[:i]
                dependency_pending = any(
                    defined_register(e) in set(used_registers(candidate)) for e in earlier
                )
                if dependency_pending:
                    continue
                result.append(candidate)
                pending.pop(i)
                progress = True
                break
