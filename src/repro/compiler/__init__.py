"""Compiler support: liveness, list scheduling, greedy register allocation."""

from .liveness import LiveRange, LivenessInfo, analyze_liveness
from .regalloc import AllocationResult, allocate_registers
from .scheduler import schedule_trace
from .pipeline import CompiledKernel, compile_trace

__all__ = [
    "LiveRange",
    "LivenessInfo",
    "analyze_liveness",
    "AllocationResult",
    "allocate_registers",
    "schedule_trace",
    "CompiledKernel",
    "compile_trace",
]
