"""Compilation pipeline: schedule, analyse liveness, allocate registers.

``compile_trace`` is the single entry point used by the timing simulator and
the experiments: it takes the raw trace recorded by the functional machine
and produces the trace that actually reaches the MVE controller, with the
kernel-width config instruction and any spill traffic inserted.

``compile_trace_cached`` adds a small identity-keyed memo on top: the staged
sweep pipeline captures one trace and replays it under many machine
configurations, and every configuration that keeps the register-file
geometry (array count and shape) recompiles to the *same* compiled kernel.
Configs that only vary cache, DRAM, TMU or scheme parameters therefore skip
scheduling and register allocation entirely.

The memo is also the pool workers' cross-batch warm state: because keys
embed ``id(trace)``, it only hits when the caller presents the *same trace
object* again -- which is exactly what the shared-memory trace plane
guarantees.  :func:`repro.core.trace_arena.attached_trace` memoizes one
decoded entry list per spec per worker process, and the persistent
``LocalPoolAdapter`` pool keeps those processes alive across batches, so
repeated partitions over one trace skip scheduling and register allocation
here no matter which batch they arrive in.  ``compile_cache_info`` exposes
the hit/miss counters so tests and benchmarks can assert that warmth
instead of guessing at it from wall clock.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence

from ..isa.instructions import TraceEntry
from ..isa.registers import PhysicalRegisterFile
from .liveness import LivenessInfo, analyze_liveness
from .regalloc import AllocationResult, allocate_registers
from .scheduler import schedule_trace

__all__ = [
    "CompiledKernel",
    "compile_cache_info",
    "compile_trace",
    "compile_trace_cached",
]


@dataclass
class CompiledKernel:
    """A kernel trace after scheduling and register allocation."""

    trace: list[TraceEntry]
    liveness: LivenessInfo
    allocation: AllocationResult

    @property
    def spill_count(self) -> int:
        return self.allocation.spill_count

    @property
    def element_bits(self) -> int:
        return self.allocation.element_bits

    @property
    def peak_pressure(self) -> int:
        return self.allocation.peak_pressure


def compile_trace(
    trace: Sequence[TraceEntry],
    register_file: Optional[PhysicalRegisterFile] = None,
    use_scheduler: bool = True,
) -> CompiledKernel:
    """Run the full compiler pipeline on a recorded trace."""
    scheduled = schedule_trace(trace) if use_scheduler else list(trace)
    liveness = analyze_liveness(scheduled)
    allocation = allocate_registers(scheduled, register_file=register_file, liveness=liveness)
    return CompiledKernel(trace=allocation.trace, liveness=liveness, allocation=allocation)


class _CompileMemo:
    """Bounded LRU memo keyed by trace identity and register-file geometry.

    Keying by ``id(trace)`` is what makes the memo cheap (no hashing of
    thousands of instructions), so each entry pins the trace object it was
    keyed by and re-checks identity on hit -- a recycled ``id`` after
    garbage collection can never alias a different trace.  Neither the
    compiler nor the simulator mutates compiled traces, so one
    :class:`CompiledKernel` is safe to share across any number of runs.
    """

    def __init__(self, capacity: int = 16):
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, trace, key: tuple) -> Optional[CompiledKernel]:
        entry = self._entries.get(key)
        if entry is not None and entry[0] is trace:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[1]
        self.misses += 1
        return None

    def put(self, trace, key: tuple, compiled: CompiledKernel) -> None:
        self._entries[key] = (trace, compiled)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)


_compile_memo = _CompileMemo()


def compile_cache_info() -> dict:
    """This process's compile-memo counters: hits, misses, entries, capacity.

    In a pool worker the numbers describe *that worker's* memo (each
    process has its own); the arena tests read them in-process to pin the
    trace-identity contract that keeps the memo warm across batches.
    """
    return {
        "hits": _compile_memo.hits,
        "misses": _compile_memo.misses,
        "entries": len(_compile_memo._entries),
        "capacity": _compile_memo.capacity,
    }


def compile_trace_cached(
    trace: Sequence[TraceEntry],
    register_file: Optional[PhysicalRegisterFile] = None,
    use_scheduler: bool = True,
) -> CompiledKernel:
    """:func:`compile_trace`, memoized per (trace object, geometry).

    The staged pipeline calls this with one shared trace list per capture;
    replays under configurations that differ only in timing parameters hit
    the memo and reuse the scheduled, register-allocated kernel.
    """
    register_file = register_file or PhysicalRegisterFile()
    key = (id(trace), register_file, use_scheduler)
    compiled = _compile_memo.get(trace, key)
    if compiled is None:
        compiled = compile_trace(trace, register_file=register_file, use_scheduler=use_scheduler)
        _compile_memo.put(trace, key, compiled)
    return compiled
