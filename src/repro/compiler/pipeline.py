"""Compilation pipeline: schedule, analyse liveness, allocate registers.

``compile_trace`` is the single entry point used by the timing simulator and
the experiments: it takes the raw trace recorded by the functional machine
and produces the trace that actually reaches the MVE controller, with the
kernel-width config instruction and any spill traffic inserted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..isa.instructions import TraceEntry
from ..isa.registers import PhysicalRegisterFile
from .liveness import LivenessInfo, analyze_liveness
from .regalloc import AllocationResult, allocate_registers
from .scheduler import schedule_trace

__all__ = ["CompiledKernel", "compile_trace"]


@dataclass
class CompiledKernel:
    """A kernel trace after scheduling and register allocation."""

    trace: list[TraceEntry]
    liveness: LivenessInfo
    allocation: AllocationResult

    @property
    def spill_count(self) -> int:
        return self.allocation.spill_count

    @property
    def element_bits(self) -> int:
        return self.allocation.element_bits

    @property
    def peak_pressure(self) -> int:
        return self.allocation.peak_pressure


def compile_trace(
    trace: Sequence[TraceEntry],
    register_file: Optional[PhysicalRegisterFile] = None,
    use_scheduler: bool = True,
) -> CompiledKernel:
    """Run the full compiler pipeline on a recorded trace."""
    scheduled = schedule_trace(trace) if use_scheduler else list(trace)
    liveness = analyze_liveness(scheduled)
    allocation = allocate_registers(scheduled, register_file=register_file, liveness=liveness)
    return CompiledKernel(trace=allocation.trace, liveness=liveness, allocation=allocation)
