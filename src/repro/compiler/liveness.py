"""Liveness analysis over an MVE instruction trace.

The trace produced by the functional machine is a straight-line program
(loops are already unrolled dynamically), so liveness reduces to computing,
for every virtual register, its definition index and last-use index.  The
compiler uses this both to pick the kernel element width (widest live
register, Section III-G) and to drive register allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..isa.instructions import (
    ArithmeticInstruction,
    MemoryInstruction,
    MoveInstruction,
    ScalarBlock,
    TraceEntry,
)

__all__ = ["LiveRange", "LivenessInfo", "analyze_liveness", "defined_register", "used_registers"]


@dataclass
class LiveRange:
    """Definition point, uses, and element width of one virtual register."""

    register: int
    definition: int
    uses: list[int] = field(default_factory=list)
    element_bits: int = 32

    @property
    def last_use(self) -> int:
        return self.uses[-1] if self.uses else self.definition

    @property
    def length(self) -> int:
        return self.last_use - self.definition

    def next_use_after(self, index: int) -> Optional[int]:
        for use in self.uses:
            if use > index:
                return use
        return None


def defined_register(entry: TraceEntry) -> Optional[int]:
    """Virtual register defined by a trace entry (None for stores/config/scalar)."""
    if isinstance(entry, ScalarBlock):
        return None
    if isinstance(entry, MemoryInstruction):
        return None if entry.is_store else entry.register
    if isinstance(entry, MoveInstruction):
        return entry.dest
    if isinstance(entry, ArithmeticInstruction):
        return entry.dest
    return None


def used_registers(entry: TraceEntry) -> tuple[int, ...]:
    """Virtual registers read by a trace entry."""
    if isinstance(entry, ScalarBlock):
        return ()
    if isinstance(entry, MemoryInstruction):
        return (entry.register,) if entry.is_store else ()
    if isinstance(entry, MoveInstruction):
        return (entry.src,)
    if isinstance(entry, ArithmeticInstruction):
        return tuple(entry.sources)
    return ()


def _entry_bits(entry: TraceEntry) -> int:
    dtype = getattr(entry, "dtype", None)
    return dtype.bits if dtype is not None else 32


@dataclass
class LivenessInfo:
    """Result of :func:`analyze_liveness`."""

    ranges: dict[int, LiveRange]
    max_live: int
    widest_bits: int

    def live_at(self, index: int) -> list[int]:
        """Registers live across trace index ``index``."""
        return [
            reg
            for reg, rng in self.ranges.items()
            if rng.definition <= index <= rng.last_use and rng.uses
        ]


def analyze_liveness(trace: Sequence[TraceEntry]) -> LivenessInfo:
    """Compute live ranges, peak register pressure and widest element type."""
    ranges: dict[int, LiveRange] = {}
    widest = 8
    for index, entry in enumerate(trace):
        defined = defined_register(entry)
        if defined is not None:
            ranges[defined] = LiveRange(
                register=defined, definition=index, element_bits=_entry_bits(entry)
            )
            widest = max(widest, _entry_bits(entry))
        for reg in used_registers(entry):
            if reg in ranges:
                ranges[reg].uses.append(index)
            else:
                # Register defined outside the analysed window (e.g. carried
                # across a tile boundary); treat it as live from the start.
                ranges[reg] = LiveRange(register=reg, definition=-1, uses=[index])
                widest = max(widest, _entry_bits(entry))

    # Peak register pressure via a sweep over definition / last-use events.
    events: list[tuple[int, int]] = []
    for rng in ranges.values():
        if not rng.uses:
            continue
        events.append((rng.definition, +1))
        events.append((rng.last_use + 1, -1))
    events.sort()
    live = 0
    max_live = 0
    for _, delta in events:
        live += delta
        max_live = max(max_live, live)
    return LivenessInfo(ranges=ranges, max_live=max_live, widest_bits=widest)
