"""``python -m repro worker``: drain coordinator-leased sweep partitions.

A worker is the fleet-mode execution adapter from the outside: it leases
partitions from a coordinator (``python -m repro serve`` --
:mod:`repro.core.coordinator`), re-derives each partition's
:class:`~repro.experiments.sweep.KernelJob` objects from its own registry
(verifying the advertised cache keys, which embed the source fingerprint,
so version skew nacks instead of simulating the wrong thing), and runs
them through an ordinary :class:`ParallelSweepEngine` whose store carries
the coordinator as its remote tier -- results and traces publish through
the exact same write-back path a single-machine ``--remote-cache`` run
uses, which is why fleet results are bit-identical by construction.

One engine drains every partition the worker ever leases, so with
``--jobs > 1`` the worker inherits the whole zero-copy trace plane: the
:class:`~repro.experiments.adapters.LocalPoolAdapter` process pool
persists across partitions (shut down once, in this module's ``finally``,
via ``engine.close()``), each resolved trace is arena-published once per
partition batch, and the pool workers' decoded-trace and compile memos
stay warm from one lease to the next -- a fleet worker grinding through
many partitions of one kernel suite re-decodes and re-compiles nothing.

Failure contract (mirroring the PR 4 RemoteStore one): the first
coordinator connectivity failure emits one ``RuntimeWarning`` and the
worker finishes its in-flight partition locally, then exits -- computed
results stay safe in its local store tier and the partition's lease
expires on the coordinator, requeueing it for the survivors.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from .core.cache import ResultStore
from .core.cache_service import RemoteStore
from .core.coordinator import CoordinatorClient, CoordinatorError

__all__ = ["WorkerReport", "resolve_partition_jobs", "run_worker", "write_report"]


@dataclass
class WorkerReport:
    """What one worker run did, per partition -- serializable for the CI
    exactly-once audit (``--summary``)."""

    worker: str
    coordinator: str
    #: one dict per processed partition: id/experiment/jobs plus the cache
    #: keys of the jobs this worker actually *simulated* (vs recalled)
    partitions: list[dict] = field(default_factory=list)
    acked: int = 0
    #: acks the coordinator rejected because the lease had expired; the
    #: results are in the store regardless (content-addressed, so a
    #: double-completed partition is redundant, never wrong)
    stale_acks: int = 0
    #: partitions nacked because the local job derivation did not match
    #: the advertised cache keys (version skew across the fleet)
    mismatched: int = 0
    #: the coordinator died mid-run and the worker degraded to local-only
    coordinator_lost: bool = False

    def simulated_keys(self) -> list[str]:
        return [key for entry in self.partitions for key in entry["simulated"]]

    def to_dict(self) -> dict:
        return {
            "worker": self.worker,
            "coordinator": self.coordinator,
            "acked": self.acked,
            "stale_acks": self.stale_acks,
            "mismatched": self.mismatched,
            "coordinator_lost": self.coordinator_lost,
            "partitions": self.partitions,
        }


def resolve_partition_jobs(partition: dict):
    """The partition's jobs, re-derived locally -- or None on any mismatch.

    The wire descriptor intentionally carries no machine configuration
    (a :class:`MachineConfig` has no dict-deserializer, and shipping one
    would let a skewed coordinator inject unkeyed work); instead the
    worker recomputes :func:`~repro.experiments.registry.experiment_partitions`
    and trusts it only if the advertised job cache keys match exactly.
    Exploration partitions carry a declarative search-space dict plus point
    ids instead of an experiment name -- same trust model: the jobs are
    re-derived locally from primitive data and the advertised keys (which
    embed the source fingerprint) must match exactly, or the partition is
    nacked.
    """
    from .experiments.registry import ExperimentOptions, experiment_partitions

    space = partition.get("space")
    if isinstance(space, dict):
        from .explore.space import SearchSpace

        points = partition.get("points")
        if not isinstance(points, list):
            return None
        try:
            jobs = SearchSpace.from_dict(space).jobs([int(p) for p in points])
        except (IndexError, KeyError, TypeError, ValueError):
            return None
        if [job.cache_key() for job in jobs] != partition.get("keys"):
            return None
        return jobs

    experiment = partition.get("experiment")
    index = partition.get("index")
    if not isinstance(experiment, str) or not isinstance(index, int):
        return None
    try:
        partitions = experiment_partitions(
            experiment, ExperimentOptions(scale=float(partition.get("scale", 0.5)))
        )
    except (KeyError, TypeError, ValueError):
        return None
    if len(partitions) != partition.get("total") or not 0 <= index < len(partitions):
        return None
    jobs = partitions[index]
    if [job.cache_key() for job in jobs] != partition.get("keys"):
        return None
    return jobs


def run_worker(
    coordinator: str,
    cache_dir: Optional[str] = None,
    jobs: int = 1,
    worker_id: Optional[str] = None,
    token: Optional[str] = None,
    poll_s: float = 1.0,
    drain: bool = False,
    max_partitions: Optional[int] = None,
    client: Optional[CoordinatorClient] = None,
    store: Optional[ResultStore] = None,
    log: Optional[Callable[[str], None]] = None,
) -> WorkerReport:
    """Lease, simulate and ack partitions until stopped.

    ``drain=True`` exits once the coordinator reports the queue fully
    drained (nothing pending *or* leased); otherwise the worker keeps
    polling every ``poll_s`` seconds for new work.  ``max_partitions``
    bounds how many partitions this call processes (tests, fault
    injection).  A background thread heartbeats every leased partition at
    a third of the advertised lease TTL so long replays never expire
    mid-simulation on a live worker.
    """
    from .experiments.sweep import ParallelSweepEngine

    client = client or CoordinatorClient(coordinator, worker_id=worker_id, token=token)
    if store is None:
        root = Path(cache_dir) if cache_dir else ResultStore.default_dir()
        store = ResultStore(root, remote=RemoteStore(client.base_url, token=client.token))
    engine = ParallelSweepEngine(jobs=jobs, store=store)
    report = WorkerReport(worker=client.worker_id, coordinator=client.base_url)
    say = log or (lambda message: None)

    stop = threading.Event()

    def beat() -> None:
        # Cadence re-reads lease_ttl_s each lap: a later lease response may
        # change the advertised TTL.
        while not stop.wait(max(0.05, client.lease_ttl_s / 3.0)):
            if client.dead:
                return
            try:
                client.heartbeat()
            except CoordinatorError:
                return

    heartbeat_thread: Optional[threading.Thread] = None

    try:
        while True:
            processed = report.acked + report.stale_acks + report.mismatched
            if max_partitions is not None and processed >= max_partitions:
                break
            answer = client.lease()
            if answer is not None and heartbeat_thread is None:
                # Started only after the first lease answer, so the cadence
                # derives from the TTL this coordinator actually advertises
                # (a third of it) instead of the client-side default.
                heartbeat_thread = threading.Thread(
                    target=beat, name="repro-worker-heartbeat", daemon=True
                )
                heartbeat_thread.start()
            if answer is None:
                # Coordinator dead: the one warning already fired in the
                # client; any previously-computed results are safe in the
                # store tiers, so just stop asking.
                report.coordinator_lost = True
                break
            partition = answer.get("partition")
            if partition is None:
                if drain and answer.get("drained"):
                    break
                time.sleep(poll_s)
                continue
            partition_id = partition.get("id")
            if not isinstance(partition_id, str) or not partition_id:
                # A partition with no usable id cannot be nacked (the
                # coordinator would 404 an empty id) or acked; count it as
                # mismatched and let its lease -- if one even exists --
                # expire on the coordinator.
                report.mismatched += 1
                say("partition without an id: malformed answer, skipping (no nack)")
                time.sleep(poll_s)
                continue
            partition_jobs = resolve_partition_jobs(partition)
            if partition_jobs is None:
                report.mismatched += 1
                say(
                    f"partition {partition_id}: local job derivation does "
                    "not match the advertised keys (version skew?); nacking"
                )
                client.nack(partition_id, reason="partition key mismatch")
                # A mismatch is deterministic for this worker's source tree:
                # back off so a fully-skewed queue is not nack-spun.
                time.sleep(poll_s)
                continue
            outcomes = engine.run_jobs(partition_jobs)
            simulated = [
                job.cache_key()
                for job, outcome in outcomes.items()
                if outcome.source == "computed"
            ]
            status = client.ack(partition["id"])
            report.partitions.append(
                {
                    "id": partition["id"],
                    "experiment": partition["experiment"],
                    "jobs": len(partition_jobs),
                    "simulated": simulated,
                    "ack": status or "dead",
                }
            )
            if status == "ok":
                report.acked += 1
            elif status == "stale":
                report.stale_acks += 1
            else:
                report.coordinator_lost = True
            say(
                f"partition {partition['id']}: {len(partition_jobs)} jobs, "
                f"{len(simulated)} simulated, ack={status or 'dead'}"
            )
            if status is None:
                break
    finally:
        stop.set()
        # Releases the persistent pool (and, transitively, any in-flight
        # arena segments) no matter how the lease loop ended.
        engine.close()
    return report


def write_report(report: WorkerReport, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
