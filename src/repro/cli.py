"""Unified experiment CLI:
``python -m repro {list,run,trace,explore,cache,serve,export,queue,worker}``.

Every table/figure of the paper is a registered experiment; ``run`` executes
one end to end (sharded over worker processes, answered from the persistent
result store when warm) and can export the serialized result:

    python -m repro list
    python -m repro run figure7 --export json --out figure7.json
    python -m repro run tables --export csv

Raw kernel sweeps -- the job tables previously served by
``python -m repro.sweep`` -- remain available via ``--sweep`` (a named job
set without result assembly) or ad-hoc axes::

    python -m repro run --sweep figure7 --jobs 4
    python -m repro run --kernels gemm,csum --schemes bit-serial,bit-parallel \
        --kinds mve,rvv --scale 0.25 --jobs 8

``trace`` runs only the pipeline's capture stage: it records (or recalls
from the trace cache) a kernel's MVE/RVV instruction trace and reports its
dynamic instruction mix, without ever touching the timing simulator::

    python -m repro trace list
    python -m repro trace capture gemm --kind mve --scale 0.5
    python -m repro trace stats gemm
    python -m repro trace diff gemm --against kind=rvv
    python -m repro trace diff csum --against scale=0.25,lanes=4096

``explore`` searches the machine-configuration space adaptively for the
Pareto frontier of cycles vs area vs energy, checkpointing after every
round so a killed search resumes with zero re-simulation::

    python -m repro explore run csum --budget 128 --seed 7
    python -m repro explore status csum --seed 7
    python -m repro explore frontier csum --seed 7
    python -m repro explore export csum --seed 7 --export csv

Per-job progress streams to stderr as results complete (``--no-progress``
disables it).  ``cache`` shows or clears the persistent store (location:
``$REPRO_SWEEP_CACHE_DIR`` or ``~/.cache/repro-sweep``); ``--no-cache``
bypasses it for one run.  ``python -m repro.sweep`` is a deprecated alias
of this CLI.

Multi-machine sweeps share one cache through the HTTP cache service::

    python -m repro serve --port 8750                  # on one machine
    python -m repro run figure7 --remote-cache http://cachehost:8750
    REPRO_REMOTE_CACHE=http://cachehost:8750 python -m repro run figure7

With a remote cache configured, reads try the local directory first and
fall through to the service (populating the local tier); writes go to
both.  An unreachable or failing service degrades to local-only operation
after a single warning.  ``cache`` then reports both tiers (including the
coordinator queue, when one is active); ``cache sync`` bulk-pushes local
entries the service is missing.

The service also exposes a token-free read API for result consumers:
``GET /v1/experiments`` lists registered experiments with availability and
``GET /v1/experiments/<name>`` serves the assembled result byte-identical
to the CLI export, with ETag/304 revalidation, ``Accept``-driven JSON/CSV
negotiation and ``offset``/``limit`` pagination.  ``export`` renders the
same documents into a static dataset directory without simulating::

    python -m repro export --all --out repro-export

The same service doubles as a sweep *coordinator* (fleet mode)::

    python -m repro serve --port 8750 --token s3cret   # coordinator
    python -m repro queue figure7 --coordinator http://cachehost:8750 \
        --token s3cret
    python -m repro worker --coordinator http://cachehost:8750 \
        --token s3cret --drain                          # on N machines

``queue`` expands an experiment into leaseable partitions; each
``worker`` drains them through the ordinary sweep engine, publishing
results via the shared store, so the union of the fleet's work is
bit-identical to a single-machine run.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Optional, Sequence, TextIO

from .core.cache import ResultStore
from .experiments.export import (
    EXPORT_SCHEMA_VERSION,
    columns as _columns,
    experiment_export_payload,
    explore_export_payload,
    export_rows as _export_rows,
    export_static_dataset,
    render_payload,
    rows_to_csv as _rows_to_csv,
    schema_outline,
    sweep_export_payload,
)
from .experiments.registry import (
    ExperimentOptions,
    all_experiments,
    experiment_names,
    get_experiment,
    run_experiment,
)
from .experiments.serialize import result_rows
from .experiments.sweep import (
    JobOutcome,
    KernelJob,
    OnResult,
    ParallelSweepEngine,
    SweepResult,
    SweepSpec,
    default_job_count,
)
from .experiments.tables import format_table, table3_libraries
from .explore import AXIS_NAMES, STRATEGY_NAMES
from .sram.schemes import SCHEME_NAMES, get_scheme
from .workloads import kernel_names

__all__ = [
    "EXPORT_SCHEMA_VERSION",
    "experiment_export_payload",
    "explore_export_payload",
    "main",
    "named_sweep",
    "named_sweep_names",
    "render_payload",
    "run_sweep",
    "schema_outline",
    "sweep_export_payload",
]


# ---------------------------------------------------------------------- #
#  Named sweeps (raw job sets, shared with the deprecated repro.sweep CLI)
# ---------------------------------------------------------------------- #


def _own_sweep_spec(experiment, scale: float = 0.5) -> Optional[SweepSpec]:
    """The experiment's job set as one raw sweep carrying its own name.

    Experiments spanning several specs (figure12) or borrowing another
    figure's runs (figure11 reuses figure10's spec) are not addressable as
    raw sweeps -- a ``--sweep figure11`` export would otherwise be labelled
    "figure10"."""
    specs = experiment.sweep_specs(ExperimentOptions(scale=scale))
    if len(specs) == 1 and specs[0].name == experiment.name:
        return specs[0]
    return None


def named_sweep_names() -> list[str]:
    """Experiments whose job set is expressible as one raw sweep."""
    return [
        experiment.name
        for experiment in all_experiments()
        if _own_sweep_spec(experiment) is not None
    ]


def named_sweep(name: str, scale: float = 0.5) -> SweepSpec:
    """One of the predefined evaluation sweeps by name.

    The spec comes straight from the owning experiment's registration, so
    the raw-sweep job set can never drift from the experiment's.
    """
    try:
        experiment = get_experiment(name)
    except KeyError:
        raise KeyError(
            f"unknown sweep {name!r}; available: {', '.join(named_sweep_names())}"
        ) from None
    spec = _own_sweep_spec(experiment, scale=scale)
    if spec is None:
        raise KeyError(
            f"experiment {name!r} is not a single raw sweep; "
            f"run it as an experiment or pick one of: {', '.join(named_sweep_names())}"
        )
    return spec


def run_sweep(
    spec: SweepSpec,
    engine: Optional[ParallelSweepEngine] = None,
    on_result: Optional[OnResult] = None,
) -> SweepResult:
    """Execute every job of ``spec`` on ``engine`` and time the batch."""
    engine = engine or ParallelSweepEngine(jobs=default_job_count(), store=ResultStore.default())
    start = time.perf_counter()
    outcomes = engine.run_jobs(spec.jobs(), on_result=on_result)
    return SweepResult(spec=spec, outcomes=outcomes, elapsed_s=time.perf_counter() - start)


# ---------------------------------------------------------------------- #
#  Exports
# ---------------------------------------------------------------------- #
#
# The payload builders and renderers live in repro.experiments.export (the
# read API and static exporter share them); the historical names stay
# importable from here.


def _write_export(payload: dict, fmt: str, out_path: Optional[str]) -> None:
    data = render_payload(payload, fmt)
    if out_path:
        # Binary mode on purpose: the rendered CSV bytes already carry the
        # RFC-4180 \r\n terminators, and a text-mode write would double
        # them to \r\r\n on platforms with newline translation.
        with open(out_path, "wb") as handle:
            handle.write(data)
        print(f"wrote {fmt} export to {out_path}")
    else:
        sys.stdout.write(data.decode("utf-8"))


# ---------------------------------------------------------------------- #
#  Subcommands
# ---------------------------------------------------------------------- #


def _remote_url_for(args: argparse.Namespace) -> Optional[str]:
    return getattr(args, "remote_cache", None) or ResultStore.default_remote_url()


def _store_for(args: argparse.Namespace) -> ResultStore:
    root = Path(args.cache_dir) if args.cache_dir else ResultStore.default_dir()
    return ResultStore(root, remote=_remote_url_for(args))


def _progress(stream: TextIO) -> OnResult:
    def on_result(job: KernelJob, outcome: JobOutcome, completed: int, total: int) -> None:
        print(f"[{completed}/{total}] {job.describe():<52} {outcome.source}", file=stream)

    return on_result


def _cmd_list(args: argparse.Namespace) -> int:
    print("Experiments (python -m repro run NAME):")
    for experiment in all_experiments():
        jobs = len(experiment.jobs())
        jobs_note = f"{jobs:>4} jobs" if jobs else "  static"
        scale_note = (
            "" if experiment.uses_scale or not jobs else " (fixed shapes; ignores --scale)"
        )
        print(f"  {experiment.name:<10} {jobs_note}  {experiment.description}{scale_note}")
    print(
        "\nNamed sweeps (raw job tables, `run --sweep NAME`): "
        + ", ".join(named_sweep_names())
    )
    print("\nKernels by library (Table III):")
    rows = [
        [row["library"], row["domain"], row["dims"], ", ".join(row["kernels"])]
        for row in table3_libraries()
    ]
    print(format_table(["library", "domain", "dims", "kernels"], rows))
    store = _store_for(args)
    print(f"\nCache: {store.root} ({len(store)} entries)")
    return 0


def _print_remote_status(store: ResultStore) -> None:
    """Status lines for the remote tier, when one is configured."""
    remote = store.remote
    if remote is None:
        return
    stats = remote.stats()
    if stats is None:
        print(f"Remote: {remote.base_url} (unreachable)")
        return
    auth_note = ", token auth" if stats.get("auth") else ""
    print(
        f"Remote: {remote.base_url} ({stats.get('entries', 0)} entries, "
        f"{stats.get('hits_served', 0)} hits served, "
        f"{stats.get('puts', 0)} puts accepted{auth_note})"
    )
    queue = stats.get("queue")
    if isinstance(queue, dict):
        print(
            f"Queue:  {queue.get('pending', 0)} pending, "
            f"{queue.get('leased', 0)} leased, "
            f"{queue.get('completed', 0)} completed "
            f"({queue.get('requeued', 0)} requeued), "
            f"{queue.get('workers', 0)} active workers, "
            f"lease TTL {queue.get('lease_ttl_s', 0)}s"
        )


def _cmd_cache(args: argparse.Namespace) -> int:
    store = _store_for(args)
    action = getattr(args, "action", "info")
    if action == "clear":
        removed = store.clear()
        print(f"removed {removed} cached results from {store.root}")
        if store.remote is not None:
            print(f"note: remote tier at {store.remote.base_url} left untouched")
    elif action == "sync":
        return _cache_sync(store)
    else:
        print(f"Cache: {store.root} ({len(store)} entries)")
        _print_remote_status(store)
    return 0


def _cache_sync(store: ResultStore, chunk: int = 200) -> int:
    """Bulk-push local entries the remote tier is missing.

    One ``POST /v1/keys`` existence probe plus one ``POST /v1/entries``
    upload per ``chunk`` keys -- warming a fresh coordinator from a laptop
    costs a handful of round trips, not one PUT per record.
    """
    remote = store.remote
    if remote is None:
        raise SystemExit("cache sync: no remote cache configured "
                         "(--remote-cache or $REPRO_REMOTE_CACHE)")
    probe = getattr(remote, "contains_batch", None)
    push = getattr(remote, "store_batch", None)
    if probe is None or push is None:
        raise SystemExit("cache sync: the remote tier does not support bulk transfer")
    local = getattr(store.backend, "local", store.backend)
    keys = sorted(local.keys()) if hasattr(local, "keys") else []
    pushed = present = failed = 0
    for start in range(0, len(keys), chunk):
        batch = keys[start : start + chunk]
        have = probe(batch)
        missing = [key for key in batch if not have.get(key)]
        present += len(batch) - len(missing)
        records = {}
        for key in missing:
            record = local.load(key)
            if isinstance(record, dict):
                records[key] = record
        stored = push(records) if records else []
        pushed += len(stored)
        failed += len(records) - len(stored)
        if getattr(remote, "dead", False):
            print(f"cache sync: remote went unreachable after {pushed} uploads")
            return 1
    print(
        f"cache sync: {pushed} entries pushed to {remote.base_url} "
        f"({present} already present, {failed} rejected, {len(keys)} local)"
    )
    return 0 if failed == 0 else 1


def _trace_artifact(trace_store, spec):
    """Load ``spec``'s artifact from the trace cache, capturing (and
    caching) on a miss -- the columnar encode happens exactly once per
    capture and never on a cache hit.  Returns (artifact, payload, source).
    """
    from .core.traces import TraceArtifact

    payload = trace_store.load_payload(spec)
    if payload is not None:
        try:
            return TraceArtifact.from_payload(spec, payload), payload, "cache"
        except (KeyError, TypeError, ValueError):
            pass  # corrupt entry: recapture below
    start = time.perf_counter()
    try:
        artifact = spec.capture()
    except NotImplementedError:
        raise SystemExit(
            f"trace: {spec.kernel} has no {spec.kind} lowering"
        ) from None
    elapsed_s = time.perf_counter() - start
    payload = artifact.to_payload()
    trace_store.save_payload(spec, payload)
    return artifact, payload, f"captured in {elapsed_s:.2f}s"


def _against_spec(base, text: str):
    """The ``trace diff --against`` spec: the base spec with key=value
    overrides (keys: kernel, kind, scale, lanes) applied."""
    from .core.traces import TraceSpec

    fields = {
        "kernel": base.kernel,
        "kind": base.kind,
        "scale": base.scale,
        "lanes": base.simd_lanes,
    }
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        key = key.strip()
        if not sep or key not in fields:
            raise SystemExit(
                f"trace diff: bad --against entry {item!r} "
                f"(expected key=value with keys: {', '.join(fields)})"
            )
        fields[key] = value.strip()
    kernel = str(fields["kernel"])
    if kernel not in kernel_names():
        raise SystemExit(f"trace diff: unknown kernel {kernel!r}")
    kind = str(fields["kind"])
    if kind not in ("mve", "rvv"):
        raise SystemExit(f"trace diff: unknown kind {kind!r} (choose mve or rvv)")
    try:
        scale = float(fields["scale"])
        lanes = int(fields["lanes"])
    except ValueError:
        raise SystemExit(
            f"trace diff: --against scale must be a number and lanes an integer"
        ) from None
    return TraceSpec(kernel=kernel, kind=kind, scale=scale, simd_lanes=lanes)


def _print_trace_diff(spec, artifact, source, against, other, other_source) -> None:
    """Side-by-side dynamic-instruction-mix comparison of two traces."""
    base_stats, other_stats = artifact.stats(), other.stats()
    print(f"base:    {spec.describe()}: {len(artifact)} trace entries [{source}]")
    print(f"against: {against.describe()}: {len(other)} trace entries [{other_source}]")

    def ratio(a: int, b: int) -> str:
        if a == 0:
            return "-" if b == 0 else "new"
        return f"{b / a:.2f}x"

    base_mix, other_mix = base_stats.as_dict(), other_stats.as_dict()
    rows = [
        [
            category,
            base_mix[category],
            other_mix[category],
            f"{other_mix[category] - base_mix[category]:+d}",
            ratio(base_mix[category], other_mix[category]),
        ]
        for category in ("config", "move", "memory", "arithmetic")
    ]
    rows.append(
        [
            "vector total",
            base_stats.vector_total,
            other_stats.vector_total,
            f"{other_stats.vector_total - base_stats.vector_total:+d}",
            ratio(base_stats.vector_total, other_stats.vector_total),
        ]
    )
    rows.append(
        [
            "scalar",
            base_stats.scalar,
            other_stats.scalar,
            f"{other_stats.scalar - base_stats.scalar:+d}",
            ratio(base_stats.scalar, other_stats.scalar),
        ]
    )
    print("\nDynamic instruction mix:")
    print(format_table(["category", "base", "against", "delta", "ratio"], rows))

    opcodes = sorted(
        set(base_stats.opcodes) | set(other_stats.opcodes),
        key=lambda op: (
            -max(base_stats.opcodes.get(op, 0), other_stats.opcodes.get(op, 0)),
            op,
        ),
    )
    print("\nPer-opcode counts:")
    print(
        format_table(
            ["opcode", "base", "against", "delta"],
            [
                [
                    op,
                    base_stats.opcodes.get(op, 0),
                    other_stats.opcodes.get(op, 0),
                    f"{other_stats.opcodes.get(op, 0) - base_stats.opcodes.get(op, 0):+d}",
                ]
                for op in opcodes
            ],
        )
    )


def _cmd_trace(args: argparse.Namespace) -> int:
    """``trace {list,capture,stats,diff}``: the capture stage without the
    timing simulator.

    Captures go through the same :class:`TraceStore` namespace the sweep
    engine uses, so a ``trace capture`` warms the cache for later sweeps and
    a sweep's capture makes ``trace stats`` instant.  ``diff`` compares the
    dynamic instruction mix of two captures of the same extraction (base
    spec vs ``--against`` overrides).
    """
    from .core.config import default_config
    from .core.traces import TraceSpec, TraceStore
    from .isa.trace_io import trace_payload_bytes
    from .workloads import get_kernel_class
    from .workloads.base import Kernel

    store = None if args.no_cache else _store_for(args)
    trace_store = TraceStore(store)
    lanes = args.lanes if args.lanes else default_config().simd_lanes

    if args.action == "list":
        rows = []
        for name in kernel_names():
            cls = get_kernel_class(name)
            supports_rvv = cls.run_rvv is not Kernel.run_rvv
            spec = TraceSpec(
                kernel=name, kind=args.kind, scale=args.scale, simd_lanes=lanes
            )
            cached = (
                args.kind == "mve" or supports_rvv
            ) and trace_store.contains_locally(spec)
            rows.append(
                [
                    name,
                    cls.library,
                    cls.dims,
                    cls.dtype.name,
                    "yes" if supports_rvv else "",
                    "yes" if cached else "",
                ]
            )
        print(f"Kernel traces (scale={args.scale}, {lanes} lanes, kind={args.kind}):")
        print(format_table(["kernel", "library", "dims", "dtype", "rvv", "cached"], rows))
        if store is not None:
            print(f"\nTrace cache: {store.root} (shared with simulation results)")
        return 0

    if not args.kernel:
        raise SystemExit(f"trace {args.action}: pass a kernel name (see `trace list`)")
    if args.kernel not in kernel_names():
        raise SystemExit(f"trace: unknown kernel {args.kernel!r}")
    spec = TraceSpec(
        kernel=args.kernel, kind=args.kind, scale=args.scale, simd_lanes=lanes
    )

    if args.action == "diff":
        if not args.against:
            raise SystemExit(
                "trace diff: pass --against key=value[,key=value...] "
                "(keys: kernel, kind, scale, lanes)"
            )
        against = _against_spec(spec, args.against)
        artifact, _, source = _trace_artifact(trace_store, spec)
        other, _, other_source = _trace_artifact(trace_store, against)
        _print_trace_diff(spec, artifact, source, against, other, other_source)
        return 0

    artifact, payload, source = _trace_artifact(trace_store, spec)
    print(f"{spec.describe()}: {len(artifact)} trace entries [{source}]")
    print(f"key: {spec.cache_key()}")
    if args.action == "capture":
        print(f"payload: {trace_payload_bytes(payload['trace'])} bytes (columnar npz)")
        return 0

    if args.bytes:
        encoded = trace_payload_bytes(payload["trace"])
        decoded = artifact.columnar_bytes()
        print("\nTrace footprint:")
        print(
            format_table(
                ["representation", "bytes", "per entry"],
                [
                    ["encoded envelope (store/wire)", encoded,
                     f"{encoded / max(1, len(artifact)):.1f}"],
                    ["decoded columnar (arena segment)", decoded,
                     f"{decoded / max(1, len(artifact)):.1f}"],
                ],
            )
        )
        print(
            "shipping per extra partition task: "
            f"{decoded} bytes pickled without the arena, "
            "~a few hundred (one handle) with it"
        )

    stats = artifact.stats()
    mix = stats.as_dict()
    print("\nDynamic instruction mix:")
    print(
        format_table(
            ["category", "count", "share"],
            [
                [category, mix[category], f"{mix[category] / max(1, stats.vector_total):.1%}"]
                for category in ("config", "move", "memory", "arithmetic")
            ],
        )
    )
    print(f"vector total: {stats.vector_total}")
    print(
        f"scalar: {stats.scalar} "
        f"({stats.scalar_loads} loads, {stats.scalar_stores} stores)"
    )
    print("\nPer-opcode counts:")
    ranked = sorted(stats.opcodes.items(), key=lambda item: (-item[1], item[0]))
    print(format_table(["opcode", "count"], [[op, count] for op, count in ranked]))

    if args.configs:
        _print_config_batching(args.configs, args.kernel, args.scale)
    return 0


def _print_config_batching(sweep_name: str, kernel: str, scale: float) -> None:
    """``trace stats KERNEL --configs SWEEP``: how the named sweep's
    configurations for this kernel collapse into batched replays."""
    from .core.replay import batched_replay_enabled
    from .experiments.sweep import batch_partitions

    try:
        sweep_spec = named_sweep(sweep_name, scale=scale)
    except (KeyError, ValueError) as error:
        raise SystemExit(f"trace stats --configs: {error.args[0]}") from None

    groups: dict = {}
    for job in sweep_spec.jobs():
        if job.kernel == kernel:
            groups.setdefault(job.trace_spec(), []).append(job)
    if not groups:
        print(f"\nSweep {sweep_name!r} has no jobs for kernel {kernel!r}.")
        return

    enabled = batched_replay_enabled()
    mode = "on" if enabled else "off (REPRO_BATCHED_REPLAY=0)"
    print(f"\nConfig batching for sweep {sweep_name!r} [{mode}]:")
    rows = []
    for spec, jobs in groups.items():
        replays = len(batch_partitions(jobs)) if enabled else len(jobs)
        rows.append([spec.describe(), len(jobs), replays])
    print(format_table(["trace", "configs", "batched replays"], rows))


def _token_for(args: argparse.Namespace) -> Optional[str]:
    return getattr(args, "token", None) or os.environ.get("REPRO_CACHE_TOKEN") or None


def _cmd_serve(args: argparse.Namespace) -> int:
    from .core.cache_service import CacheServer

    root = Path(args.cache_dir) if args.cache_dir else ResultStore.default_dir()
    token = _token_for(args)
    try:
        server = CacheServer(
            (args.host, args.port),
            root=root,
            verbose=args.verbose,
            token=token,
            lease_ttl_s=args.lease_ttl,
        )
    except (OSError, OverflowError) as error:
        # Port in use, privileged/out-of-range port, unresolvable host, ...
        raise SystemExit(f"serve: cannot bind {args.host}:{args.port}: {error}") from None
    host, port = server.server_address[:2]
    print(f"repro cache service listening on http://{host}:{port}")
    print(f"store: {root} ({len(server.backend)} entries)")
    print(
        f"fleet: job queue enabled (lease TTL {server.queue.lease_ttl_s:g}s), "
        f"auth {'on' if token else 'off (mutations open; set --token)'}"
    )
    print("point workers at it with --remote-cache or $REPRO_REMOTE_CACHE")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
    return 0


def _coordinator_url_for(args: argparse.Namespace) -> str:
    url = getattr(args, "coordinator", None) or _remote_url_for(args)
    if not url:
        raise SystemExit(
            f"{args.command}: pass --coordinator URL (or set $REPRO_REMOTE_CACHE)"
        )
    return url


def _cmd_queue(args: argparse.Namespace) -> int:
    from .core.coordinator import CoordinatorClient, CoordinatorError

    url = _coordinator_url_for(args)
    client = CoordinatorClient(url, token=_token_for(args))
    try:
        summary = client.enqueue(args.experiment, scale=args.scale)
    except CoordinatorError as error:
        raise SystemExit(f"queue: coordinator rejected the request: {error}") from None
    if summary is None:
        raise SystemExit(f"queue: coordinator {url} unreachable")
    print(
        f"queued {summary.get('queued', 0)} partitions of "
        f"{args.experiment} ({summary.get('jobs', 0)} jobs, "
        f"{summary.get('already_queued', 0)} already queued) on {client.base_url}"
    )
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from .core.coordinator import CoordinatorError
    from .worker import run_worker, write_report

    url = _coordinator_url_for(args)
    try:
        report = run_worker(
            url,
            cache_dir=args.cache_dir,
            jobs=args.jobs,
            worker_id=args.id,
            token=_token_for(args),
            poll_s=args.poll,
            drain=args.drain,
            max_partitions=args.max_partitions,
            log=lambda message: print(message, file=sys.stderr),
        )
    except CoordinatorError as error:
        raise SystemExit(f"worker: coordinator rejected the request: {error}") from None
    if args.summary:
        write_report(report, args.summary)
    simulated = len(report.simulated_keys())
    print(
        f"worker {report.worker}: {report.acked} partitions acked "
        f"({report.stale_acks} stale, {report.mismatched} mismatched), "
        f"{simulated} jobs simulated"
    )
    if report.coordinator_lost:
        print(f"worker {report.worker}: coordinator lost; degraded to local-only")
        # Work already done is safe (store tiers); signal the supervisor
        # only when this run achieved nothing at all.
        return 1 if not report.partitions else 0
    return 0


def _space_from_args(args: argparse.Namespace):
    """The :class:`SearchSpace` the explore subcommand operates on: the
    stock grid unless ``--axis NAME=V1,V2`` flags spell out a custom one."""
    from .explore import Axis, SearchSpace, default_space

    kernel = args.kernel or "csum"
    try:
        if not args.axis:
            return default_space(kernel=kernel, scale=args.scale, kind=args.kind)
        axes = []
        for text in args.axis:
            name, sep, values = text.partition("=")
            if not sep:
                raise ValueError(f"bad --axis {text!r} (expected NAME=V1,V2,...)")
            parsed: list = []
            for raw in values.split(","):
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    parsed.append(int(raw))
                except ValueError:
                    parsed.append(raw)
            axes.append(Axis(name.strip(), tuple(parsed)))
        return SearchSpace(
            kernel=kernel, axes=tuple(axes), kind=args.kind, scale=args.scale
        )
    except ValueError as error:
        raise SystemExit(f"explore: {error}") from None


def _cmd_explore(args: argparse.Namespace) -> int:
    """``explore {run,status,frontier,export}``: adaptive Pareto search.

    ``run`` searches (resuming any checkpoint for the same space, seed,
    strategy and objectives); the other actions inspect the checkpointed
    :class:`SearchState` without simulating anything.
    """
    from .explore import Explorer

    space = _space_from_args(args)
    objectives = tuple(
        name.strip() for name in args.objectives.split(",") if name.strip()
    )
    coordinator = None
    if args.coordinator:
        from .core.coordinator import CoordinatorClient

        coordinator = CoordinatorClient(args.coordinator, token=_token_for(args))
    try:
        explorer = Explorer(
            space,
            store=_store_for(args),
            jobs=args.jobs,
            strategy=args.strategy,
            seed=args.seed,
            objectives=objectives,
            batch=args.batch,
            coordinator=coordinator,
            log=None
            if args.no_progress
            else (lambda message: print(message, file=sys.stderr)),
        )
    except (KeyError, ValueError) as error:
        raise SystemExit(f"explore: {error}") from None

    if args.action == "run":
        if not args.no_progress:
            print(f"exploring {space.describe()}", file=sys.stderr)
        on_result = None if args.no_progress else _progress(sys.stderr)
        summary = explorer.run(
            budget=args.budget, max_rounds=args.rounds, on_result=on_result
        )
        line = f"explore {space.kernel} [{args.strategy}]: {summary.describe()}"
        if args.export:
            payload = explore_export_payload(
                space, summary.state, elapsed_s=summary.elapsed_s
            )
            _write_export(payload, args.export, args.out)
            print(line, file=sys.stderr)
        else:
            print(line)
        return 0

    state = explorer.load_state()
    if state is None:
        raise SystemExit(
            f"explore {args.action}: no saved search for this space/seed/"
            "strategy/objectives (run `explore run` first)"
        )

    if args.action == "export":
        payload = explore_export_payload(space, state)
        _write_export(payload, args.export or "json", args.out)
        return 0

    if args.action == "status":
        status = "converged" if state.done else "resumable"
        print(f"{space.describe()}")
        print(
            f"strategy {state.strategy}, seed {state.seed}, "
            f"objectives {', '.join(state.objectives)}"
        )
        print(
            f"evaluated {len(state.evaluated)}/{space.size} configs "
            f"({state.simulated_total} simulated ever), frontier "
            f"{len(state.frontier)} points, {len(state.rounds)} rounds [{status}]"
        )
        if state.rounds:
            print()
            print(
                format_table(
                    ["round", "proposed", "simulated", "frontier", "changed"],
                    [
                        [
                            record.index,
                            record.proposed,
                            record.simulated,
                            record.frontier_size,
                            "yes" if record.frontier_changed else "",
                        ]
                        for record in state.rounds
                    ],
                )
            )
        return 0

    # frontier: the surviving points with their axis values and objectives
    axis_names = [axis.name for axis in space.axes]
    rows = [
        [member.point]
        + [member.values.get(name, "") for name in axis_names]
        + [
            f"{member.metrics.cycles:.0f}",
            f"{member.metrics.time_us:.2f}",
            f"{member.metrics.area.total_mm2:.4f}",
            f"{member.metrics.energy.total_nj:.1f}",
        ]
        for member in state.frontier
    ]
    print(f"Pareto frontier ({len(rows)} points, {', '.join(state.objectives)}):")
    print(
        format_table(
            ["point", *axis_names, "cycles", "time_us", "area_mm2", "energy_nj"],
            rows,
        )
    )
    return 0


def _spec_from_args(args: argparse.Namespace) -> SweepSpec:
    scale = 0.5 if args.scale is None else args.scale
    if args.sweep:
        try:
            spec = named_sweep(args.sweep, scale=scale)
        except KeyError as error:
            raise SystemExit(f"run: {error.args[0]}") from None
        if args.scale is not None and not get_experiment(args.sweep).uses_scale:
            print(
                f"note: sweep {args.sweep!r} uses the paper's fixed dataset shapes; "
                f"--scale {args.scale} is ignored",
                file=sys.stderr,
            )
        return spec
    if not args.kernels:
        raise SystemExit("run: pass an experiment name, --sweep NAME or --kernels a,b,c")
    requested = [name.strip() for name in args.kernels.split(",") if name.strip()]
    unknown = sorted(set(requested) - set(kernel_names()))
    if unknown:
        raise SystemExit(f"unknown kernels: {', '.join(unknown)}")
    kinds = tuple(kind.strip() for kind in args.kinds.split(",") if kind.strip())
    bad_kinds = sorted(set(kinds) - {"mve", "rvv"})
    if bad_kinds:
        raise SystemExit(f"unknown kinds: {', '.join(bad_kinds)} (choose from mve, rvv)")
    schemes = tuple(s.strip() for s in args.schemes.split(",") if s.strip())
    for scheme in schemes:
        try:
            get_scheme(scheme)
        except ValueError:
            raise SystemExit(
                f"unknown scheme {scheme!r} (choose from {', '.join(SCHEME_NAMES)})"
            ) from None
    return SweepSpec(
        name="custom",
        kernels=[(name, {"scale": scale}) for name in requested],
        kinds=kinds,
        schemes=schemes,
        default_scale=scale,
    )


def _print_sweep(sweep: SweepResult, args: argparse.Namespace, store) -> None:
    rows = sorted(sweep.outcomes.items(), key=lambda item: (item[0].kernel, item[0].kind))
    header = (
        f"{'kernel':<12} {'kind':<4} {'scheme':<13} {'cycles':>12} "
        f"{'time_us':>10} {'energy_nj':>12} {'src':>8}"
    )
    print(header)
    print("-" * len(header))
    for job, outcome in rows:
        result = outcome.result
        print(
            f"{job.kernel:<12} {job.kind:<4} {job.scheme_name:<13} "
            f"{result.total_cycles:>12.0f} {result.time_us:>10.2f} "
            f"{result.energy_nj:>12.1f} {outcome.source:>8}"
        )
    cache_note = "cache disabled" if store is None else f"cache at {store.root}"
    if store is not None and store.remote is not None:
        cache_note += f" + remote {store.remote.base_url}"
    print(
        f"\n{sweep.spec.name}: {len(sweep.outcomes)} jobs in {sweep.elapsed_s:.2f}s "
        f"({sweep.computed} simulated, {sweep.from_cache} from cache, "
        f"--jobs {args.jobs}, {cache_note})"
    )


def _print_experiment_result(name: str, result, elapsed_s: float) -> None:
    data = result.to_dict()
    sections: dict[str, list[dict]] = {}
    for row in result_rows(data):
        sections.setdefault(row.pop("section"), []).append(row)
    for section, rows in sections.items():
        if section == "summary":
            print(f"\n{name} summary:")
            (row,) = rows
            for key, value in row.items():
                print(f"  {key} = {value}")
            continue
        columns = _columns(rows)
        print(f"\n{name}.{section}:")
        print(format_table(columns, [[row.get(c, "") for c in columns] for row in rows]))
    print(f"\n{name}: assembled in {elapsed_s:.2f}s")


def _cmd_run(args: argparse.Namespace) -> int:
    store = None if args.no_cache else _store_for(args)
    on_result = None if args.no_progress else _progress(sys.stderr)

    name = args.name
    if name and (args.sweep or args.kernels):
        raise SystemExit(
            "run: pass either an experiment name or --sweep/--kernels, not both"
        )
    if name:
        try:
            get_experiment(name)
        except KeyError as error:
            raise SystemExit(f"run: {error.args[0]}") from None
        from .experiments.registry import build_runner

        options = ExperimentOptions(scale=0.5 if args.scale is None else args.scale)
        if args.scale is not None and not get_experiment(name).uses_scale:
            print(
                f"note: experiment {name!r} uses the paper's fixed dataset shapes; "
                f"--scale {args.scale} is ignored",
                file=sys.stderr,
            )
        runner = build_runner(jobs=args.jobs, store=store, default_scale=options.scale)
        start = time.perf_counter()
        result = run_experiment(
            name,
            runner=runner,
            options=options,
            use_cache=not args.no_cache,
            on_result=on_result,
        )
        elapsed_s = time.perf_counter() - start
        payload = experiment_export_payload(
            name, ExperimentOptions(scale=options.scale, config=runner.config), result
        )
        if args.export:
            _write_export(payload, args.export, args.out)
        else:
            _print_experiment_result(name, result, elapsed_s)
        return 0

    spec = _spec_from_args(args)
    engine = ParallelSweepEngine(jobs=args.jobs, store=store)
    sweep = run_sweep(spec, engine, on_result=on_result)
    if args.export:
        _write_export(sweep_export_payload(sweep), args.export, args.out)
    else:
        _print_sweep(sweep, args, store)
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    """``export [NAMES...|--all]``: the static dataset surface.

    Renders already-assembled results from the store into a directory of
    JSON + CSV + ``index.json`` -- never simulating; a cold store fails
    with one "not in store" line per missing experiment.
    """
    if args.all_experiments:
        names = experiment_names()
    else:
        names = list(dict.fromkeys(args.names))
    if not names:
        raise SystemExit("export: pass experiment names or --all")
    unknown = sorted(set(names) - set(experiment_names()))
    if unknown:
        raise SystemExit(
            f"export: unknown experiments: {', '.join(unknown)} "
            f"(available: {', '.join(experiment_names())})"
        )
    store = _store_for(args)
    options = ExperimentOptions(scale=args.scale)
    manifest, missing = export_static_dataset(store, args.out, names, options)
    if missing:
        for entry in missing:
            hint = f"python -m repro run {entry['name']}"
            if get_experiment(entry["name"]).uses_scale:
                hint += f" --scale {args.scale:g}"
            print(
                f"export: {entry['name']}: not in store "
                f"(key {entry['key'][:12]}...); warm it with `{hint}`",
                file=sys.stderr,
            )
        print(
            f"export: nothing written ({len(missing)} of {len(names)} "
            f"experiments missing from {store.root})",
            file=sys.stderr,
        )
        return 1
    total_bytes = sum(
        entry["bytes"]["json"] + entry["bytes"]["csv"]
        for entry in manifest["experiments"]
    )
    print(
        f"exported {len(manifest['experiments'])} experiments to {args.out} "
        f"({total_bytes} bytes + index.json, zero simulation)"
    )
    return 0


# ---------------------------------------------------------------------- #


def main(argv: Optional[Sequence[str]] = None, prog: str = "python -m repro") -> int:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Run the paper's experiments and kernel sweeps, with "
        "parallel execution, persistent caching and JSON/CSV export.",
    )
    parser.add_argument("--cache-dir", default=None, help="override the persistent cache directory")
    parser.add_argument(
        "--remote-cache", default=None, metavar="URL",
        help="shared cache service to read through / write back to "
        "(default: $REPRO_REMOTE_CACHE; start one with `serve`)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    listp = sub.add_parser("list", help="show experiments, sweeps, kernels and cache status")
    listp.add_argument("--cache-dir", default=argparse.SUPPRESS, help=argparse.SUPPRESS)
    listp.add_argument("--remote-cache", default=argparse.SUPPRESS, help=argparse.SUPPRESS)

    run = sub.add_parser("run", help="run an experiment or a raw kernel sweep")
    run.add_argument(
        "name", nargs="?", default=None,
        help=f"experiment to run ({', '.join(experiment_names())})",
    )
    run.add_argument("--sweep", help=f"raw named sweep ({', '.join(named_sweep_names())})")
    run.add_argument("--kernels", help="comma-separated kernel names for an ad-hoc sweep")
    run.add_argument("--kinds", default="mve", help="comma-separated lowerings (mve,rvv)")
    run.add_argument("--schemes", default="bit-serial", help="comma-separated compute schemes")
    run.add_argument(
        "--scale", type=float, default=None,
        help="dataset scale (default 0.5; ignored by fixed-shape experiments, see `list`)",
    )
    run.add_argument(
        "--jobs", type=int, default=default_job_count(), help="worker processes (default: cores)"
    )
    run.add_argument("--no-cache", action="store_true", help="bypass the persistent cache")
    run.add_argument(
        "--export", choices=("json", "csv"), default=None,
        help="export the result instead of printing the human-readable view",
    )
    run.add_argument("--out", default=None, help="write the export to this path (default: stdout)")
    run.add_argument(
        "--no-progress", action="store_true", help="do not stream per-job progress to stderr"
    )
    run.add_argument("--cache-dir", default=argparse.SUPPRESS, help=argparse.SUPPRESS)
    run.add_argument("--remote-cache", default=argparse.SUPPRESS, help=argparse.SUPPRESS)

    cache = sub.add_parser(
        "cache", help="show, clear or sync the persistent result cache"
    )
    cache.add_argument(
        "action", nargs="?", choices=("info", "clear", "sync"), default="info",
        help="info: report tiers (and the coordinator queue); "
        "clear: delete local entries; sync: bulk-push local entries the "
        "remote service is missing",
    )
    cache.add_argument("--cache-dir", default=argparse.SUPPRESS, help=argparse.SUPPRESS)
    cache.add_argument("--remote-cache", default=argparse.SUPPRESS, help=argparse.SUPPRESS)

    trace = sub.add_parser(
        "trace",
        help="capture and inspect kernel traces without running the timing simulator",
    )
    trace.add_argument("action", choices=("list", "capture", "stats", "diff"))
    trace.add_argument("kernel", nargs="?", default=None, help="kernel name (see `trace list`)")
    trace.add_argument("--kind", choices=("mve", "rvv"), default="mve", help="lowering to capture")
    trace.add_argument("--scale", type=float, default=0.5, help="dataset scale (default 0.5)")
    trace.add_argument(
        "--lanes", type=int, default=None,
        help="SIMD lane count (default: the base configuration's engine width)",
    )
    trace.add_argument(
        "--against", metavar="KEY=VALUE[,...]", default=None,
        help="with `diff`: compare the base trace against the spec with "
        "these overrides applied (keys: kernel, kind, scale, lanes)",
    )
    trace.add_argument(
        "--configs", metavar="SWEEP", default=None,
        help="with `stats`: report how many configurations of the named "
        "sweep share one batched replay of this kernel's trace",
    )
    trace.add_argument(
        "--bytes", action="store_true",
        help="with `stats`: report the encoded envelope size and the "
        "decoded columnar footprint (what one shared-memory arena "
        "segment holds)",
    )
    trace.add_argument(
        "--no-cache", action="store_true", help="capture fresh, bypassing the trace cache"
    )
    trace.add_argument("--cache-dir", default=argparse.SUPPRESS, help=argparse.SUPPRESS)
    trace.add_argument("--remote-cache", default=argparse.SUPPRESS, help=argparse.SUPPRESS)

    explorep = sub.add_parser(
        "explore",
        help="adaptive Pareto search over the machine-configuration space",
    )
    explorep.add_argument(
        "action", choices=("run", "status", "frontier", "export"),
        help="run: search (resumes any checkpoint); status/frontier/export: "
        "inspect the checkpointed state without simulating",
    )
    explorep.add_argument(
        "kernel", nargs="?", default="csum", help="kernel to explore (default: csum)"
    )
    explorep.add_argument(
        "--kind", choices=("mve", "rvv"), default="mve", help="lowering to search over"
    )
    explorep.add_argument("--scale", type=float, default=0.5, help="dataset scale (default 0.5)")
    explorep.add_argument(
        "--axis", action="append", metavar="NAME=V1,V2,...", default=None,
        help="add a search axis (repeatable; default: the stock scheme x "
        f"num_arrays x l2_compute_ways x dram grid); names: {', '.join(AXIS_NAMES)}",
    )
    explorep.add_argument(
        "--strategy", choices=STRATEGY_NAMES, default="frontier",
        help="sampling strategy (default: frontier-neighborhood refinement)",
    )
    explorep.add_argument("--seed", type=int, default=0, help="deterministic search seed")
    explorep.add_argument(
        "--objectives", default="cycles,area,energy",
        help="comma-separated Pareto objectives: cycles, time_us, area, energy "
        "(default: cycles,area,energy)",
    )
    explorep.add_argument(
        "--budget", type=int, default=64,
        help="stop after this many evaluated configs, resumable (default: 64)",
    )
    explorep.add_argument("--rounds", type=int, default=64, help="max search rounds (default: 64)")
    explorep.add_argument(
        "--batch", type=int, default=16, help="per-round proposal cap (default: 16)"
    )
    explorep.add_argument(
        "--jobs", type=int, default=default_job_count(),
        help="worker processes (default: cores)",
    )
    explorep.add_argument(
        "--coordinator", metavar="URL", default=None,
        help="drain each round through this fleet coordinator's worker pool "
        "before falling back to local simulation",
    )
    explorep.add_argument(
        "--token", default=None,
        help="coordinator auth token (default: $REPRO_CACHE_TOKEN)",
    )
    explorep.add_argument(
        "--export", choices=("json", "csv"), default=None,
        help="export the frontier instead of printing the human-readable view",
    )
    explorep.add_argument(
        "--out", default=None, help="write the export to this path (default: stdout)"
    )
    explorep.add_argument(
        "--no-progress", action="store_true",
        help="do not stream per-round/per-job progress to stderr",
    )
    explorep.add_argument("--cache-dir", default=argparse.SUPPRESS, help=argparse.SUPPRESS)
    explorep.add_argument("--remote-cache", default=argparse.SUPPRESS, help=argparse.SUPPRESS)

    exportp = sub.add_parser(
        "export",
        help="render warm experiment results into a static dataset directory "
        "(JSON + CSV + index manifest; never simulates)",
    )
    exportp.add_argument(
        "names", nargs="*", default=[],
        help=f"experiments to export ({', '.join(experiment_names())})",
    )
    exportp.add_argument(
        "--all", action="store_true", dest="all_experiments",
        help="export every registered experiment",
    )
    exportp.add_argument(
        "--out", default="repro-export", metavar="DIR",
        help="output directory (default: repro-export)",
    )
    exportp.add_argument(
        "--scale", type=float, default=0.5,
        help="dataset scale of the stored results to export (default 0.5)",
    )
    exportp.add_argument("--cache-dir", default=argparse.SUPPRESS, help=argparse.SUPPRESS)
    exportp.add_argument("--remote-cache", default=argparse.SUPPRESS, help=argparse.SUPPRESS)

    serve = sub.add_parser(
        "serve",
        help="serve the result cache over HTTP and coordinate fleet sweeps",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=8750, help="port to listen on (default: 8750; 0 = ephemeral)"
    )
    serve.add_argument("--verbose", action="store_true", help="log every request to stderr")
    serve.add_argument(
        "--token", default=None,
        help="require this token on every mutating request "
        "(default: $REPRO_CACHE_TOKEN; unset leaves mutations open)",
    )
    serve.add_argument(
        "--lease-ttl", type=float, default=60.0, metavar="SECONDS",
        help="seconds a leased partition survives without a worker "
        "heartbeat before it is requeued (default: 60)",
    )
    serve.add_argument("--cache-dir", default=argparse.SUPPRESS, help=argparse.SUPPRESS)

    queuep = sub.add_parser(
        "queue", help="enqueue an experiment's partitions on a coordinator"
    )
    queuep.add_argument(
        "experiment", help=f"experiment to enqueue ({', '.join(experiment_names())})"
    )
    queuep.add_argument(
        "--coordinator", metavar="URL", default=None,
        help="coordinator URL (default: --remote-cache / $REPRO_REMOTE_CACHE)",
    )
    queuep.add_argument(
        "--scale", type=float, default=0.5,
        help="dataset scale for scale-honouring experiments (default 0.5)",
    )
    queuep.add_argument(
        "--token", default=None,
        help="coordinator auth token (default: $REPRO_CACHE_TOKEN)",
    )
    queuep.add_argument("--remote-cache", default=argparse.SUPPRESS, help=argparse.SUPPRESS)
    queuep.add_argument("--cache-dir", default=argparse.SUPPRESS, help=argparse.SUPPRESS)

    workerp = sub.add_parser(
        "worker", help="drain leased sweep partitions from a coordinator"
    )
    workerp.add_argument(
        "--coordinator", metavar="URL", default=None,
        help="coordinator URL (default: --remote-cache / $REPRO_REMOTE_CACHE)",
    )
    workerp.add_argument(
        "--jobs", type=int, default=default_job_count(),
        help="worker processes per partition replay (default: cores)",
    )
    workerp.add_argument("--id", default=None, help="worker id (default: host-pid)")
    workerp.add_argument(
        "--token", default=None,
        help="coordinator auth token (default: $REPRO_CACHE_TOKEN)",
    )
    workerp.add_argument(
        "--poll", type=float, default=1.0, metavar="SECONDS",
        help="idle poll interval while the queue is empty (default: 1)",
    )
    workerp.add_argument(
        "--drain", action="store_true",
        help="exit once the queue is fully drained instead of polling forever",
    )
    workerp.add_argument(
        "--max-partitions", type=int, default=None, metavar="N",
        help="stop after processing N partitions",
    )
    workerp.add_argument(
        "--summary", default=None, metavar="PATH",
        help="write a JSON report of processed partitions (and which jobs "
        "this worker actually simulated) to PATH",
    )
    workerp.add_argument("--cache-dir", default=argparse.SUPPRESS, help=argparse.SUPPRESS)
    workerp.add_argument("--remote-cache", default=argparse.SUPPRESS, help=argparse.SUPPRESS)

    legacy_clear = sub.add_parser("clear-cache", help="(deprecated) alias for `cache clear`")
    legacy_clear.add_argument("--cache-dir", default=argparse.SUPPRESS, help=argparse.SUPPRESS)

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "explore":
        return _cmd_explore(args)
    if args.command == "export":
        return _cmd_export(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "queue":
        return _cmd_queue(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "clear-cache":
        args.action = "clear"
        return _cmd_cache(args)
    return _cmd_run(args)


if __name__ == "__main__":
    sys.exit(main())
