"""XNNPACK kernels (Machine Learning, 2D): GEMM, SpMM and matrix transpose.

GEMM follows the multidimensional-replication pattern of Section IV: input
elements are replicated horizontally across the output columns and weight
rows are replicated vertically across the output rows, so a tile of
``8192 / M`` output rows is computed per iteration.  SpMM keeps the sparse
matrix in a padded (ELL) layout; the scalar core computes the weight-row
pointers for the non-zero entries and MVE gathers them with random loads.
"""

from __future__ import annotations

import numpy as np

from ..baselines.profile import KernelProfile
from ..baselines.rvv import RVVEmitter
from ..intrinsics.machine import MVEMachine
from ..isa.datatypes import DataType
from ..isa.encoding import StrideMode
from .base import Kernel, LOOP_SCALAR_OPS
from .registry import register

__all__ = ["GemmKernel", "SpmmKernel", "TransposeKernel"]

_M0 = int(StrideMode.ZERO)
_M1 = int(StrideMode.ONE)
_M2 = int(StrideMode.SEQUENTIAL)
_M3 = int(StrideMode.REGISTER)


@register
class GemmKernel(Kernel):
    """GEMM: C[N,M] = A[N,K] @ B[K,M] in fp32 with row-wise replication."""

    name = "gemm"
    library = "XNNPACK"
    dims = "2D"
    dtype = DataType.FLOAT32
    description = "Dense fp32 GEMM with multidimensional replication"

    BASE_N = 256
    K = 64
    M = 64

    def __init__(self, scale: float = 1.0, seed: int = 0, n: int | None = None,
                 k: int | None = None, m: int | None = None):
        super().__init__(scale=scale, seed=seed)
        self._n_override = n
        self._k_override = k
        self._m_override = m

    def prepare(self) -> None:
        self.n = self._n_override or max(8, int(self.BASE_N * self.scale))
        self.k = self._k_override or self.K
        self.m = self._m_override or self.M
        a = self.rng.standard_normal((self.n, self.k)).astype(np.float32)
        b = self.rng.standard_normal((self.k, self.m)).astype(np.float32)
        self.a = self.memory.allocate_array(a.reshape(-1), self.dtype)
        self.b = self.memory.allocate_array(b.reshape(-1), self.dtype)
        self.c = self.memory.allocate(self.dtype, self.n * self.m)
        self._a_ref = a.copy()
        self._b_ref = b.copy()

    def run_mve(self, machine: MVEMachine) -> None:
        lanes = machine.simd_lanes
        rows_per_tile = max(1, min(self.n, lanes // self.m))
        machine.vsetdimc(2)
        machine.vsetdiml(0, self.m)
        machine.vsetldstr(1, self.k)
        row = 0
        while row < self.n:
            rows = min(rows_per_tile, self.n - row)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(1, rows)
            acc = machine.vsetdup(self.dtype, 0.0)
            for k in range(self.k):
                machine.scalar(4)
                # A[row+r][k] replicated across the M output columns.
                a_val = machine.vsld(
                    self.dtype, self.a.address + (row * self.k + k) * 4, (_M0, _M3)
                )
                # B[k][:] replicated down the tile's rows.
                b_val = machine.vsld(
                    self.dtype, self.b.address + k * self.m * 4, (_M1, _M0)
                )
                acc = machine.vadd(acc, machine.vmul(a_val, b_val))
            # C tile: dim0 stride 1, dim1 stride = M (sequential mode).
            machine.vsst(acc, self.c.address + row * self.m * 4, (_M1, _M2))
            row += rows

    def run_rvv(self, machine: MVEMachine) -> None:
        # A 1D ISA still packs several output rows into the long register,
        # but every row needs its own splat / partial access / packing move
        # (one 1D segment per row).
        emitter = RVVEmitter(machine)
        lanes = machine.simd_lanes
        rows_per_tile = max(1, min(self.n, lanes // self.m))
        row = 0
        while row < self.n:
            rows = min(rows_per_tile, self.n - row)
            machine.scalar(LOOP_SCALAR_OPS)
            emitter.set_vector_length(min(rows * self.m, lanes))
            acc = machine.vsetdup(self.dtype, 0.0)
            for k in range(self.k):
                # A[row+r][k] splat per tile row, packed segment by segment.
                a_packed = None
                for r in range(rows):
                    machine.scalar(4, loads=1)
                    emitter.set_vector_length(self.m)
                    splat = machine.vsetdup(self.dtype, float(self._a_ref[row + r, k]))
                    packed = machine.vcpy(splat)
                    if a_packed is None:
                        a_packed = packed
                # B[k][:] replicated down the tile, one segment per row.
                b_packed = emitter.load_multidim(
                    self.dtype, self.b.address + k * self.m * 4, self.m, rows, 0
                )
                emitter.set_vector_length(min(rows * self.m, lanes))
                acc = machine.vadd(acc, machine.vmul(a_packed, b_packed))
            emitter.store_multidim(
                acc, self.c.address + row * self.m * 4, self.m, rows, self.m
            )
            row += rows

    def reference(self) -> np.ndarray:
        return (
            self._a_ref.astype(np.float64) @ self._b_ref.astype(np.float64)
        ).astype(np.float32).reshape(-1)

    def output(self) -> np.ndarray:
        return self.c.read()

    def profile(self) -> KernelProfile:
        elements = self.n * self.m
        return KernelProfile(
            name=self.name,
            element_bits=32,
            is_float=True,
            elements=elements,
            ops_per_element={"mac": float(self.k)},
            bytes_read=(self.n * self.k + self.k * self.m) * 4,
            bytes_written=elements * 4,
            parallelism_1d=self.m,
            dimensions=2,
        )


@register
class SpmmKernel(Kernel):
    """SpMM: sparse(A)[N,K] @ B[K,M] with random weight-row gathers."""

    name = "spmm"
    library = "XNNPACK"
    dims = "2D"
    dtype = DataType.FLOAT32
    description = "Sparse fp32 matrix times dense matrix (ELL layout)"

    BASE_N = 128
    K = 128
    M = 64
    NNZ_PER_ROW = 16

    def __init__(self, scale: float = 1.0, seed: int = 0, n: int | None = None,
                 k: int | None = None, m: int | None = None, nnz: int | None = None):
        super().__init__(scale=scale, seed=seed)
        self._n_override = n
        self._k_override = k
        self._m_override = m
        self._nnz_override = nnz

    def prepare(self) -> None:
        self.n = self._n_override or max(8, int(self.BASE_N * self.scale))
        self.k = self._k_override or self.K
        self.m = self._m_override or self.M
        self.nnz = min(self._nnz_override or self.NNZ_PER_ROW, self.k)
        values = self.rng.standard_normal((self.n, self.nnz)).astype(np.float32)
        columns = np.stack(
            [
                self.rng.choice(self.k, size=self.nnz, replace=False)
                for _ in range(self.n)
            ]
        ).astype(np.int64)
        b = self.rng.standard_normal((self.k, self.m)).astype(np.float32)
        self.values = self.memory.allocate_array(values.reshape(-1), self.dtype)
        self.b = self.memory.allocate_array(b.reshape(-1), self.dtype)
        self.c = self.memory.allocate(self.dtype, self.n * self.m)
        self._values_ref = values.copy()
        self._columns_ref = columns.copy()
        self._b_ref = b.copy()
        # Pointer table filled by the scalar core before each random load.
        lanes_rows = max(1, 8192 // self.m)
        self.pointer_table = self.memory.allocate(DataType.UINT64, min(self.n, lanes_rows))

    def run_mve(self, machine: MVEMachine) -> None:
        lanes = machine.simd_lanes
        rows_per_tile = max(1, min(self.n, lanes // self.m))
        machine.vsetdimc(2)
        machine.vsetdiml(0, self.m)
        machine.vsetldstr(1, self.nnz)
        row = 0
        while row < self.n:
            rows = min(rows_per_tile, self.n - row)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(1, rows)
            acc = machine.vsetdup(self.dtype, 0.0)
            for j in range(self.nnz):
                # Scalar core: compute the weight-row address for each row's
                # j-th non-zero and write it into the pointer table.
                pointers = [
                    self.b.address + int(self._columns_ref[row + r, j]) * self.m * 4
                    for r in range(rows)
                ]
                self.pointer_table.write(
                    np.asarray(
                        pointers + [self.b.address] * (self.pointer_table.count - rows),
                        dtype=np.uint64,
                    )
                )
                machine.scalar(rows * 4, loads=rows, stores=rows)
                # Non-zero values replicated across the M output columns.
                val = machine.vsld(
                    self.dtype, self.values.address + (row * self.nnz + j) * 4, (_M0, _M3)
                )
                # Gather one weight row per tile row from the pointer table.
                b_rows = machine.vrld(self.dtype, self.pointer_table.address, (_M1,))
                acc = machine.vadd(acc, machine.vmul(val, b_rows))
            machine.vsst(acc, self.c.address + row * self.m * 4, (_M1, _M2))
            row += rows

    def run_rvv(self, machine: MVEMachine) -> None:
        # RVV packs several sparse rows into the register, but every row's
        # non-zero value splat and gathered weight row needs its own masked
        # segment access and packing move.
        emitter = RVVEmitter(machine)
        lanes = machine.simd_lanes
        rows_per_tile = max(1, min(self.n, lanes // self.m))
        row = 0
        while row < self.n:
            rows = min(rows_per_tile, self.n - row)
            machine.scalar(LOOP_SCALAR_OPS)
            emitter.set_vector_length(min(rows * self.m, lanes))
            acc = machine.vsetdup(self.dtype, 0.0)
            for j in range(self.nnz):
                values_packed = None
                b_packed = None
                for r in range(rows):
                    machine.scalar(8, loads=2)
                    emitter.set_vector_length(self.m)
                    splat = machine.vsetdup(
                        self.dtype, float(self._values_ref[row + r, j])
                    )
                    packed_value = machine.vcpy(splat)
                    column = int(self._columns_ref[row + r, j])
                    b_part = emitter.load_1d(
                        self.dtype, self.b.address + column * self.m * 4
                    )
                    packed_b = machine.vcpy(b_part)
                    if values_packed is None:
                        values_packed = packed_value
                        b_packed = packed_b
                emitter.set_vector_length(min(rows * self.m, lanes))
                acc = machine.vadd(acc, machine.vmul(values_packed, b_packed))
            emitter.store_multidim(
                acc, self.c.address + row * self.m * 4, self.m, rows, self.m
            )
            row += rows

    def reference(self) -> np.ndarray:
        dense = np.zeros((self.n, self.k), dtype=np.float64)
        for row in range(self.n):
            for j in range(self.nnz):
                dense[row, self._columns_ref[row, j]] += self._values_ref[row, j]
        return (dense @ self._b_ref.astype(np.float64)).astype(np.float32).reshape(-1)

    def output(self) -> np.ndarray:
        return self.c.read()

    def profile(self) -> KernelProfile:
        elements = self.n * self.m
        return KernelProfile(
            name=self.name,
            element_bits=32,
            is_float=True,
            elements=elements,
            ops_per_element={"mac": float(self.nnz)},
            bytes_read=(self.n * self.nnz * 2 + self.n * self.nnz * self.m) * 4,
            bytes_written=elements * 4,
            parallelism_1d=self.m,
            dimensions=2,
        )


@register
class TransposeKernel(Kernel):
    """Matrix transpose with 2D strided loads and stores (Section IV)."""

    name = "transpose"
    library = "XNNPACK"
    dims = "2D"
    dtype = DataType.INT32
    description = "M x N int32 matrix transpose"

    BASE_M = 64
    BASE_N = 128

    def prepare(self) -> None:
        self.rows = max(8, int(self.BASE_M * min(self.scale, 4.0)))
        self.cols = max(8, int(self.BASE_N * self.scale))
        data = self.rng.integers(-1000, 1000, size=(self.rows, self.cols), dtype=np.int64)
        data = data.astype(np.int32)
        self.input = self.memory.allocate_array(data.reshape(-1), self.dtype)
        self.output_buf = self.memory.allocate(self.dtype, self.rows * self.cols)
        self._input_ref = data.copy()

    def run_mve(self, machine: MVEMachine) -> None:
        lanes = machine.simd_lanes
        m, n = self.rows, self.cols
        cols_per_tile = max(1, min(n, lanes // m))
        machine.vsetdimc(2)
        machine.vsetdiml(0, m)
        machine.vsetldstr(0, n)
        machine.vsetststr(1, m)
        col = 0
        while col < n:
            cols = min(cols_per_tile, n - col)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(1, cols)
            # Logical register [c][r] = input[r][col + c]: dim0 walks the
            # input rows (stride n), dim1 walks the columns (stride 1).
            tile = machine.vsld(self.dtype, self.input.address + col * 4, (_M3, _M1))
            # output[col + c][r]: dim0 stride 1, dim1 stride m.
            machine.vsst(tile, self.output_buf.address + col * m * 4, (_M1, _M3))
            col += cols

    def run_rvv(self, machine: MVEMachine) -> None:
        # 1D ISA: load each input column separately with a strided access.
        emitter = RVVEmitter(machine)
        for col in range(self.cols):
            machine.scalar(LOOP_SCALAR_OPS)
            emitter.set_vector_length(self.rows)
            column = emitter.load_1d(self.dtype, self.input.address + col * 4, self.cols)
            emitter.store_1d(column, self.output_buf.address + col * self.rows * 4, 1)

    def reference(self) -> np.ndarray:
        return self._input_ref.T.copy().reshape(-1)

    def output(self) -> np.ndarray:
        return self.output_buf.read()

    def profile(self) -> KernelProfile:
        elements = self.rows * self.cols
        return KernelProfile(
            name=self.name,
            element_bits=32,
            is_float=False,
            elements=elements,
            ops_per_element={},
            bytes_read=elements * 4,
            bytes_written=elements * 4,
            parallelism_1d=self.rows,
            dimensions=2,
        )
