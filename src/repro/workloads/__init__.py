"""Benchmark kernel suite (the reproduction's Swan equivalent).

Importing this package registers every kernel; use :func:`create_kernel` /
:func:`kernel_names` to instantiate them.
"""

from .base import Kernel, elementwise_1d, tree_reduce
from .registry import (
    LIBRARY_DOMAINS,
    create_kernel,
    get_kernel_class,
    kernel_names,
    kernels_in_library,
    library_info,
    library_names,
    register,
)

# Importing the library modules populates the registry.
from . import (  # noqa: F401  (imported for registration side effects)
    boringssl,
    cmsis_dsp,
    kvazaar,
    libjpeg,
    libpng,
    libwebp,
    linpack,
    optroutines,
    skia,
    webaudio,
    xnnpack,
    zlib,
)

#: Kernels used for the detailed per-kernel comparisons (Figures 8, 10-13).
SELECTED_KERNELS = (
    "csum",
    "lpack",
    "fir_v",
    "fir_s",
    "fir_l",
    "gemm",
    "spmm",
    "satd",
    "intra",
    "dct",
    "idct",
)

__all__ = [
    "Kernel",
    "elementwise_1d",
    "tree_reduce",
    "LIBRARY_DOMAINS",
    "create_kernel",
    "get_kernel_class",
    "kernel_names",
    "kernels_in_library",
    "library_info",
    "library_names",
    "register",
    "SELECTED_KERNELS",
]
