"""Kernel registry: the reproduction's equivalent of the Swan suite manifest.

Kernels register themselves with the :func:`register` decorator.  Experiments
look kernels up by name or by library (Table III) and instantiate them at a
chosen dataset scale.
"""

from __future__ import annotations

from typing import Callable, Iterable, Type

from .base import Kernel

__all__ = [
    "register",
    "kernel_names",
    "get_kernel_class",
    "create_kernel",
    "kernels_in_library",
    "library_names",
    "library_info",
    "LIBRARY_DOMAINS",
]

_REGISTRY: dict[str, Type[Kernel]] = {}

#: Table III: library -> (application domain, dimensionality label)
LIBRARY_DOMAINS = {
    "Linpack": ("Linear Algebra", "1D"),
    "XNNPACK": ("Machine Learning", "2D"),
    "CMSIS-DSP": ("Signal Processing", "1D"),
    "Kvazaar": ("Video Processing", "3D"),
    "libjpeg": ("Image Processing", "2-3D"),
    "libpng": ("Image Processing", "2-4D"),
    "libwebp": ("Image Processing", "2-3D"),
    "Skia": ("Graphics", "1-3D"),
    "Webaudio": ("Audio Processing", "1-3D"),
    "zlib": ("Data Compression", "1-2D"),
    "boringssl": ("Cryptography", "1-2D"),
    "Arm Optimized Routines": ("String/Network Utilities", "1-2D"),
}


def register(cls: Type[Kernel]) -> Type[Kernel]:
    """Class decorator adding a kernel to the global registry."""
    if not cls.name:
        raise ValueError(f"kernel class {cls.__name__} must define a name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate kernel name: {cls.name}")
    if cls.library not in LIBRARY_DOMAINS:
        raise ValueError(f"kernel {cls.name} references unknown library {cls.library!r}")
    _REGISTRY[cls.name] = cls
    return cls


def kernel_names() -> list[str]:
    return sorted(_REGISTRY)


def get_kernel_class(name: str) -> Type[Kernel]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def create_kernel(name: str, scale: float = 1.0, seed: int = 0) -> Kernel:
    return get_kernel_class(name)(scale=scale, seed=seed)


def kernels_in_library(library: str) -> list[str]:
    return sorted(name for name, cls in _REGISTRY.items() if cls.library == library)


def library_names() -> list[str]:
    return list(LIBRARY_DOMAINS)


def library_info(library: str) -> tuple[str, str]:
    """(domain, dimensionality) for a library, as in Table III."""
    return LIBRARY_DOMAINS[library]
