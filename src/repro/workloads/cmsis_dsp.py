"""CMSIS-DSP kernels (Signal Processing, 1D, 192K dataset): FIR filters.

The paper evaluates three FIR variants (FIR-S, FIR-L, FIR-V in Figures 8
and 12): short and long single-channel filters, plus a multi-channel
"vector" variant that exposes a second dimension.
"""

from __future__ import annotations

import numpy as np

from ..baselines.profile import KernelProfile
from ..baselines.rvv import RVVEmitter
from ..intrinsics.machine import MVEMachine
from ..isa.datatypes import DataType
from ..isa.encoding import StrideMode
from .base import Kernel, LOOP_SCALAR_OPS
from .registry import register

__all__ = ["FirSmallKernel", "FirLargeKernel", "FirMultiChannelKernel"]


class _FirBase(Kernel):
    """Shared implementation of a dense FIR filter ``y[i] = sum_t c[t] x[i+t]``."""

    library = "CMSIS-DSP"
    dtype = DataType.FLOAT32
    taps: int = 8
    BASE_SAMPLES = 16 * 1024

    def prepare(self) -> None:
        self.n_out = max(1024, int(self.BASE_SAMPLES * self.scale))
        self.n_in = self.n_out + self.taps - 1
        signal = self.rng.standard_normal(self.n_in).astype(np.float32)
        coeffs = self.rng.standard_normal(self.taps).astype(np.float32) / self.taps
        self.signal = self.memory.allocate_array(signal, self.dtype)
        self.coeffs = self.memory.allocate_array(coeffs, self.dtype)
        self.out = self.memory.allocate(self.dtype, self.n_out)
        self._signal_ref = signal.copy()
        self._coeffs_ref = coeffs.copy()

    def run_mve(self, machine: MVEMachine) -> None:
        lanes = machine.simd_lanes
        machine.vsetdimc(1)
        offset = 0
        while offset < self.n_out:
            tile = min(lanes, self.n_out - offset)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(0, tile)
            acc = machine.vsetdup(self.dtype, 0.0)
            for tap in range(self.taps):
                # The core reads the coefficient and broadcasts it.
                machine.scalar(4, loads=1)
                coeff = machine.vsetdup(self.dtype, float(self._coeffs_ref[tap]))
                window = machine.vsld(
                    self.dtype, self.signal.address + (offset + tap) * 4, (1,)
                )
                acc = machine.vadd(acc, machine.vmul(window, coeff))
            machine.vsst(acc, self.out.address + offset * 4, (1,))
            offset += tile

    def run_rvv(self, machine: MVEMachine) -> None:
        emitter = RVVEmitter(machine)
        lanes = machine.simd_lanes
        offset = 0
        while offset < self.n_out:
            tile = min(lanes, self.n_out - offset)
            machine.scalar(LOOP_SCALAR_OPS + 2)
            emitter.set_vector_length(tile)
            acc = machine.vsetdup(self.dtype, 0.0)
            for tap in range(self.taps):
                machine.scalar(4, loads=1)
                coeff = machine.vsetdup(self.dtype, float(self._coeffs_ref[tap]))
                window = emitter.load_1d(
                    self.dtype, self.signal.address + (offset + tap) * 4
                )
                acc = machine.vadd(acc, machine.vmul(window, coeff))
            emitter.store_1d(acc, self.out.address + offset * 4)
            offset += tile

    def reference(self) -> np.ndarray:
        out = np.zeros(self.n_out, dtype=np.float64)
        for tap in range(self.taps):
            out += self._coeffs_ref[tap].astype(np.float64) * self._signal_ref[
                tap : tap + self.n_out
            ].astype(np.float64)
        return out.astype(np.float32)

    def output(self) -> np.ndarray:
        return self.out.read()

    def profile(self) -> KernelProfile:
        return KernelProfile(
            name=self.name,
            element_bits=32,
            is_float=True,
            elements=self.n_out,
            ops_per_element={"mac": float(self.taps)},
            bytes_read=self.n_out * 4 * self.taps + self.taps * 4,
            bytes_written=self.n_out * 4,
            parallelism_1d=self.n_out,
            dimensions=1,
        )


@register
class FirSmallKernel(_FirBase):
    """FIR-S: short 8-tap FIR filter."""

    name = "fir_s"
    dims = "1D"
    taps = 8
    description = "8-tap single-channel FIR filter"


@register
class FirLargeKernel(_FirBase):
    """FIR-L: long 32-tap FIR filter."""

    name = "fir_l"
    dims = "1D"
    taps = 32
    BASE_SAMPLES = 8 * 1024
    description = "32-tap single-channel FIR filter"


@register
class FirMultiChannelKernel(Kernel):
    """FIR-V: multi-channel FIR where channels form a second dimension."""

    name = "fir_v"
    library = "CMSIS-DSP"
    dims = "2D"
    dtype = DataType.FLOAT32
    description = "Multi-channel FIR filter (channels x samples)"

    CHANNELS = 16
    taps = 8
    BASE_SAMPLES = 2048

    def prepare(self) -> None:
        self.n_out = max(256, int(self.BASE_SAMPLES * self.scale))
        self.n_in = self.n_out + self.taps - 1
        signal = self.rng.standard_normal((self.CHANNELS, self.n_in)).astype(np.float32)
        coeffs = self.rng.standard_normal(self.taps).astype(np.float32) / self.taps
        self.signal = self.memory.allocate_array(signal.reshape(-1), self.dtype)
        self.coeffs = self.memory.allocate_array(coeffs, self.dtype)
        self.out = self.memory.allocate(self.dtype, self.CHANNELS * self.n_out)
        self._signal_ref = signal.copy()
        self._coeffs_ref = coeffs.copy()

    def run_mve(self, machine: MVEMachine) -> None:
        lanes = machine.simd_lanes
        samples_per_tile = max(1, min(self.n_out, lanes // self.CHANNELS))
        machine.vsetdimc(2)
        machine.vsetdiml(1, self.CHANNELS)
        # Both the input and output matrices are row-major with a row length
        # that differs from the tile width, so dimension 1 uses stride CRs.
        machine.vsetldstr(1, self.n_in)
        machine.vsetststr(1, self.n_out)
        offset = 0
        while offset < self.n_out:
            tile = min(samples_per_tile, self.n_out - offset)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(0, tile)
            acc = machine.vsetdup(self.dtype, 0.0)
            for tap in range(self.taps):
                machine.scalar(4, loads=1)
                coeff = machine.vsetdup(self.dtype, float(self._coeffs_ref[tap]))
                window = machine.vsld(
                    self.dtype,
                    self.signal.address + (offset + tap) * 4,
                    (int(StrideMode.ONE), int(StrideMode.REGISTER)),
                )
                acc = machine.vadd(acc, machine.vmul(window, coeff))
            machine.vsst(
                acc,
                self.out.address + offset * 4,
                (int(StrideMode.ONE), int(StrideMode.REGISTER)),
            )
            offset += tile

    def run_rvv(self, machine: MVEMachine) -> None:
        # A 1D ISA must filter each channel separately: the per-channel
        # vector length is only `n_out`, far below the 8K lanes.
        emitter = RVVEmitter(machine)
        for channel in range(self.CHANNELS):
            channel_base = self.signal.address + channel * self.n_in * 4
            out_base = self.out.address + channel * self.n_out * 4
            offset = 0
            while offset < self.n_out:
                tile = min(machine.simd_lanes, self.n_out - offset)
                machine.scalar(LOOP_SCALAR_OPS + 4)
                emitter.set_vector_length(tile)
                acc = machine.vsetdup(self.dtype, 0.0)
                for tap in range(self.taps):
                    machine.scalar(4, loads=1)
                    coeff = machine.vsetdup(self.dtype, float(self._coeffs_ref[tap]))
                    window = emitter.load_1d(self.dtype, channel_base + (offset + tap) * 4)
                    acc = machine.vadd(acc, machine.vmul(window, coeff))
                emitter.store_1d(acc, out_base + offset * 4)
                offset += tile

    def reference(self) -> np.ndarray:
        out = np.zeros((self.CHANNELS, self.n_out), dtype=np.float64)
        for tap in range(self.taps):
            out += (
                self._coeffs_ref[tap].astype(np.float64)
                * self._signal_ref[:, tap : tap + self.n_out].astype(np.float64)
            )
        return out.astype(np.float32).reshape(-1)

    def output(self) -> np.ndarray:
        return self.out.read()

    def profile(self) -> KernelProfile:
        elements = self.CHANNELS * self.n_out
        return KernelProfile(
            name=self.name,
            element_bits=32,
            is_float=True,
            elements=elements,
            ops_per_element={"mac": float(self.taps)},
            bytes_read=elements * 4 * self.taps + self.taps * 4,
            bytes_written=elements * 4,
            parallelism_1d=self.n_out,
            dimensions=2,
        )
