"""Workload framework: the Kernel base class and common MVE code patterns.

Every benchmark kernel of the Swan-like suite derives from :class:`Kernel`
and provides four things:

* ``prepare``    -- allocate and initialise its inputs/outputs in flat memory,
* ``run_mve``    -- the MVE implementation written against the intrinsic API,
* ``reference``  -- a numpy reference used to validate functional correctness,
* ``profile``    -- an ISA-independent operation/data profile for the Neon,
  GPU and Duality Cache baseline models.

Kernels that participate in the RVV comparison (Figures 10/11/13) also
override ``run_rvv`` with a one-dimensional lowering.

The module also provides the common data-parallel patterns of Section IV
(tiled element-wise processing and tree reduction) as reusable helpers so
individual kernels stay small and readable.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional, Sequence

import numpy as np

from ..baselines.profile import KernelProfile
from ..intrinsics.machine import MVEMachine
from ..intrinsics.mdv import MDV
from ..isa.datatypes import DataType
from ..isa.instructions import TraceEntry
from ..memory.flatmem import Allocation, FlatMemory

__all__ = ["Kernel", "elementwise_1d", "tree_reduce", "LOOP_SCALAR_OPS"]

#: scalar instructions charged per vector-loop iteration (index update,
#: compare, branch, pointer arithmetic)
LOOP_SCALAR_OPS = 8


class Kernel(abc.ABC):
    """Base class for all benchmark kernels."""

    #: short kernel identifier, e.g. ``"gemm"``
    name: str = ""
    #: owning library from Table III, e.g. ``"XNNPACK"``
    library: str = ""
    #: dimensionality label used in the paper's tables, e.g. ``"2D"``
    dims: str = "1D"
    #: primary element type of the kernel
    dtype: DataType = DataType.INT32
    description: str = ""

    def __init__(self, scale: float = 1.0, seed: int = 0):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.memory = FlatMemory()
        self._prepared = False

    # -- lifecycle --------------------------------------------------------- #

    def setup(self) -> None:
        """Allocate inputs lazily (idempotent)."""
        if not self._prepared:
            self.prepare()
            self._prepared = True

    @abc.abstractmethod
    def prepare(self) -> None:
        """Allocate and initialise input/output buffers in ``self.memory``."""

    @abc.abstractmethod
    def run_mve(self, machine: MVEMachine) -> None:
        """Emit the MVE implementation onto ``machine``."""

    @abc.abstractmethod
    def reference(self) -> np.ndarray:
        """Numpy reference result for validation."""

    @abc.abstractmethod
    def output(self) -> np.ndarray:
        """Kernel output read back from flat memory after ``run_mve``."""

    @abc.abstractmethod
    def profile(self) -> KernelProfile:
        """ISA-independent work profile for the baseline models."""

    # -- optional RVV lowering --------------------------------------------- #

    def run_rvv(self, machine: MVEMachine) -> None:
        """1D (RVV-style) lowering; override in kernels used by Figs 10/11/13."""
        raise NotImplementedError(f"{self.name} has no RVV lowering")

    @property
    def supports_rvv(self) -> bool:
        return type(self).run_rvv is not Kernel.run_rvv

    # -- convenience ------------------------------------------------------- #

    def capture(
        self, kind: str = "mve", simd_lanes: int = 8192, record_values: bool = False
    ) -> list[TraceEntry]:
        """Capture the instruction trace of one lowering.

        This is the staged pipeline's first phase: by default it runs the
        functional machine with value recording off, so only the
        timing-relevant instruction stream is produced (no flat-memory
        payload traffic).  The emitted trace is identical to a
        value-recording run -- values are only needed by :meth:`validate`.
        """
        if kind not in ("mve", "rvv"):
            raise ValueError(f"unknown trace kind {kind!r}")
        self.setup()
        machine = MVEMachine(
            self.memory, simd_lanes=simd_lanes, record_values=record_values
        )
        if kind == "rvv":
            self.run_rvv(machine)
        else:
            self.run_mve(machine)
        return machine.trace

    def trace_mve(
        self, simd_lanes: int = 8192, record_values: bool = True
    ) -> list[TraceEntry]:
        """Run the MVE implementation and return its instruction trace."""
        return self.capture("mve", simd_lanes=simd_lanes, record_values=record_values)

    def trace_rvv(
        self, simd_lanes: int = 8192, record_values: bool = True
    ) -> list[TraceEntry]:
        """Run the RVV lowering and return its instruction trace."""
        return self.capture("rvv", simd_lanes=simd_lanes, record_values=record_values)

    def validate(self, rtol: float = 1e-3, atol: float = 1e-4) -> bool:
        """Check the MVE implementation against the numpy reference."""
        self.setup()
        machine = MVEMachine(self.memory)
        self.run_mve(machine)
        expected = np.asarray(self.reference())
        actual = np.asarray(self.output())
        if expected.shape != actual.shape:
            return False
        if self.dtype.is_float or expected.dtype.kind == "f":
            return bool(np.allclose(actual, expected, rtol=rtol, atol=atol))
        return bool(np.array_equal(actual, expected))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Kernel {self.library}/{self.name} ({self.dims})>"


def elementwise_1d(
    machine: MVEMachine,
    dtype: DataType,
    input_addresses: Sequence[int],
    output_address: Optional[int],
    count: int,
    op: Callable[[MVEMachine, list[MDV]], MDV],
    scalar_ops_per_iteration: int = LOOP_SCALAR_OPS,
) -> None:
    """Tile a 1D element-wise kernel over the SIMD lanes.

    ``op`` receives the machine and the loaded input vectors and returns the
    result vector to be stored.  Addresses advance sequentially.
    """
    lanes = machine.simd_lanes
    element_bytes = dtype.bytes
    machine.vsetdimc(1)
    offset = 0
    while offset < count:
        tile = min(lanes, count - offset)
        machine.scalar(scalar_ops_per_iteration)
        machine.vsetdiml(0, tile)
        inputs = [
            machine.vsld(dtype, address + offset * element_bytes, (1,))
            for address in input_addresses
        ]
        result = op(machine, inputs)
        if output_address is not None:
            machine.vsst(result, output_address + offset * element_bytes, (1,))
        offset += tile


def tree_reduce(
    machine: MVEMachine,
    value: MDV,
    length: int,
    scratch_address: int,
    stop_at: int = 256,
) -> tuple[MDV, int]:
    """Vertical tree reduction of Section IV (Reduction pattern).

    Repeatedly splits the live register into two halves using dimension-level
    masking, stores the upper half to scratch memory, reloads it as a shorter
    vector and adds it to the lower half, until ``stop_at`` elements remain
    (the tail is reduced on the scalar core).  Returns the reduced vector and
    its remaining length.
    """
    dtype = value.dtype
    current = value
    current_length = length
    while current_length > stop_at and current_length > 1:
        if current_length % 2:
            # Treat the register as one element longer; the extra lane reads
            # as zero in the functional model, so the sum is unchanged.
            current_length += 1
        half = current_length // 2
        machine.scalar(LOOP_SCALAR_OPS)
        # Split into two halves along a new highest dimension and mask off
        # the first half.
        machine.vsetdimc(2)
        machine.vsetdiml(0, half)
        machine.vsetdiml(1, 2)
        machine.vunsetmask(0)
        machine.vsst(current, scratch_address - half * dtype.bytes, (1, 2))
        machine.vsetmask(0)
        # Reload the stored upper half as a 1D vector and add.
        machine.vsetdimc(1)
        machine.vsetdiml(0, half)
        upper = machine.vsld(dtype, scratch_address, (1,))
        current = machine.vadd(current, upper)
        current_length = half
    return current, current_length
