"""Arm Optimized Routines kernels (string/network utilities, 1-2D, 128 KB)."""

from __future__ import annotations

import numpy as np

from ..baselines.profile import KernelProfile
from ..baselines.rvv import RVVEmitter
from ..intrinsics.machine import MVEMachine
from ..isa.datatypes import DataType
from .base import Kernel, LOOP_SCALAR_OPS, elementwise_1d, tree_reduce
from .registry import register

__all__ = ["ChecksumKernel", "MemcpyKernel", "MemsetKernel", "CharCountKernel"]


@register
class ChecksumKernel(Kernel):
    """CSUM: Internet checksum style reduction of 16-bit words."""

    name = "csum"
    library = "Arm Optimized Routines"
    dims = "1D"
    dtype = DataType.INT32
    description = "Network checksum: sum of 16-bit words with tree reduction"

    BASE_BYTES = 128 * 1024

    def prepare(self) -> None:
        self.n_words = max(2048, int(self.BASE_BYTES * self.scale) // 2)
        data = self.rng.integers(0, 255, size=self.n_words, dtype=np.int64).astype(np.int16)
        self.data = self.memory.allocate_array(data, DataType.INT16)
        self._data_ref = data.copy()
        # partial sums after in-cache reduction (up to 256 elements)
        self.partials = self.memory.allocate(DataType.INT32, 256)
        self.scratch = self.memory.allocate(DataType.INT32, 8192)

    def _accumulate(self, machine: MVEMachine) -> tuple:
        """Sum the input into one SIMD-lane-wide accumulator register."""
        lanes = machine.simd_lanes
        acc_length = min(lanes, self.n_words)
        machine.vsetdimc(1)
        machine.vsetdiml(0, acc_length)
        acc = machine.vsetdup(DataType.INT32, 0)
        offset = 0
        while offset < self.n_words:
            tile = min(lanes, self.n_words - offset)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(0, tile)
            words = machine.vsld(DataType.INT16, self.data.address + offset * 2, (1,))
            wide = machine.vcvt(words, DataType.INT32)
            # Accumulate over the full register; short tail tiles are
            # zero-padded by the functional machine.
            machine.vsetdiml(0, acc_length)
            acc = machine.vadd(acc, wide)
            offset += tile
        return acc, acc_length

    def run_mve(self, machine: MVEMachine) -> None:
        acc, length = self._accumulate(machine)
        reduced, remaining = tree_reduce(machine, acc, length, self.scratch.address)
        machine.vsetdimc(1)
        machine.vsetdiml(0, remaining)
        machine.vsst(reduced, self.partials.address, (1,))
        # The scalar core finishes the last <=256 additions.
        machine.scalar(remaining * 2, loads=remaining)
        self._remaining = remaining

    def run_rvv(self, machine: MVEMachine) -> None:
        emitter = RVVEmitter(machine)
        lanes = machine.simd_lanes
        acc_length = min(lanes, self.n_words)
        emitter.set_vector_length(acc_length)
        acc = machine.vsetdup(DataType.INT32, 0)
        offset = 0
        while offset < self.n_words:
            tile = min(lanes, self.n_words - offset)
            machine.scalar(LOOP_SCALAR_OPS + 2)
            emitter.set_vector_length(tile)
            words = emitter.load_1d(DataType.INT16, self.data.address + offset * 2)
            wide = machine.vcvt(words, DataType.INT32)
            emitter.set_vector_length(acc_length)
            acc = machine.vadd(acc, wide)
            offset += tile
        length = acc_length
        reduced, remaining = tree_reduce(machine, acc, length, self.scratch.address)
        machine.vsetdimc(1)
        machine.vsetdiml(0, remaining)
        machine.vsst(reduced, self.partials.address, (1,))
        machine.scalar(remaining * 2, loads=remaining)
        self._remaining = remaining

    def reference(self) -> np.ndarray:
        return np.array([int(self._data_ref.astype(np.int64).sum())], dtype=np.int64)

    def output(self) -> np.ndarray:
        partials = self.partials.read()[: self._remaining].astype(np.int64)
        return np.array([int(partials.sum())], dtype=np.int64)

    def profile(self) -> KernelProfile:
        return KernelProfile(
            name=self.name,
            element_bits=16,
            is_float=False,
            elements=self.n_words,
            ops_per_element={"add": 1.0},
            bytes_read=self.n_words * 2,
            bytes_written=256 * 4,
            parallelism_1d=self.n_words,
            dimensions=1,
        )


@register
class MemcpyKernel(Kernel):
    """memcpy: stream bytes from source to destination."""

    name = "memcpy"
    library = "Arm Optimized Routines"
    dims = "1D"
    dtype = DataType.INT8
    description = "Byte copy of a 128 KB buffer"

    BASE_BYTES = 128 * 1024

    def prepare(self) -> None:
        self.n = max(4096, int(self.BASE_BYTES * self.scale))
        src = self.rng.integers(-128, 127, size=self.n, dtype=np.int64).astype(np.int8)
        self.src = self.memory.allocate_array(src, self.dtype)
        self.dst = self.memory.allocate(self.dtype, self.n)
        self._src_ref = src.copy()

    def run_mve(self, machine: MVEMachine) -> None:
        elementwise_1d(
            machine,
            self.dtype,
            [self.src.address],
            self.dst.address,
            self.n,
            lambda m, inputs: inputs[0],
        )

    def reference(self) -> np.ndarray:
        return self._src_ref

    def output(self) -> np.ndarray:
        return self.dst.read()

    def profile(self) -> KernelProfile:
        return KernelProfile(
            name=self.name,
            element_bits=8,
            is_float=False,
            elements=self.n,
            ops_per_element={},
            bytes_read=self.n,
            bytes_written=self.n,
            parallelism_1d=self.n,
            dimensions=1,
        )


@register
class MemsetKernel(Kernel):
    """memset: fill a buffer with a constant byte."""

    name = "memset"
    library = "Arm Optimized Routines"
    dims = "1D"
    dtype = DataType.INT8
    description = "Fill a 128 KB buffer with a constant"

    BASE_BYTES = 128 * 1024
    FILL_VALUE = 0x5A

    def prepare(self) -> None:
        self.n = max(4096, int(self.BASE_BYTES * self.scale))
        self.dst = self.memory.allocate(self.dtype, self.n)

    def run_mve(self, machine: MVEMachine) -> None:
        lanes = machine.simd_lanes
        machine.vsetdimc(1)
        offset = 0
        while offset < self.n:
            tile = min(lanes, self.n - offset)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(0, tile)
            fill = machine.vsetdup(self.dtype, np.int8(self.FILL_VALUE))
            machine.vsst(fill, self.dst.address + offset, (1,))
            offset += tile

    def reference(self) -> np.ndarray:
        return np.full(self.n, np.int8(self.FILL_VALUE), dtype=np.int8)

    def output(self) -> np.ndarray:
        return self.dst.read()

    def profile(self) -> KernelProfile:
        return KernelProfile(
            name=self.name,
            element_bits=8,
            is_float=False,
            elements=self.n,
            ops_per_element={},
            bytes_read=0,
            bytes_written=self.n,
            parallelism_1d=self.n,
            dimensions=1,
        )


@register
class CharCountKernel(Kernel):
    """memchr-style scan: count occurrences of a byte in a buffer."""

    name = "charcount"
    library = "Arm Optimized Routines"
    dims = "1D"
    dtype = DataType.INT8
    description = "Count matching bytes (memchr/strlen-style scan)"

    BASE_BYTES = 64 * 1024
    NEEDLE = 7

    def prepare(self) -> None:
        self.n = max(4096, int(self.BASE_BYTES * self.scale))
        data = self.rng.integers(0, 32, size=self.n, dtype=np.int64).astype(np.int8)
        self.data = self.memory.allocate_array(data, self.dtype)
        self._data_ref = data.copy()
        self.partials = self.memory.allocate(DataType.INT32, 256)
        self.scratch = self.memory.allocate(DataType.INT32, 8192)

    def run_mve(self, machine: MVEMachine) -> None:
        lanes = machine.simd_lanes
        acc_length = min(lanes, self.n)
        machine.vsetdimc(1)
        machine.vsetdiml(0, acc_length)
        acc = machine.vsetdup(DataType.INT32, 0)
        offset = 0
        while offset < self.n:
            tile = min(lanes, self.n - offset)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(0, tile)
            data = machine.vsld(self.dtype, self.data.address + offset, (1,))
            needle = machine.vsetdup(self.dtype, np.int8(self.NEEDLE))
            matches = machine.veq(data, needle)
            wide = machine.vcvt(matches, DataType.INT32)
            machine.vsetdiml(0, acc_length)
            acc = machine.vadd(acc, wide)
            offset += tile
        length = acc_length
        reduced, remaining = tree_reduce(machine, acc, length, self.scratch.address)
        machine.vsetdimc(1)
        machine.vsetdiml(0, remaining)
        machine.vsst(reduced, self.partials.address, (1,))
        machine.scalar(remaining * 2, loads=remaining)
        self._remaining = remaining

    def reference(self) -> np.ndarray:
        return np.array([int((self._data_ref == self.NEEDLE).sum())], dtype=np.int64)

    def output(self) -> np.ndarray:
        partials = self.partials.read()[: self._remaining].astype(np.int64)
        return np.array([int(partials.sum())], dtype=np.int64)

    def profile(self) -> KernelProfile:
        return KernelProfile(
            name=self.name,
            element_bits=8,
            is_float=False,
            elements=self.n,
            ops_per_element={"cmp": 1.0, "add": 1.0},
            bytes_read=self.n,
            bytes_written=256 * 4,
            parallelism_1d=self.n,
            dimensions=1,
        )
