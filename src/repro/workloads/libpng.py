"""libpng kernels (Image Processing, 2-4D): row filters and pixel expansion."""

from __future__ import annotations

import numpy as np

from ..baselines.profile import KernelProfile
from ..intrinsics.machine import MVEMachine
from ..isa.datatypes import DataType
from ..isa.encoding import StrideMode
from .base import Kernel, LOOP_SCALAR_OPS
from .registry import register

__all__ = ["FilterUpKernel", "ExpandRgbToRgbaKernel", "Gamma16Kernel"]

_M0 = int(StrideMode.ZERO)
_M1 = int(StrideMode.ONE)
_M2 = int(StrideMode.SEQUENTIAL)
_M3 = int(StrideMode.REGISTER)


@register
class FilterUpKernel(Kernel):
    """PNG "Up" filter: each row minus the row above it (mod 256)."""

    name = "png_filter_up"
    library = "libpng"
    dims = "2D"
    dtype = DataType.UINT8
    description = "PNG Up filter applied to all image rows"

    BASE_ROWS = 64
    BASE_COLS = 512

    def prepare(self) -> None:
        self.rows = max(4, int(self.BASE_ROWS * min(self.scale, 8.0)))
        self.cols = max(32, int(self.BASE_COLS * self.scale))
        image = self.rng.integers(0, 255, size=(self.rows, self.cols), dtype=np.int64)
        image = image.astype(np.uint8)
        self.image = self.memory.allocate_array(image.reshape(-1), self.dtype)
        self.out = self.memory.allocate(self.dtype, self.rows * self.cols)
        self._image_ref = image.copy()

    def run_mve(self, machine: MVEMachine) -> None:
        # Row 0 is copied; rows 1..N-1 subtract the previous row.  All rows
        # after the first are processed together as a 2D tile.
        lanes = machine.simd_lanes
        cols = self.cols
        machine.vsetdimc(1)
        machine.vsetdiml(0, cols)
        machine.scalar(LOOP_SCALAR_OPS)
        first = machine.vsld(self.dtype, self.image.address, (_M1,))
        machine.vsst(first, self.out.address, (_M1,))

        rows_per_tile = max(1, min(self.rows - 1, lanes // cols))
        machine.vsetdimc(2)
        machine.vsetdiml(0, cols)
        machine.vsetldstr(1, cols)
        machine.vsetststr(1, cols)
        row = 1
        while row < self.rows:
            count = min(rows_per_tile, self.rows - row)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(1, count)
            current = machine.vsld(self.dtype, self.image.address + row * cols, (_M1, _M3))
            above = machine.vsld(
                self.dtype, self.image.address + (row - 1) * cols, (_M1, _M3)
            )
            machine.vsst(
                machine.vsub(current, above), self.out.address + row * cols, (_M1, _M3)
            )
            row += count

    def reference(self) -> np.ndarray:
        out = self._image_ref.copy()
        out[1:] = (self._image_ref[1:].astype(np.int16) - self._image_ref[:-1]).astype(np.uint8)
        return out.reshape(-1)

    def output(self) -> np.ndarray:
        return self.out.read()

    def profile(self) -> KernelProfile:
        elements = self.rows * self.cols
        return KernelProfile(
            name=self.name,
            element_bits=8,
            is_float=False,
            elements=elements,
            ops_per_element={"sub": 1.0},
            bytes_read=elements * 2,
            bytes_written=elements,
            parallelism_1d=self.cols,
            dimensions=2,
        )


@register
class ExpandRgbToRgbaKernel(Kernel):
    """Expand packed RGB pixels to RGBA with a constant alpha (4D pattern)."""

    name = "png_expand_rgba"
    library = "libpng"
    dims = "2-4D"
    dtype = DataType.UINT8
    description = "RGB to RGBA expansion using strided loads and stores"

    BASE_PIXELS = 16 * 1024
    ALPHA = 255

    def prepare(self) -> None:
        self.n_pixels = max(512, int(self.BASE_PIXELS * self.scale))
        rgb = self.rng.integers(0, 255, size=(self.n_pixels, 3), dtype=np.int64)
        rgb = rgb.astype(np.uint8)
        self.rgb = self.memory.allocate_array(rgb.reshape(-1), self.dtype)
        self.rgba = self.memory.allocate(self.dtype, self.n_pixels * 4)
        self._rgb_ref = rgb.copy()

    def run_mve(self, machine: MVEMachine) -> None:
        pixels_per_tile = max(1, min(self.n_pixels, machine.simd_lanes))
        machine.vsetdimc(1)
        start = 0
        while start < self.n_pixels:
            count = min(pixels_per_tile, self.n_pixels - start)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(0, count)
            machine.vsetldstr(0, 3)
            machine.vsetststr(0, 4)
            for channel in range(3):
                src = machine.vsld(
                    self.dtype, self.rgb.address + start * 3 + channel, (_M3,)
                )
                machine.vsst(src, self.rgba.address + start * 4 + channel, (_M3,))
            alpha = machine.vsetdup(self.dtype, np.uint8(self.ALPHA))
            machine.vsst(alpha, self.rgba.address + start * 4 + 3, (_M3,))
            start += count
        machine.vsetldstr(0, 1)
        machine.vsetststr(0, 1)

    def reference(self) -> np.ndarray:
        rgba = np.empty((self.n_pixels, 4), dtype=np.uint8)
        rgba[:, :3] = self._rgb_ref
        rgba[:, 3] = self.ALPHA
        return rgba.reshape(-1)

    def output(self) -> np.ndarray:
        return self.rgba.read()

    def profile(self) -> KernelProfile:
        return KernelProfile(
            name=self.name,
            element_bits=8,
            is_float=False,
            elements=self.n_pixels * 4,
            ops_per_element={},
            bytes_read=self.n_pixels * 3,
            bytes_written=self.n_pixels * 4,
            parallelism_1d=self.n_pixels,
            dimensions=2,
        )


@register
class Gamma16Kernel(Kernel):
    """Approximate gamma correction on 16-bit samples: ``out = (x * x) >> 16``."""

    name = "png_gamma16"
    library = "libpng"
    dims = "2D"
    dtype = DataType.INT32
    description = "Square-law gamma approximation on 16-bit samples"

    BASE_SAMPLES = 32 * 1024

    def prepare(self) -> None:
        self.n = max(1024, int(self.BASE_SAMPLES * self.scale))
        # Samples are limited to 15 bits so the squared value stays in int32.
        samples = self.rng.integers(0, 32767, size=self.n, dtype=np.int64).astype(np.int32)
        self.samples = self.memory.allocate_array(samples, self.dtype)
        self.out = self.memory.allocate(self.dtype, self.n)
        self._samples_ref = samples.copy()

    def run_mve(self, machine: MVEMachine) -> None:
        lanes = machine.simd_lanes
        machine.vsetdimc(1)
        offset = 0
        while offset < self.n:
            tile = min(lanes, self.n - offset)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(0, tile)
            x = machine.vsld(self.dtype, self.samples.address + offset * 4, (_M1,))
            machine.vsst(
                machine.vshr_imm(machine.vmul(x, x), 16),
                self.out.address + offset * 4,
                (_M1,),
            )
            offset += tile

    def reference(self) -> np.ndarray:
        x = self._samples_ref.astype(np.int64)
        return ((x * x) >> 16).astype(np.int32)

    def output(self) -> np.ndarray:
        return self.out.read()

    def profile(self) -> KernelProfile:
        return KernelProfile(
            name=self.name,
            element_bits=32,
            is_float=False,
            elements=self.n,
            ops_per_element={"mul": 1.0, "shift": 1.0},
            bytes_read=self.n * 4,
            bytes_written=self.n * 4,
            parallelism_1d=self.n,
            dimensions=2,
        )
