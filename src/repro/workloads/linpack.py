"""Linpack library kernel (Table III: Linear Algebra, 1D, 512K dataset)."""

from __future__ import annotations

import numpy as np

from ..baselines.profile import KernelProfile
from ..baselines.rvv import RVVEmitter
from ..intrinsics.machine import MVEMachine
from ..isa.datatypes import DataType
from .base import Kernel, LOOP_SCALAR_OPS, elementwise_1d
from .registry import register

__all__ = ["DaxpyKernel"]


@register
class DaxpyKernel(Kernel):
    """LPACK: y = alpha * x + y over a long fp32 vector (daxpy)."""

    name = "lpack"
    library = "Linpack"
    dims = "1D"
    dtype = DataType.FLOAT32
    description = "Linpack daxpy: y = alpha * x + y"

    BASE_ELEMENTS = 64 * 1024

    def prepare(self) -> None:
        self.n = max(1024, int(self.BASE_ELEMENTS * self.scale))
        self.alpha = 1.5
        x = self.rng.standard_normal(self.n).astype(np.float32)
        y = self.rng.standard_normal(self.n).astype(np.float32)
        self.x = self.memory.allocate_array(x, self.dtype)
        self.y = self.memory.allocate_array(y, self.dtype)
        self.out = self.memory.allocate(self.dtype, self.n)
        self._x_ref = x.copy()
        self._y_ref = y.copy()

    def run_mve(self, machine: MVEMachine) -> None:
        alpha = self.alpha

        def op(m: MVEMachine, inputs):
            x_val, y_val = inputs
            alpha_val = m.vsetdup(self.dtype, alpha)
            return m.vadd(m.vmul(x_val, alpha_val), y_val)

        elementwise_1d(
            machine,
            self.dtype,
            [self.x.address, self.y.address],
            self.out.address,
            self.n,
            op,
        )

    def run_rvv(self, machine: MVEMachine) -> None:
        # daxpy is purely 1D, so the RVV lowering is nearly identical to the
        # MVE one; the only extra work is the per-tile mask/length management.
        emitter = RVVEmitter(machine)
        lanes = machine.simd_lanes
        offset = 0
        while offset < self.n:
            tile = min(lanes, self.n - offset)
            machine.scalar(LOOP_SCALAR_OPS + 2)
            emitter.set_vector_length(tile)
            x_val = emitter.load_1d(self.dtype, self.x.address + offset * 4)
            y_val = emitter.load_1d(self.dtype, self.y.address + offset * 4)
            alpha_val = machine.vsetdup(self.dtype, self.alpha)
            result = machine.vadd(machine.vmul(x_val, alpha_val), y_val)
            emitter.store_1d(result, self.out.address + offset * 4)
            offset += tile

    def reference(self) -> np.ndarray:
        return (self.alpha * self._x_ref + self._y_ref).astype(np.float32)

    def output(self) -> np.ndarray:
        return self.out.read()

    def profile(self) -> KernelProfile:
        return KernelProfile(
            name=self.name,
            element_bits=32,
            is_float=True,
            elements=self.n,
            ops_per_element={"mac": 1.0},
            bytes_read=self.n * 8,
            bytes_written=self.n * 4,
            parallelism_1d=self.n,
            dimensions=1,
        )
