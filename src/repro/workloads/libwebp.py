"""libwebp kernels (Image Processing, 2-3D): dithering, blending, prediction."""

from __future__ import annotations

import numpy as np

from ..baselines.profile import KernelProfile
from ..intrinsics.machine import MVEMachine
from ..isa.datatypes import DataType
from ..isa.encoding import StrideMode
from .base import Kernel, LOOP_SCALAR_OPS
from .registry import register

__all__ = ["DitherKernel", "AlphaBlendKernel", "PredictorAvgKernel"]

_M0 = int(StrideMode.ZERO)
_M1 = int(StrideMode.ONE)
_M2 = int(StrideMode.SEQUENTIAL)
_M3 = int(StrideMode.REGISTER)


@register
class DitherKernel(Kernel):
    """Ordered dithering: add a replicated 8-entry dither row, then clamp."""

    name = "webp_dither"
    library = "libwebp"
    dims = "2D"
    dtype = DataType.INT32
    description = "Ordered dithering with a replicated dither kernel row"

    BASE_ROWS = 64
    COLS = 256

    def prepare(self) -> None:
        self.rows = max(4, int(self.BASE_ROWS * self.scale))
        self.cols = self.COLS
        image = self.rng.integers(0, 255, size=(self.rows, self.cols), dtype=np.int64)
        dither = self.rng.integers(-8, 8, size=self.cols, dtype=np.int64)
        self.image = self.memory.allocate_array(image.astype(np.int32).reshape(-1), self.dtype)
        self.dither = self.memory.allocate_array(dither.astype(np.int32), self.dtype)
        self.out = self.memory.allocate(self.dtype, self.rows * self.cols)
        self._image_ref = image.copy()
        self._dither_ref = dither.copy()

    def run_mve(self, machine: MVEMachine) -> None:
        rows_per_tile = max(1, min(self.rows, machine.simd_lanes // self.cols))
        machine.vsetdimc(2)
        machine.vsetdiml(0, self.cols)
        machine.vsetldstr(1, self.cols)
        machine.vsetststr(1, self.cols)
        row = 0
        while row < self.rows:
            count = min(rows_per_tile, self.rows - row)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(1, count)
            pixels = machine.vsld(
                self.dtype, self.image.address + row * self.cols * 4, (_M1, _M3)
            )
            # The dither row is shared by all rows (dim1 stride 0).
            dither = machine.vsld(self.dtype, self.dither.address, (_M1, _M0))
            zero = machine.vsetdup(self.dtype, 0)
            maxval = machine.vsetdup(self.dtype, 255)
            dithered = machine.vmin(machine.vmax(machine.vadd(pixels, dither), zero), maxval)
            machine.vsst(dithered, self.out.address + row * self.cols * 4, (_M1, _M3))
            row += count

    def reference(self) -> np.ndarray:
        out = np.clip(self._image_ref + self._dither_ref[None, :], 0, 255)
        return out.astype(np.int32).reshape(-1)

    def output(self) -> np.ndarray:
        return self.out.read()

    def profile(self) -> KernelProfile:
        elements = self.rows * self.cols
        return KernelProfile(
            name=self.name,
            element_bits=32,
            is_float=False,
            elements=elements,
            ops_per_element={"add": 1.0, "min": 1.0, "max": 1.0},
            bytes_read=elements * 4 + self.cols * 4,
            bytes_written=elements * 4,
            parallelism_1d=self.cols,
            dimensions=2,
        )


@register
class AlphaBlendKernel(Kernel):
    """Alpha blending: ``dst = (src * a + dst * (255 - a)) >> 8``."""

    name = "webp_alpha_blend"
    library = "libwebp"
    dims = "2D"
    dtype = DataType.INT32
    description = "Per-pixel alpha blending of two images"

    BASE_PIXELS = 16 * 1024

    def prepare(self) -> None:
        self.n = max(512, int(self.BASE_PIXELS * self.scale))
        src = self.rng.integers(0, 255, size=self.n, dtype=np.int64)
        dst = self.rng.integers(0, 255, size=self.n, dtype=np.int64)
        alpha = self.rng.integers(0, 255, size=self.n, dtype=np.int64)
        self.src = self.memory.allocate_array(src.astype(np.int32), self.dtype)
        self.dst = self.memory.allocate_array(dst.astype(np.int32), self.dtype)
        self.alpha = self.memory.allocate_array(alpha.astype(np.int32), self.dtype)
        self.out = self.memory.allocate(self.dtype, self.n)
        self._src_ref, self._dst_ref, self._alpha_ref = src.copy(), dst.copy(), alpha.copy()

    def run_mve(self, machine: MVEMachine) -> None:
        lanes = machine.simd_lanes
        machine.vsetdimc(1)
        offset = 0
        while offset < self.n:
            tile = min(lanes, self.n - offset)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(0, tile)
            src = machine.vsld(self.dtype, self.src.address + offset * 4, (_M1,))
            dst = machine.vsld(self.dtype, self.dst.address + offset * 4, (_M1,))
            alpha = machine.vsld(self.dtype, self.alpha.address + offset * 4, (_M1,))
            inv = machine.vsub(machine.vsetdup(self.dtype, 255), alpha)
            blended = machine.vshr_imm(
                machine.vadd(machine.vmul(src, alpha), machine.vmul(dst, inv)), 8
            )
            machine.vsst(blended, self.out.address + offset * 4, (_M1,))
            offset += tile

    def reference(self) -> np.ndarray:
        blended = (
            self._src_ref * self._alpha_ref + self._dst_ref * (255 - self._alpha_ref)
        ) >> 8
        return blended.astype(np.int32)

    def output(self) -> np.ndarray:
        return self.out.read()

    def profile(self) -> KernelProfile:
        return KernelProfile(
            name=self.name,
            element_bits=32,
            is_float=False,
            elements=self.n,
            ops_per_element={"mul": 2.0, "add": 1.0, "sub": 1.0, "shift": 1.0},
            bytes_read=self.n * 12,
            bytes_written=self.n * 4,
            parallelism_1d=self.n,
            dimensions=2,
        )


@register
class PredictorAvgKernel(Kernel):
    """Lossless predictor: average of the left and top neighbours."""

    name = "webp_pred_avg"
    library = "libwebp"
    dims = "3D"
    dtype = DataType.INT32
    description = "Average-of-neighbours lossless predictor over image rows"

    BASE_ROWS = 32
    COLS = 256

    def prepare(self) -> None:
        self.rows = max(4, int(self.BASE_ROWS * self.scale))
        self.cols = self.COLS
        image = self.rng.integers(0, 255, size=(self.rows + 1, self.cols + 1), dtype=np.int64)
        self.image = self.memory.allocate_array(
            image.astype(np.int32).reshape(-1), self.dtype
        )
        self.out = self.memory.allocate(self.dtype, self.rows * self.cols)
        self._image_ref = image.copy()

    def run_mve(self, machine: MVEMachine) -> None:
        stride = self.cols + 1
        rows_per_tile = max(1, min(self.rows, machine.simd_lanes // self.cols))
        machine.vsetdimc(2)
        machine.vsetdiml(0, self.cols)
        machine.vsetldstr(1, stride)
        machine.vsetststr(1, self.cols)
        row = 0
        while row < self.rows:
            count = min(rows_per_tile, self.rows - row)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(1, count)
            base = self.image.address + ((row + 1) * stride + 1) * 4
            left = machine.vsld(self.dtype, base - 4, (_M1, _M3))
            top = machine.vsld(self.dtype, base - stride * 4, (_M1, _M3))
            avg = machine.vshr_imm(machine.vadd(left, top), 1)
            machine.vsst(avg, self.out.address + row * self.cols * 4, (_M1, _M3))
            row += count

    def reference(self) -> np.ndarray:
        image = self._image_ref
        left = image[1:, :-1]
        top = image[:-1, 1:]
        return ((left + top) >> 1).astype(np.int32).reshape(-1)

    def output(self) -> np.ndarray:
        return self.out.read()

    def profile(self) -> KernelProfile:
        elements = self.rows * self.cols
        return KernelProfile(
            name=self.name,
            element_bits=32,
            is_float=False,
            elements=elements,
            ops_per_element={"add": 1.0, "shift": 1.0},
            bytes_read=elements * 8,
            bytes_written=elements * 4,
            parallelism_1d=self.cols,
            dimensions=3,
        )
