"""zlib kernels (Data Compression, 1-2D): Adler-32 and CRC block folding."""

from __future__ import annotations

import numpy as np

from ..baselines.profile import KernelProfile
from ..intrinsics.machine import MVEMachine
from ..isa.datatypes import DataType
from ..isa.encoding import StrideMode
from .base import Kernel, LOOP_SCALAR_OPS, tree_reduce
from .registry import register

__all__ = ["Adler32Kernel", "CrcFoldKernel"]

_M1 = int(StrideMode.ONE)


@register
class Adler32Kernel(Kernel):
    """Adler-32 style checksum: sum of bytes and position-weighted sum.

    The weighted sum ``B = sum_i (n - i) * data[i]`` is computed with a
    weight vector prepared by the scalar core; both sums use the in-cache
    tree-reduction pattern of Section IV.
    """

    name = "adler32"
    library = "zlib"
    dims = "2D"
    dtype = DataType.INT32
    description = "Adler-32 checksum (plain and weighted byte sums)"

    BASE_BYTES = 32 * 1024

    def prepare(self) -> None:
        self.n = max(2048, int(self.BASE_BYTES * self.scale))
        data = self.rng.integers(0, 255, size=self.n, dtype=np.int64)
        # Position weights are reduced modulo 4096 (the real Adler-32 applies
        # a modulus periodically) so the int32 partial sums cannot overflow.
        weights = np.arange(self.n, 0, -1, dtype=np.int64) % 4096
        self.data = self.memory.allocate_array(data.astype(np.int32), self.dtype)
        self.weights = self.memory.allocate_array(weights.astype(np.int32), self.dtype)
        self.partials_a = self.memory.allocate(DataType.INT32, 256)
        self.partials_b = self.memory.allocate(DataType.INT32, 256)
        self.scratch = self.memory.allocate(DataType.INT32, 8192)
        self._data_ref = data.copy()
        self._weights_ref = weights.copy()

    def _reduce_sum(self, machine: MVEMachine, acc, length: int, partials) -> int:
        reduced, remaining = tree_reduce(machine, acc, length, self.scratch.address)
        machine.vsetdimc(1)
        machine.vsetdiml(0, remaining)
        machine.vsst(reduced, partials.address, (_M1,))
        machine.scalar(remaining * 2, loads=remaining)
        return remaining

    def run_mve(self, machine: MVEMachine) -> None:
        lanes = machine.simd_lanes
        acc_length = min(lanes, self.n)
        machine.vsetdimc(1)
        machine.vsetdiml(0, acc_length)
        acc_a = machine.vsetdup(self.dtype, 0)
        acc_b = machine.vsetdup(self.dtype, 0)
        offset = 0
        while offset < self.n:
            tile = min(lanes, self.n - offset)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(0, tile)
            data = machine.vsld(self.dtype, self.data.address + offset * 4, (_M1,))
            weights = machine.vsld(self.dtype, self.weights.address + offset * 4, (_M1,))
            weighted = machine.vmul(data, weights)
            machine.vsetdiml(0, acc_length)
            acc_a = machine.vadd(acc_a, data)
            acc_b = machine.vadd(acc_b, weighted)
            offset += tile
        self._remaining_a = self._reduce_sum(machine, acc_a, acc_length, self.partials_a)
        self._remaining_b = self._reduce_sum(machine, acc_b, acc_length, self.partials_b)

    def reference(self) -> np.ndarray:
        a = int(self._data_ref.sum())
        b = int((self._data_ref * self._weights_ref).sum())
        return np.array([a, b], dtype=np.int64)

    def output(self) -> np.ndarray:
        a = int(self.partials_a.read()[: self._remaining_a].astype(np.int64).sum())
        b = int(self.partials_b.read()[: self._remaining_b].astype(np.int64).sum())
        return np.array([a, b], dtype=np.int64)

    def profile(self) -> KernelProfile:
        return KernelProfile(
            name=self.name,
            element_bits=32,
            is_float=False,
            elements=self.n,
            ops_per_element={"add": 2.0, "mul": 1.0},
            bytes_read=self.n * 8,
            bytes_written=512 * 4,
            parallelism_1d=self.n,
            dimensions=2,
        )


@register
class CrcFoldKernel(Kernel):
    """CRC-style block folding: XOR-fold a buffer into a 256-word state."""

    name = "crc_fold"
    library = "zlib"
    dims = "1D"
    dtype = DataType.INT32
    description = "XOR folding of a buffer into a fixed-size state"

    BASE_WORDS = 16 * 1024
    STATE_WORDS = 256

    def prepare(self) -> None:
        self.n = max(self.STATE_WORDS, int(self.BASE_WORDS * self.scale))
        # Round to a multiple of the state size so folding is exact.
        self.n -= self.n % self.STATE_WORDS
        data = self.rng.integers(0, 2**31 - 1, size=self.n, dtype=np.int64)
        self.data = self.memory.allocate_array(data.astype(np.int32), self.dtype)
        # The in-cache pass leaves up to one full register of folded stripes.
        self.state = self.memory.allocate(DataType.INT32, 8192)
        self._data_ref = data.copy()

    def run_mve(self, machine: MVEMachine) -> None:
        lanes = machine.simd_lanes
        # Fold as many state-sized stripes as fit in the SIMD lanes at once,
        # then XOR-combine the stripes on the scalar core (<= lanes/256 values).
        stripes_per_tile = max(1, lanes // self.STATE_WORDS)
        tile_words = stripes_per_tile * self.STATE_WORDS
        machine.vsetdimc(1)
        acc_length = min(tile_words, self.n)
        machine.vsetdiml(0, acc_length)
        acc = machine.vsetdup(self.dtype, 0)
        offset = 0
        while offset < self.n:
            tile = min(tile_words, self.n - offset)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(0, tile)
            data = machine.vsld(self.dtype, self.data.address + offset * 4, (_M1,))
            machine.vsetdiml(0, acc_length)
            acc = machine.vxor(acc, data)
            offset += tile
        # Store the folded stripes; the scalar core combines them.
        machine.vsetdimc(1)
        machine.vsetdiml(0, acc_length)
        machine.vsst(acc, self.state.address, (_M1,))
        machine.scalar(acc_length, loads=acc_length)
        self._acc_length = acc_length

    def reference(self) -> np.ndarray:
        folded = np.zeros(self.STATE_WORDS, dtype=np.int64)
        for start in range(0, self.n, self.STATE_WORDS):
            folded ^= self._data_ref[start : start + self.STATE_WORDS]
        return folded.astype(np.int32)

    def output(self) -> np.ndarray:
        # The in-cache pass leaves `acc_length` partially folded words in
        # memory as consecutive stripes; the scalar core folds the stripes.
        stored = self.state.read()[: self._acc_length].astype(np.int64)
        result = np.zeros(self.STATE_WORDS, dtype=np.int64)
        for start in range(0, stored.size, self.STATE_WORDS):
            stripe = stored[start : start + self.STATE_WORDS]
            result[: stripe.size] ^= stripe
        return result.astype(np.int32)

    def profile(self) -> KernelProfile:
        return KernelProfile(
            name=self.name,
            element_bits=32,
            is_float=False,
            elements=self.n,
            ops_per_element={"logic": 1.0},
            bytes_read=self.n * 4,
            bytes_written=self.STATE_WORDS * 4,
            parallelism_1d=self.n,
            dimensions=1,
        )
