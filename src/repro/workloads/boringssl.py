"""boringssl kernels (Cryptography, 1-2D): ChaCha rounds, stream XOR, key mixing."""

from __future__ import annotations

import numpy as np

from ..baselines.profile import KernelProfile
from ..intrinsics.machine import MVEMachine
from ..intrinsics.mdv import MDV
from ..isa.datatypes import DataType
from ..isa.encoding import StrideMode
from .base import Kernel, LOOP_SCALAR_OPS, elementwise_1d
from .registry import register

__all__ = ["ChachaQuarterRoundKernel", "XorStreamKernel", "AddRoundKeyKernel"]

_M0 = int(StrideMode.ZERO)
_M1 = int(StrideMode.ONE)
_M2 = int(StrideMode.SEQUENTIAL)
_M3 = int(StrideMode.REGISTER)


@register
class ChachaQuarterRoundKernel(Kernel):
    """One ChaCha20 quarter-round applied to many blocks in parallel.

    Each block contributes four 32-bit state words (a, b, c, d) stored in
    planar layout; the quarter round is the usual add / xor / rotate ladder.
    """

    name = "chacha_qr"
    library = "boringssl"
    dims = "2D"
    dtype = DataType.UINT32
    description = "ChaCha20 quarter round over many blocks"

    BASE_BLOCKS = 8 * 1024

    def prepare(self) -> None:
        self.blocks = max(256, int(self.BASE_BLOCKS * self.scale))
        state = self.rng.integers(0, 2**32, size=(4, self.blocks), dtype=np.uint64)
        state = state.astype(np.uint32)
        self.state = self.memory.allocate_array(state.reshape(-1), self.dtype)
        self.out = self.memory.allocate(self.dtype, 4 * self.blocks)
        self._state_ref = state.copy()

    def _quarter_round(self, m: MVEMachine, a: MDV, b: MDV, c: MDV, d: MDV):
        a = m.vadd(a, b)
        d = m.vrot_imm(m.vxor(d, a), 16)
        c = m.vadd(c, d)
        b = m.vrot_imm(m.vxor(b, c), 12)
        a = m.vadd(a, b)
        d = m.vrot_imm(m.vxor(d, a), 8)
        c = m.vadd(c, d)
        b = m.vrot_imm(m.vxor(b, c), 7)
        return a, b, c, d

    def run_mve(self, machine: MVEMachine) -> None:
        lanes = machine.simd_lanes
        n = self.blocks
        machine.vsetdimc(1)
        offset = 0
        while offset < n:
            tile = min(lanes, n - offset)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(0, tile)
            words = []
            for w in range(4):
                words.append(
                    machine.vsld(self.dtype, self.state.address + (w * n + offset) * 4, (_M1,))
                )
            a, b, c, d = self._quarter_round(machine, *words)
            for w, value in enumerate((a, b, c, d)):
                machine.vsst(value, self.out.address + (w * n + offset) * 4, (_M1,))
            offset += tile

    @staticmethod
    def _rotl(x: np.ndarray, amount: int) -> np.ndarray:
        x = x.astype(np.uint64) & 0xFFFFFFFF
        return ((x << amount) | (x >> (32 - amount))) & 0xFFFFFFFF

    def reference(self) -> np.ndarray:
        a, b, c, d = (w.astype(np.uint64) for w in self._state_ref)
        a = (a + b) & 0xFFFFFFFF
        d = self._rotl(d ^ a, 16)
        c = (c + d) & 0xFFFFFFFF
        b = self._rotl(b ^ c, 12)
        a = (a + b) & 0xFFFFFFFF
        d = self._rotl(d ^ a, 8)
        c = (c + d) & 0xFFFFFFFF
        b = self._rotl(b ^ c, 7)
        return np.stack([a, b, c, d]).astype(np.uint32).reshape(-1)

    def output(self) -> np.ndarray:
        return self.out.read()

    def profile(self) -> KernelProfile:
        elements = self.blocks
        return KernelProfile(
            name=self.name,
            element_bits=32,
            is_float=False,
            elements=elements,
            ops_per_element={"add": 4.0, "logic": 4.0, "shift": 4.0},
            bytes_read=elements * 16,
            bytes_written=elements * 16,
            parallelism_1d=elements,
            dimensions=2,
        )


@register
class XorStreamKernel(Kernel):
    """Stream cipher application: ciphertext = plaintext XOR keystream."""

    name = "xor_stream"
    library = "boringssl"
    dims = "1D"
    dtype = DataType.UINT8
    description = "XOR a plaintext buffer with a keystream"

    BASE_BYTES = 64 * 1024

    def prepare(self) -> None:
        self.n = max(4096, int(self.BASE_BYTES * self.scale))
        plaintext = self.rng.integers(0, 255, size=self.n, dtype=np.int64).astype(np.uint8)
        keystream = self.rng.integers(0, 255, size=self.n, dtype=np.int64).astype(np.uint8)
        self.plaintext = self.memory.allocate_array(plaintext, self.dtype)
        self.keystream = self.memory.allocate_array(keystream, self.dtype)
        self.out = self.memory.allocate(self.dtype, self.n)
        self._pt_ref, self._ks_ref = plaintext.copy(), keystream.copy()

    def run_mve(self, machine: MVEMachine) -> None:
        elementwise_1d(
            machine,
            self.dtype,
            [self.plaintext.address, self.keystream.address],
            self.out.address,
            self.n,
            lambda m, inputs: m.vxor(inputs[0], inputs[1]),
        )

    def reference(self) -> np.ndarray:
        return self._pt_ref ^ self._ks_ref

    def output(self) -> np.ndarray:
        return self.out.read()

    def profile(self) -> KernelProfile:
        return KernelProfile(
            name=self.name,
            element_bits=8,
            is_float=False,
            elements=self.n,
            ops_per_element={"logic": 1.0},
            bytes_read=self.n * 2,
            bytes_written=self.n,
            parallelism_1d=self.n,
            dimensions=1,
        )


@register
class AddRoundKeyKernel(Kernel):
    """AES AddRoundKey: XOR a 16-byte round key into many blocks (2D replicate)."""

    name = "add_round_key"
    library = "boringssl"
    dims = "2D"
    dtype = DataType.UINT8
    description = "XOR a replicated 16-byte round key into AES state blocks"

    BASE_BLOCKS = 4 * 1024
    BLOCK_BYTES = 16

    def prepare(self) -> None:
        self.blocks = max(64, int(self.BASE_BLOCKS * self.scale))
        state = self.rng.integers(0, 255, size=(self.blocks, self.BLOCK_BYTES), dtype=np.int64)
        key = self.rng.integers(0, 255, size=self.BLOCK_BYTES, dtype=np.int64)
        self.state = self.memory.allocate_array(state.astype(np.uint8).reshape(-1), self.dtype)
        self.key = self.memory.allocate_array(key.astype(np.uint8), self.dtype)
        self.out = self.memory.allocate(self.dtype, self.blocks * self.BLOCK_BYTES)
        self._state_ref = state.copy()
        self._key_ref = key.copy()

    def run_mve(self, machine: MVEMachine) -> None:
        blocks_per_tile = max(1, min(self.blocks, machine.simd_lanes // self.BLOCK_BYTES))
        machine.vsetdimc(2)
        machine.vsetdiml(0, self.BLOCK_BYTES)
        start = 0
        while start < self.blocks:
            count = min(blocks_per_tile, self.blocks - start)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(1, count)
            state = machine.vsld(
                self.dtype, self.state.address + start * self.BLOCK_BYTES, (_M1, _M2)
            )
            # The round key is shared by every block (dim1 stride 0).
            key = machine.vsld(self.dtype, self.key.address, (_M1, _M0))
            machine.vsst(
                machine.vxor(state, key),
                self.out.address + start * self.BLOCK_BYTES,
                (_M1, _M2),
            )
            start += count

    def reference(self) -> np.ndarray:
        return (self._state_ref ^ self._key_ref[None, :]).astype(np.uint8).reshape(-1)

    def output(self) -> np.ndarray:
        return self.out.read()

    def profile(self) -> KernelProfile:
        elements = self.blocks * self.BLOCK_BYTES
        return KernelProfile(
            name=self.name,
            element_bits=8,
            is_float=False,
            elements=elements,
            ops_per_element={"logic": 1.0},
            bytes_read=elements + self.BLOCK_BYTES,
            bytes_written=elements,
            parallelism_1d=self.BLOCK_BYTES,
            dimensions=2,
        )
