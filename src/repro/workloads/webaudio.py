"""WebAudio kernels (Audio Processing, 1-3D): gain, mixing, clipping."""

from __future__ import annotations

import numpy as np

from ..baselines.profile import KernelProfile
from ..intrinsics.machine import MVEMachine
from ..isa.datatypes import DataType
from ..isa.encoding import StrideMode
from .base import Kernel, LOOP_SCALAR_OPS, elementwise_1d
from .registry import register

__all__ = ["GainKernel", "ChannelMixKernel", "ClipKernel"]

_M0 = int(StrideMode.ZERO)
_M1 = int(StrideMode.ONE)
_M3 = int(StrideMode.REGISTER)

#: WebAudio render quantum: 128 samples per chunk per channel.
RENDER_QUANTUM = 128


@register
class GainKernel(Kernel):
    """Apply a per-chunk gain to audio samples."""

    name = "audio_gain"
    library = "Webaudio"
    dims = "1D"
    dtype = DataType.FLOAT32
    description = "Gain applied to fp32 audio samples"

    BASE_SAMPLES = 32 * 1024
    GAIN = 0.7071

    def prepare(self) -> None:
        self.n = max(RENDER_QUANTUM, int(self.BASE_SAMPLES * self.scale))
        samples = self.rng.standard_normal(self.n).astype(np.float32)
        self.samples = self.memory.allocate_array(samples, self.dtype)
        self.out = self.memory.allocate(self.dtype, self.n)
        self._samples_ref = samples.copy()

    def run_mve(self, machine: MVEMachine) -> None:
        def op(m: MVEMachine, inputs):
            return m.vmul(inputs[0], m.vsetdup(self.dtype, self.GAIN))

        elementwise_1d(
            machine, self.dtype, [self.samples.address], self.out.address, self.n, op
        )

    def reference(self) -> np.ndarray:
        return (self._samples_ref * np.float32(self.GAIN)).astype(np.float32)

    def output(self) -> np.ndarray:
        return self.out.read()

    def profile(self) -> KernelProfile:
        return KernelProfile(
            name=self.name,
            element_bits=32,
            is_float=True,
            elements=self.n,
            ops_per_element={"mul": 1.0},
            bytes_read=self.n * 4,
            bytes_written=self.n * 4,
            parallelism_1d=self.n,
            dimensions=1,
        )


@register
class ChannelMixKernel(Kernel):
    """Mix several 128-sample channels per audio chunk into one output channel.

    The 1D parallelism of one chunk is only 128 samples (the paper's
    motivating example): MVE processes many chunks simultaneously by making
    the chunk index the highest dimension.
    """

    name = "audio_mix"
    library = "Webaudio"
    dims = "3D"
    dtype = DataType.FLOAT32
    description = "Sum multiple audio channels across many 128-sample chunks"

    CHANNELS = 4
    BASE_CHUNKS = 64

    def prepare(self) -> None:
        self.chunks = max(2, int(self.BASE_CHUNKS * self.scale))
        data = self.rng.standard_normal(
            (self.chunks, self.CHANNELS, RENDER_QUANTUM)
        ).astype(np.float32)
        self.data = self.memory.allocate_array(data.reshape(-1), self.dtype)
        self.out = self.memory.allocate(self.dtype, self.chunks * RENDER_QUANTUM)
        self._data_ref = data.copy()

    def run_mve(self, machine: MVEMachine) -> None:
        chunk_stride = self.CHANNELS * RENDER_QUANTUM
        chunks_per_tile = max(1, min(self.chunks, machine.simd_lanes // RENDER_QUANTUM))
        machine.vsetdimc(2)
        machine.vsetdiml(0, RENDER_QUANTUM)
        machine.vsetldstr(1, chunk_stride)
        machine.vsetststr(1, RENDER_QUANTUM)
        start = 0
        while start < self.chunks:
            count = min(chunks_per_tile, self.chunks - start)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(1, count)
            acc = machine.vsetdup(self.dtype, 0.0)
            for channel in range(self.CHANNELS):
                machine.scalar(2)
                samples = machine.vsld(
                    self.dtype,
                    self.data.address + (start * chunk_stride + channel * RENDER_QUANTUM) * 4,
                    (_M1, _M3),
                )
                acc = machine.vadd(acc, samples)
            machine.vsst(
                acc, self.out.address + start * RENDER_QUANTUM * 4, (_M1, _M3)
            )
            start += count

    def reference(self) -> np.ndarray:
        return self._data_ref.sum(axis=1, dtype=np.float64).astype(np.float32).reshape(-1)

    def output(self) -> np.ndarray:
        return self.out.read()

    def profile(self) -> KernelProfile:
        elements = self.chunks * RENDER_QUANTUM
        return KernelProfile(
            name=self.name,
            element_bits=32,
            is_float=True,
            elements=elements,
            ops_per_element={"add": float(self.CHANNELS)},
            bytes_read=elements * 4 * self.CHANNELS,
            bytes_written=elements * 4,
            parallelism_1d=RENDER_QUANTUM,
            dimensions=3,
        )


@register
class ClipKernel(Kernel):
    """Clamp audio samples to the [-1, 1] range."""

    name = "audio_clip"
    library = "Webaudio"
    dims = "1D"
    dtype = DataType.FLOAT32
    description = "Clamp fp32 samples to [-1, 1]"

    BASE_SAMPLES = 32 * 1024

    def prepare(self) -> None:
        self.n = max(RENDER_QUANTUM, int(self.BASE_SAMPLES * self.scale))
        samples = (self.rng.standard_normal(self.n) * 2.0).astype(np.float32)
        self.samples = self.memory.allocate_array(samples, self.dtype)
        self.out = self.memory.allocate(self.dtype, self.n)
        self._samples_ref = samples.copy()

    def run_mve(self, machine: MVEMachine) -> None:
        def op(m: MVEMachine, inputs):
            low = m.vsetdup(self.dtype, -1.0)
            high = m.vsetdup(self.dtype, 1.0)
            return m.vmin(m.vmax(inputs[0], low), high)

        elementwise_1d(
            machine, self.dtype, [self.samples.address], self.out.address, self.n, op
        )

    def reference(self) -> np.ndarray:
        return np.clip(self._samples_ref, -1.0, 1.0).astype(np.float32)

    def output(self) -> np.ndarray:
        return self.out.read()

    def profile(self) -> KernelProfile:
        return KernelProfile(
            name=self.name,
            element_bits=32,
            is_float=True,
            elements=self.n,
            ops_per_element={"min": 1.0, "max": 1.0},
            bytes_read=self.n * 4,
            bytes_written=self.n * 4,
            parallelism_1d=self.n,
            dimensions=1,
        )
