"""Skia kernels (Graphics, 1-3D): blending, grayscale, fills, box blur."""

from __future__ import annotations

import numpy as np

from ..baselines.profile import KernelProfile
from ..intrinsics.machine import MVEMachine
from ..isa.datatypes import DataType
from ..isa.encoding import StrideMode
from .base import Kernel, LOOP_SCALAR_OPS, elementwise_1d
from .registry import register

__all__ = ["SrcOverBlendKernel", "GrayscaleKernel", "Memset32Kernel", "BoxBlurKernel"]

_M0 = int(StrideMode.ZERO)
_M1 = int(StrideMode.ONE)
_M3 = int(StrideMode.REGISTER)


@register
class SrcOverBlendKernel(Kernel):
    """Porter-Duff src-over blending: ``dst = src + dst * (255 - sa) / 255``."""

    name = "skia_srcover"
    library = "Skia"
    dims = "1D"
    dtype = DataType.INT32
    description = "Src-over alpha compositing of two pixel buffers"

    BASE_PIXELS = 16 * 1024

    def prepare(self) -> None:
        self.n = max(512, int(self.BASE_PIXELS * self.scale))
        src = self.rng.integers(0, 255, size=self.n, dtype=np.int64)
        dst = self.rng.integers(0, 255, size=self.n, dtype=np.int64)
        src_alpha = self.rng.integers(0, 255, size=self.n, dtype=np.int64)
        self.src = self.memory.allocate_array(src.astype(np.int32), self.dtype)
        self.dst = self.memory.allocate_array(dst.astype(np.int32), self.dtype)
        self.src_alpha = self.memory.allocate_array(src_alpha.astype(np.int32), self.dtype)
        self.out = self.memory.allocate(self.dtype, self.n)
        self._src_ref, self._dst_ref, self._sa_ref = src.copy(), dst.copy(), src_alpha.copy()

    def run_mve(self, machine: MVEMachine) -> None:
        def op(m: MVEMachine, inputs):
            src, dst, alpha = inputs
            inv = m.vsub(m.vsetdup(self.dtype, 255), alpha)
            # Divide by 255 is approximated with the usual ">> 8" trick.
            return m.vadd(src, m.vshr_imm(m.vmul(dst, inv), 8))

        elementwise_1d(
            machine,
            self.dtype,
            [self.src.address, self.dst.address, self.src_alpha.address],
            self.out.address,
            self.n,
            op,
        )

    def reference(self) -> np.ndarray:
        inv = 255 - self._sa_ref
        return (self._src_ref + ((self._dst_ref * inv) >> 8)).astype(np.int32)

    def output(self) -> np.ndarray:
        return self.out.read()

    def profile(self) -> KernelProfile:
        return KernelProfile(
            name=self.name,
            element_bits=32,
            is_float=False,
            elements=self.n,
            ops_per_element={"mul": 1.0, "add": 1.0, "sub": 1.0, "shift": 1.0},
            bytes_read=self.n * 12,
            bytes_written=self.n * 4,
            parallelism_1d=self.n,
            dimensions=1,
        )


@register
class GrayscaleKernel(Kernel):
    """Luminance conversion from planar RGB using fixed-point weights."""

    name = "skia_grayscale"
    library = "Skia"
    dims = "2D"
    dtype = DataType.INT32
    description = "RGB to grayscale conversion (fixed-point BT.601 weights)"

    BASE_PIXELS = 16 * 1024
    WR, WG, WB = 77, 151, 28

    def prepare(self) -> None:
        self.n = max(512, int(self.BASE_PIXELS * self.scale))
        rgb = self.rng.integers(0, 255, size=(3, self.n), dtype=np.int64)
        self.rgb = self.memory.allocate_array(rgb.astype(np.int32).reshape(-1), self.dtype)
        self.out = self.memory.allocate(self.dtype, self.n)
        self._rgb_ref = rgb.copy()

    def run_mve(self, machine: MVEMachine) -> None:
        lanes = machine.simd_lanes
        machine.vsetdimc(1)
        offset = 0
        while offset < self.n:
            tile = min(lanes, self.n - offset)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(0, tile)
            r = machine.vsld(self.dtype, self.rgb.address + offset * 4, (_M1,))
            g = machine.vsld(self.dtype, self.rgb.address + (self.n + offset) * 4, (_M1,))
            b = machine.vsld(self.dtype, self.rgb.address + (2 * self.n + offset) * 4, (_M1,))
            weighted = machine.vadd(
                machine.vadd(
                    machine.vmul(r, machine.vsetdup(self.dtype, self.WR)),
                    machine.vmul(g, machine.vsetdup(self.dtype, self.WG)),
                ),
                machine.vmul(b, machine.vsetdup(self.dtype, self.WB)),
            )
            machine.vsst(
                machine.vshr_imm(weighted, 8), self.out.address + offset * 4, (_M1,)
            )
            offset += tile

    def reference(self) -> np.ndarray:
        r, g, b = self._rgb_ref
        return ((r * self.WR + g * self.WG + b * self.WB) >> 8).astype(np.int32)

    def output(self) -> np.ndarray:
        return self.out.read()

    def profile(self) -> KernelProfile:
        return KernelProfile(
            name=self.name,
            element_bits=32,
            is_float=False,
            elements=self.n,
            ops_per_element={"mul": 3.0, "add": 2.0, "shift": 1.0},
            bytes_read=self.n * 12,
            bytes_written=self.n * 4,
            parallelism_1d=self.n,
            dimensions=2,
        )


@register
class Memset32Kernel(Kernel):
    """sk_memset32: fill a pixel buffer with a constant 32-bit color."""

    name = "skia_memset32"
    library = "Skia"
    dims = "1D"
    dtype = DataType.INT32
    description = "Fill a 32-bit pixel buffer with a constant color"

    BASE_PIXELS = 32 * 1024
    COLOR = 0x11223344

    def prepare(self) -> None:
        self.n = max(512, int(self.BASE_PIXELS * self.scale))
        self.out = self.memory.allocate(self.dtype, self.n)

    def run_mve(self, machine: MVEMachine) -> None:
        lanes = machine.simd_lanes
        machine.vsetdimc(1)
        offset = 0
        while offset < self.n:
            tile = min(lanes, self.n - offset)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(0, tile)
            color = machine.vsetdup(self.dtype, self.COLOR)
            machine.vsst(color, self.out.address + offset * 4, (_M1,))
            offset += tile

    def reference(self) -> np.ndarray:
        return np.full(self.n, self.COLOR, dtype=np.int32)

    def output(self) -> np.ndarray:
        return self.out.read()

    def profile(self) -> KernelProfile:
        return KernelProfile(
            name=self.name,
            element_bits=32,
            is_float=False,
            elements=self.n,
            ops_per_element={},
            bytes_read=0,
            bytes_written=self.n * 4,
            parallelism_1d=self.n,
            dimensions=1,
        )


@register
class BoxBlurKernel(Kernel):
    """Horizontal 3-tap box blur over image rows."""

    name = "skia_boxblur"
    library = "Skia"
    dims = "3D"
    dtype = DataType.INT32
    description = "3-tap horizontal box blur (sum of neighbours, no divide)"

    BASE_ROWS = 32
    COLS = 254

    def prepare(self) -> None:
        self.rows = max(4, int(self.BASE_ROWS * self.scale))
        self.cols = self.COLS
        image = self.rng.integers(0, 255, size=(self.rows, self.cols + 2), dtype=np.int64)
        self.image = self.memory.allocate_array(
            image.astype(np.int32).reshape(-1), self.dtype
        )
        self.out = self.memory.allocate(self.dtype, self.rows * self.cols)
        self._image_ref = image.copy()

    def run_mve(self, machine: MVEMachine) -> None:
        stride = self.cols + 2
        rows_per_tile = max(1, min(self.rows, machine.simd_lanes // self.cols))
        machine.vsetdimc(2)
        machine.vsetdiml(0, self.cols)
        machine.vsetldstr(1, stride)
        machine.vsetststr(1, self.cols)
        row = 0
        while row < self.rows:
            count = min(rows_per_tile, self.rows - row)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(1, count)
            base = self.image.address + row * stride * 4
            left = machine.vsld(self.dtype, base, (_M1, _M3))
            center = machine.vsld(self.dtype, base + 4, (_M1, _M3))
            right = machine.vsld(self.dtype, base + 8, (_M1, _M3))
            blurred = machine.vadd(machine.vadd(left, center), right)
            machine.vsst(blurred, self.out.address + row * self.cols * 4, (_M1, _M3))
            row += count

    def reference(self) -> np.ndarray:
        image = self._image_ref
        result = image[:, :-2] + image[:, 1:-1] + image[:, 2:]
        return result.astype(np.int32).reshape(-1)

    def output(self) -> np.ndarray:
        return self.out.read()

    def profile(self) -> KernelProfile:
        elements = self.rows * self.cols
        return KernelProfile(
            name=self.name,
            element_bits=32,
            is_float=False,
            elements=elements,
            ops_per_element={"add": 2.0},
            bytes_read=elements * 12,
            bytes_written=elements * 4,
            parallelism_1d=self.cols,
            dimensions=3,
        )
