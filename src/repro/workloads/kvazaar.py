"""Kvazaar HEVC kernels (Video Processing, 3D): DCT, IDCT, SATD, Intra.

All four kernels operate on batches of 8x8 blocks, which gives them the
three-dimensional structure (block, row, column) the paper highlights.  The
integer transform matrices follow the HEVC specification; SATD uses the
Hadamard transform of the residual between two blocks, and the intra kernel
implements the reference-pixel replication pattern of Figure 3.
"""

from __future__ import annotations

import numpy as np

from ..baselines.profile import KernelProfile
from ..baselines.rvv import RVVEmitter
from ..intrinsics.machine import MVEMachine
from ..isa.datatypes import DataType
from ..isa.encoding import StrideMode
from .base import Kernel, LOOP_SCALAR_OPS
from .registry import register

__all__ = ["Dct8Kernel", "Idct8Kernel", "Satd8Kernel", "IntraPredKernel", "HEVC_DCT8"]

_M0 = int(StrideMode.ZERO)
_M1 = int(StrideMode.ONE)
_M2 = int(StrideMode.SEQUENTIAL)
_M3 = int(StrideMode.REGISTER)

#: HEVC 8-point forward DCT matrix (integer approximation).
HEVC_DCT8 = np.array(
    [
        [64, 64, 64, 64, 64, 64, 64, 64],
        [89, 75, 50, 18, -18, -50, -75, -89],
        [83, 36, -36, -83, -83, -36, 36, 83],
        [75, -18, -89, -50, 50, 89, 18, -75],
        [64, -64, -64, 64, 64, -64, -64, 64],
        [50, -89, 18, 75, -75, -18, 89, 50],
        [36, -83, 83, -36, -36, 83, -83, 36],
        [18, 50, -75, 89, -89, 75, -50, 18],
    ],
    dtype=np.int64,
)

#: 8-point Hadamard matrix used by SATD.
HADAMARD8 = np.array(
    [
        [1, 1, 1, 1, 1, 1, 1, 1],
        [1, -1, 1, -1, 1, -1, 1, -1],
        [1, 1, -1, -1, 1, 1, -1, -1],
        [1, -1, -1, 1, 1, -1, -1, 1],
        [1, 1, 1, 1, -1, -1, -1, -1],
        [1, -1, 1, -1, -1, 1, -1, 1],
        [1, 1, -1, -1, -1, -1, 1, 1],
        [1, -1, -1, 1, -1, 1, 1, -1],
    ],
    dtype=np.int64,
)

_BLOCK = 8
_BLOCK_ELEMS = _BLOCK * _BLOCK


class _BlockTransformMixin:
    """Shared two-stage 8x8 block transform: ``out = L @ X @ R^T``.

    Stage 1 computes ``tmp[b,u,j] = sum_i L[u,i] * X[b,i,j]`` and stage 2
    computes ``out[b,u,v] = sum_j R[v,j] * tmp[b,u,j]``; both stages are
    vectorised across blocks (highest dimension) and one in-block index.
    """

    def _transform(
        self,
        machine: MVEMachine,
        source_address: int,
        tmp_address: int,
        dest_address: int,
        left: np.ndarray,
        right: np.ndarray,
        blocks: int,
    ) -> None:
        dtype = DataType.INT32
        machine.vsetdimc(2)
        machine.vsetdiml(1, blocks)
        machine.vsetldstr(1, _BLOCK_ELEMS)
        machine.vsetststr(1, _BLOCK_ELEMS)

        # Stage 1: vectorised over (j, block); dim0 walks j with stride 1.
        machine.vsetdiml(0, _BLOCK)
        for u in range(_BLOCK):
            machine.scalar(LOOP_SCALAR_OPS)
            acc = machine.vsetdup(dtype, 0)
            for i in range(_BLOCK):
                machine.scalar(3, loads=1)
                coeff = machine.vsetdup(dtype, int(left[u, i]))
                x_slice = machine.vsld(
                    dtype, source_address + i * _BLOCK * 4, (_M1, _M3)
                )
                acc = machine.vadd(acc, machine.vmul(x_slice, coeff))
            machine.vsst(acc, tmp_address + u * _BLOCK * 4, (_M1, _M3))

        # Stage 2: vectorised over (u, block); dim0 walks u with stride 8.
        machine.vsetldstr(0, _BLOCK)
        machine.vsetststr(0, _BLOCK)
        for v in range(_BLOCK):
            machine.scalar(LOOP_SCALAR_OPS)
            acc = machine.vsetdup(dtype, 0)
            for j in range(_BLOCK):
                machine.scalar(3, loads=1)
                coeff = machine.vsetdup(dtype, int(right[v, j]))
                t_slice = machine.vsld(dtype, tmp_address + j * 4, (_M3, _M3))
                acc = machine.vadd(acc, machine.vmul(t_slice, coeff))
            machine.vsst(acc, dest_address + v * 4, (_M3, _M3))
        # Restore default dim-0 strides for later phases.
        machine.vsetldstr(0, 1)
        machine.vsetststr(0, 1)

    def _transform_rvv(
        self,
        machine: MVEMachine,
        emitter: RVVEmitter,
        source_address: int,
        tmp_address: int,
        dest_address: int,
        left: np.ndarray,
        right: np.ndarray,
        blocks: int,
    ) -> None:
        """1D lowering: each packed register is built from 8 strided segments.

        The best an RVV programmer can do for the (index, block) slices is a
        strided access per in-block index (stride of one block, 64 elements),
        masked and packed into the long register -- 8 segments per logical
        MVE load/store.
        """
        dtype = DataType.INT32
        for u in range(_BLOCK):
            machine.scalar(LOOP_SCALAR_OPS)
            emitter.set_vector_length(min(_BLOCK * blocks, machine.simd_lanes))
            acc = machine.vsetdup(dtype, 0)
            for i in range(_BLOCK):
                machine.scalar(3, loads=1)
                coeff = machine.vsetdup(dtype, int(left[u, i]))
                x_packed = emitter.load_multidim(
                    dtype,
                    source_address + i * _BLOCK * 4,
                    blocks,
                    _BLOCK,
                    1,
                    _BLOCK_ELEMS,
                )
                acc = machine.vadd(acc, machine.vmul(x_packed, coeff))
            emitter.store_multidim(
                acc, tmp_address + u * _BLOCK * 4, blocks, _BLOCK, 1, _BLOCK_ELEMS
            )
        for v in range(_BLOCK):
            machine.scalar(LOOP_SCALAR_OPS)
            emitter.set_vector_length(min(_BLOCK * blocks, machine.simd_lanes))
            acc = machine.vsetdup(dtype, 0)
            for j in range(_BLOCK):
                machine.scalar(3, loads=1)
                coeff = machine.vsetdup(dtype, int(right[v, j]))
                t_packed = emitter.load_multidim(
                    dtype,
                    tmp_address + j * 4,
                    blocks,
                    _BLOCK,
                    _BLOCK,
                    _BLOCK_ELEMS,
                )
                acc = machine.vadd(acc, machine.vmul(t_packed, coeff))
            emitter.store_multidim(
                acc, dest_address + v * 4, blocks, _BLOCK, _BLOCK, _BLOCK_ELEMS
            )


class _DctBase(_BlockTransformMixin, Kernel):
    """Common setup for the forward and inverse block transforms."""

    library = "Kvazaar"
    dims = "3D"
    dtype = DataType.INT32
    BASE_BLOCKS = 1024
    #: left/right transform matrices, set by subclasses
    LEFT: np.ndarray = HEVC_DCT8
    RIGHT: np.ndarray = HEVC_DCT8

    def prepare(self) -> None:
        self.blocks = max(2, int(self.BASE_BLOCKS * self.scale))
        data = self.rng.integers(-255, 255, size=(self.blocks, _BLOCK, _BLOCK), dtype=np.int64)
        data = data.astype(np.int32)
        self.input = self.memory.allocate_array(data.reshape(-1), self.dtype)
        self.tmp = self.memory.allocate(self.dtype, self.blocks * _BLOCK_ELEMS)
        self.out = self.memory.allocate(self.dtype, self.blocks * _BLOCK_ELEMS)
        self._input_ref = data.copy()

    def _blocks_per_tile(self, machine: MVEMachine) -> int:
        return max(1, min(self.blocks, machine.simd_lanes // _BLOCK))

    def run_mve(self, machine: MVEMachine) -> None:
        per_tile = self._blocks_per_tile(machine)
        start = 0
        while start < self.blocks:
            count = min(per_tile, self.blocks - start)
            offset = start * _BLOCK_ELEMS * 4
            self._transform(
                machine,
                self.input.address + offset,
                self.tmp.address + offset,
                self.out.address + offset,
                self.LEFT,
                self.RIGHT,
                count,
            )
            start += count

    def run_rvv(self, machine: MVEMachine) -> None:
        emitter = RVVEmitter(machine)
        per_tile = self._blocks_per_tile(machine)
        start = 0
        while start < self.blocks:
            count = min(per_tile, self.blocks - start)
            offset = start * _BLOCK_ELEMS * 4
            self._transform_rvv(
                machine,
                emitter,
                self.input.address + offset,
                self.tmp.address + offset,
                self.out.address + offset,
                self.LEFT,
                self.RIGHT,
                count,
            )
            start += count

    def reference(self) -> np.ndarray:
        left = self.LEFT.astype(np.int64)
        right = self.RIGHT.astype(np.int64)
        result = np.einsum("ui,bij,vj->buv", left, self._input_ref.astype(np.int64), right)
        return result.astype(np.int32).reshape(-1)

    def output(self) -> np.ndarray:
        return self.out.read()

    def profile(self) -> KernelProfile:
        elements = self.blocks * _BLOCK_ELEMS
        return KernelProfile(
            name=self.name,
            element_bits=32,
            is_float=False,
            elements=elements,
            ops_per_element={"mac": 2.0 * _BLOCK},
            bytes_read=elements * 4 * 2,
            bytes_written=elements * 4 * 2,
            parallelism_1d=_BLOCK,
            dimensions=3,
        )


@register
class Dct8Kernel(_DctBase):
    """DCT: forward 8x8 HEVC transform of residual blocks."""

    name = "dct"
    description = "Forward 8x8 integer DCT over a batch of blocks"
    LEFT = HEVC_DCT8
    RIGHT = HEVC_DCT8


@register
class Idct8Kernel(_DctBase):
    """IDCT: inverse 8x8 HEVC transform."""

    name = "idct"
    description = "Inverse 8x8 integer DCT over a batch of blocks"
    LEFT = HEVC_DCT8.T.copy()
    RIGHT = HEVC_DCT8.T.copy()


@register
class Satd8Kernel(_BlockTransformMixin, Kernel):
    """SATD: sum of absolute Hadamard-transformed differences per block."""

    name = "satd"
    library = "Kvazaar"
    dims = "3D"
    dtype = DataType.INT32
    description = "8x8 SATD between original and predicted blocks"
    BASE_BLOCKS = 1024

    def prepare(self) -> None:
        self.blocks = max(2, int(self.BASE_BLOCKS * self.scale))
        org = self.rng.integers(0, 255, size=(self.blocks, _BLOCK, _BLOCK), dtype=np.int64)
        pred = self.rng.integers(0, 255, size=(self.blocks, _BLOCK, _BLOCK), dtype=np.int64)
        self.org = self.memory.allocate_array(org.astype(np.int32).reshape(-1), self.dtype)
        self.pred = self.memory.allocate_array(pred.astype(np.int32).reshape(-1), self.dtype)
        self.diff = self.memory.allocate(self.dtype, self.blocks * _BLOCK_ELEMS)
        self.tmp = self.memory.allocate(self.dtype, self.blocks * _BLOCK_ELEMS)
        self.coeffs = self.memory.allocate(self.dtype, self.blocks * _BLOCK_ELEMS)
        self.satd = self.memory.allocate(self.dtype, self.blocks)
        self._org_ref = org.copy()
        self._pred_ref = pred.copy()

    def run_mve(self, machine: MVEMachine) -> None:
        lanes = machine.simd_lanes
        total_elements = self.blocks * _BLOCK_ELEMS

        # Phase 1: residual org - pred, element-wise over all blocks at once.
        machine.vsetdimc(1)
        offset_elems = 0
        while offset_elems < total_elements:
            tile = min(lanes, total_elements - offset_elems)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(0, tile)
            org = machine.vsld(self.dtype, self.org.address + offset_elems * 4, (_M1,))
            pred = machine.vsld(self.dtype, self.pred.address + offset_elems * 4, (_M1,))
            machine.vsst(
                machine.vsub(org, pred), self.diff.address + offset_elems * 4, (_M1,)
            )
            offset_elems += tile

        # Phase 2: Hadamard transform, tiled by lanes // 8 blocks.
        per_tile = max(1, min(self.blocks, lanes // _BLOCK))
        start = 0
        while start < self.blocks:
            count = min(per_tile, self.blocks - start)
            offset = start * _BLOCK_ELEMS * 4
            self._transform(
                machine,
                self.diff.address + offset,
                self.tmp.address + offset,
                self.coeffs.address + offset,
                HADAMARD8,
                HADAMARD8,
                count,
            )
            start += count

        # Phase 3: per-block accumulation of absolute coefficients.
        acc_tile = max(1, min(self.blocks, lanes))
        start = 0
        while start < self.blocks:
            count = min(acc_tile, self.blocks - start)
            offset = start * _BLOCK_ELEMS * 4
            machine.vsetdimc(1)
            machine.vsetdiml(0, count)
            machine.vsetldstr(0, _BLOCK_ELEMS)
            machine.scalar(LOOP_SCALAR_OPS)
            acc = machine.vsetdup(self.dtype, 0)
            zero = machine.vsetdup(self.dtype, 0)
            for position in range(_BLOCK_ELEMS):
                machine.scalar(2)
                coeff = machine.vsld(
                    self.dtype, self.coeffs.address + offset + position * 4, (_M3,)
                )
                negated = machine.vsub(zero, coeff)
                acc = machine.vadd(acc, machine.vmax(coeff, negated))
            machine.vsetldstr(0, 1)
            machine.vsst(acc, self.satd.address + start * 4, (_M1,))
            start += count

    def run_rvv(self, machine: MVEMachine) -> None:
        emitter = RVVEmitter(machine)
        lanes = machine.simd_lanes
        total_elements = self.blocks * _BLOCK_ELEMS

        offset_elems = 0
        while offset_elems < total_elements:
            tile = min(lanes, total_elements - offset_elems)
            machine.scalar(LOOP_SCALAR_OPS)
            emitter.set_vector_length(tile)
            org = emitter.load_1d(self.dtype, self.org.address + offset_elems * 4)
            pred = emitter.load_1d(self.dtype, self.pred.address + offset_elems * 4)
            emitter.store_1d(machine.vsub(org, pred), self.diff.address + offset_elems * 4)
            offset_elems += tile

        per_tile = max(1, min(self.blocks, lanes // _BLOCK))
        start = 0
        while start < self.blocks:
            count = min(per_tile, self.blocks - start)
            offset = start * _BLOCK_ELEMS * 4
            self._transform_rvv(
                machine,
                emitter,
                self.diff.address + offset,
                self.tmp.address + offset,
                self.coeffs.address + offset,
                HADAMARD8,
                HADAMARD8,
                count,
            )
            start += count

        acc_tile = max(1, min(self.blocks, lanes))
        start = 0
        while start < self.blocks:
            count = min(acc_tile, self.blocks - start)
            offset = start * _BLOCK_ELEMS * 4
            machine.scalar(LOOP_SCALAR_OPS)
            emitter.set_vector_length(count)
            acc = machine.vsetdup(self.dtype, 0)
            zero = machine.vsetdup(self.dtype, 0)
            for position in range(_BLOCK_ELEMS):
                machine.scalar(4, loads=1)
                coeff = emitter.load_1d(
                    self.dtype, self.coeffs.address + offset + position * 4, _BLOCK_ELEMS
                )
                negated = machine.vsub(zero, coeff)
                acc = machine.vadd(acc, machine.vmax(coeff, negated))
            emitter.store_1d(acc, self.satd.address + start * 4)
            start += count

    def reference(self) -> np.ndarray:
        diff = self._org_ref.astype(np.int64) - self._pred_ref.astype(np.int64)
        transformed = np.einsum("ui,bij,vj->buv", HADAMARD8, diff, HADAMARD8)
        return np.abs(transformed).sum(axis=(1, 2)).astype(np.int32)

    def output(self) -> np.ndarray:
        return self.satd.read()

    def profile(self) -> KernelProfile:
        elements = self.blocks * _BLOCK_ELEMS
        return KernelProfile(
            name=self.name,
            element_bits=32,
            is_float=False,
            elements=elements,
            ops_per_element={"mac": 2.0 * _BLOCK, "sub": 1.0, "abs": 1.0, "add": 1.0},
            bytes_read=elements * 4 * 3,
            bytes_written=elements * 4 * 2 + self.blocks * 4,
            parallelism_1d=_BLOCK,
            dimensions=3,
        )


@register
class IntraPredKernel(Kernel):
    """INTRA: intra-picture prediction from top/left reference pixels."""

    name = "intra"
    library = "Kvazaar"
    dims = "3D"
    dtype = DataType.INT32
    description = "Intra prediction: blend of replicated top and left references"
    BASE_BLOCKS = 128

    def prepare(self) -> None:
        self.blocks = max(2, int(self.BASE_BLOCKS * self.scale))
        top = self.rng.integers(0, 255, size=(self.blocks, _BLOCK), dtype=np.int64)
        left = self.rng.integers(0, 255, size=(self.blocks, _BLOCK), dtype=np.int64)
        self.top = self.memory.allocate_array(top.astype(np.int32).reshape(-1), self.dtype)
        self.left = self.memory.allocate_array(left.astype(np.int32).reshape(-1), self.dtype)
        self.pred = self.memory.allocate(self.dtype, self.blocks * _BLOCK_ELEMS)
        self._top_ref = top.copy()
        self._left_ref = left.copy()

    def run_mve(self, machine: MVEMachine) -> None:
        per_tile = max(1, min(self.blocks, machine.simd_lanes // _BLOCK_ELEMS))
        machine.vsetdimc(3)
        machine.vsetdiml(0, _BLOCK)
        machine.vsetdiml(1, _BLOCK)
        machine.vsetldstr(2, _BLOCK)
        start = 0
        while start < self.blocks:
            count = min(per_tile, self.blocks - start)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(2, count)
            # top[b][x] replicated down the rows (dim1 stride 0).
            top = machine.vsld(
                self.dtype, self.top.address + start * _BLOCK * 4, (_M1, _M0, _M3)
            )
            # left[b][y] replicated across the columns (dim0 stride 0).
            left = machine.vsld(
                self.dtype, self.left.address + start * _BLOCK * 4, (_M0, _M1, _M3)
            )
            one = machine.vsetdup(self.dtype, 1)
            blended = machine.vshr_imm(machine.vadd(machine.vadd(top, left), one), 1)
            # pred[b][y][x]: dim0 stride 1, dim1 stride 8, dim2 stride 64.
            machine.vsst(
                blended, self.pred.address + start * _BLOCK_ELEMS * 4, (_M1, _M2, _M2)
            )
            start += count

    def run_rvv(self, machine: MVEMachine) -> None:
        emitter = RVVEmitter(machine)
        per_tile = max(1, min(self.blocks, machine.simd_lanes // _BLOCK_ELEMS))
        start = 0
        while start < self.blocks:
            count = min(per_tile, self.blocks - start)
            # A 1D ISA replicates the references by re-loading each row; each
            # packed register is built from 8 strided segments (one per
            # in-block column).
            for row in range(_BLOCK):
                machine.scalar(LOOP_SCALAR_OPS)
                top = emitter.load_multidim(
                    self.dtype,
                    self.top.address + start * _BLOCK * 4,
                    count,
                    _BLOCK,
                    1,
                    _BLOCK,
                )
                left = emitter.load_multidim(
                    self.dtype,
                    self.left.address + (start * _BLOCK + row) * 4,
                    count,
                    _BLOCK,
                    0,
                    _BLOCK,
                )
                one = machine.vsetdup(self.dtype, 1)
                blended = machine.vshr_imm(machine.vadd(machine.vadd(top, left), one), 1)
                emitter.store_multidim(
                    blended,
                    self.pred.address + (start * _BLOCK_ELEMS + row * _BLOCK) * 4,
                    count,
                    _BLOCK,
                    1,
                    _BLOCK_ELEMS,
                )
            start += count

    def reference(self) -> np.ndarray:
        top = self._top_ref[:, None, :].astype(np.int64)
        left = self._left_ref[:, :, None].astype(np.int64)
        pred = (top + left + 1) >> 1
        return pred.astype(np.int32).reshape(-1)

    def output(self) -> np.ndarray:
        return self.pred.read()

    def profile(self) -> KernelProfile:
        elements = self.blocks * _BLOCK_ELEMS
        return KernelProfile(
            name=self.name,
            element_bits=32,
            is_float=False,
            elements=elements,
            ops_per_element={"add": 2.0, "shift": 1.0},
            bytes_read=self.blocks * _BLOCK * 4 * 2,
            bytes_written=elements * 4,
            parallelism_1d=_BLOCK,
            dimensions=3,
        )
