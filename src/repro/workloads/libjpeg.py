"""libjpeg kernels (Image Processing, 2-3D): upsampling, color conversion.

``h2v2_upsample`` reproduces the random-pointer access pattern of Figure 4:
image rows live at arbitrary addresses (libjpeg allocates them separately),
so the highest dimension uses random base addresses while the lower
dimensions replicate each pixel horizontally.
"""

from __future__ import annotations

import numpy as np

from ..baselines.profile import KernelProfile
from ..intrinsics.machine import MVEMachine
from ..isa.datatypes import DataType
from ..isa.encoding import StrideMode
from .base import Kernel, LOOP_SCALAR_OPS, elementwise_1d
from .registry import register

__all__ = ["H2V2UpsampleKernel", "YccToRgbKernel", "QuantizeKernel"]

_M0 = int(StrideMode.ZERO)
_M1 = int(StrideMode.ONE)
_M2 = int(StrideMode.SEQUENTIAL)
_M3 = int(StrideMode.REGISTER)


@register
class H2V2UpsampleKernel(Kernel):
    """h2v2 upsample: replicate each pixel 2x horizontally from random rows."""

    name = "h2v2_upsample"
    library = "libjpeg"
    dims = "3D"
    dtype = DataType.UINT8
    description = "2x horizontal upsampling with per-row random base pointers"

    BASE_ROWS = 32
    BASE_COLS = 256

    def prepare(self) -> None:
        self.rows = max(4, int(self.BASE_ROWS * min(self.scale, 8.0)))
        self.cols = max(16, int(self.BASE_COLS * self.scale))
        image = self.rng.integers(0, 255, size=(self.rows, self.cols), dtype=np.int64)
        image = image.astype(np.uint8)
        # Rows are allocated at scattered addresses like libjpeg does.
        self._row_allocs = []
        row_addresses = []
        for r in range(self.rows):
            self.memory.allocate(DataType.UINT8, int(self.rng.integers(16, 128)))
            alloc = self.memory.allocate_array(image[r], DataType.UINT8)
            self._row_allocs.append(alloc)
            row_addresses.append(alloc.address)
        self.row_pointers = self.memory.allocate_array(
            np.asarray(row_addresses, dtype=np.uint64), DataType.UINT64
        )
        # Output rows are contiguous, each 2x wider.
        self.out = self.memory.allocate(DataType.UINT8, self.rows * self.cols * 2)
        self._image_ref = image.copy()

    def run_mve(self, machine: MVEMachine) -> None:
        rows_per_tile = max(1, min(self.rows, machine.simd_lanes // (2 * self.cols)))
        machine.vsetdimc(3)
        machine.vsetdiml(0, 2)
        machine.vsetdiml(1, self.cols)
        start = 0
        while start < self.rows:
            count = min(rows_per_tile, self.rows - start)
            machine.scalar(LOOP_SCALAR_OPS + count)
            machine.vsetdiml(2, count)
            # Random row pointers, pixels sequential, replicated twice.
            rows_val = machine.vrld(
                self.dtype, self.row_pointers.address + start * 8, (_M0, _M1)
            )
            # Output: dim0 stride 1, dim1 stride 2, dim2 stride 2*cols.
            machine.vsetststr(1, 2)
            machine.vsetststr(2, 2 * self.cols)
            machine.vsst(
                rows_val, self.out.address + start * 2 * self.cols, (_M1, _M3, _M3)
            )
            start += count

    def reference(self) -> np.ndarray:
        return np.repeat(self._image_ref, 2, axis=1).reshape(-1)

    def output(self) -> np.ndarray:
        return self.out.read()

    def profile(self) -> KernelProfile:
        elements = self.rows * self.cols * 2
        return KernelProfile(
            name=self.name,
            element_bits=8,
            is_float=False,
            elements=elements,
            ops_per_element={},
            bytes_read=self.rows * self.cols,
            bytes_written=elements,
            parallelism_1d=self.cols,
            dimensions=3,
        )


@register
class YccToRgbKernel(Kernel):
    """YCbCr to RGB conversion with fixed-point arithmetic."""

    name = "ycc_to_rgb"
    library = "libjpeg"
    dims = "2D"
    dtype = DataType.INT32
    description = "Fixed-point YCbCr to RGB color conversion"

    BASE_PIXELS = 32 * 1024

    def prepare(self) -> None:
        self.n = max(1024, int(self.BASE_PIXELS * self.scale))
        y = self.rng.integers(0, 255, size=self.n, dtype=np.int64).astype(np.int32)
        cb = self.rng.integers(0, 255, size=self.n, dtype=np.int64).astype(np.int32)
        cr = self.rng.integers(0, 255, size=self.n, dtype=np.int64).astype(np.int32)
        self.y = self.memory.allocate_array(y, self.dtype)
        self.cb = self.memory.allocate_array(cb, self.dtype)
        self.cr = self.memory.allocate_array(cr, self.dtype)
        self.r = self.memory.allocate(self.dtype, self.n)
        self.g = self.memory.allocate(self.dtype, self.n)
        self.b = self.memory.allocate(self.dtype, self.n)
        self._y_ref, self._cb_ref, self._cr_ref = y.copy(), cb.copy(), cr.copy()

    # fixed-point coefficients (x * 65536)
    _FIX_1_402 = 91881
    _FIX_0_714 = 46802
    _FIX_0_344 = 22554
    _FIX_1_772 = 116130

    def run_mve(self, machine: MVEMachine) -> None:
        lanes = machine.simd_lanes
        machine.vsetdimc(1)
        offset = 0
        while offset < self.n:
            tile = min(lanes, self.n - offset)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(0, tile)
            y = machine.vsld(self.dtype, self.y.address + offset * 4, (_M1,))
            cb = machine.vsld(self.dtype, self.cb.address + offset * 4, (_M1,))
            cr = machine.vsld(self.dtype, self.cr.address + offset * 4, (_M1,))
            half = machine.vsetdup(self.dtype, 128)
            cb_c = machine.vsub(cb, half)
            cr_c = machine.vsub(cr, half)
            r = machine.vadd(
                y,
                machine.vshr_imm(
                    machine.vmul(cr_c, machine.vsetdup(self.dtype, self._FIX_1_402)), 16
                ),
            )
            g = machine.vsub(
                machine.vsub(
                    y,
                    machine.vshr_imm(
                        machine.vmul(cb_c, machine.vsetdup(self.dtype, self._FIX_0_344)), 16
                    ),
                ),
                machine.vshr_imm(
                    machine.vmul(cr_c, machine.vsetdup(self.dtype, self._FIX_0_714)), 16
                ),
            )
            b = machine.vadd(
                y,
                machine.vshr_imm(
                    machine.vmul(cb_c, machine.vsetdup(self.dtype, self._FIX_1_772)), 16
                ),
            )
            machine.vsst(r, self.r.address + offset * 4, (_M1,))
            machine.vsst(g, self.g.address + offset * 4, (_M1,))
            machine.vsst(b, self.b.address + offset * 4, (_M1,))
            offset += tile

    def reference(self) -> np.ndarray:
        y = self._y_ref.astype(np.int64)
        cb = self._cb_ref.astype(np.int64) - 128
        cr = self._cr_ref.astype(np.int64) - 128
        r = y + ((cr * self._FIX_1_402) >> 16)
        g = y - ((cb * self._FIX_0_344) >> 16) - ((cr * self._FIX_0_714) >> 16)
        b = y + ((cb * self._FIX_1_772) >> 16)
        return np.concatenate([r, g, b]).astype(np.int32)

    def output(self) -> np.ndarray:
        return np.concatenate([self.r.read(), self.g.read(), self.b.read()])

    def profile(self) -> KernelProfile:
        return KernelProfile(
            name=self.name,
            element_bits=32,
            is_float=False,
            elements=self.n,
            ops_per_element={"mul": 4.0, "add": 4.0, "sub": 4.0, "shift": 4.0},
            bytes_read=self.n * 12,
            bytes_written=self.n * 12,
            parallelism_1d=self.n,
            dimensions=2,
        )


@register
class QuantizeKernel(Kernel):
    """DCT-coefficient quantisation: divide each coefficient by a table entry."""

    name = "quantize"
    library = "libjpeg"
    dims = "2D"
    dtype = DataType.INT32
    description = "Per-coefficient quantisation of 8x8 DCT blocks"

    BASE_BLOCKS = 256

    def prepare(self) -> None:
        self.blocks = max(4, int(self.BASE_BLOCKS * self.scale))
        coeffs = self.rng.integers(-2048, 2048, size=(self.blocks, 64), dtype=np.int64)
        qtable = self.rng.integers(1, 64, size=64, dtype=np.int64)
        self.coeffs = self.memory.allocate_array(coeffs.astype(np.int32).reshape(-1), self.dtype)
        self.qtable = self.memory.allocate_array(qtable.astype(np.int32), self.dtype)
        self.out = self.memory.allocate(self.dtype, self.blocks * 64)
        self._coeffs_ref = coeffs.copy()
        self._qtable_ref = qtable.copy()

    def run_mve(self, machine: MVEMachine) -> None:
        blocks_per_tile = max(1, min(self.blocks, machine.simd_lanes // 64))
        machine.vsetdimc(2)
        machine.vsetdiml(0, 64)
        machine.vsetldstr(1, 64)
        machine.vsetststr(1, 64)
        start = 0
        while start < self.blocks:
            count = min(blocks_per_tile, self.blocks - start)
            machine.scalar(LOOP_SCALAR_OPS)
            machine.vsetdiml(1, count)
            coeffs = machine.vsld(
                self.dtype, self.coeffs.address + start * 64 * 4, (_M1, _M3)
            )
            # The quantisation table is shared by every block (dim1 stride 0).
            qtable = machine.vsld(self.dtype, self.qtable.address, (_M1, _M0))
            machine.vsst(
                machine.vdiv(coeffs, qtable),
                self.out.address + start * 64 * 4,
                (_M1, _M3),
            )
            start += count

    def reference(self) -> np.ndarray:
        # The in-SRAM divider implements floor division (matching vdiv).
        quotient = self._coeffs_ref // self._qtable_ref[None, :]
        return quotient.astype(np.int32).reshape(-1)

    def output(self) -> np.ndarray:
        return self.out.read()

    def profile(self) -> KernelProfile:
        elements = self.blocks * 64
        return KernelProfile(
            name=self.name,
            element_bits=32,
            is_float=False,
            elements=elements,
            ops_per_element={"div": 1.0},
            bytes_read=elements * 4 + 64 * 4,
            bytes_written=elements * 4,
            parallelism_1d=64,
            dimensions=2,
        )
