"""MVE instruction-set architecture definitions."""

from .datatypes import DataType, DTypeInfo, DTYPE_INFO, parse_suffix
from .encoding import StrideMode, resolve_strides, MAX_DIMS
from .registers import (
    ControlRegisters,
    PhysicalRegisterFile,
    VectorShape,
    MAX_MASK_ELEMENTS,
)
from .instructions import (
    ArithmeticInstruction,
    ConfigInstruction,
    InstructionCategory,
    MemoryInstruction,
    MoveInstruction,
    MVEInstruction,
    Opcode,
    ScalarBlock,
    TraceEntry,
)

__all__ = [
    "DataType",
    "DTypeInfo",
    "DTYPE_INFO",
    "parse_suffix",
    "StrideMode",
    "resolve_strides",
    "MAX_DIMS",
    "ControlRegisters",
    "PhysicalRegisterFile",
    "VectorShape",
    "MAX_MASK_ELEMENTS",
    "ArithmeticInstruction",
    "ConfigInstruction",
    "InstructionCategory",
    "MemoryInstruction",
    "MoveInstruction",
    "MVEInstruction",
    "Opcode",
    "ScalarBlock",
    "TraceEntry",
]
