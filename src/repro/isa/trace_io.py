"""Compact columnar (de)serialization for MVE instruction traces.

A captured trace is a straight-line list of :data:`~repro.isa.instructions.TraceEntry`
objects -- typically thousands of small dataclasses whose fields are enums,
ints and short tuples.  Persisting them as row-oriented JSON would be both
large and slow, so the codec here turns a trace into a handful of parallel
numpy columns (fixed-width fields) plus CSR-style ``values``/``offsets``
pairs (variable-length tuple fields), packs the columns with
:func:`numpy.savez_compressed` and wraps the compressed bytes in a small
base64 JSON envelope.  The envelope is what travels through the
content-addressed result store -- including its HTTP remote tier, which only
speaks JSON records.

The round trip is exact: ``decode_trace(encode_trace(trace)) == trace``
entry for entry (dataclass equality), including empty-vs-populated masks,
``None`` immediates and scalar-block notes.  Exactness is what lets the
staged pipeline replay a cached trace through the timing simulator and
reproduce the fused capture+simulate path bit for bit.

The columnar intermediate representation is a public surface of its own:
:func:`trace_columns` / :func:`entries_from_columns` expose the raw numpy
columns without the compress/base64 envelope, which is what the
shared-memory trace arena (:mod:`repro.core.trace_arena`) ships between
the sweep parent and its pool workers -- same columns, same entry
reconstruction, so the arena path is exact for the same reason the
envelope path is.  :func:`scalar_notes` carries the one non-columnar
field (scalar-block note strings) alongside.
"""

from __future__ import annotations

import base64
import io
from typing import Sequence

import numpy as np

from .datatypes import DataType
from .instructions import (
    ArithmeticInstruction,
    ConfigInstruction,
    MemoryInstruction,
    MoveInstruction,
    Opcode,
    ScalarBlock,
    TraceEntry,
)

__all__ = [
    "TRACE_CODEC",
    "encode_trace",
    "decode_trace",
    "entries_from_columns",
    "scalar_notes",
    "trace_columnar_bytes",
    "trace_columns",
    "trace_payload_bytes",
]

#: codec identifier embedded in every payload; bump on incompatible changes
TRACE_CODEC = "npz-columnar-v1"

#: entry-kind discriminator column values
_KIND_SCALAR = 0
_KIND_CONFIG = 1
_KIND_MOVE = 2
_KIND_MEMORY = 3
_KIND_ARITH = 4

#: flag bits packed into the ``flags`` column
_FLAG_STORE = 1
_FLAG_RANDOM = 2
_FLAG_SPILL = 4
_FLAG_IMMEDIATE = 8

# Enum codes rely on definition order, which is part of the source the
# functional fingerprint hashes -- a reordering invalidates old payloads
# through the cache key before a stale decode could ever happen.
_OPCODES = tuple(Opcode)
_OPCODE_CODE = {opcode: index for index, opcode in enumerate(_OPCODES)}
_DTYPES = tuple(DataType)
_DTYPE_CODE = {dtype: index for index, dtype in enumerate(_DTYPES)}

#: variable-length tuple fields, each stored as values + CSR offsets
_VAR_COLUMNS = ("sources", "stride_modes", "random_bases", "strides", "shape", "mask")


class _VarColumn:
    """Accumulates one variable-length field as values plus CSR offsets."""

    def __init__(self) -> None:
        self.values: list[int] = []
        self.offsets: list[int] = [0]

    def append(self, items: Sequence[int]) -> None:
        self.values.extend(int(item) for item in items)
        self.offsets.append(len(self.values))

    def arrays(self, dtype) -> tuple[np.ndarray, np.ndarray]:
        return (
            np.asarray(self.values, dtype=dtype),
            np.asarray(self.offsets, dtype=np.int64),
        )


def trace_columns(trace: Sequence[TraceEntry]) -> dict[str, np.ndarray]:
    """The trace as its parallel numpy columns (the codec's IR).

    Fixed-width fields become one array per column; variable-length tuple
    fields become ``<name>_values``/``<name>_offsets`` CSR pairs.  The
    mapping is everything :func:`entries_from_columns` needs to rebuild the
    exact entry list except scalar-block note strings
    (:func:`scalar_notes`), which are not columnar.
    """
    n = len(trace)
    kind = np.zeros(n, dtype=np.int8)
    opcode = np.full(n, -1, dtype=np.int16)
    dtype_col = np.full(n, -1, dtype=np.int8)
    src_dtype = np.full(n, -1, dtype=np.int8)
    # fixed-width operand columns; meaning depends on the entry kind:
    #   scalar: count / loads / stores    config: operand_a / operand_b / -
    #   move:   dest / src / -            memory: register / - / -
    #   arith:  dest / - / -
    a = np.zeros(n, dtype=np.int64)
    b = np.zeros(n, dtype=np.int64)
    c = np.zeros(n, dtype=np.int64)
    base_address = np.zeros(n, dtype=np.int64)
    flags = np.zeros(n, dtype=np.uint8)
    immediate = np.zeros(n, dtype=np.float64)
    var = {name: _VarColumn() for name in _VAR_COLUMNS}

    for index, entry in enumerate(trace):
        empties = set(_VAR_COLUMNS)
        if isinstance(entry, ScalarBlock):
            kind[index] = _KIND_SCALAR
            a[index] = entry.count
            b[index] = entry.loads
            c[index] = entry.stores
        elif isinstance(entry, ConfigInstruction):
            kind[index] = _KIND_CONFIG
            opcode[index] = _OPCODE_CODE[entry.opcode]
            a[index] = entry.operand_a
            b[index] = entry.operand_b
        elif isinstance(entry, MoveInstruction):
            kind[index] = _KIND_MOVE
            opcode[index] = _OPCODE_CODE[entry.opcode]
            dtype_col[index] = _DTYPE_CODE[entry.dtype]
            if entry.src_dtype is not None:
                src_dtype[index] = _DTYPE_CODE[entry.src_dtype]
            a[index] = entry.dest
            b[index] = entry.src
        elif isinstance(entry, MemoryInstruction):
            kind[index] = _KIND_MEMORY
            opcode[index] = _OPCODE_CODE[entry.opcode]
            dtype_col[index] = _DTYPE_CODE[entry.dtype]
            a[index] = entry.register
            base_address[index] = entry.base_address
            flags[index] = (
                (_FLAG_STORE if entry.is_store else 0)
                | (_FLAG_RANDOM if entry.is_random else 0)
                | (_FLAG_SPILL if entry.is_spill else 0)
            )
            var["stride_modes"].append(entry.stride_modes)
            var["random_bases"].append(entry.random_bases)
            var["strides"].append(entry.resolved_strides)
            var["shape"].append(entry.shape_lengths)
            var["mask"].append(entry.mask)
            empties -= {"stride_modes", "random_bases", "strides", "shape", "mask"}
        elif isinstance(entry, ArithmeticInstruction):
            kind[index] = _KIND_ARITH
            opcode[index] = _OPCODE_CODE[entry.opcode]
            dtype_col[index] = _DTYPE_CODE[entry.dtype]
            a[index] = entry.dest
            if entry.immediate is not None:
                flags[index] = _FLAG_IMMEDIATE
                immediate[index] = entry.immediate
            var["sources"].append(entry.sources)
            var["shape"].append(entry.shape_lengths)
            var["mask"].append(entry.mask)
            empties -= {"sources", "shape", "mask"}
        else:
            raise TypeError(f"cannot encode trace entry of type {type(entry).__name__}")
        for name in empties:
            var[name].append(())

    columns = {
        "kind": kind,
        "opcode": opcode,
        "dtype": dtype_col,
        "src_dtype": src_dtype,
        "a": a,
        "b": b,
        "c": c,
        "base_address": base_address,
        "flags": flags,
        "immediate": immediate,
    }
    for name, column in var.items():
        dtype = np.uint8 if name == "mask" else np.int64
        values, offsets = column.arrays(dtype)
        columns[f"{name}_values"] = values
        columns[f"{name}_offsets"] = offsets
    return columns


def scalar_notes(trace: Sequence[TraceEntry]) -> list[list]:
    """Sparse ``[index, note]`` pairs for scalar blocks carrying a note --
    the only trace field that does not fit the columnar IR."""
    return [
        [index, entry.note]
        for index, entry in enumerate(trace)
        if isinstance(entry, ScalarBlock) and entry.note
    ]


def encode_trace(trace: Sequence[TraceEntry]) -> dict:
    """Encode a trace into its JSON-safe columnar payload."""
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **trace_columns(trace))
    payload = {
        "codec": TRACE_CODEC,
        "entries": len(trace),
        "npz_b64": base64.b64encode(buffer.getvalue()).decode("ascii"),
    }
    notes = scalar_notes(trace)
    if notes:
        payload["scalar_notes"] = notes
    return payload


def trace_payload_bytes(payload: dict) -> int:
    """Size of the compressed column data inside a payload, in bytes."""
    return len(payload.get("npz_b64", "")) * 3 // 4


def trace_columnar_bytes(columns) -> int:
    """Decoded columnar footprint: the bytes the raw column arrays occupy
    (what one arena segment holds, and what each pickled-trace task used
    to re-materialize)."""
    return int(sum(column.nbytes for column in columns.values()))


def _slices(values: np.ndarray, offsets: np.ndarray, convert) -> list[tuple]:
    items = values.tolist()
    bounds = offsets.tolist()
    return [
        tuple(convert(item) for item in items[start:stop])
        for start, stop in zip(bounds, bounds[1:])
    ]


def decode_trace(payload: dict) -> list[TraceEntry]:
    """Rebuild the exact trace-entry list from an :func:`encode_trace` payload."""
    if not isinstance(payload, dict) or payload.get("codec") != TRACE_CODEC:
        raise ValueError(f"unsupported trace payload: {payload.get('codec') if isinstance(payload, dict) else payload!r}")
    try:
        raw = base64.b64decode(payload["npz_b64"])
        with np.load(io.BytesIO(raw)) as archive:
            columns = {name: archive[name] for name in archive.files}
    except ValueError:
        raise
    except Exception as error:
        # Truncated/bit-flipped column data surfaces as zipfile.BadZipFile,
        # zlib.error, OSError, ... depending on where the corruption lands.
        # Normalize to ValueError: "corrupt payload" is one condition to
        # callers, which degrade it to a recapture.
        raise ValueError(f"corrupt trace payload: {error}") from error

    return entries_from_columns(
        columns, int(payload["entries"]), payload.get("scalar_notes", ())
    )


def entries_from_columns(
    columns, n: int, notes: Sequence[Sequence] = ()
) -> list[TraceEntry]:
    """Rebuild the exact entry list from the columnar IR.

    ``columns`` is any mapping of column name to array-like (freshly loaded
    npz arrays, or the zero-copy shared-memory views the trace arena
    attaches); ``notes`` the sparse :func:`scalar_notes` pairs.  The
    reconstruction copies everything out of the arrays, so the backing
    buffers may be released as soon as this returns.
    """
    if len(columns["kind"]) != n:
        raise ValueError(
            f"trace payload declares {n} entries but carries {len(columns['kind'])}"
        )
    kind = columns["kind"].tolist()
    opcode = columns["opcode"].tolist()
    dtype_col = columns["dtype"].tolist()
    src_dtype = columns["src_dtype"].tolist()
    a = columns["a"].tolist()
    b = columns["b"].tolist()
    c = columns["c"].tolist()
    base_address = columns["base_address"].tolist()
    flags = columns["flags"].tolist()
    immediate = columns["immediate"].tolist()
    var = {
        name: _slices(
            columns[f"{name}_values"],
            columns[f"{name}_offsets"],
            bool if name == "mask" else int,
        )
        for name in _VAR_COLUMNS
    }
    notes = {index: note for index, note in notes}

    trace: list[TraceEntry] = []
    for i in range(n):
        entry_kind = kind[i]
        if entry_kind == _KIND_SCALAR:
            trace.append(
                ScalarBlock(count=a[i], loads=b[i], stores=c[i], note=notes.get(i, ""))
            )
            continue
        op = _OPCODES[opcode[i]]
        if entry_kind == _KIND_CONFIG:
            trace.append(ConfigInstruction(op, operand_a=a[i], operand_b=b[i]))
        elif entry_kind == _KIND_MOVE:
            trace.append(
                MoveInstruction(
                    op,
                    dtype=_DTYPES[dtype_col[i]],
                    dest=a[i],
                    src=b[i],
                    src_dtype=None if src_dtype[i] < 0 else _DTYPES[src_dtype[i]],
                )
            )
        elif entry_kind == _KIND_MEMORY:
            trace.append(
                MemoryInstruction(
                    op,
                    dtype=_DTYPES[dtype_col[i]],
                    register=a[i],
                    base_address=base_address[i],
                    stride_modes=var["stride_modes"][i],
                    is_store=bool(flags[i] & _FLAG_STORE),
                    is_random=bool(flags[i] & _FLAG_RANDOM),
                    random_bases=var["random_bases"][i],
                    resolved_strides=var["strides"][i],
                    shape_lengths=var["shape"][i],
                    mask=var["mask"][i],
                    is_spill=bool(flags[i] & _FLAG_SPILL),
                )
            )
        elif entry_kind == _KIND_ARITH:
            trace.append(
                ArithmeticInstruction(
                    op,
                    dtype=_DTYPES[dtype_col[i]],
                    dest=a[i],
                    sources=var["sources"][i],
                    immediate=immediate[i] if flags[i] & _FLAG_IMMEDIATE else None,
                    shape_lengths=var["shape"][i],
                    mask=var["mask"][i],
                )
            )
        else:
            raise ValueError(f"unknown trace entry kind {entry_kind}")
    return trace
