"""MVE data types.

The MVE ISA (Table II of the paper) supports 8/16/32/64-bit signed and
unsigned integers and 16/32-bit floating point values.  Each type is denoted
by an assembly suffix (``b``, ``w``, ``dw``, ``qw``, ``hf``, ``f``) that is
appended to intrinsic names, e.g. ``vadd_dw`` or ``vsld_b``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["DataType", "DTypeInfo", "DTYPE_INFO", "parse_suffix"]


class DataType(enum.Enum):
    """Element types supported by MVE instructions."""

    INT8 = "b"
    UINT8 = "ub"
    INT16 = "w"
    UINT16 = "uw"
    INT32 = "dw"
    UINT32 = "udw"
    INT64 = "qw"
    UINT64 = "uqw"
    FLOAT16 = "hf"
    FLOAT32 = "f"

    @property
    def suffix(self) -> str:
        """Assembly suffix used in intrinsic names (e.g. ``dw`` in ``vadd_dw``)."""
        return self.value

    @property
    def bits(self) -> int:
        return DTYPE_INFO[self].bits

    @property
    def bytes(self) -> int:
        return DTYPE_INFO[self].bits // 8

    @property
    def is_float(self) -> bool:
        return DTYPE_INFO[self].is_float

    @property
    def is_signed(self) -> bool:
        return DTYPE_INFO[self].is_signed

    @property
    def numpy_dtype(self) -> np.dtype:
        return DTYPE_INFO[self].numpy_dtype

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DataType.{self.name}"


@dataclass(frozen=True)
class DTypeInfo:
    """Static properties of a :class:`DataType`."""

    bits: int
    is_float: bool
    is_signed: bool
    numpy_dtype: np.dtype


DTYPE_INFO = {
    DataType.INT8: DTypeInfo(8, False, True, np.dtype(np.int8)),
    DataType.UINT8: DTypeInfo(8, False, False, np.dtype(np.uint8)),
    DataType.INT16: DTypeInfo(16, False, True, np.dtype(np.int16)),
    DataType.UINT16: DTypeInfo(16, False, False, np.dtype(np.uint16)),
    DataType.INT32: DTypeInfo(32, False, True, np.dtype(np.int32)),
    DataType.UINT32: DTypeInfo(32, False, False, np.dtype(np.uint32)),
    DataType.INT64: DTypeInfo(64, False, True, np.dtype(np.int64)),
    DataType.UINT64: DTypeInfo(64, False, False, np.dtype(np.uint64)),
    DataType.FLOAT16: DTypeInfo(16, True, True, np.dtype(np.float16)),
    DataType.FLOAT32: DTypeInfo(32, True, True, np.dtype(np.float32)),
}

_SUFFIX_MAP = {dt.value: dt for dt in DataType}


def parse_suffix(suffix: str) -> DataType:
    """Return the :class:`DataType` for an assembly suffix such as ``"dw"``."""
    try:
        return _SUFFIX_MAP[suffix]
    except KeyError:
        raise ValueError(f"unknown MVE data type suffix: {suffix!r}") from None
