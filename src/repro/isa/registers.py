"""Logical and physical register abstractions plus control registers.

Section III-B of the paper: in-cache physical registers (PRs) span all
compute-enabled SRAM arrays.  With the default geometry (32 arrays of
256x256 bit-cells) every PR holds 8192 elements, one per bit-line (SIMD
lane), laid out vertically (bit-serial).  The number of *available* PRs is
not fixed: it depends on the element width because wider elements consume
more word-lines.

Programmers never address physical registers directly.  They operate on
*logical* multi-dimensional registers whose shape is defined by the
``DimCount`` / ``Dim[i].Length`` control registers; the MVE controller
flattens logical indices onto the SIMD lanes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .encoding import MAX_DIMS

__all__ = [
    "VectorShape",
    "PhysicalRegisterFile",
    "ControlRegisters",
    "MAX_MASK_ELEMENTS",
]

#: The highest dimension is limited to 256 elements so the dimension-level
#: mask control register stays one bit per element (Section III-E).
MAX_MASK_ELEMENTS = 256


@dataclass(frozen=True)
class VectorShape:
    """Shape of a logical multi-dimensional vector register.

    ``lengths`` is ordered from dimension 0 (innermost) upwards.
    """

    lengths: tuple[int, ...]

    def __post_init__(self) -> None:
        if not 1 <= len(self.lengths) <= MAX_DIMS:
            raise ValueError(f"dimension count must be 1..{MAX_DIMS}, got {len(self.lengths)}")
        if any(length <= 0 for length in self.lengths):
            raise ValueError(f"dimension lengths must be positive, got {self.lengths}")

    @property
    def dim_count(self) -> int:
        return len(self.lengths)

    @property
    def total_elements(self) -> int:
        total = 1
        for length in self.lengths:
            total *= length
        return total

    @property
    def highest_dim_length(self) -> int:
        return self.lengths[-1]

    def flatten_index(self, indices: Sequence[int]) -> int:
        """Map a multi-dimensional logical index onto a SIMD lane number.

        Dimension 0 is the fastest-varying dimension, matching Algorithm 1
        and Figures 3-5 of the paper.
        """
        if len(indices) != self.dim_count:
            raise ValueError(f"expected {self.dim_count} indices, got {len(indices)}")
        lane = 0
        multiplier = 1
        for index, length in zip(indices, self.lengths):
            if not 0 <= index < length:
                raise IndexError(f"index {index} out of range for dimension of length {length}")
            lane += index * multiplier
            multiplier *= length
        return lane

    def unflatten_lane(self, lane: int) -> tuple[int, ...]:
        """Inverse of :meth:`flatten_index`."""
        if not 0 <= lane < self.total_elements:
            raise IndexError(f"lane {lane} out of range for shape {self.lengths}")
        indices = []
        remaining = lane
        for length in self.lengths:
            indices.append(remaining % length)
            remaining //= length
        return tuple(indices)


@dataclass(frozen=True)
class PhysicalRegisterFile:
    """Capacity model of the in-cache physical register file.

    The register file is carved out of the compute half of the L2 cache:
    ``num_arrays`` SRAM arrays, each ``array_rows`` word-lines by
    ``array_cols`` bit-lines.  A physical register of ``element_bits`` wide
    elements occupies ``element_bits`` word-lines in every array, so the
    number of simultaneously-live registers is ``array_rows // element_bits``.
    """

    num_arrays: int = 32
    array_rows: int = 256
    array_cols: int = 256

    @property
    def simd_lanes(self) -> int:
        """Number of bit-serial SIMD lanes (one per bit-line)."""
        return self.num_arrays * self.array_cols

    def register_count(self, element_bits: int) -> int:
        """Number of physical registers available for a given element width."""
        if element_bits <= 0:
            raise ValueError("element width must be positive")
        return self.array_rows // element_bits

    def lanes_per_array(self) -> int:
        return self.array_cols


@dataclass
class ControlRegisters:
    """MVE controller control-register state (Section III-B / V-B).

    The same structure is mirrored by the LSQ address decoder in the scalar
    core so that store address ranges can be computed for memory
    disambiguation (Equation 2).
    """

    dim_count: int = 1
    dim_lengths: list[int] = field(default_factory=lambda: [1, 1, 1, 1])
    load_strides: list[int] = field(default_factory=lambda: [0, 0, 0, 0])
    store_strides: list[int] = field(default_factory=lambda: [0, 0, 0, 0])
    element_bits: int = 32
    #: one mask bit per element of the highest dimension; True = enabled
    dim_mask: list[bool] = field(default_factory=lambda: [True] * MAX_MASK_ELEMENTS)

    def set_dim_count(self, count: int) -> None:
        if not 1 <= count <= MAX_DIMS:
            raise ValueError(f"dimension count must be 1..{MAX_DIMS}, got {count}")
        self.dim_count = count

    def set_dim_length(self, dim: int, length: int) -> None:
        if not 0 <= dim < MAX_DIMS:
            raise ValueError(f"dimension index must be 0..{MAX_DIMS - 1}, got {dim}")
        if length <= 0:
            raise ValueError(f"dimension length must be positive, got {length}")
        self.dim_lengths[dim] = length

    def set_load_stride(self, dim: int, stride: int) -> None:
        self._check_dim(dim)
        self.load_strides[dim] = stride

    def set_store_stride(self, dim: int, stride: int) -> None:
        self._check_dim(dim)
        self.store_strides[dim] = stride

    def set_mask(self, element: int, enabled: bool = True) -> None:
        """(Un)mask one element of the highest dimension."""
        if not 0 <= element < MAX_MASK_ELEMENTS:
            raise ValueError(f"mask element must be 0..{MAX_MASK_ELEMENTS - 1}, got {element}")
        self.dim_mask[element] = enabled

    def reset_mask(self) -> None:
        self.dim_mask = [True] * MAX_MASK_ELEMENTS

    def set_element_bits(self, bits: int) -> None:
        if bits not in (8, 16, 32, 64):
            raise ValueError(f"element width must be 8/16/32/64 bits, got {bits}")
        self.element_bits = bits

    @property
    def shape(self) -> VectorShape:
        return VectorShape(tuple(self.dim_lengths[: self.dim_count]))

    def active_mask(self) -> list[bool]:
        """Mask bits for the configured highest dimension.

        The mask control register holds :data:`MAX_MASK_ELEMENTS` bits.  When
        the highest dimension is longer than that, each mask bit covers a
        contiguous group of elements (coarser masking granularity), which is
        how the controller keeps the CR size bounded.
        """
        length = self.shape.highest_dim_length
        if length <= MAX_MASK_ELEMENTS:
            return self.dim_mask[:length]
        group = (length + MAX_MASK_ELEMENTS - 1) // MAX_MASK_ELEMENTS
        groups = (length + group - 1) // group
        expanded = np.repeat(np.asarray(self.dim_mask[:groups], dtype=bool), group)
        return expanded[:length].tolist()

    def copy(self) -> "ControlRegisters":
        clone = ControlRegisters(
            dim_count=self.dim_count,
            dim_lengths=list(self.dim_lengths),
            load_strides=list(self.load_strides),
            store_strides=list(self.store_strides),
            element_bits=self.element_bits,
            dim_mask=list(self.dim_mask),
        )
        return clone

    @staticmethod
    def _check_dim(dim: int) -> None:
        if not 0 <= dim < MAX_DIMS:
            raise ValueError(f"dimension index must be 0..{MAX_DIMS - 1}, got {dim}")
