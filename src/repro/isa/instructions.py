"""MVE instruction definitions (Table II of the paper).

Instructions fall into four categories used throughout the evaluation
(Figure 11): ``CONFIG``, ``MOVE``, ``MEMORY`` and ``ARITHMETIC``.  A trace
produced by the intrinsic library is a list of :class:`MVEInstruction`
objects interleaved with :class:`ScalarBlock` markers that account for the
scalar instructions the CPU core executes between vector instructions
(loop control, pointer arithmetic, mask computation, ...).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from .datatypes import DataType
from .encoding import StrideMode

__all__ = [
    "InstructionCategory",
    "Opcode",
    "MVEInstruction",
    "ConfigInstruction",
    "MoveInstruction",
    "MemoryInstruction",
    "ArithmeticInstruction",
    "ScalarBlock",
    "TraceEntry",
    "OPCODE_CATEGORY",
]


class InstructionCategory(enum.Enum):
    CONFIG = "config"
    MOVE = "move"
    MEMORY = "memory"
    ARITHMETIC = "arithmetic"


class Opcode(enum.Enum):
    """The 29 MVE operations of Table II plus stride-CR setters."""

    # Config
    SET_DIM_COUNT = "vsetdimc"
    SET_DIM_LENGTH = "vsetdiml"
    SET_MASK = "vsetmask"
    UNSET_MASK = "vunsetmask"
    SET_WIDTH = "vsetwidth"
    SET_LOAD_STRIDE = "vsetldstr"
    SET_STORE_STRIDE = "vsetststr"
    # Move
    CONVERT = "vcvt"
    COPY = "vcpy"
    # Memory access
    STRIDED_LOAD = "vsld"
    RANDOM_LOAD = "vrld"
    STRIDED_STORE = "vsst"
    RANDOM_STORE = "vrst"
    # Arithmetic
    SET_DUP = "vsetdup"
    SHIFT_IMM = "vshi"
    ROTATE_IMM = "vroti"
    SHIFT_REG = "vshr"
    ADD = "vadd"
    SUB = "vsub"
    MUL = "vmul"
    DIV = "vdiv"
    MIN = "vmin"
    MAX = "vmax"
    AND = "vand"
    OR = "vor"
    XOR = "vxor"
    NOT = "vnot"
    GT = "vgt"
    GTE = "vgte"
    LT = "vlt"
    LTE = "vlte"
    EQ = "veq"
    NEQ = "vneq"
    MAC = "vmac"


OPCODE_CATEGORY = {
    Opcode.SET_DIM_COUNT: InstructionCategory.CONFIG,
    Opcode.SET_DIM_LENGTH: InstructionCategory.CONFIG,
    Opcode.SET_MASK: InstructionCategory.CONFIG,
    Opcode.UNSET_MASK: InstructionCategory.CONFIG,
    Opcode.SET_WIDTH: InstructionCategory.CONFIG,
    Opcode.SET_LOAD_STRIDE: InstructionCategory.CONFIG,
    Opcode.SET_STORE_STRIDE: InstructionCategory.CONFIG,
    Opcode.CONVERT: InstructionCategory.MOVE,
    Opcode.COPY: InstructionCategory.MOVE,
    Opcode.STRIDED_LOAD: InstructionCategory.MEMORY,
    Opcode.RANDOM_LOAD: InstructionCategory.MEMORY,
    Opcode.STRIDED_STORE: InstructionCategory.MEMORY,
    Opcode.RANDOM_STORE: InstructionCategory.MEMORY,
}


def _category_for(opcode: Opcode) -> InstructionCategory:
    return OPCODE_CATEGORY.get(opcode, InstructionCategory.ARITHMETIC)


@dataclass
class MVEInstruction:
    """Base class for decoded MVE instructions."""

    opcode: Opcode

    @property
    def category(self) -> InstructionCategory:
        return _category_for(self.opcode)

    @property
    def is_vector_memory(self) -> bool:
        return self.category is InstructionCategory.MEMORY

    def assembly(self) -> str:
        return self.opcode.value


@dataclass
class ConfigInstruction(MVEInstruction):
    """Configuration instruction: sets a control register in the controller."""

    operand_a: int = 0
    operand_b: int = 0

    def assembly(self) -> str:
        return f"{self.opcode.value} {self.operand_a}, {self.operand_b}"


@dataclass
class MoveInstruction(MVEInstruction):
    """Register-to-register copy or type conversion."""

    dtype: DataType = DataType.INT32
    dest: int = 0
    src: int = 0
    src_dtype: Optional[DataType] = None

    def assembly(self) -> str:
        return f"{self.opcode.value}_{self.dtype.suffix} v{self.dest}, v{self.src}"


@dataclass
class MemoryInstruction(MVEInstruction):
    """Multi-dimensional strided or random vector load/store.

    For strided accesses ``base_address`` is a single byte address.  For
    random accesses it is the address of a pointer array whose entries give
    the base address of each element of the highest dimension; the resolved
    pointer values are captured in ``random_bases`` by the trace generator so
    the timing simulator does not need to re-read memory.
    """

    dtype: DataType = DataType.INT32
    register: int = 0
    base_address: int = 0
    stride_modes: tuple[int, ...] = ()
    is_store: bool = False
    is_random: bool = False
    random_bases: tuple[int, ...] = ()
    #: resolved element strides (filled in by the trace generator using the
    #: control registers active at emission time)
    resolved_strides: tuple[int, ...] = ()
    #: snapshot of the logical shape at emission time
    shape_lengths: tuple[int, ...] = ()
    #: snapshot of the highest-dimension mask at emission time
    mask: tuple[bool, ...] = ()
    #: set by the register allocator for spill/fill traffic it inserts
    is_spill: bool = False

    @property
    def total_elements(self) -> int:
        total = 1
        for length in self.shape_lengths:
            total *= length
        return total

    def active_elements(self) -> int:
        """Number of elements actually transferred after dimension masking."""
        if not self.shape_lengths:
            return 0
        inner = 1
        for length in self.shape_lengths[:-1]:
            inner *= length
        if not self.mask:
            return self.total_elements
        return inner * sum(self.mask)

    def assembly(self) -> str:
        modes = ",".join(str(int(m)) for m in self.stride_modes)
        return (
            f"{self.opcode.value}_{self.dtype.suffix} v{self.register}, "
            f"0x{self.base_address:x}, [{modes}]"
        )


@dataclass
class ArithmeticInstruction(MVEInstruction):
    """Element-wise arithmetic / comparison / shift on all SIMD lanes."""

    dtype: DataType = DataType.INT32
    dest: int = 0
    sources: tuple[int, ...] = ()
    immediate: Optional[float] = None
    #: snapshot of the logical shape at emission time (for utilization stats)
    shape_lengths: tuple[int, ...] = ()
    mask: tuple[bool, ...] = ()

    def assembly(self) -> str:
        srcs = ", ".join(f"v{s}" for s in self.sources)
        imm = f", #{self.immediate}" if self.immediate is not None else ""
        return f"{self.opcode.value}_{self.dtype.suffix} v{self.dest}, {srcs}{imm}"


@dataclass
class ScalarBlock:
    """A run of scalar instructions executed by the CPU core.

    ``count`` is the number of dynamic scalar instructions; ``loads`` and
    ``stores`` count how many of them access memory (used by the cache model
    when estimating the scalar core's share of the memory system).
    """

    count: int
    loads: int = 0
    stores: int = 0
    note: str = ""

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("scalar instruction count must be non-negative")
        if self.loads + self.stores > self.count:
            raise ValueError("memory scalar ops cannot exceed total scalar ops")


TraceEntry = Union[MVEInstruction, ScalarBlock]
