"""Stride-mode encoding for multi-dimensional memory accesses.

Section III-C of the paper: instead of encoding an absolute 16-bit stride per
dimension, MVE encodes a 2-bit *stride mode* per dimension.

======  ==================================================================
Mode    Meaning
======  ==================================================================
0       stride of 0 (replication across this dimension)
1       stride of 1 element (sequential access)
2       sequential across the lower dimension: ``S_i = S_{i-1} * Len_{i-1}``
3       stride taken from the per-dimension load/store stride control
        register (set by ``vsetldstr`` / ``vsetststr``)
======  ==================================================================

Strides are expressed in *elements*; the address generator multiplies by the
element size in bytes.
"""

from __future__ import annotations

import enum
from typing import Sequence

__all__ = ["StrideMode", "resolve_strides", "MAX_DIMS"]

#: MVE supports at most four dimensions (Section III-B).
MAX_DIMS = 4


class StrideMode(enum.IntEnum):
    """2-bit per-dimension stride mode."""

    ZERO = 0
    ONE = 1
    SEQUENTIAL = 2
    REGISTER = 3


def resolve_strides(
    modes: Sequence[int],
    dim_lengths: Sequence[int],
    stride_registers: Sequence[int],
) -> list[int]:
    """Resolve per-dimension stride modes into element strides.

    Parameters
    ----------
    modes:
        One stride mode per dimension (dimension 0 first).  Entries may be
        :class:`StrideMode` members or plain integers 0-3.
    dim_lengths:
        Configured dimension lengths (``Dim[i].Length`` control registers).
    stride_registers:
        Per-dimension stride control registers used by mode 3.

    Returns
    -------
    list[int]
        The stride, in elements, for each dimension.
    """
    if len(modes) > MAX_DIMS:
        raise ValueError(f"at most {MAX_DIMS} dimensions are supported, got {len(modes)}")
    if len(modes) > len(dim_lengths):
        raise ValueError("more stride modes than configured dimensions")

    strides: list[int] = []
    for i, raw_mode in enumerate(modes):
        mode = StrideMode(raw_mode)
        if mode is StrideMode.ZERO:
            stride = 0
        elif mode is StrideMode.ONE:
            stride = 1
        elif mode is StrideMode.SEQUENTIAL:
            if i == 0:
                # For the innermost dimension "sequential" degenerates to 1.
                stride = 1
            else:
                stride = strides[i - 1] * dim_lengths[i - 1]
        else:  # StrideMode.REGISTER
            stride = stride_registers[i]
        strides.append(stride)
    return strides
