"""repro: reproduction of "Multi-Dimensional Vector ISA Extension for Mobile
In-Cache Computing" (HPCA 2025).

Public API overview
-------------------

* :mod:`repro.isa` -- MVE instruction set (data types, stride modes,
  instructions, control/physical registers).
* :mod:`repro.intrinsics` -- functional MVE machine: write kernels against
  the intrinsic API, get numerically-correct results plus instruction traces.
* :mod:`repro.memory` -- flat memory, DRAM timing, cache hierarchy.
* :mod:`repro.sram` -- in-SRAM compute schemes (bit-serial, bit-parallel,
  bit-hybrid, associative) and the transpose memory unit.
* :mod:`repro.compiler` -- liveness, list scheduling, register allocation.
* :mod:`repro.core` -- MVE controller and end-to-end timing/energy/area
  simulation.
* :mod:`repro.baselines` -- Arm Neon, mobile GPU, Duality Cache, RVV models.
* :mod:`repro.workloads` -- the Swan-like kernel suite (12 libraries).
* :mod:`repro.experiments` -- one module per table/figure of the paper.
"""

from .core.config import MachineConfig, default_config
from .core.results import SimulationResult
from .core.simulator import MVESimulator, simulate_kernel
from .intrinsics.machine import MVEMachine
from .isa.datatypes import DataType
from .memory.flatmem import FlatMemory

__version__ = "1.0.0"

__all__ = [
    "MachineConfig",
    "default_config",
    "SimulationResult",
    "MVESimulator",
    "simulate_kernel",
    "MVEMachine",
    "DataType",
    "FlatMemory",
    "__version__",
]
