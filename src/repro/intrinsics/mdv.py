"""Multi-Dimensional Variable (``__mdv``) handles.

In the paper's C/C++ programming model, MVE values are declared as ``__mdv``
variables concatenated with a data-type suffix (``__mdvdw``, ``__mdvf``,
...).  Here an :class:`MDV` is the Python equivalent: a handle to a virtual
vector register produced by the functional machine.  It carries the element
type, the logical shape it was created under, and (for the functional
simulator) the concrete element values laid out in SIMD-lane order
(dimension 0 fastest-varying).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..isa.datatypes import DataType
from ..isa.registers import VectorShape

__all__ = ["MDV"]


@dataclass
class MDV:
    """A virtual multi-dimensional vector register value."""

    register: int
    dtype: DataType
    shape: VectorShape
    values: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=self.dtype.numpy_dtype).reshape(-1)
        if self.values.size != self.shape.total_elements:
            raise ValueError(
                f"value count {self.values.size} does not match shape "
                f"{self.shape.lengths} ({self.shape.total_elements} elements)"
            )

    @property
    def total_elements(self) -> int:
        return self.shape.total_elements

    def as_ndarray(self) -> np.ndarray:
        """Values reshaped to the logical dimensions (highest dimension first)."""
        return self.values.reshape(tuple(reversed(self.shape.lengths)))

    def lane(self, *indices: int) -> np.generic:
        """Element at a multi-dimensional logical index (dim 0 first)."""
        return self.values[self.shape.flatten_index(indices)]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"MDV(v{self.register}, {self.dtype.name}, shape={self.shape.lengths}, "
            f"n={self.total_elements})"
        )
