"""Functional MVE machine: executes intrinsics and records instruction traces.

This is the reproduction's stand-in for the paper's intrinsic library plus
DynamoRIO trace capture.  Kernels are written against the methods of
:class:`MVEMachine`; every call

1. computes the numerically-correct result on a flat memory model (so the
   kernel can be validated against a numpy reference), and
2. appends the corresponding :class:`~repro.isa.instructions.MVEInstruction`
   to the machine's trace, which the timing simulator and the compiler later
   consume.

Scalar work that the CPU core performs between vector instructions (loop
control, pointer arithmetic, mask value computation) is accounted for with
:meth:`MVEMachine.scalar`.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..isa.datatypes import DataType
from ..isa.encoding import StrideMode, resolve_strides
from ..isa.instructions import (
    ArithmeticInstruction,
    ConfigInstruction,
    InstructionCategory,
    MemoryInstruction,
    MoveInstruction,
    MVEInstruction,
    Opcode,
    ScalarBlock,
    TraceEntry,
)
from ..isa.registers import ControlRegisters, VectorShape
from ..memory.flatmem import FlatMemory
from .mdv import MDV

__all__ = ["MVEMachine", "TraceStats"]


class TraceStats:
    """Dynamic instruction statistics over a recorded trace."""

    def __init__(self, trace: Sequence[TraceEntry]):
        self.config = 0
        self.move = 0
        self.memory = 0
        self.arithmetic = 0
        self.scalar = 0
        self.scalar_loads = 0
        self.scalar_stores = 0
        #: dynamic count per opcode mnemonic (``vadd`` -> 123)
        self.opcodes: dict[str, int] = {}
        for entry in trace:
            if isinstance(entry, ScalarBlock):
                self.scalar += entry.count
                self.scalar_loads += entry.loads
                self.scalar_stores += entry.stores
                continue
            mnemonic = entry.opcode.value
            self.opcodes[mnemonic] = self.opcodes.get(mnemonic, 0) + 1
            if entry.category is InstructionCategory.CONFIG:
                self.config += 1
            elif entry.category is InstructionCategory.MOVE:
                self.move += 1
            elif entry.category is InstructionCategory.MEMORY:
                self.memory += 1
            else:
                self.arithmetic += 1

    @property
    def vector_total(self) -> int:
        return self.config + self.move + self.memory + self.arithmetic

    def as_dict(self) -> dict[str, int]:
        return {
            "config": self.config,
            "move": self.move,
            "memory": self.memory,
            "arithmetic": self.arithmetic,
            "vector_total": self.vector_total,
            "scalar": self.scalar,
        }


class MVEMachine:
    """Functional simulator and trace recorder for the MVE intrinsic API."""

    def __init__(
        self,
        memory: Optional[FlatMemory] = None,
        simd_lanes: int = 8192,
        record_values: bool = True,
    ):
        self.memory = memory if memory is not None else FlatMemory()
        self.simd_lanes = simd_lanes
        self.record_values = record_values
        self.cr = ControlRegisters()
        self.trace: list[TraceEntry] = []
        self._next_register = 0

    @classmethod
    def for_capture(
        cls, memory: Optional[FlatMemory] = None, simd_lanes: int = 8192
    ) -> "MVEMachine":
        """A machine configured for the staged pipeline's capture phase.

        Value recording is off: every intrinsic still emits its full
        timing-relevant instruction (addresses, strides, masks, resolved
        random bases), but no payload data is read from or written to flat
        memory, so capture is cheap and the recorded trace is identical to
        the value-recording one (pinned by the regression suite).
        """
        return cls(memory, simd_lanes=simd_lanes, record_values=False)

    # ------------------------------------------------------------------ #
    # bookkeeping helpers
    # ------------------------------------------------------------------ #

    def reset_trace(self) -> None:
        self.trace = []
        self._next_register = 0
        self.cr = ControlRegisters()

    def stats(self) -> TraceStats:
        return TraceStats(self.trace)

    def _emit(self, instruction: TraceEntry) -> None:
        self.trace.append(instruction)

    def _new_register(self) -> int:
        register = self._next_register
        self._next_register += 1
        return register

    def _shape(self) -> VectorShape:
        return self.cr.shape

    def _mask_tuple(self) -> tuple[bool, ...]:
        return tuple(self.cr.active_mask())

    def _check_shape_fits(self, shape: VectorShape) -> None:
        if shape.total_elements > self.simd_lanes:
            raise ValueError(
                f"logical shape {shape.lengths} needs {shape.total_elements} lanes "
                f"but only {self.simd_lanes} SIMD lanes are available"
            )

    # ------------------------------------------------------------------ #
    # scalar accounting
    # ------------------------------------------------------------------ #

    def scalar(self, count: int, loads: int = 0, stores: int = 0, note: str = "") -> None:
        """Account for ``count`` scalar CPU instructions executed here."""
        if count <= 0:
            return
        self._emit(ScalarBlock(count=count, loads=loads, stores=stores, note=note))

    # ------------------------------------------------------------------ #
    # config instructions
    # ------------------------------------------------------------------ #

    def vsetdimc(self, count: int) -> None:
        self.cr.set_dim_count(count)
        self._emit(ConfigInstruction(Opcode.SET_DIM_COUNT, operand_a=count))

    def vsetdiml(self, dim: int, length: int) -> None:
        self.cr.set_dim_length(dim, length)
        self._emit(ConfigInstruction(Opcode.SET_DIM_LENGTH, operand_a=dim, operand_b=length))

    def vsetmask(self, element: int) -> None:
        self.cr.set_mask(element, True)
        self._emit(ConfigInstruction(Opcode.SET_MASK, operand_a=element))

    def vunsetmask(self, element: int) -> None:
        self.cr.set_mask(element, False)
        self._emit(ConfigInstruction(Opcode.UNSET_MASK, operand_a=element))

    def vresetmask(self) -> None:
        """Re-enable every element of the highest dimension (one config op)."""
        self.cr.reset_mask()
        self._emit(ConfigInstruction(Opcode.SET_MASK, operand_a=-1))

    def vsetwidth(self, bits: int) -> None:
        self.cr.set_element_bits(bits)
        self._emit(ConfigInstruction(Opcode.SET_WIDTH, operand_a=bits))

    def vsetldstr(self, dim: int, stride: int) -> None:
        self.cr.set_load_stride(dim, stride)
        self._emit(ConfigInstruction(Opcode.SET_LOAD_STRIDE, operand_a=dim, operand_b=stride))

    def vsetststr(self, dim: int, stride: int) -> None:
        self.cr.set_store_stride(dim, stride)
        self._emit(ConfigInstruction(Opcode.SET_STORE_STRIDE, operand_a=dim, operand_b=stride))

    # ------------------------------------------------------------------ #
    # address generation (Algorithm 1 / Equation 1)
    # ------------------------------------------------------------------ #

    def _element_addresses(
        self,
        dtype: DataType,
        base_address: int,
        stride_modes: Sequence[int],
        is_store: bool,
        random_bases: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, list[int]]:
        """Byte address for every logical element in SIMD-lane order."""
        shape = self._shape()
        modes = list(stride_modes)
        if len(modes) < shape.dim_count:
            modes = modes + [int(StrideMode.SEQUENTIAL)] * (shape.dim_count - len(modes))
        stride_regs = self.cr.store_strides if is_store else self.cr.load_strides
        lengths = list(shape.lengths)
        if random_bases is not None:
            # The highest dimension uses random base addresses; only the lower
            # dimensions follow the stride semantics (Equation 1).
            strides = resolve_strides(modes[: shape.dim_count - 1], lengths, stride_regs)
            strides = strides + [0]
        else:
            strides = resolve_strides(modes[: shape.dim_count], lengths, stride_regs)

        element_bytes = dtype.bytes
        # Build per-dimension index grids in lane order (dim 0 fastest).
        addresses = np.zeros(shape.total_elements, dtype=np.int64)
        multiplier = 1
        for dim, length in enumerate(lengths):
            indices = (np.arange(shape.total_elements) // multiplier) % length
            if random_bases is not None and dim == shape.dim_count - 1:
                addresses += random_bases[indices]
            else:
                addresses += indices * strides[dim] * element_bytes
            multiplier *= length
        if random_bases is None:
            addresses += base_address
        return addresses, strides

    def _active_lane_mask(self, shape: VectorShape) -> np.ndarray:
        mask_bits = np.asarray(self.cr.active_mask(), dtype=bool)
        inner = shape.total_elements // shape.highest_dim_length
        lane_high_index = np.arange(shape.total_elements) // inner
        return mask_bits[lane_high_index]

    # ------------------------------------------------------------------ #
    # memory access instructions
    # ------------------------------------------------------------------ #

    def vsld(self, dtype: DataType, base_address: int, stride_modes: Sequence[int]) -> MDV:
        """Multi-dimensional strided vector load (Algorithm 1)."""
        return self._load(dtype, base_address, stride_modes, random_table=None)

    def vrld(
        self, dtype: DataType, pointer_table_address: int, stride_modes: Sequence[int]
    ) -> MDV:
        """Random vector load: unique base per highest-dimension element."""
        return self._load(dtype, pointer_table_address, stride_modes, random_table=True)

    def vsst(self, value: MDV, base_address: int, stride_modes: Sequence[int]) -> None:
        """Multi-dimensional strided vector store."""
        self._store(value, base_address, stride_modes, random_table=None)

    def vrst(self, value: MDV, pointer_table_address: int, stride_modes: Sequence[int]) -> None:
        """Random vector store: unique base per highest-dimension element."""
        self._store(value, pointer_table_address, stride_modes, random_table=True)

    def _load(
        self,
        dtype: DataType,
        base_address: int,
        stride_modes: Sequence[int],
        random_table: Optional[bool],
    ) -> MDV:
        shape = self._shape()
        self._check_shape_fits(shape)
        random_bases = None
        random_base_tuple: tuple[int, ...] = ()
        if random_table:
            random_bases = self.memory.read_pointer_table(
                base_address, shape.highest_dim_length
            )
            random_base_tuple = tuple(int(b) for b in random_bases)
        addresses, strides = self._element_addresses(
            dtype, base_address, stride_modes, is_store=False, random_bases=random_bases
        )
        lane_mask = self._active_lane_mask(shape)
        values = np.zeros(shape.total_elements, dtype=dtype.numpy_dtype)
        if self.record_values and lane_mask.any():
            values[lane_mask] = self.memory.read_elements(addresses[lane_mask], dtype)

        register = self._new_register()
        opcode = Opcode.RANDOM_LOAD if random_table else Opcode.STRIDED_LOAD
        self._emit(
            MemoryInstruction(
                opcode,
                dtype=dtype,
                register=register,
                base_address=base_address,
                stride_modes=tuple(int(m) for m in stride_modes),
                is_store=False,
                is_random=bool(random_table),
                random_bases=random_base_tuple,
                resolved_strides=tuple(strides),
                shape_lengths=shape.lengths,
                mask=self._mask_tuple(),
            )
        )
        return MDV(register, dtype, shape, values)

    def _store(
        self,
        value: MDV,
        base_address: int,
        stride_modes: Sequence[int],
        random_table: Optional[bool],
    ) -> None:
        shape = self._shape()
        self._check_shape_fits(shape)
        dtype = value.dtype
        random_bases = None
        random_base_tuple: tuple[int, ...] = ()
        if random_table:
            random_bases = self.memory.read_pointer_table(
                base_address, shape.highest_dim_length
            )
            random_base_tuple = tuple(int(b) for b in random_bases)
        addresses, strides = self._element_addresses(
            dtype, base_address, stride_modes, is_store=True, random_bases=random_bases
        )
        lane_mask = self._active_lane_mask(shape)
        if self.record_values and lane_mask.any():
            stored = self._conform(value, shape)
            self.memory.write_elements(addresses[lane_mask], stored[lane_mask], dtype)

        opcode = Opcode.RANDOM_STORE if random_table else Opcode.STRIDED_STORE
        self._emit(
            MemoryInstruction(
                opcode,
                dtype=dtype,
                register=value.register,
                base_address=base_address,
                stride_modes=tuple(int(m) for m in stride_modes),
                is_store=True,
                is_random=bool(random_table),
                random_bases=random_base_tuple,
                resolved_strides=tuple(strides),
                shape_lengths=shape.lengths,
                mask=self._mask_tuple(),
            )
        )

    # ------------------------------------------------------------------ #
    # move instructions
    # ------------------------------------------------------------------ #

    def vcpy(self, source: MDV) -> MDV:
        """Copy a vector register."""
        shape = self._shape()
        register = self._new_register()
        values = self._conform(source, shape)
        self._emit(
            MoveInstruction(
                Opcode.COPY, dtype=source.dtype, dest=register, src=source.register
            )
        )
        return MDV(register, source.dtype, shape, values)

    def vcvt(self, source: MDV, dtype: DataType) -> MDV:
        """Convert a vector register to another element type."""
        shape = self._shape()
        register = self._new_register()
        values = self._conform(source, shape).astype(dtype.numpy_dtype)
        self._emit(
            MoveInstruction(
                Opcode.CONVERT,
                dtype=dtype,
                dest=register,
                src=source.register,
                src_dtype=source.dtype,
            )
        )
        return MDV(register, dtype, shape, values)

    # ------------------------------------------------------------------ #
    # arithmetic instructions
    # ------------------------------------------------------------------ #

    def vsetdup(self, dtype: DataType, value: float | int) -> MDV:
        """Broadcast a scalar value to every SIMD lane."""
        shape = self._shape()
        self._check_shape_fits(shape)
        register = self._new_register()
        values = np.full(shape.total_elements, value, dtype=dtype.numpy_dtype)
        self._emit(
            ArithmeticInstruction(
                Opcode.SET_DUP,
                dtype=dtype,
                dest=register,
                sources=(),
                immediate=float(value),
                shape_lengths=shape.lengths,
                mask=self._mask_tuple(),
            )
        )
        return MDV(register, dtype, shape, values)

    def _conform(self, operand: MDV, shape: VectorShape) -> np.ndarray:
        """Pad/truncate an operand's lane values to the current shape."""
        total = shape.total_elements
        values = operand.values
        if values.size == total:
            return values.copy()
        out = np.zeros(total, dtype=operand.dtype.numpy_dtype)
        n = min(total, values.size)
        out[:n] = values[:n]
        return out

    def _binary(
        self,
        opcode: Opcode,
        a: MDV,
        b: MDV,
        compute: Callable[[np.ndarray, np.ndarray], np.ndarray],
        result_dtype: Optional[DataType] = None,
    ) -> MDV:
        shape = self._shape()
        self._check_shape_fits(shape)
        dtype = result_dtype or a.dtype
        register = self._new_register()
        lhs = self._conform(a, shape)
        rhs = self._conform(b, shape)
        if dtype.is_float:
            values = compute(lhs.astype(dtype.numpy_dtype), rhs.astype(dtype.numpy_dtype))
            values = np.asarray(values, dtype=dtype.numpy_dtype)
        else:
            # Integer ops wrap around modulo 2^bits like the hardware does.
            wide = compute(lhs.astype(np.int64), rhs.astype(np.int64))
            values = np.asarray(wide).astype(dtype.numpy_dtype)
        self._emit(
            ArithmeticInstruction(
                opcode,
                dtype=dtype,
                dest=register,
                sources=(a.register, b.register),
                shape_lengths=shape.lengths,
                mask=self._mask_tuple(),
            )
        )
        return MDV(register, dtype, shape, values)

    def _unary_imm(
        self,
        opcode: Opcode,
        a: MDV,
        immediate: float,
        compute: Callable[[np.ndarray], np.ndarray],
    ) -> MDV:
        shape = self._shape()
        self._check_shape_fits(shape)
        dtype = a.dtype
        register = self._new_register()
        operand = self._conform(a, shape)
        if dtype.is_float:
            values = np.asarray(compute(operand), dtype=dtype.numpy_dtype)
        else:
            values = np.asarray(compute(operand.astype(np.int64))).astype(dtype.numpy_dtype)
        self._emit(
            ArithmeticInstruction(
                opcode,
                dtype=dtype,
                dest=register,
                sources=(a.register,),
                immediate=float(immediate),
                shape_lengths=shape.lengths,
                mask=self._mask_tuple(),
            )
        )
        return MDV(register, dtype, shape, values)

    def vadd(self, a: MDV, b: MDV) -> MDV:
        return self._binary(Opcode.ADD, a, b, lambda x, y: x + y)

    def vsub(self, a: MDV, b: MDV) -> MDV:
        return self._binary(Opcode.SUB, a, b, lambda x, y: x - y)

    def vmul(self, a: MDV, b: MDV) -> MDV:
        return self._binary(Opcode.MUL, a, b, lambda x, y: x * y)

    def vdiv(self, a: MDV, b: MDV) -> MDV:
        def safe_div(x: np.ndarray, y: np.ndarray) -> np.ndarray:
            if a.dtype.is_float:
                with np.errstate(divide="ignore", invalid="ignore"):
                    return np.where(y != 0, x / y, 0)
            return np.where(y != 0, x // np.where(y == 0, 1, y), 0)

        return self._binary(Opcode.DIV, a, b, safe_div)

    def vmin(self, a: MDV, b: MDV) -> MDV:
        return self._binary(Opcode.MIN, a, b, np.minimum)

    def vmax(self, a: MDV, b: MDV) -> MDV:
        return self._binary(Opcode.MAX, a, b, np.maximum)

    def vand(self, a: MDV, b: MDV) -> MDV:
        return self._binary(Opcode.AND, a, b, lambda x, y: x & y)

    def vor(self, a: MDV, b: MDV) -> MDV:
        return self._binary(Opcode.OR, a, b, lambda x, y: x | y)

    def vxor(self, a: MDV, b: MDV) -> MDV:
        return self._binary(Opcode.XOR, a, b, lambda x, y: x ^ y)

    def vnot(self, a: MDV) -> MDV:
        return self._unary_imm(Opcode.NOT, a, 0, lambda x: ~x)

    def vshl_imm(self, a: MDV, shift: int) -> MDV:
        return self._unary_imm(Opcode.SHIFT_IMM, a, shift, lambda x: x << shift)

    def vshr_imm(self, a: MDV, shift: int) -> MDV:
        return self._unary_imm(Opcode.SHIFT_IMM, a, shift, lambda x: x >> shift)

    def vrot_imm(self, a: MDV, shift: int) -> MDV:
        bits = a.dtype.bits
        mask = (1 << bits) - 1

        def rotate(x: np.ndarray) -> np.ndarray:
            unsigned = x.astype(np.int64) & mask
            return ((unsigned << shift) | (unsigned >> (bits - shift))) & mask

        return self._unary_imm(Opcode.ROTATE_IMM, a, shift, rotate)

    def vshl_reg(self, a: MDV, shift: MDV) -> MDV:
        return self._binary(Opcode.SHIFT_REG, a, shift, lambda x, y: x << y)

    def vshr_reg(self, a: MDV, shift: MDV) -> MDV:
        return self._binary(Opcode.SHIFT_REG, a, shift, lambda x, y: x >> y)

    # comparisons produce a 0/1 predicate in the same element type
    def vgt(self, a: MDV, b: MDV) -> MDV:
        return self._binary(Opcode.GT, a, b, lambda x, y: (x > y).astype(np.int64))

    def vgte(self, a: MDV, b: MDV) -> MDV:
        return self._binary(Opcode.GTE, a, b, lambda x, y: (x >= y).astype(np.int64))

    def vlt(self, a: MDV, b: MDV) -> MDV:
        return self._binary(Opcode.LT, a, b, lambda x, y: (x < y).astype(np.int64))

    def vlte(self, a: MDV, b: MDV) -> MDV:
        return self._binary(Opcode.LTE, a, b, lambda x, y: (x <= y).astype(np.int64))

    def veq(self, a: MDV, b: MDV) -> MDV:
        return self._binary(Opcode.EQ, a, b, lambda x, y: (x == y).astype(np.int64))

    def vneq(self, a: MDV, b: MDV) -> MDV:
        return self._binary(Opcode.NEQ, a, b, lambda x, y: (x != y).astype(np.int64))
