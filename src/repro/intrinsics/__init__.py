"""Functional MVE intrinsic library and trace recorder."""

from .mdv import MDV
from .machine import MVEMachine, TraceStats

__all__ = ["MDV", "MVEMachine", "TraceStats"]
