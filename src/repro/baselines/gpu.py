"""Adreno-640-class mobile GPU baseline model.

The paper's GPU comparison (Figure 8 and 9) attributes MVE's advantage to
two overheads the GPU cannot avoid for fine-grain kernels: OpenCL kernel
launch (runtime + command processor + core-GPU fabric) and copying data
between complex C++ objects and pinned buffers in the unified memory
region.  For large matrix multiplications the GPU's raw MAC throughput
eventually wins (the Figure 9 crossover).  This model captures exactly
those three terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .profile import KernelProfile

__all__ = ["GPUConfig", "GPUResult", "GPUModel"]


@dataclass(frozen=True)
class GPUConfig:
    """Adreno 640 configuration (Table IV) plus runtime overheads."""

    num_alus: int = 384
    frequency_ghz: float = 0.685
    #: fused multiply-add counts as two operations per ALU per cycle
    ops_per_alu_per_cycle: float = 2.0
    #: effective memory bandwidth of the GPU memory path (bytes/second)
    memory_bandwidth_gbps: float = 25.0
    #: OpenCL kernel launch overhead (runtime, ADSPRPC-like stack, fabric), seconds
    kernel_launch_overhead_s: float = 80e-6
    #: host-to-pinned-buffer copy bandwidth (bytes/second)
    copy_bandwidth_gbps: float = 4.0
    #: average GPU power while executing (W)
    execute_power_w: float = 2.2
    #: average SoC power while copying data (W)
    copy_power_w: float = 1.2
    #: idle/launch power (W)
    launch_power_w: float = 0.9


@dataclass
class GPUResult:
    """Execution time and energy of the GPU baseline, split by phase."""

    kernel_time_s: float
    transfer_time_s: float
    launch_time_s: float
    energy_j: float

    @property
    def total_time_s(self) -> float:
        return self.kernel_time_s + self.transfer_time_s + self.launch_time_s

    @property
    def time_ms(self) -> float:
        return self.total_time_s * 1e3

    @property
    def energy_nj(self) -> float:
        return self.energy_j * 1e9

    @property
    def kernel_only_time_ms(self) -> float:
        return (self.kernel_time_s + self.launch_time_s) * 1e3

    def to_dict(self) -> dict:
        return {
            "kernel_time_s": self.kernel_time_s,
            "transfer_time_s": self.transfer_time_s,
            "launch_time_s": self.launch_time_s,
            "energy_j": self.energy_j,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GPUResult":
        return cls(
            kernel_time_s=float(data["kernel_time_s"]),
            transfer_time_s=float(data["transfer_time_s"]),
            launch_time_s=float(data["launch_time_s"]),
            energy_j=float(data["energy_j"]),
        )


class GPUModel:
    """Analytic mobile-GPU model with launch and copy overheads."""

    def __init__(self, config: Optional[GPUConfig] = None):
        self.config = config or GPUConfig()

    def run(self, profile: KernelProfile, include_transfer: bool = True) -> GPUResult:
        cfg = self.config
        peak_ops_per_s = cfg.num_alus * cfg.frequency_ghz * 1e9 * cfg.ops_per_alu_per_cycle
        # Integer kernels run at the same ALU rate; low-precision kernels do
        # not pack on this GPU generation, so throughput is per element.
        compute_time = profile.total_ops / peak_ops_per_s
        memory_time = profile.total_bytes / (cfg.memory_bandwidth_gbps * 1e9)
        kernel_time = max(compute_time, memory_time)

        transfer_time = 0.0
        if include_transfer:
            transfer_time = profile.total_bytes / (cfg.copy_bandwidth_gbps * 1e9)

        energy = (
            kernel_time * cfg.execute_power_w
            + transfer_time * cfg.copy_power_w
            + cfg.kernel_launch_overhead_s * cfg.launch_power_w
        )
        return GPUResult(
            kernel_time_s=kernel_time,
            transfer_time_s=transfer_time,
            launch_time_s=cfg.kernel_launch_overhead_s,
            energy_j=energy,
        )
