"""Arm Neon (128-bit packed SIMD) baseline model.

Models the Cortex-A76 prime core of Table IV: two 128-bit Advanced SIMD
pipes at 2.8 GHz fed by the L1/L2/LLC/DRAM hierarchy.  The model is
throughput-based: compute time follows from the number of 128-bit vector
micro-ops, memory time from streaming the kernel's footprint through the
*same* cache/DRAM engine the MVE simulator uses (steady-state: the
footprint is streamed twice and the warm pass is billed, so a working set
that fits a given level streams at that level's bandwidth), and the two
overlap as in an out-of-order core.  The same energy coefficients as the
MVE model are used so the Figure 7(b) comparison is consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.config import MachineConfig, default_config
from ..core.energy import EnergyBreakdown, EnergyCoefficients, EnergyModel
from ..memory.cache import CacheHierarchy, make_hierarchy
from .profile import KernelProfile

__all__ = ["NeonResult", "NeonModel"]

#: disjoint base addresses for the synthetic read and write streams
_READ_STREAM_BASE = 0x1000_0000
_WRITE_STREAM_BASE = 0x4000_0000

#: reciprocal throughput (cycles per 128-bit vector op, both pipes combined)
_OP_THROUGHPUT = {
    "add": 0.5,
    "sub": 0.5,
    "mul": 0.5,
    "mac": 0.5,
    "div": 8.0,
    "min": 0.5,
    "max": 0.5,
    "cmp": 0.5,
    "logic": 0.5,
    "shift": 0.5,
    "abs": 0.5,
}


@dataclass
class NeonResult:
    """Execution time and energy of the Neon baseline."""

    total_cycles: float
    compute_cycles: float
    memory_cycles: float
    scalar_cycles: float
    vector_ops: int
    scalar_instructions: int
    energy: EnergyBreakdown
    frequency_ghz: float = 2.8

    @property
    def time_ms(self) -> float:
        return self.total_cycles / (self.frequency_ghz * 1e9) * 1e3

    @property
    def energy_nj(self) -> float:
        return self.energy.total_nj

    def to_dict(self) -> dict:
        """JSON-serializable form (bit-exact round trip) for the persistent
        result store."""
        return {
            "total_cycles": self.total_cycles,
            "compute_cycles": self.compute_cycles,
            "memory_cycles": self.memory_cycles,
            "scalar_cycles": self.scalar_cycles,
            "vector_ops": self.vector_ops,
            "scalar_instructions": self.scalar_instructions,
            "energy": self.energy.to_dict(),
            "frequency_ghz": self.frequency_ghz,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NeonResult":
        return cls(
            total_cycles=float(data["total_cycles"]),
            compute_cycles=float(data["compute_cycles"]),
            memory_cycles=float(data["memory_cycles"]),
            scalar_cycles=float(data["scalar_cycles"]),
            vector_ops=int(data["vector_ops"]),
            scalar_instructions=int(data["scalar_instructions"]),
            energy=EnergyBreakdown.from_dict(data["energy"]),
            frequency_ghz=float(data["frequency_ghz"]),
        )


class NeonModel:
    """Analytic performance/energy model of the 2x128-bit ASIMD baseline."""

    #: fraction of theoretical peak SIMD throughput real kernels achieve on
    #: the mobile core (dependency stalls, issue limits, loop overhead)
    simd_efficiency = 0.45
    #: peak bytes per cycle the core's two 128-bit load/store pipes sustain
    #: out of the L1-D (the floor below which no cache level helps)
    core_bytes_per_cycle = 32.0

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        coefficients: Optional[EnergyCoefficients] = None,
        simd_efficiency: Optional[float] = None,
        hierarchy: Optional[CacheHierarchy] = None,
    ):
        self.config = config or default_config()
        self.coefficients = coefficients or EnergyCoefficients()
        if simd_efficiency is not None:
            self.simd_efficiency = simd_efficiency
        # The Neon core keeps the whole L2 (no ways repurposed for compute);
        # otherwise this is the very same engine the MVE simulator drives.
        self.hierarchy = hierarchy or make_hierarchy(
            self.config.hierarchy, l2_compute_ways=0
        )

    def _stream_footprint(self, profile: KernelProfile) -> tuple[int, int, int, int]:
        """Stream the kernel's footprint through the cache engine twice and
        bill the steady-state pass.

        Returns ``(cycles, l2_hits, llc_hits, dram_accesses)`` of the warm
        pass; the line counts feed the energy model.
        """
        hierarchy = self.hierarchy
        hierarchy.reset()
        line_bytes = hierarchy.line_bytes
        read_lines = np.arange(
            _READ_STREAM_BASE, _READ_STREAM_BASE + profile.bytes_read, line_bytes, dtype=np.int64
        )
        # Keep the write stream strictly above the read stream even for
        # footprints larger than the nominal gap, so the two never alias.
        read_end = _READ_STREAM_BASE + ((profile.bytes_read + line_bytes - 1) // line_bytes) * line_bytes
        write_base = max(_WRITE_STREAM_BASE, read_end)
        write_lines = np.arange(
            write_base,
            write_base + profile.bytes_written,
            line_bytes,
            dtype=np.int64,
        )
        for warm in (False, True):
            if warm:
                hierarchy.reset_stats()
            cycles = hierarchy.vector_block_access(read_lines, is_write=False)
            cycles += hierarchy.vector_block_access(write_lines, is_write=True)
        dram_stats = hierarchy.dram.stats
        return (
            cycles,
            hierarchy.l2.stats.hits,
            hierarchy.llc.stats.hits,
            dram_stats.reads + dram_stats.writes,
        )

    def run(self, profile: KernelProfile) -> NeonResult:
        cfg = self.config
        lanes = max(1, 128 // profile.element_bits)

        # --- compute ----------------------------------------------------- #
        vector_ops = 0.0
        compute_cycles = 0.0
        for kind, per_element in profile.ops_per_element.items():
            ops = per_element * profile.elements / lanes
            vector_ops += ops
            compute_cycles += ops * _OP_THROUGHPUT[kind]
        compute_cycles /= self.simd_efficiency

        # --- memory ------------------------------------------------------ #
        total_bytes = profile.total_bytes
        engine_cycles, l2_lines, llc_lines, dram_lines = self._stream_footprint(profile)
        # The cache engine bounds the supply side; the core's own load/store
        # pipes bound the demand side.
        memory_cycles = max(float(engine_cycles), total_bytes / self.core_bytes_per_cycle)
        # Vector load/store micro-ops also occupy the SIMD pipes.
        ldst_ops = total_bytes / 16.0
        compute_cycles += ldst_ops * 0.5

        # --- scalar bookkeeping ------------------------------------------ #
        # Hand-tuned Neon kernels unroll about four vectors per loop
        # iteration, so the loop overhead is amortised accordingly.
        iterations = max(1.0, profile.elements / (lanes * 4))
        scalar_instructions = profile.scalar_ops_per_iteration * iterations
        scalar_cycles = scalar_instructions / cfg.scalar_ipc

        # The OoO core overlaps compute with memory imperfectly; scalar loop
        # overhead is mostly hidden but issue bandwidth is shared.
        total_cycles = (
            max(compute_cycles, memory_cycles)
            + 0.3 * min(compute_cycles, memory_cycles)
            + 0.5 * scalar_cycles
        )

        # --- energy ------------------------------------------------------- #
        energy = EnergyModel(self.coefficients, cfg.frequency_ghz)
        energy.add_neon_ops(int(vector_ops + ldst_ops))
        energy.add_scalar(int(scalar_instructions))
        energy.add_l1_accesses(int(ldst_ops))
        energy.add_cache_lines(l2_lines, llc_lines, dram_lines)
        energy.add_static(total_cycles, include_cache=False)

        return NeonResult(
            total_cycles=total_cycles,
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            scalar_cycles=scalar_cycles,
            vector_ops=int(vector_ops + ldst_ops),
            scalar_instructions=int(scalar_instructions),
            energy=energy.breakdown,
            frequency_ghz=cfg.frequency_ghz,
        )
