"""Arm Neon (128-bit packed SIMD) baseline model.

Models the Cortex-A76 prime core of Table IV: two 128-bit Advanced SIMD
pipes at 2.8 GHz fed by the L1/L2/LLC/DRAM hierarchy.  The model is
throughput-based: compute time follows from the number of 128-bit vector
micro-ops, memory time from streaming the kernel's footprint through the
memory system, and the two overlap as in an out-of-order core.  The same
energy coefficients as the MVE model are used so the Figure 7(b) comparison
is consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.config import MachineConfig, default_config
from ..core.energy import EnergyBreakdown, EnergyCoefficients, EnergyModel
from .profile import KernelProfile

__all__ = ["NeonResult", "NeonModel"]

#: reciprocal throughput (cycles per 128-bit vector op, both pipes combined)
_OP_THROUGHPUT = {
    "add": 0.5,
    "sub": 0.5,
    "mul": 0.5,
    "mac": 0.5,
    "div": 8.0,
    "min": 0.5,
    "max": 0.5,
    "cmp": 0.5,
    "logic": 0.5,
    "shift": 0.5,
    "abs": 0.5,
}


@dataclass
class NeonResult:
    """Execution time and energy of the Neon baseline."""

    total_cycles: float
    compute_cycles: float
    memory_cycles: float
    scalar_cycles: float
    vector_ops: int
    scalar_instructions: int
    energy: EnergyBreakdown
    frequency_ghz: float = 2.8

    @property
    def time_ms(self) -> float:
        return self.total_cycles / (self.frequency_ghz * 1e9) * 1e3

    @property
    def energy_nj(self) -> float:
        return self.energy.total_nj


class NeonModel:
    """Analytic performance/energy model of the 2x128-bit ASIMD baseline."""

    #: fraction of theoretical peak SIMD throughput real kernels achieve on
    #: the mobile core (dependency stalls, issue limits, loop overhead)
    simd_efficiency = 0.45

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        coefficients: Optional[EnergyCoefficients] = None,
        simd_efficiency: Optional[float] = None,
    ):
        self.config = config or default_config()
        self.coefficients = coefficients or EnergyCoefficients()
        if simd_efficiency is not None:
            self.simd_efficiency = simd_efficiency

    def run(self, profile: KernelProfile) -> NeonResult:
        cfg = self.config
        lanes = max(1, 128 // profile.element_bits)

        # --- compute ----------------------------------------------------- #
        vector_ops = 0.0
        compute_cycles = 0.0
        for kind, per_element in profile.ops_per_element.items():
            ops = per_element * profile.elements / lanes
            vector_ops += ops
            compute_cycles += ops * _OP_THROUGHPUT[kind]
        compute_cycles /= self.simd_efficiency

        # --- memory ------------------------------------------------------ #
        line_bytes = cfg.hierarchy.l1d.line_bytes
        total_bytes = profile.total_bytes
        lines = max(1, total_bytes // line_bytes)
        l1_bytes = cfg.hierarchy.l1d.size_bytes
        l2_bytes = cfg.hierarchy.l2.size_bytes
        llc_bytes = cfg.hierarchy.llc.size_bytes
        if total_bytes <= l1_bytes:
            bytes_per_cycle = 32.0
            l2_lines, llc_lines, dram_lines = 0, 0, 0
        elif total_bytes <= l2_bytes:
            bytes_per_cycle = 24.0
            l2_lines, llc_lines, dram_lines = lines, 0, 0
        elif total_bytes <= llc_bytes:
            bytes_per_cycle = 16.0
            l2_lines, llc_lines, dram_lines = lines, lines, 0
        else:
            bytes_per_cycle = 10.0
            l2_lines, llc_lines, dram_lines = lines, lines, lines
        memory_cycles = total_bytes / bytes_per_cycle
        # Vector load/store micro-ops also occupy the SIMD pipes.
        ldst_ops = total_bytes / 16.0
        compute_cycles += ldst_ops * 0.5

        # --- scalar bookkeeping ------------------------------------------ #
        # Hand-tuned Neon kernels unroll about four vectors per loop
        # iteration, so the loop overhead is amortised accordingly.
        iterations = max(1.0, profile.elements / (lanes * 4))
        scalar_instructions = profile.scalar_ops_per_iteration * iterations
        scalar_cycles = scalar_instructions / cfg.scalar_ipc

        # The OoO core overlaps compute with memory imperfectly; scalar loop
        # overhead is mostly hidden but issue bandwidth is shared.
        total_cycles = (
            max(compute_cycles, memory_cycles)
            + 0.3 * min(compute_cycles, memory_cycles)
            + 0.5 * scalar_cycles
        )

        # --- energy ------------------------------------------------------- #
        energy = EnergyModel(self.coefficients, cfg.frequency_ghz)
        energy.add_neon_ops(int(vector_ops + ldst_ops))
        energy.add_scalar(int(scalar_instructions))
        energy.add_l1_accesses(int(ldst_ops))
        energy.add_cache_lines(l2_lines, llc_lines, dram_lines)
        energy.add_static(total_cycles, include_cache=False)

        return NeonResult(
            total_cycles=total_cycles,
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            scalar_cycles=scalar_cycles,
            vector_ops=int(vector_ops + ldst_ops),
            scalar_instructions=int(scalar_instructions),
            energy=energy.breakdown,
            frequency_ghz=cfg.frequency_ghz,
        )
