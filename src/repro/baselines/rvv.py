"""RISC-V RVV baseline: a 1D long-vector ISA on the same in-cache engine.

The RVV comparison of the paper (Figures 10, 11, 13) keeps the hardware
constant -- the same 8K-lane in-SRAM engine -- and changes only the ISA: RVV
provides one-dimensional strided and indexed accesses, so multi-dimensional
patterns are emulated with per-segment masked 1D accesses, packing moves and
extra scalar address arithmetic.

The per-kernel RVV lowering lives with the workloads
(:meth:`repro.workloads.base.Kernel.run_rvv`); this module provides the
emitter those lowerings use plus a convenience runner.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, TYPE_CHECKING

from ..core.config import MachineConfig, default_config
from ..core.results import SimulationResult
from ..core.simulator import simulate_kernel
from ..intrinsics.machine import MVEMachine
from ..intrinsics.mdv import MDV
from ..isa.datatypes import DataType
from ..isa.instructions import TraceEntry
from ..sram.schemes import ComputeScheme

if TYPE_CHECKING:
    from ..core.cache import ResultStore

__all__ = ["RVVEmitter", "run_rvv_trace"]


class RVVEmitter:
    """Emits RVV-style 1D instruction sequences onto an :class:`MVEMachine`.

    The emitter keeps the machine configured with a single dimension and
    reproduces the instruction overheads described in Section VII-B: for
    every 1D segment of a multi-dimensional structure it issues the scalar
    address/mask computation, a masked partial load or store, and a move
    that packs the segment into the destination register.
    """

    def __init__(self, machine: MVEMachine):
        self.machine = machine

    # -- configuration ---------------------------------------------------- #

    def set_vector_length(self, length: int) -> None:
        m = self.machine
        m.vsetdimc(1)
        m.vsetdiml(0, min(length, m.simd_lanes))

    # -- 1D primitives ----------------------------------------------------- #

    def load_1d(self, dtype: DataType, base_address: int, stride_elements: int = 1) -> MDV:
        m = self.machine
        if stride_elements in (0, 1):
            return m.vsld(dtype, base_address, (stride_elements,))
        m.vsetldstr(0, stride_elements)
        return m.vsld(dtype, base_address, (3,))

    def store_1d(self, value: MDV, base_address: int, stride_elements: int = 1) -> None:
        m = self.machine
        if stride_elements in (0, 1):
            m.vsst(value, base_address, (stride_elements,))
            return
        m.vsetststr(0, stride_elements)
        m.vsst(value, base_address, (3,))

    # -- multi-dimensional emulation ---------------------------------------- #

    def load_multidim(
        self,
        dtype: DataType,
        base_address: int,
        segment_length: int,
        num_segments: int,
        segment_stride_elements: int,
        element_stride_elements: int = 1,
    ) -> MDV:
        """Emulate a 2D load of ``num_segments`` x ``segment_length`` elements.

        Each segment is one RVV 1D (possibly strided) access; RVV must touch
        each segment with its own masked access and pack it into the long
        vector register with a move, preceded by scalar address and mask
        computation (Figure 11's Config/Move/Mem overheads).  A good RVV
        lowering picks the *largest* 1D-strided component of the pattern as
        the segment, so ``element_stride_elements`` carries that stride.
        """
        m = self.machine
        result: Optional[MDV] = None
        for segment in range(num_segments):
            # Scalar address computation + mask generation for this segment.
            m.scalar(6, loads=1)
            self.set_vector_length(segment_length)
            address = base_address + segment * segment_stride_elements * dtype.bytes
            part = self.load_1d(dtype, address, element_stride_elements)
            packed = m.vcpy(part)
            result = packed if result is None else result
        # The logical register now holds all segments; reflect the combined
        # length so downstream arithmetic uses the right element count.
        self.set_vector_length(min(segment_length * num_segments, m.simd_lanes))
        assert result is not None
        return result

    def store_multidim(
        self,
        value: MDV,
        base_address: int,
        segment_length: int,
        num_segments: int,
        segment_stride_elements: int,
        element_stride_elements: int = 1,
    ) -> None:
        """Emulate a 2D store, segment by segment."""
        m = self.machine
        dtype = value.dtype
        for segment in range(num_segments):
            m.scalar(6, stores=1)
            self.set_vector_length(segment_length)
            unpacked = m.vcpy(value)
            address = base_address + segment * segment_stride_elements * dtype.bytes
            self.store_1d(unpacked, address, element_stride_elements)
        self.set_vector_length(min(segment_length * num_segments, m.simd_lanes))

    def segments_for(self, segment_length: int) -> int:
        """How many 1D segments are needed to fill the SIMD lanes."""
        return max(1, math.floor(self.machine.simd_lanes / max(1, segment_length)))


def run_rvv_trace(
    trace: Sequence[TraceEntry],
    config: Optional[MachineConfig] = None,
    scheme: Optional[ComputeScheme] = None,
    store: Optional["ResultStore"] = None,
) -> SimulationResult:
    """Compile and simulate an RVV-style trace on the in-cache engine.

    The simulation drives the same (vectorized, or ``REPRO_SCALAR_CACHE=1``
    reference) cache engine as the MVE path.  Passing a
    :class:`~repro.core.cache.ResultStore` answers repeated traces from the
    persistent cache, keyed -- like every simulator job -- by the trace
    content, the full machine configuration and the source fingerprint.
    """
    config = config or default_config()
    key = None
    if store is not None:
        from ..core.cache import (
            code_fingerprint,
            config_digest,
            load_cached_result,
            stable_hash,
        )

        key = stable_hash(
            {
                "baseline": "rvv-trace",
                "fingerprint": code_fingerprint(),
                "trace": [repr(entry) for entry in trace],
                "scheme": scheme.name if scheme is not None else config.scheme_name,
                "config": config_digest(config),
            }
        )
        cached = load_cached_result(store, key, SimulationResult)
        if cached is not None:
            return cached
    result, _ = simulate_kernel(trace, config=config, scheme=scheme)
    if key is not None:
        from ..core.cache import store_cached_result

        store_cached_result(store, key, result)
    return result
