"""Operation/data profiles used by the analytic baseline models.

The Neon, GPU and Duality Cache comparisons in the paper come from
measurements or separate simulators.  Here they are driven by a
:class:`KernelProfile` that each workload derives from its own parameters:
element counts, the arithmetic operations applied per element, the bytes
moved, and the scalar bookkeeping per vector iteration.  The profile is the
single source of truth shared by all baseline models so that comparisons
stay apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["KernelProfile", "OP_KINDS"]

#: operation kinds recognised by the baseline models
OP_KINDS = (
    "add",
    "sub",
    "mul",
    "mac",
    "div",
    "min",
    "max",
    "cmp",
    "logic",
    "shift",
    "abs",
)


@dataclass
class KernelProfile:
    """Work performed by one kernel invocation, independent of the ISA."""

    name: str
    element_bits: int = 32
    is_float: bool = False
    #: number of result elements produced
    elements: int = 0
    #: arithmetic operations applied per result element, keyed by OP_KINDS
    ops_per_element: dict[str, float] = field(default_factory=dict)
    #: bytes read from / written to memory by the kernel
    bytes_read: int = 0
    bytes_written: int = 0
    #: scalar bookkeeping instructions per vector-register-worth of work
    scalar_ops_per_iteration: float = 8.0
    #: 1D data-level parallelism available to a one-dimensional ISA
    parallelism_1d: int = 0
    #: nesting depth of the kernel's loops (1-4)
    dimensions: int = 1

    def __post_init__(self) -> None:
        unknown = set(self.ops_per_element) - set(OP_KINDS)
        if unknown:
            raise ValueError(f"unknown op kinds in profile {self.name!r}: {sorted(unknown)}")
        if self.parallelism_1d <= 0:
            self.parallelism_1d = max(1, self.elements)

    @property
    def total_ops(self) -> float:
        """Total scalar arithmetic operations (MACs count as two)."""
        total = 0.0
        for kind, per_element in self.ops_per_element.items():
            weight = 2.0 if kind == "mac" else 1.0
            total += weight * per_element
        return total * self.elements

    @property
    def flops(self) -> float:
        """Floating-point operations (zero for integer kernels)."""
        return self.total_ops if self.is_float else 0.0

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def arithmetic_intensity(self) -> float:
        return self.total_ops / max(1, self.total_bytes)
