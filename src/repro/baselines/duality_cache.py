"""Duality Cache (SIMT) baseline model.

Duality Cache executes a CUDA-like SIMT program entirely inside the SRAM
arrays: control flow, address calculation and arithmetic are all performed
per-lane by in-SRAM operations, and every scalar or vector variable lives in
the scarce in-cache register file, causing frequent spills and fills of
8K-element registers (Section VII-B, Figure 12(a)).

Rather than writing a separate simulator, this module *transforms* a
compiled MVE trace into its SIMT equivalent:

* every vector memory access gains per-lane address-calculation arithmetic
  (one multiply and one add per dimension, at int32 precision),
* every scalar block is replaced by in-SRAM control-flow/compare operations
  (the SIMT model offloads control flow to the lanes), and
* extra spill/fill memory traffic is injected to model the higher register
  pressure of keeping all scalars vectorised.

The transformed trace then runs on the same
:class:`~repro.core.simulator.MVESimulator`, which keeps the comparison
grounded in one timing model.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.config import MachineConfig, default_config
from ..core.results import SimulationResult
from ..core.simulator import MVESimulator
from ..isa.datatypes import DataType
from ..isa.instructions import (
    ArithmeticInstruction,
    MemoryInstruction,
    Opcode,
    ScalarBlock,
    TraceEntry,
)
from ..sram.schemes import ComputeScheme

__all__ = ["to_simt_trace", "DualityCacheModel"]

_SPILL_BASE = 0x5000_0000


def _address_calc_ops(instruction: MemoryInstruction) -> list[ArithmeticInstruction]:
    """Per-lane address computation the SIMT model performs in-SRAM."""
    ops: list[ArithmeticInstruction] = []
    dims = max(1, len(instruction.shape_lengths))
    for _ in range(dims):
        ops.append(
            ArithmeticInstruction(
                Opcode.MUL,
                dtype=DataType.INT32,
                dest=-1,
                sources=(-1, -1),
                shape_lengths=instruction.shape_lengths,
                mask=instruction.mask,
            )
        )
        ops.append(
            ArithmeticInstruction(
                Opcode.ADD,
                dtype=DataType.INT32,
                dest=-1,
                sources=(-1, -1),
                shape_lengths=instruction.shape_lengths,
                mask=instruction.mask,
            )
        )
    return ops


def _control_flow_ops(block: ScalarBlock, shape: tuple[int, ...]) -> list[ArithmeticInstruction]:
    """In-SRAM compare/branch work replacing a scalar block under SIMT."""
    # One vectorised compare per ~8 scalar instructions of control flow.
    count = max(1, block.count // 8)
    return [
        ArithmeticInstruction(
            Opcode.GT,
            dtype=DataType.INT32,
            dest=-1,
            sources=(-1, -1),
            shape_lengths=shape,
            mask=(),
        )
        for _ in range(count)
    ]


def _spill_pair(shape: tuple[int, ...], slot: int) -> list[MemoryInstruction]:
    dtype = DataType.INT32
    total = 1
    for length in shape:
        total *= length
    address = _SPILL_BASE + slot * total * dtype.bytes
    common = dict(
        dtype=dtype,
        register=-1,
        base_address=address,
        stride_modes=(1,),
        resolved_strides=(1,),
        shape_lengths=shape,
        mask=(),
        is_spill=True,
    )
    return [
        MemoryInstruction(Opcode.STRIDED_STORE, is_store=True, is_random=False, **common),
        MemoryInstruction(Opcode.STRIDED_LOAD, is_store=False, is_random=False, **common),
    ]


def to_simt_trace(
    trace: Sequence[TraceEntry],
    spill_every_n_memory_ops: int = 4,
) -> list[TraceEntry]:
    """Convert a compiled MVE trace to its Duality-Cache SIMT equivalent."""
    simt: list[TraceEntry] = []
    last_shape: tuple[int, ...] = (8192,)
    memory_ops_seen = 0
    spill_slot = 0
    for entry in trace:
        if isinstance(entry, ScalarBlock):
            simt.extend(_control_flow_ops(entry, last_shape))
            continue
        if isinstance(entry, MemoryInstruction):
            if entry.shape_lengths:
                last_shape = entry.shape_lengths
            simt.extend(_address_calc_ops(entry))
            simt.append(entry)
            memory_ops_seen += 1
            if spill_every_n_memory_ops and memory_ops_seen % spill_every_n_memory_ops == 0:
                simt.extend(_spill_pair(last_shape, spill_slot))
                spill_slot += 1
            continue
        shape = getattr(entry, "shape_lengths", ())
        if shape:
            last_shape = shape
        simt.append(entry)
    return simt


class DualityCacheModel:
    """Runs the SIMT-transformed trace on the shared timing simulator."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        scheme: Optional[ComputeScheme] = None,
        spill_every_n_memory_ops: int = 4,
    ):
        self.config = config or default_config()
        self.scheme = scheme
        self.spill_every_n_memory_ops = spill_every_n_memory_ops

    def run(self, compiled_trace: Sequence[TraceEntry]) -> SimulationResult:
        simt_trace = to_simt_trace(compiled_trace, self.spill_every_n_memory_ops)
        simulator = MVESimulator(config=self.config, scheme=self.scheme)
        return simulator.run(simt_trace)
