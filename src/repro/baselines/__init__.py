"""Baseline models: Arm Neon, mobile GPU, Duality Cache SIMT, RVV lowering."""

from .profile import KernelProfile, OP_KINDS
from .neon import NeonModel, NeonResult
from .gpu import GPUConfig, GPUModel, GPUResult
from .duality_cache import DualityCacheModel, to_simt_trace
from .rvv import RVVEmitter, run_rvv_trace

__all__ = [
    "KernelProfile",
    "OP_KINDS",
    "NeonModel",
    "NeonResult",
    "GPUConfig",
    "GPUModel",
    "GPUResult",
    "DualityCacheModel",
    "to_simt_trace",
    "RVVEmitter",
    "run_rvv_trace",
]
