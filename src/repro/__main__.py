"""``python -m repro``: the unified experiment/sweep/fleet CLI (see repro.cli)."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
