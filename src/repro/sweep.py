"""Deprecated alias for the unified CLI: use ``python -m repro`` instead.

``python -m repro.sweep`` predates the experiment registry; it accepted only
raw kernel sweeps.  The unified CLI (:mod:`repro.cli`) supersedes it --
every old invocation keeps working unchanged::

    python -m repro.sweep list
    python -m repro.sweep run --sweep figure7 --jobs 4
    python -m repro.sweep run --kernels gemm,csum --kinds mve,rvv --scale 0.25
    python -m repro.sweep clear-cache

but new code should call ``python -m repro`` (which adds experiment runs
with JSON/CSV export) directly.  The Python-level helpers this module used
to define (:func:`named_sweep`, :func:`named_sweep_names`,
:func:`run_sweep`) are re-exported from their new home in :mod:`repro.cli`.
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence

from .cli import main as _cli_main, named_sweep, named_sweep_names, run_sweep

__all__ = ["named_sweep", "named_sweep_names", "run_sweep", "main"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    print(
        "note: `python -m repro.sweep` is deprecated; use `python -m repro` instead",
        file=sys.stderr,
    )
    return _cli_main(argv, prog="python -m repro.sweep")


if __name__ == "__main__":
    sys.exit(main())
