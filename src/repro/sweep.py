"""Batch-mode sweep CLI: ``python -m repro.sweep {list,run,clear-cache}``.

Examples
--------
List the named sweeps and every registered kernel::

    python -m repro.sweep list

Reproduce the Figure 7 kernel set on 4 worker processes (the second
invocation answers from the persistent cache)::

    python -m repro.sweep run --sweep figure7 --jobs 4

Ad-hoc sweeps compose the axes directly::

    python -m repro.sweep run --kernels gemm,csum --schemes bit-serial,bit-parallel \
        --kinds mve,rvv --scale 0.25 --jobs 8

``--no-cache`` bypasses the persistent store entirely; ``clear-cache``
deletes it (location: ``$REPRO_SWEEP_CACHE_DIR`` or ``~/.cache/repro-sweep``).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from .core.cache import ResultStore
from .experiments.figure7 import figure7_sweep_spec
from .experiments.figure8 import figure8_sweep_spec
from .experiments.figure9 import figure9_sweep_spec
from .experiments.figure10 import figure10_sweep_spec
from .experiments.figure12 import figure12a_sweep_spec, figure12b_sweep_spec
from .experiments.figure13 import figure13_sweep_spec
from .experiments.sweep import ParallelSweepEngine, SweepResult, SweepSpec, default_job_count
from .experiments.tables import format_table, table3_libraries
from .sram.schemes import SCHEME_NAMES, get_scheme
from .workloads import kernel_names

__all__ = ["named_sweep", "named_sweep_names", "run_sweep", "main"]


#: name -> (builder from the owning figure module, description, honours
#: --scale).  Each builder is the same single source of truth the figure's
#: prefetch uses, so the CLI job set can never drift from the experiment's.
#: The figure9/10/13 sweeps pin the paper's dataset shapes and ignore scale.
_NAMED_SWEEPS = {
    "figure7": (
        lambda scale: figure7_sweep_spec(scale),
        "all library kernels, MVE vs the serial baselines",
        True,
    ),
    "figure8": (lambda scale: figure8_sweep_spec(scale), "GPU-comparison kernel set", True),
    "figure9": (lambda scale: figure9_sweep_spec(), "GEMM/SpMM shape sweeps", False),
    "figure10": (
        lambda scale: figure10_sweep_spec(),
        "MVE and RVV lowerings of the Figure 10 kernels",
        False,
    ),
    "figure12a": (
        lambda scale: figure12a_sweep_spec(),
        "Duality Cache comparison kernel set",
        False,
    ),
    "figure12b": (
        lambda scale: figure12b_sweep_spec(),
        "array-count scalability sweep",
        False,
    ),
    "figure13": (
        lambda scale: figure13_sweep_spec(),
        "all compute schemes, MVE and RVV",
        False,
    ),
}


def named_sweep_names() -> list[str]:
    return sorted(_NAMED_SWEEPS)


def named_sweep(name: str, scale: float = 0.5) -> SweepSpec:
    """One of the predefined evaluation sweeps by name."""
    try:
        builder, _, _ = _NAMED_SWEEPS[name]
    except KeyError:
        raise KeyError(
            f"unknown sweep {name!r}; available: {', '.join(named_sweep_names())}"
        ) from None
    return builder(scale)


def run_sweep(spec: SweepSpec, engine: Optional[ParallelSweepEngine] = None) -> SweepResult:
    """Execute every job of ``spec`` on ``engine`` and time the batch."""
    engine = engine or ParallelSweepEngine(jobs=default_job_count(), store=ResultStore.default())
    start = time.perf_counter()
    outcomes = engine.run_jobs(spec.jobs())
    return SweepResult(spec=spec, outcomes=outcomes, elapsed_s=time.perf_counter() - start)


# ---------------------------------------------------------------------- #


def _cmd_list(args: argparse.Namespace) -> int:
    print("Named sweeps:")
    for name in named_sweep_names():
        builder, description, uses_scale = _NAMED_SWEEPS[name]
        note = "" if uses_scale else " (fixed shapes; ignores --scale)"
        print(f"  {name:<10} {len(builder(0.5).jobs()):>4} jobs  {description}{note}")
    print("\nKernels by library (Table III):")
    rows = [
        [row["library"], row["domain"], row["dims"], ", ".join(row["kernels"])]
        for row in table3_libraries()
    ]
    print(format_table(["library", "domain", "dims", "kernels"], rows))
    store = ResultStore(args.cache_dir) if args.cache_dir else ResultStore.default()
    print(f"\nCache: {store.root} ({len(store)} entries)")
    return 0


def _cmd_clear_cache(args: argparse.Namespace) -> int:
    store = ResultStore(args.cache_dir) if args.cache_dir else ResultStore.default()
    removed = store.clear()
    print(f"removed {removed} cached results from {store.root}")
    return 0


def _spec_from_args(args: argparse.Namespace) -> SweepSpec:
    scale = 0.5 if args.scale is None else args.scale
    if args.sweep:
        try:
            spec = named_sweep(args.sweep, scale=scale)
        except KeyError as error:
            raise SystemExit(f"run: {error.args[0]}") from None
        if args.scale is not None and not _NAMED_SWEEPS[args.sweep][2]:
            print(
                f"note: sweep {args.sweep!r} uses the paper's fixed dataset shapes; "
                f"--scale {args.scale} is ignored",
                file=sys.stderr,
            )
        return spec
    if not args.kernels:
        raise SystemExit("run: pass --sweep NAME or --kernels a,b,c")
    requested = [name.strip() for name in args.kernels.split(",") if name.strip()]
    unknown = sorted(set(requested) - set(kernel_names()))
    if unknown:
        raise SystemExit(f"unknown kernels: {', '.join(unknown)}")
    kinds = tuple(kind.strip() for kind in args.kinds.split(",") if kind.strip())
    bad_kinds = sorted(set(kinds) - {"mve", "rvv"})
    if bad_kinds:
        raise SystemExit(f"unknown kinds: {', '.join(bad_kinds)} (choose from mve, rvv)")
    schemes = tuple(s.strip() for s in args.schemes.split(",") if s.strip())
    for scheme in schemes:
        try:
            get_scheme(scheme)
        except ValueError:
            raise SystemExit(
                f"unknown scheme {scheme!r} (choose from {', '.join(SCHEME_NAMES)})"
            ) from None
    return SweepSpec(
        name="custom",
        kernels=[(name, {"scale": scale}) for name in requested],
        kinds=kinds,
        schemes=schemes,
        default_scale=scale,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    store = None
    if not args.no_cache:
        store = ResultStore(args.cache_dir) if args.cache_dir else ResultStore.default()
    engine = ParallelSweepEngine(jobs=args.jobs, store=store)
    sweep = run_sweep(spec, engine)

    rows = sorted(sweep.outcomes.items(), key=lambda item: (item[0].kernel, item[0].kind))
    header = f"{'kernel':<12} {'kind':<4} {'scheme':<13} {'cycles':>12} {'time_us':>10} {'energy_nj':>12} {'src':>8}"
    print(header)
    print("-" * len(header))
    for job, outcome in rows:
        result = outcome.result
        print(
            f"{job.kernel:<12} {job.kind:<4} {job.scheme_name:<13} "
            f"{result.total_cycles:>12.0f} {result.time_us:>10.2f} "
            f"{result.energy_nj:>12.1f} {outcome.source:>8}"
        )
    cache_note = "cache disabled" if args.no_cache else f"cache at {store.root}"
    print(
        f"\n{spec.name}: {len(sweep.outcomes)} jobs in {sweep.elapsed_s:.2f}s "
        f"({sweep.computed} simulated, {sweep.from_cache} from cache, "
        f"--jobs {args.jobs}, {cache_note})"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Run kernel sweeps in parallel with persistent result caching.",
    )
    parser.add_argument("--cache-dir", help="override the persistent cache directory")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show named sweeps, kernels and cache status")
    sub.add_parser("clear-cache", help="delete every cached result")

    run = sub.add_parser("run", help="execute a sweep")
    run.add_argument("--sweep", help=f"named sweep ({', '.join(named_sweep_names())})")
    run.add_argument("--kernels", help="comma-separated kernel names for an ad-hoc sweep")
    run.add_argument("--kinds", default="mve", help="comma-separated lowerings (mve,rvv)")
    run.add_argument("--schemes", default="bit-serial", help="comma-separated compute schemes")
    run.add_argument(
        "--scale", type=float, default=None,
        help="dataset scale (default 0.5; ignored by fixed-shape sweeps, see `list`)",
    )
    run.add_argument(
        "--jobs", type=int, default=default_job_count(), help="worker processes (default: cores)"
    )
    run.add_argument("--no-cache", action="store_true", help="bypass the persistent cache")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "clear-cache":
        return _cmd_clear_cache(args)
    return _cmd_run(args)


if __name__ == "__main__":
    sys.exit(main())
