"""Declarative search spaces over the machine-configuration axes.

A :class:`SearchSpace` is the explorer's input: one kernel/lowering plus a
list of named :class:`Axis` objects, each a finite ordered set of primitive
values (ints, floats, or names).  Points are addressed by a single integer
id in mixed-radix order (first axis most significant), so a space is fully
described by a small JSON dict -- which is what lets search state live in
the content-addressed :class:`~repro.core.cache.ResultStore` and lets a
fleet coordinator ship whole exploration rounds over the wire without ever
serializing a :class:`~repro.core.config.MachineConfig`.

Every point compiles down to the existing sweep machinery: ``job(point)``
builds a one-point :class:`~repro.experiments.sweep.SweepSpec` and takes its
single :class:`~repro.experiments.sweep.KernelJob`, and ``sweep_specs()``
compiles the whole grid into per-config SweepSpecs whose union is exactly
the point set -- so exploration jobs hash to the same cache keys an
equivalent hand-written sweep would, and every downstream stage (trace
store, batched replay, fleet partitions) works unchanged.

Axes are interpreted by a fixed registry of appliers over the *default*
configuration; values stay primitive on the wire (DRAM variants are named
presets, not serialized timing structs) so a skewed peer can never inject
an unkeyed machine configuration -- the job cache keys, which embed the
source fingerprint, remain the only trust anchor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Callable

from ..core.cache import code_fingerprint, stable_hash
from ..core.config import MachineConfig, default_config
from ..memory.dram import DRAMConfig
from ..sram.array import EngineGeometry, SramArrayGeometry
from ..sram.schemes import SCHEME_NAMES
from ..experiments.sweep import KernelJob, SweepSpec

__all__ = [
    "AXIS_NAMES",
    "Axis",
    "DRAM_PRESETS",
    "SearchSpace",
    "default_space",
]

#: named DRAM variants (LPDDR4X-3733 baseline per Table IV); presets keep
#: axis values primitive -- the wire form names a variant, never ships
#: timing structs
DRAM_PRESETS: dict[str, DRAMConfig] = {
    "lpddr4x": DRAMConfig(),
    "lpddr4x-slow": DRAMConfig(t_cas=50, t_rcd=62, t_rp=62, peak_bytes_per_cycle=8.0),
    "lpddr5": DRAMConfig(
        t_cas=34, t_rcd=42, t_rp=42, t_burst=6, peak_bytes_per_cycle=18.0
    ),
    "lpddr5-2ch": DRAMConfig(
        num_channels=2, t_cas=34, t_rcd=42, t_rp=42, t_burst=6,
        peak_bytes_per_cycle=9.0,
    ),
}


def _replace_cache(config: MachineConfig, level: str, **changes: Any) -> MachineConfig:
    hierarchy = config.hierarchy
    cache = replace(getattr(hierarchy, level), **changes)
    return replace(config, hierarchy=replace(hierarchy, **{level: cache}))


def _replace_engine(config: MachineConfig, **changes: Any) -> MachineConfig:
    engine = config.engine
    return replace(
        config,
        engine=EngineGeometry(
            num_arrays=changes.get("num_arrays", engine.num_arrays),
            arrays_per_control_block=changes.get(
                "arrays_per_control_block", engine.arrays_per_control_block
            ),
            array=changes.get("array", engine.array),
        ),
    )


def _apply_num_arrays(config: MachineConfig, value: Any) -> MachineConfig:
    return config.with_arrays(int(value))


def _apply_arrays_per_cb(config: MachineConfig, value: Any) -> MachineConfig:
    return _replace_engine(config, arrays_per_control_block=int(value))


def _apply_array_rows(config: MachineConfig, value: Any) -> MachineConfig:
    array = SramArrayGeometry(rows=int(value), cols=config.engine.array.cols)
    return _replace_engine(config, array=array)


def _apply_array_cols(config: MachineConfig, value: Any) -> MachineConfig:
    # Bit-lines per array: together with num_arrays this sets simd_lanes,
    # so this axis changes the capture-stage trace spec, not just timing.
    array = SramArrayGeometry(rows=config.engine.array.rows, cols=int(value))
    return _replace_engine(config, array=array)


def _apply_l2_compute_ways(config: MachineConfig, value: Any) -> MachineConfig:
    return replace(config, l2_compute_ways=int(value))


def _apply_l2_size_kb(config: MachineConfig, value: Any) -> MachineConfig:
    return _replace_cache(config, "l2", size_bytes=int(value) * 1024)


def _apply_l2_ways(config: MachineConfig, value: Any) -> MachineConfig:
    return _replace_cache(config, "l2", ways=int(value))


def _apply_llc_size_kb(config: MachineConfig, value: Any) -> MachineConfig:
    return _replace_cache(config, "llc", size_bytes=int(value) * 1024)


def _apply_dram(config: MachineConfig, value: Any) -> MachineConfig:
    return replace(
        config, hierarchy=replace(config.hierarchy, dram=DRAM_PRESETS[str(value)])
    )


#: axis name -> applier over the default config; "scheme" is handled
#: specially because it flows through SweepSpec.schemes / KernelJob rather
#: than the config applier chain
_APPLIERS: dict[str, Callable[[MachineConfig, Any], MachineConfig]] = {
    "num_arrays": _apply_num_arrays,
    "arrays_per_control_block": _apply_arrays_per_cb,
    "array_rows": _apply_array_rows,
    "array_cols": _apply_array_cols,
    "l2_compute_ways": _apply_l2_compute_ways,
    "l2_size_kb": _apply_l2_size_kb,
    "l2_ways": _apply_l2_ways,
    "llc_size_kb": _apply_llc_size_kb,
    "dram": _apply_dram,
}

AXIS_NAMES: tuple[str, ...] = ("scheme",) + tuple(sorted(_APPLIERS))


@dataclass(frozen=True)
class Axis:
    """One named design dimension: an ordered, finite set of values."""

    name: str
    values: tuple

    def __post_init__(self):
        object.__setattr__(self, "values", tuple(self.values))
        if self.name not in AXIS_NAMES:
            raise ValueError(
                f"unknown axis {self.name!r}; known: {', '.join(AXIS_NAMES)}"
            )
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"axis {self.name!r} repeats values: {self.values}")
        if self.name == "scheme":
            for value in self.values:
                if value not in SCHEME_NAMES:
                    raise ValueError(f"unknown scheme {value!r} on the scheme axis")
        if self.name == "dram":
            for value in self.values:
                if value not in DRAM_PRESETS:
                    raise ValueError(
                        f"unknown DRAM preset {value!r}; "
                        f"known: {', '.join(DRAM_PRESETS)}"
                    )

    @property
    def is_categorical(self) -> bool:
        """Whether values are names (orderless) rather than magnitudes."""
        return any(isinstance(value, str) for value in self.values)

    def to_dict(self) -> dict:
        return {"name": self.name, "values": list(self.values)}

    @classmethod
    def from_dict(cls, data: dict) -> "Axis":
        return cls(name=data["name"], values=tuple(data["values"]))


@dataclass(frozen=True)
class SearchSpace:
    """The Cartesian grid one exploration searches, as declarative data."""

    kernel: str
    axes: tuple[Axis, ...]
    kind: str = "mve"
    scale: float = 0.5

    def __post_init__(self):
        object.__setattr__(self, "axes", tuple(self.axes))
        if self.kind not in ("mve", "rvv"):
            raise ValueError(f"unknown trace kind {self.kind!r}")
        if not self.axes:
            raise ValueError("a search space needs at least one axis")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axes: {names}")
        from ..workloads import kernel_names

        if self.kernel not in kernel_names():
            raise ValueError(
                f"unknown kernel {self.kernel!r}; known: {', '.join(kernel_names())}"
            )

    # -- point addressing ----------------------------------------------- #

    @property
    def size(self) -> int:
        return math.prod(len(axis.values) for axis in self.axes)

    def shape(self) -> tuple[int, ...]:
        return tuple(len(axis.values) for axis in self.axes)

    def point_indices(self, point: int) -> tuple[int, ...]:
        """Mixed-radix digits of ``point`` (first axis most significant)."""
        if not 0 <= point < self.size:
            raise IndexError(f"point {point} outside space of {self.size}")
        digits = []
        for radix in reversed(self.shape()):
            digits.append(point % radix)
            point //= radix
        return tuple(reversed(digits))

    def point_from_indices(self, indices: tuple[int, ...]) -> int:
        point = 0
        for index, radix in zip(indices, self.shape()):
            point = point * radix + index
        return point

    def point_values(self, point: int) -> dict[str, Any]:
        return {
            axis.name: axis.values[index]
            for axis, index in zip(self.axes, self.point_indices(point))
        }

    # -- compilation to the sweep machinery ------------------------------ #

    def config_for(self, point: int) -> tuple[MachineConfig, str]:
        """The point's machine configuration and scheme name.

        Built by folding the axis appliers over the *default* config -- the
        declarative form never carries a config, so two peers agreeing on
        the space dict and the source fingerprint agree on every job key.
        """
        config = default_config()
        scheme = config.scheme_name
        for axis, index in zip(self.axes, self.point_indices(point)):
            value = axis.values[index]
            if axis.name == "scheme":
                scheme = str(value)
            else:
                config = _APPLIERS[axis.name](config, value)
        return config, scheme

    def _point_spec(self, point: int) -> SweepSpec:
        config, scheme = self.config_for(point)
        return SweepSpec(
            name=f"explore:{self.kernel}",
            kernels=[(self.kernel, {"scale": self.scale})],
            kinds=(self.kind,),
            schemes=(scheme,),
            base_config=config,
        )

    def job(self, point: int) -> KernelJob:
        """The point's simulation job, compiled through a one-point
        :class:`SweepSpec` so explorer jobs are bit-identical (same cache
        keys) to an equivalent hand-written sweep."""
        (job,) = self._point_spec(point).jobs()
        return job

    def jobs(self, points: list[int]) -> list[KernelJob]:
        return [self.job(point) for point in points]

    def sweep_specs(self) -> list[SweepSpec]:
        """The whole grid as SweepSpecs, scheme axis folded into
        ``SweepSpec.schemes`` -- the union of their job sets is exactly the
        point set (asserted in tests), which is what "compiles down to the
        existing sweep machinery" means here."""
        groups: dict[tuple, dict] = {}
        for point in range(self.size):
            values = self.point_values(point)
            key = tuple((k, v) for k, v in values.items() if k != "scheme")
            entry = groups.setdefault(key, {"point": point, "schemes": []})
            scheme = values.get("scheme")
            if scheme is not None and scheme not in entry["schemes"]:
                entry["schemes"].append(scheme)
        specs = []
        for entry in groups.values():
            config, scheme = self.config_for(entry["point"])
            specs.append(
                SweepSpec(
                    name=f"explore:{self.kernel}",
                    kernels=[(self.kernel, {"scale": self.scale})],
                    kinds=(self.kind,),
                    schemes=tuple(entry["schemes"]) or (scheme,),
                    base_config=config,
                )
            )
        return specs

    # -- identity and wire form ------------------------------------------ #

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "kind": self.kind,
            "scale": self.scale,
            "axes": [axis.to_dict() for axis in self.axes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchSpace":
        return cls(
            kernel=data["kernel"],
            kind=data.get("kind", "mve"),
            scale=float(data.get("scale", 0.5)),
            axes=tuple(Axis.from_dict(axis) for axis in data["axes"]),
        )

    def key(self) -> str:
        """Content hash of the space *and* the source tree -- the namespace
        search state checkpoints under.  Embedding the fingerprint keeps a
        resumed search consistent with its per-job results, which are keyed
        the same way."""
        return stable_hash(
            {
                "namespace": "explore-space",
                "fingerprint": code_fingerprint(),
                "space": self.to_dict(),
            }
        )

    def describe(self) -> str:
        axes = " x ".join(f"{axis.name}[{len(axis.values)}]" for axis in self.axes)
        return (
            f"{self.kernel}/{self.kind} (scale={self.scale}): "
            f"{axes} = {self.size} points"
        )


def default_space(kernel: str = "csum", scale: float = 0.5, kind: str = "mve") -> SearchSpace:
    """The stock ~200-point space the CLI searches when no axes are given:
    scheme x engine size x L2 compute ways x DRAM variant."""
    return SearchSpace(
        kernel=kernel,
        kind=kind,
        scale=scale,
        axes=(
            Axis("scheme", SCHEME_NAMES),
            Axis("num_arrays", (8, 16, 32, 64)),
            Axis("l2_compute_ways", (2, 4, 6)),
            Axis("dram", tuple(DRAM_PRESETS)),
        ),
    )
