"""Resumable search state, checkpointed in the content-addressed store.

A :class:`SearchState` is everything the explorer needs to continue a
search: the space (as declarative data), the per-point objective vectors it
has evaluated (compact -- no full metrics for interior points, so state
stays small even for 10^5-point explorations), the current frontier (full
metrics, but bounded by the frontier size) and one :class:`RoundRecord`
per completed round.

State lives in the same :class:`~repro.core.cache.ResultStore` as job
results and traces, under a key that hashes the space, the search knobs
(seed/strategy/objectives) and the source fingerprint -- so it shares the
remote tier (``--remote-cache``) and can never be replayed against code it
does not match.  The *budget* is deliberately not part of the key:
resuming a finished-early search with a bigger budget continues from the
checkpoint instead of starting over.

Checkpointing is per round; a kill *mid-round* loses only the round's
bookkeeping, never simulations -- the sweep engine persists every result
to the store before its ``on_result`` callback fires, so the re-proposed
round is answered from the store without re-simulating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.cache import (
    ResultStore,
    code_fingerprint,
    load_cached_result,
    stable_hash,
    store_cached_result,
)
from ..experiments.serialize import SerializableResult
from .pareto import FrontierPoint
from .space import SearchSpace

__all__ = ["RoundRecord", "SearchState", "load_state", "save_state", "state_key"]


@dataclass
class RoundRecord(SerializableResult):
    """What one completed exploration round did."""

    index: int
    proposed: int
    #: fresh simulations this round (vs points answered by the store tiers)
    simulated: int
    frontier_size: int
    frontier_changed: bool


@dataclass
class SearchState(SerializableResult):
    """One search's full resumable state (see module docstring)."""

    space: dict
    seed: int
    strategy: str
    objectives: tuple[str, ...]
    #: point id -> objective vector, for every point ever evaluated
    evaluated: dict[int, tuple[float, ...]] = field(default_factory=dict)
    frontier: list[FrontierPoint] = field(default_factory=list)
    rounds: list[RoundRecord] = field(default_factory=list)
    #: the strategy proposed nothing new: the search converged (vs merely
    #: running out of budget, which leaves done=False so it can resume)
    done: bool = False

    @property
    def simulated_total(self) -> int:
        return sum(record.simulated for record in self.rounds)


def state_key(
    space: SearchSpace, seed: int, strategy: str, objectives: tuple[str, ...]
) -> str:
    return stable_hash(
        {
            "namespace": "explore-state",
            "fingerprint": code_fingerprint(),
            "space": space.to_dict(),
            "seed": seed,
            "strategy": strategy,
            "objectives": list(objectives),
        }
    )


def load_state(store: Optional[ResultStore], key: str) -> Optional[SearchState]:
    return load_cached_result(store, key, SearchState)


def save_state(store: Optional[ResultStore], key: str, state: SearchState) -> None:
    store_cached_result(store, key, state)
