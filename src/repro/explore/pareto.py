"""Streaming Pareto-frontier maintenance over cost/performance metrics.

The explorer's objectives are the paper's three evaluation currencies:
cycles (performance), silicon area (:mod:`repro.core.area`, Table V) and
energy (:mod:`repro.core.energy`).  :class:`ParetoFrontier` consumes one
:class:`FrontierPoint` at a time -- the shape ``on_result`` streaming
delivers -- and keeps exactly the non-dominated set, so memory is bounded
by the frontier size, never the number of evaluated points, and the final
frontier is invariant to the order results arrive in (asserted with
hypothesis): dominance is a property of the point set, and insertion
prunes exactly the points a batch rebuild would.

Dominance is the standard weak form: ``a`` dominates ``b`` iff ``a`` is
no worse on every objective and strictly better on at least one.  Points
with *equal* objective vectors do not dominate each other, so ties are
all kept -- which is what makes adaptive and exhaustive searches compare
bit-identical instead of keeping an arbitrary tie representative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..core.area import AreaModel, AreaReport
from ..core.config import MachineConfig
from ..core.energy import EnergyBreakdown
from ..experiments.serialize import SerializableResult
from ..experiments.sweep import JobOutcome

__all__ = [
    "DEFAULT_OBJECTIVES",
    "FrontierPoint",
    "ParetoFrontier",
    "PointMetrics",
    "metrics_from_outcome",
]


@dataclass
class PointMetrics(SerializableResult):
    """Everything the frontier (and its export) knows about one point."""

    cycles: float
    time_us: float
    energy: EnergyBreakdown
    area: AreaReport
    spills: int = 0


#: objective name -> minimized scalar extracted from :class:`PointMetrics`
_OBJECTIVES: dict[str, Callable[[PointMetrics], float]] = {
    "cycles": lambda metrics: float(metrics.cycles),
    "time_us": lambda metrics: float(metrics.time_us),
    "area": lambda metrics: float(metrics.area.total_mm2),
    "energy": lambda metrics: float(metrics.energy.total_nj),
}

DEFAULT_OBJECTIVES: tuple[str, ...] = ("cycles", "area", "energy")


def metrics_from_outcome(config: MachineConfig, outcome: JobOutcome) -> PointMetrics:
    """Metrics for one simulated point: timing/energy from the simulation
    result, area from the analytic Table V model (config-only, so it costs
    nothing extra per point)."""
    area = AreaModel(
        num_arrays=config.engine.num_arrays,
        arrays_per_control_block=config.engine.arrays_per_control_block,
    ).report()
    result = outcome.result
    return PointMetrics(
        cycles=float(result.total_cycles),
        time_us=float(result.time_us),
        energy=result.energy,
        area=area,
        spills=int(outcome.spills),
    )


@dataclass
class FrontierPoint(SerializableResult):
    """One point on (or fed to) the frontier, in wire-serializable form."""

    point: int
    values: dict[str, Any]
    cache_key: str
    metrics: PointMetrics


class ParetoFrontier:
    """Incremental non-dominated set under the named minimized objectives."""

    def __init__(self, objectives: Sequence[str] = DEFAULT_OBJECTIVES):
        unknown = [name for name in objectives if name not in _OBJECTIVES]
        if unknown:
            raise ValueError(
                f"unknown objectives {unknown}; known: {', '.join(sorted(_OBJECTIVES))}"
            )
        if not objectives:
            raise ValueError("need at least one objective")
        self.objectives = tuple(objectives)
        self._members: list[tuple[tuple[float, ...], FrontierPoint]] = []
        self._ids: set[int] = set()

    def vector(self, metrics: PointMetrics) -> tuple[float, ...]:
        return tuple(_OBJECTIVES[name](metrics) for name in self.objectives)

    @staticmethod
    def _dominates(a: tuple[float, ...], b: tuple[float, ...]) -> bool:
        return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))

    def update(self, point: FrontierPoint) -> bool:
        """Fold one point in; True iff the frontier changed.

        Idempotent per point id (re-feeding a checkpointed frontier is a
        no-op), and a dominated arrival leaves the set untouched -- so the
        peak cost of a round is O(frontier x arrivals), independent of how
        many points the search has evaluated."""
        if point.point in self._ids:
            return False
        vector = self.vector(point.metrics)
        if any(self._dominates(held, vector) for held, _ in self._members):
            return False
        self._members = [
            (held, member)
            for held, member in self._members
            if not self._dominates(vector, held)
        ]
        self._members.append((vector, point))
        self._ids = {member.point for _, member in self._members}
        return True

    @property
    def points(self) -> list[FrontierPoint]:
        """The frontier in canonical (point-id) order -- the comparable,
        exportable form."""
        return [member for _, member in sorted(self._members, key=lambda m: m[1].point)]

    def __len__(self) -> int:
        return len(self._members)
