"""Design-space exploration: adaptive Pareto search over machine configs.

The subsystem behind ``python -m repro explore``: declare a
:class:`SearchSpace` (axes over scheme, engine geometry, cache/L2-compute
geometry, DRAM variant), hand it to an :class:`Explorer`, and get back the
Pareto frontier of cycles vs area vs energy -- evaluating (and above all
*simulating*) far fewer points than the full grid, with search state
checkpointed in the content-addressed store so a killed search resumes
with zero re-simulation.
"""

from .explorer import ExploreSummary, Explorer, exhaustive_frontier
from .pareto import (
    DEFAULT_OBJECTIVES,
    FrontierPoint,
    ParetoFrontier,
    PointMetrics,
    metrics_from_outcome,
)
from .space import AXIS_NAMES, Axis, DRAM_PRESETS, SearchSpace, default_space
from .state import RoundRecord, SearchState, load_state, save_state, state_key
from .strategy import STRATEGY_NAMES, Strategy, get_strategy

__all__ = [
    "AXIS_NAMES",
    "Axis",
    "DEFAULT_OBJECTIVES",
    "DRAM_PRESETS",
    "ExploreSummary",
    "Explorer",
    "FrontierPoint",
    "ParetoFrontier",
    "PointMetrics",
    "RoundRecord",
    "STRATEGY_NAMES",
    "SearchSpace",
    "SearchState",
    "Strategy",
    "default_space",
    "exhaustive_frontier",
    "get_strategy",
    "load_state",
    "metrics_from_outcome",
    "save_state",
    "state_key",
]
