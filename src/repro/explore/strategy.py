"""Pluggable proposal strategies for the design-space explorer.

A :class:`Strategy` proposes the next batch of point ids given the space
and the search state; proposing nothing signals convergence.  All
randomness comes from the per-round RNG the explorer hands in (seeded
from the search seed and the round index), so a search is a pure function
of (space, seed, strategy, objectives) -- resuming a killed search
replays identical proposals and the warm store answers the overlap.

Shipped strategies:

* ``frontier`` (default) -- coarse seed grid (every value of categorical
  axes, endpoints of numeric ones), then repeatedly evaluate the grid
  neighborhood of the current frontier until no frontier point has an
  unevaluated neighbor.  On monotone-ish cost surfaces this walks the
  frontier out to the exact non-dominated set while leaving interior
  regions unevaluated.
* ``random`` -- seeded uniform sampling without replacement; converges
  only by exhausting the space.  The baseline the adaptive strategies
  are judged against.
* ``successive-halving`` -- random cohort, rank by normalized scalarized
  cost, keep the best half, expand the survivors' neighborhoods; the
  classic bandit-style racer for when one scalar trade-off is enough.
* ``exhaustive`` -- propose everything (brute force); the ground truth
  the equivalence tests compare frontiers against.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .space import SearchSpace
    from .state import SearchState

__all__ = [
    "STRATEGY_NAMES",
    "ExhaustiveStrategy",
    "FrontierNeighborhoodStrategy",
    "RandomStrategy",
    "Strategy",
    "SuccessiveHalvingStrategy",
    "get_strategy",
]


class Strategy:
    """Proposal seam: subclass and register in :func:`get_strategy`."""

    name = "abstract"

    def propose(
        self,
        space: "SearchSpace",
        state: "SearchState",
        rng: random.Random,
        batch: int,
    ) -> list[int]:
        """Point ids to evaluate next (the explorer dedups against
        ``state.evaluated``); an empty list means converged."""
        raise NotImplementedError


def _unevaluated(space: "SearchSpace", state: "SearchState") -> list[int]:
    return [point for point in range(space.size) if point not in state.evaluated]


def _neighbors(space: "SearchSpace", point: int) -> Iterator[int]:
    """Grid neighbors: one step along one axis (categorical axes included
    -- their declared order acts as the step order, which keeps every
    category reachable from any seed)."""
    indices = space.point_indices(point)
    shape = space.shape()
    for position, index in enumerate(indices):
        for step in (-1, 1):
            moved = index + step
            if 0 <= moved < shape[position]:
                yield space.point_from_indices(
                    indices[:position] + (moved,) + indices[position + 1 :]
                )


class ExhaustiveStrategy(Strategy):
    name = "exhaustive"

    def propose(self, space, state, rng, batch):
        return _unevaluated(space, state)


class RandomStrategy(Strategy):
    name = "random"

    def propose(self, space, state, rng, batch):
        remaining = _unevaluated(space, state)
        if len(remaining) <= batch:
            return remaining
        return sorted(rng.sample(remaining, batch))


class FrontierNeighborhoodStrategy(Strategy):
    """Seed coarsely, then grow the frontier's grid neighborhood to a
    fixed point (see module docstring)."""

    name = "frontier"

    def __init__(self, seed_points_per_axis: int = 2):
        self.seed_points_per_axis = max(2, seed_points_per_axis)

    def _seed_grid(self, space: "SearchSpace") -> list[int]:
        per_axis = []
        for axis in space.axes:
            count = len(axis.values)
            if axis.is_categorical or count <= self.seed_points_per_axis:
                picks = list(range(count))
            else:
                # Evenly spaced value indices, endpoints always included.
                span = self.seed_points_per_axis - 1
                picks = sorted({round(k * (count - 1) / span) for k in range(span + 1)})
            per_axis.append(picks)
        return [
            space.point_from_indices(indices)
            for indices in itertools.product(*per_axis)
        ]

    def propose(self, space, state, rng, batch):
        if not state.rounds:
            return [p for p in self._seed_grid(space) if p not in state.evaluated]
        frontier_neighbors = {
            neighbor
            for member in state.frontier
            for neighbor in _neighbors(space, member.point)
        }
        return sorted(frontier_neighbors - set(state.evaluated))


class SuccessiveHalvingStrategy(Strategy):
    """Random cohort, then races: each round keeps the best half (by a
    min-normalized sum of the objective vector) and evaluates the
    survivors' grid neighborhoods."""

    name = "successive-halving"

    def propose(self, space, state, rng, batch):
        if not state.rounds:
            remaining = _unevaluated(space, state)
            if len(remaining) <= batch:
                return remaining
            return sorted(rng.sample(remaining, batch))
        floors = [
            min(vector[i] for vector in state.evaluated.values()) or 1.0
            for i in range(len(state.objectives))
        ]

        def score(point: int) -> float:
            vector = state.evaluated[point]
            return sum(value / floor for value, floor in zip(vector, floors))

        keep = max(1, math.ceil(len(state.evaluated) / 2 ** len(state.rounds)))
        survivors = sorted(state.evaluated, key=score)[:keep]
        fresh = {
            neighbor
            for point in survivors
            for neighbor in _neighbors(space, point)
        } - set(state.evaluated)
        return sorted(fresh)


def get_strategy(name: str) -> Strategy:
    try:
        return {
            ExhaustiveStrategy.name: ExhaustiveStrategy,
            RandomStrategy.name: RandomStrategy,
            FrontierNeighborhoodStrategy.name: FrontierNeighborhoodStrategy,
            SuccessiveHalvingStrategy.name: SuccessiveHalvingStrategy,
        }[name]()
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; known: {', '.join(STRATEGY_NAMES)}"
        ) from None


STRATEGY_NAMES: tuple[str, ...] = (
    FrontierNeighborhoodStrategy.name,
    RandomStrategy.name,
    SuccessiveHalvingStrategy.name,
    ExhaustiveStrategy.name,
)
