"""The adaptive search loop: propose, simulate, fold into the frontier.

One :class:`Explorer` round is

1. **propose** -- the strategy names the next point ids (deterministic:
   the round RNG derives from the search seed and round index),
2. **evaluate** -- the points compile to :class:`KernelJob` s and stream
   through the sweep engine (``stream_jobs``: results persist to the
   store *before* each callback and nothing is materialized, so a round
   is kill-safe and 10^5-point-safe), each arrival folding into the
   :class:`~repro.explore.pareto.ParetoFrontier` incrementally, and
3. **checkpoint** -- the updated :class:`SearchState` is written back to
   the store.

With a ``coordinator`` (``python -m repro serve``), step 2 first enqueues
the round's jobs as fleet partitions and polls the shared store until the
workers have drained them -- the engine then answers everything from the
remote tier; any coordinator fault just degrades to simulating locally.

Warm-store answers count as *evaluated* but not *simulated*; the run
summary reports both against the space size, which is how "finds the
frontier while simulating measurably fewer configs" is made a checkable
claim rather than a slogan.
"""

from __future__ import annotations

import random
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Optional, Union

from ..core.cache import ResultStore
from ..core.coordinator import CoordinatorClient
from ..experiments.sweep import KernelJob, OnResult, ParallelSweepEngine
from .pareto import DEFAULT_OBJECTIVES, FrontierPoint, ParetoFrontier, metrics_from_outcome
from .space import SearchSpace
from .state import RoundRecord, SearchState, load_state, save_state, state_key
from .strategy import Strategy, get_strategy

__all__ = ["ExploreSummary", "Explorer", "exhaustive_frontier"]

#: default per-round proposal cap for sampling strategies
DEFAULT_BATCH = 16


@dataclass
class ExploreSummary:
    """What one ``Explorer.run`` call did (on top of any resumed state)."""

    state: SearchState
    space_size: int
    #: fresh simulations performed by *this* call (resume health: a fully
    #: warm rerun reports 0 here)
    simulated_this_run: int
    elapsed_s: float
    #: fleet-drain rounds that hit ``fleet_timeout_s`` during this call and
    #: fell back to local simulation
    fleet_timeouts: int = 0

    @property
    def evaluated(self) -> int:
        return len(self.state.evaluated)

    @property
    def frontier_size(self) -> int:
        return len(self.state.frontier)

    def describe(self) -> str:
        state = self.state
        status = "converged" if state.done else "budget exhausted (resumable)"
        fleet_note = (
            f" | {self.fleet_timeouts} fleet timeouts" if self.fleet_timeouts else ""
        )
        return (
            f"frontier {self.frontier_size} points | evaluated {self.evaluated}"
            f"/{self.space_size} configs ({state.simulated_total} simulated ever, "
            f"{self.space_size - self.evaluated} never simulated) | "
            f"{self.simulated_this_run} simulated this run | "
            f"{len(state.rounds)} rounds, {status} | {self.elapsed_s:.1f}s{fleet_note}"
        )


class Explorer:
    """Drives one search over one :class:`SearchSpace` (see module doc)."""

    def __init__(
        self,
        space: SearchSpace,
        store: Optional[ResultStore] = None,
        engine: Optional[ParallelSweepEngine] = None,
        jobs: int = 1,
        strategy: Union[str, Strategy] = "frontier",
        seed: int = 0,
        objectives: tuple[str, ...] = DEFAULT_OBJECTIVES,
        batch: int = DEFAULT_BATCH,
        coordinator: Optional[Union[str, CoordinatorClient]] = None,
        fleet_poll_s: float = 0.5,
        fleet_timeout_s: float = 600.0,
        log: Optional[Callable[[str], None]] = None,
    ):
        self.space = space
        self.engine = engine if engine is not None else ParallelSweepEngine(jobs=jobs, store=store)
        self.strategy = get_strategy(strategy) if isinstance(strategy, str) else strategy
        self.seed = int(seed)
        self.objectives = tuple(objectives)
        ParetoFrontier(self.objectives)  # validate objective names eagerly
        self.batch = max(1, int(batch))
        if isinstance(coordinator, str):
            coordinator = CoordinatorClient(coordinator)
        self.coordinator = coordinator
        self.fleet_poll_s = fleet_poll_s
        self.fleet_timeout_s = fleet_timeout_s
        #: fleet-drain rounds that expired without the workers answering
        #: every key (lifetime of this Explorer; per-run deltas go into
        #: :attr:`ExploreSummary.fleet_timeouts`)
        self.fleet_timeouts = 0
        self._fleet_timeout_warned = False
        self.log = log or (lambda message: None)

    # -- state ----------------------------------------------------------- #

    @property
    def store(self) -> Optional[ResultStore]:
        return self.engine.store

    def state_key(self) -> str:
        return state_key(self.space, self.seed, self.strategy.name, self.objectives)

    def load_state(self) -> Optional[SearchState]:
        return load_state(self.store, self.state_key())

    def _fresh_state(self) -> SearchState:
        return SearchState(
            space=self.space.to_dict(),
            seed=self.seed,
            strategy=self.strategy.name,
            objectives=self.objectives,
        )

    # -- the search loop ------------------------------------------------- #

    def run(
        self,
        budget: int = 64,
        max_rounds: int = 64,
        on_result: Optional[OnResult] = None,
    ) -> ExploreSummary:
        """Search until converged, or ``budget`` evaluated points /
        ``max_rounds`` rounds -- whichever first.  Resumes any checkpoint
        for (space, seed, strategy, objectives) transparently."""
        started = time.perf_counter()
        fleet_timeouts_before = self.fleet_timeouts
        state = self.load_state() or self._fresh_state()
        frontier = ParetoFrontier(self.objectives)
        for member in state.frontier:
            frontier.update(member)
        simulated_this_run = 0

        while not state.done and len(state.rounds) < max_rounds:
            remaining_budget = budget - len(state.evaluated)
            if remaining_budget <= 0:
                break
            index = len(state.rounds)
            rng = random.Random(f"{self.seed}:{index}")
            proposals = self.strategy.propose(self.space, state, rng, self.batch)
            proposals = [
                point
                for point in dict.fromkeys(proposals)
                if point not in state.evaluated
            ]
            if not proposals:
                state.done = True
                break
            proposals = proposals[:remaining_budget]
            jobs = self.space.jobs(proposals)
            point_of = dict(zip(jobs, proposals))
            if self.coordinator is not None:
                self._drain_via_fleet(proposals, jobs)
            computed_before = self.engine.computed
            changed = False

            def fold(job: KernelJob, outcome, completed: int, total: int) -> None:
                nonlocal changed
                point = point_of[job]
                metrics = metrics_from_outcome(job.config, outcome)
                state.evaluated[point] = frontier.vector(metrics)
                member = FrontierPoint(
                    point=point,
                    values=self.space.point_values(point),
                    cache_key=job.cache_key(),
                    metrics=metrics,
                )
                if frontier.update(member):
                    changed = True
                if on_result is not None:
                    on_result(job, outcome, completed, total)

            self.engine.stream_jobs(jobs, on_result=fold)
            simulated = self.engine.computed - computed_before
            simulated_this_run += simulated
            state.frontier = frontier.points
            state.rounds.append(
                RoundRecord(
                    index=index,
                    proposed=len(proposals),
                    simulated=simulated,
                    frontier_size=len(frontier),
                    frontier_changed=changed,
                )
            )
            save_state(self.store, self.state_key(), state)
            self.log(
                f"round {index} [{self.strategy.name}]: {len(proposals)} points "
                f"({simulated} simulated), frontier {len(frontier)}"
                f"{' (changed)' if changed else ''}, "
                f"evaluated {len(state.evaluated)}/{self.space.size}"
            )

        save_state(self.store, self.state_key(), state)
        return ExploreSummary(
            state=state,
            space_size=self.space.size,
            simulated_this_run=simulated_this_run,
            elapsed_s=time.perf_counter() - started,
            fleet_timeouts=self.fleet_timeouts - fleet_timeouts_before,
        )

    # -- fleet round draining -------------------------------------------- #

    def _drain_via_fleet(self, points: list[int], jobs: list[KernelJob]) -> None:
        """Enqueue the round on the coordinator, then wait until the shared
        store answers every job (or the queue drains, or the coordinator
        dies) -- after which the engine's normal store lookup path takes
        over.  Purely best-effort: any fault falls back to local
        simulation, never to a wrong result."""
        client = self.coordinator
        answer = client.enqueue_explore(self.space.to_dict(), points)
        if answer is None:
            return
        self.log(
            f"fleet: {answer.get('queued', 0)} partitions queued "
            f"({answer.get('already_queued', 0)} already in flight)"
        )
        remote = self.store.remote if self.store is not None else None
        if remote is None or not hasattr(remote, "contains_batch"):
            return
        keys = [job.cache_key() for job in jobs]
        deadline = time.monotonic() + self.fleet_timeout_s
        while True:
            present = remote.contains_batch(keys)
            if all(present.get(key) for key in keys):
                return
            stats = remote.stats() if hasattr(remote, "stats") else None
            queue = (stats or {}).get("queue") or {}
            if stats is not None and not queue.get("pending") and not queue.get("leased"):
                # Queue fully drained but keys still missing (e.g. skewed
                # workers nacked everything): simulate the rest locally.
                return
            if time.monotonic() >= deadline:
                missing = sum(1 for key in keys if not present.get(key))
                self.fleet_timeouts += 1
                self.log(
                    f"fleet: drain timed out after {self.fleet_timeout_s:g}s "
                    f"({missing}/{len(keys)} keys unanswered); simulating locally"
                )
                if not self._fleet_timeout_warned:
                    # One warning per Explorer (the PR 4 contract): every
                    # further timeout is counted, not repeated.
                    self._fleet_timeout_warned = True
                    warnings.warn(
                        f"fleet drain for {self.space.kernel} timed out after "
                        f"{self.fleet_timeout_s:g}s; falling back to local "
                        "simulation (see ExploreSummary.fleet_timeouts)",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                return
            time.sleep(self.fleet_poll_s)


def exhaustive_frontier(
    space: SearchSpace,
    store: Optional[ResultStore] = None,
    engine: Optional[ParallelSweepEngine] = None,
    objectives: tuple[str, ...] = DEFAULT_OBJECTIVES,
    seed: int = 0,
) -> list[FrontierPoint]:
    """Brute-force ground truth: the frontier of the *entire* grid.  Shares
    the store with any prior adaptive run, so it only simulates the
    points the search skipped."""
    explorer = Explorer(
        space,
        store=store,
        engine=engine,
        strategy="exhaustive",
        seed=seed,
        objectives=objectives,
    )
    summary = explorer.run(budget=space.size, max_rounds=space.size)
    return summary.state.frontier
