"""Machine configuration (Table IV of the paper).

`MachineConfig` bundles everything the end-to-end timing simulator needs:
the Snapdragon-855-class scalar core, the cache hierarchy, the in-cache
engine geometry, the compute scheme and a handful of modelling knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..memory.cache import HierarchyConfig
from ..sram.array import EngineGeometry
from ..sram.tmu import TMUConfig

__all__ = ["MachineConfig", "default_config"]


@dataclass(frozen=True)
class MachineConfig:
    """Full system configuration for the MVE timing simulator."""

    # Scalar core (Arm Cortex-A76 prime core)
    frequency_ghz: float = 2.8
    issue_width: int = 4
    rob_entries: int = 128
    scalar_ipc: float = 2.0
    write_buffer_entries: int = 16

    # Cache hierarchy (Table IV)
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    l2_compute_ways: int = 4

    # In-cache vector engine
    engine: EngineGeometry = field(default_factory=EngineGeometry)
    tmu: TMUConfig = field(default_factory=TMUConfig)
    scheme_name: str = "bit-serial"
    #: core cycles per SRAM compute cycle (Blade-style mobile compute caches
    #: run at the core clock; raise this to model a slower SRAM domain)
    sram_cycle_multiplier: float = 1.0
    #: extra latency factor applied to floating-point in-SRAM arithmetic
    float_latency_factor: float = 1.5
    #: MVE controller instruction queue capacity (2 KB Intrinsic-Q, ~8 B/entry)
    instruction_queue_entries: int = 256
    #: fixed controller decode/dispatch cycles per MVE instruction
    controller_dispatch_cycles: int = 4
    #: core-side cycles to decode, commit and send one MVE instruction to the
    #: L2-side controller (ROB-head issue over the core/L2 interface)
    vector_issue_cycles: float = 10.0

    @property
    def simd_lanes(self) -> int:
        return self.engine.bitlines

    @property
    def num_control_blocks(self) -> int:
        return self.engine.num_control_blocks

    def with_arrays(self, num_arrays: int) -> "MachineConfig":
        """A copy of this config with a different SRAM array count."""
        arrays_per_cb = min(self.engine.arrays_per_control_block, num_arrays)
        engine = EngineGeometry(
            num_arrays=num_arrays,
            arrays_per_control_block=arrays_per_cb,
            array=self.engine.array,
        )
        return replace(self, engine=engine)

    def with_scheme(self, scheme_name: str) -> "MachineConfig":
        return replace(self, scheme_name=scheme_name)


def default_config() -> MachineConfig:
    """The baseline configuration used throughout the evaluation."""
    return MachineConfig()
