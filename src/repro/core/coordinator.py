"""Sweep coordination: the lease-based job queue behind fleet mode.

``python -m repro serve`` embeds a :class:`JobQueue`; ``python -m repro
queue EXPERIMENT`` enqueues an experiment's partitions on it, and any
number of ``python -m repro worker`` processes drain them cooperatively:

1. **enqueue** -- the server expands the experiment into deterministic
   *partitions* (the same batched-replay units the local pool adapter
   submits, via :func:`repro.experiments.registry.experiment_partitions`)
   and queues each exactly once, keyed by a content hash of its job
   cache keys.
2. **lease** -- a worker takes the next pending partition; the lease
   holds for ``lease_ttl_s`` seconds, extended by **heartbeat**.  The
   wire descriptor carries ``(experiment, scale, index, total, keys)``
   and the worker re-derives the actual :class:`KernelJob` objects from
   its own registry, verifying the cache keys match -- job cache keys
   embed the source-tree fingerprint, so a worker running different code
   can never silently simulate the wrong thing (it nacks instead).
3. **ack** -- only the current lease holder can complete a partition.
   An expired lease is requeued for any worker (dead-worker recovery);
   a late ack from the previous holder is answered ``stale`` and
   ignored -- results are content-addressed in the shared store, so a
   double-completed partition is merely redundant, never wrong.

The queue is in-memory (scoped to one coordinator process, like its
request counters): results and traces persist in the content-addressed
store, so losing the coordinator loses only *scheduling* state -- re-run
``repro queue`` and the warm store answers everything already computed.

:class:`CoordinatorClient` is the matching HTTP client with the same
failure contract as :class:`~repro.core.cache_service.RemoteStore`: the
first connectivity failure flips it dead after a single
``RuntimeWarning`` and every later call is an instant no-op -- a worker
degrades to finishing its current partition locally and exiting.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import urllib.error
import urllib.request
import warnings
from collections import deque
from dataclasses import dataclass
from http.client import HTTPException
from typing import Callable, Optional

from .cache import stable_hash

__all__ = [
    "DEFAULT_LEASE_TTL_S",
    "CoordinatorClient",
    "CoordinatorError",
    "JobQueue",
    "QueuedPartition",
    "expand_experiment_keys",
]

#: default seconds a leased partition stays assigned without a heartbeat
DEFAULT_LEASE_TTL_S = 60.0


def expand_experiment_keys(name: str, scale: float) -> list[list[str]]:
    """Every partition of an experiment as a list of job cache keys.

    Raises ``KeyError`` for unknown experiments.  Imported lazily so this
    core module never drags the experiment registry (and with it every
    figure module) into processes that only serve or probe the cache.
    """
    from ..experiments.registry import ExperimentOptions, experiment_partitions

    partitions = experiment_partitions(name, ExperimentOptions(scale=scale))
    return [[job.cache_key() for job in partition] for partition in partitions]


@dataclass
class QueuedPartition:
    """One leaseable unit of work: a batched-replay partition of a sweep."""

    id: str
    experiment: str
    scale: float
    index: int
    total: int
    keys: list[str]
    state: str = "pending"  # "pending" | "leased" | "done"
    worker: Optional[str] = None
    deadline: float = 0.0
    attempts: int = 0
    #: exploration partitions only: the declarative search-space dict and
    #: the point ids this partition covers.  Primitive data, never a
    #: machine config -- the worker re-derives the jobs from the space and
    #: still verifies the advertised cache keys before trusting them.
    space: Optional[dict] = None
    points: Optional[list[int]] = None

    def descriptor(self) -> dict:
        """The wire form a worker needs to re-derive and verify the jobs."""
        descriptor = {
            "id": self.id,
            "experiment": self.experiment,
            "scale": self.scale,
            "index": self.index,
            "total": self.total,
            "keys": list(self.keys),
            "attempts": self.attempts,
        }
        if self.space is not None:
            descriptor["space"] = self.space
            descriptor["points"] = list(self.points or ())
        return descriptor


def _partition_id(experiment: str, scale: float, index: int, keys: list[str]) -> str:
    return stable_hash(
        {"experiment": experiment, "scale": scale, "index": index, "keys": keys}
    )[:16]


class JobQueue:
    """Thread-safe lease/ack queue over experiment partitions.

    All mutation happens under one lock, and every operation first
    requeues expired leases -- so a dead worker's partition is available
    again the moment any surviving worker asks, acks after expiry are
    answered stale, and heartbeats can never resurrect a lease that
    already lapsed (the stale-heartbeat race).  ``clock`` is injectable
    for deterministic expiry tests.
    """

    def __init__(
        self,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        clock: Callable[[], float] = time.monotonic,
        expand: Callable[[str, float], list[list[str]]] = expand_experiment_keys,
    ):
        self.lease_ttl_s = max(0.001, lease_ttl_s)
        self._clock = clock
        self._expand = expand
        self._lock = threading.Lock()
        self._partitions: dict[str, QueuedPartition] = {}
        self._pending: deque[str] = deque()
        #: worker id -> timestamp of its last lease/ack/heartbeat
        self._workers: dict[str, float] = {}
        self.requeued = 0
        self.completed = 0

    # -- internal (callers hold self._lock) ----------------------------- #

    def _expire(self, now: float) -> None:
        for partition in self._partitions.values():
            if partition.state == "leased" and partition.deadline <= now:
                partition.state = "pending"
                partition.worker = None
                self._pending.append(partition.id)
                self.requeued += 1

    def _active_workers(self, now: float) -> int:
        horizon = now - self.lease_ttl_s
        return sum(1 for seen in self._workers.values() if seen > horizon)

    def _drained(self) -> bool:
        return all(p.state == "done" for p in self._partitions.values())

    # -- operations ----------------------------------------------------- #

    def enqueue(self, experiment: str, scale: float = 0.5) -> dict:
        """Expand ``experiment`` into partitions and queue the missing ones.

        Idempotent: partitions already pending or leased are skipped, and
        completed ones are re-queued (cheap -- the content-addressed store
        answers their jobs without simulation).  Raises ``KeyError`` for
        unknown experiments; expansion runs outside the lock since it can
        capture-free but non-trivially walk the registry.
        """
        partition_keys = self._expand(experiment, scale)
        now = self._clock()
        queued = already = 0
        with self._lock:
            self._expire(now)
            for index, keys in enumerate(partition_keys):
                pid = _partition_id(experiment, scale, index, keys)
                existing = self._partitions.get(pid)
                if existing is not None and existing.state in ("pending", "leased"):
                    already += 1
                    continue
                self._partitions[pid] = QueuedPartition(
                    id=pid,
                    experiment=experiment,
                    scale=scale,
                    index=index,
                    total=len(partition_keys),
                    keys=list(keys),
                )
                self._pending.append(pid)
                queued += 1
        return {
            "experiment": experiment,
            "scale": scale,
            "partitions": len(partition_keys),
            "jobs": sum(len(keys) for keys in partition_keys),
            "queued": queued,
            "already_queued": already,
        }

    def enqueue_explore(self, space: dict, points: list[int]) -> dict:
        """Queue one exploration round: the points' jobs partitioned by the
        same trace-group/batched-replay rule experiment enqueues use.

        The descriptor carries the declarative space plus each partition's
        point ids, so workers derive jobs without a registry entry --
        subject to the same cache-key verification (the keys embed the
        source fingerprint, so version skew still nacks).  Idempotent per
        round: re-enqueueing after a killed explorer re-queues only
        partitions that are not already pending or leased.  Raises
        ``KeyError``/``ValueError``/``TypeError`` on a malformed space.
        """
        from ..experiments.sweep import partition_jobs
        from ..explore.space import SearchSpace

        search_space = SearchSpace.from_dict(space)
        point_ids = [int(point) for point in points]
        jobs = search_space.jobs(point_ids)
        point_of = dict(zip(jobs, point_ids))
        partitions = partition_jobs(jobs)
        now = self._clock()
        queued = already = 0
        with self._lock:
            self._expire(now)
            for index, partition in enumerate(partitions):
                keys = [job.cache_key() for job in partition]
                pid = _partition_id("explore", search_space.scale, index, keys)
                existing = self._partitions.get(pid)
                if existing is not None and existing.state in ("pending", "leased"):
                    already += 1
                    continue
                self._partitions[pid] = QueuedPartition(
                    id=pid,
                    experiment="explore",
                    scale=search_space.scale,
                    index=index,
                    total=len(partitions),
                    keys=keys,
                    space=dict(space),
                    points=[point_of[job] for job in partition],
                )
                self._pending.append(pid)
                queued += 1
        return {
            "experiment": "explore",
            "kernel": search_space.kernel,
            "scale": search_space.scale,
            "partitions": len(partitions),
            "jobs": len(jobs),
            "queued": queued,
            "already_queued": already,
        }

    def lease(self, worker: str) -> tuple[Optional[dict], bool]:
        """The next pending partition leased to ``worker``, plus whether
        the queue is fully drained (nothing pending *or* leased)."""
        now = self._clock()
        with self._lock:
            self._expire(now)
            self._workers[worker] = now
            while self._pending:
                partition = self._partitions[self._pending.popleft()]
                if partition.state != "pending":
                    continue  # re-leased or completed while queued twice
                partition.state = "leased"
                partition.worker = worker
                partition.deadline = now + self.lease_ttl_s
                partition.attempts += 1
                return partition.descriptor(), False
            return None, self._drained()

    def ack(self, worker: str, partition_id: str) -> tuple[bool, Optional[str]]:
        """Mark a partition complete; ``(False, reason)`` on a stale ack."""
        now = self._clock()
        with self._lock:
            self._expire(now)
            self._workers[worker] = now
            partition = self._partitions.get(partition_id)
            if partition is None:
                return False, "unknown partition"
            if partition.state == "done":
                return False, "already completed"
            if partition.state != "leased" or partition.worker != worker:
                # The lease expired (and possibly moved to another worker)
                # before this ack arrived: the work is not lost -- results
                # are in the shared store -- but this worker no longer owns
                # the completion.
                return False, "lease not held"
            partition.state = "done"
            partition.worker = None
            self.completed += 1
            return True, None

    def nack(self, worker: str, partition_id: str, reason: str = "") -> bool:
        """Return a leased partition to the queue (e.g. version-skew)."""
        now = self._clock()
        with self._lock:
            self._expire(now)
            self._workers[worker] = now
            partition = self._partitions.get(partition_id)
            if (
                partition is None
                or partition.state != "leased"
                or partition.worker != worker
            ):
                return False
            partition.state = "pending"
            partition.worker = None
            self._pending.append(partition.id)
            self.requeued += 1
            return True

    def heartbeat(self, worker: str) -> int:
        """Extend every lease ``worker`` still holds; returns how many.

        Expiry runs first, so a heartbeat arriving after a lease lapsed
        cannot resurrect it -- the partition is already back in the
        pending queue (or leased to someone else).
        """
        now = self._clock()
        with self._lock:
            self._expire(now)
            self._workers[worker] = now
            extended = 0
            for partition in self._partitions.values():
                if partition.state == "leased" and partition.worker == worker:
                    partition.deadline = now + self.lease_ttl_s
                    extended += 1
            return extended

    def stats(self) -> dict:
        now = self._clock()
        with self._lock:
            self._expire(now)
            states = [p.state for p in self._partitions.values()]
            return {
                "lease_ttl_s": self.lease_ttl_s,
                "pending": states.count("pending"),
                "leased": states.count("leased"),
                "completed": self.completed,
                "requeued": self.requeued,
                "workers": self._active_workers(now),
            }


class CoordinatorError(RuntimeError):
    """The coordinator answered, but rejected the request (4xx)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class CoordinatorClient:
    """HTTP client for the ``/v1/queue`` surface of ``repro serve``.

    Failure contract matches :class:`~repro.core.cache_service.RemoteStore`:
    the first *connectivity* failure (refused, timeout, 5xx, garbage
    response) warns once and flips the client dead; every later call
    returns None instantly.  Application-level rejections (401 bad token,
    400 unknown experiment, 409 stale ack) raise or report without
    killing the client -- the service is alive, it just said no.
    """

    def __init__(
        self,
        base_url: str,
        worker_id: Optional[str] = None,
        timeout: float = 10.0,
        token: Optional[str] = None,
    ):
        if "://" not in base_url:
            base_url = f"http://{base_url}"
        self.base_url = base_url.rstrip("/")
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.timeout = timeout
        self.token = token if token is not None else os.environ.get("REPRO_CACHE_TOKEN")
        self.dead = False
        self._fail_lock = threading.Lock()
        #: TTL the server last advertised; drives the heartbeat cadence
        self.lease_ttl_s = DEFAULT_LEASE_TTL_S

    def _fail(self, error: Exception) -> None:
        with self._fail_lock:
            if self.dead:
                return
            self.dead = True
        warnings.warn(
            f"coordinator {self.base_url} unavailable "
            f"({type(error).__name__}: {error}); worker degrading to local-only",
            RuntimeWarning,
            stacklevel=4,
        )

    def _post(self, path: str, payload: dict) -> Optional[dict]:
        """POST ``payload``; the response dict, or None once dead.

        4xx answers raise :class:`CoordinatorError`; connectivity faults
        go through the one-warning death instead of raising.
        """
        if self.dead:
            return None
        body = json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path, data=body, method="POST"
        )
        request.add_header("Content-Type", "application/json")
        if self.token:
            request.add_header("Authorization", f"Bearer {self.token}")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                answer = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            if error.code >= 500:
                self._fail(error)
                return None
            try:
                detail = json.loads(error.read().decode("utf-8"))
            except ValueError:
                detail = {}
            raise CoordinatorError(
                error.code, detail.get("error", f"HTTP {error.code}")
            ) from None
        except (HTTPException, OSError, ValueError) as error:
            self._fail(error)
            return None
        if not isinstance(answer, dict):
            self._fail(ValueError(f"queue response is not a JSON object: {answer!r:.80}"))
            return None
        return answer

    # -- operations ----------------------------------------------------- #

    def enqueue(self, experiment: str, scale: float = 0.5) -> Optional[dict]:
        return self._post(
            "/v1/queue/enqueue", {"experiment": experiment, "scale": scale}
        )

    def enqueue_explore(self, space: dict, points: list[int]) -> Optional[dict]:
        """Queue one exploration round (see :meth:`JobQueue.enqueue_explore`)."""
        return self._post(
            "/v1/queue/enqueue", {"space": space, "points": list(points)}
        )

    def lease(self) -> Optional[dict]:
        """``{"partition": dict-or-None, "drained": bool, ...}`` or None
        (dead)."""
        answer = self._post("/v1/queue/lease", {"worker": self.worker_id})
        if answer is not None:
            try:
                self.lease_ttl_s = max(0.001, float(answer.get("lease_ttl_s")))
            except (TypeError, ValueError):
                pass
        return answer

    def ack(self, partition_id: str) -> Optional[str]:
        """``"ok"``, ``"stale"`` (lease lost before the ack landed), or
        None once the coordinator is dead."""
        try:
            answer = self._post(
                "/v1/queue/ack",
                {"worker": self.worker_id, "partition": partition_id},
            )
        except CoordinatorError as error:
            if error.status == 409:
                return "stale"
            raise
        if answer is None:
            return None
        return "ok" if answer.get("ok") else "stale"

    def nack(self, partition_id: str, reason: str = "") -> bool:
        answer = self._post(
            "/v1/queue/nack",
            {"worker": self.worker_id, "partition": partition_id, "reason": reason},
        )
        return bool(answer and answer.get("requeued"))

    def heartbeat(self) -> bool:
        answer = self._post("/v1/queue/heartbeat", {"worker": self.worker_id})
        return answer is not None
