"""Energy model for MVE, the scalar core and the memory system.

The paper combines bit-serial in-SRAM energy numbers from Neural Cache,
CACTI cache-access energy, and measured CPU/GPU power.  We encode the same
structure as per-event energy coefficients (in picojoules) so the energy
figures (Figure 7(b), Figure 8) can be regenerated.  Coefficients are scaled
to a 7 nm process like the paper does with the equations of [81].
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnergyCoefficients", "EnergyModel", "EnergyBreakdown"]


@dataclass(frozen=True)
class EnergyCoefficients:
    """Per-event energy in picojoules (7 nm-scaled)."""

    #: energy of one SRAM compute cycle per active bit-line (word-line
    #: activation + peripheral logic), Neural Cache reports tens of fJ
    sram_cycle_per_lane_pj: float = 0.012
    #: one 64 B line access in the L2 cache (CACTI)
    l2_line_access_pj: float = 120.0
    #: one 64 B line access in the LLC
    llc_line_access_pj: float = 400.0
    #: one 64 B DRAM access (LPDDR4X ~ 15 pJ/bit)
    dram_line_access_pj: float = 7500.0
    #: TMU transpose energy per element
    tmu_element_pj: float = 0.3
    #: MVE controller + FSM energy per dispatched instruction
    controller_instruction_pj: float = 25.0
    #: scalar core energy per instruction (mobile big core, ~0.1 nJ)
    scalar_instruction_pj: float = 100.0
    #: Neon 128-bit SIMD instruction including the core's fetch/decode/rename,
    #: register-file and forwarding energy (not just the ALU)
    neon_op_pj: float = 260.0
    #: L1 cache access from the core
    l1_access_pj: float = 25.0
    #: core static/background power in mW charged against execution time
    core_static_mw: float = 150.0
    #: cache compute-half static power in mW while MVE is active
    cache_static_mw: float = 40.0


@dataclass
class EnergyBreakdown:
    """Energy totals in nanojoules, split the way Figure 7(b) does."""

    compute_nj: float = 0.0
    data_access_nj: float = 0.0
    cpu_nj: float = 0.0
    static_nj: float = 0.0

    @property
    def total_nj(self) -> float:
        return self.compute_nj + self.data_access_nj + self.cpu_nj + self.static_nj

    def scaled(self, factor: float) -> "EnergyBreakdown":
        return EnergyBreakdown(
            compute_nj=self.compute_nj * factor,
            data_access_nj=self.data_access_nj * factor,
            cpu_nj=self.cpu_nj * factor,
            static_nj=self.static_nj * factor,
        )

    def to_dict(self) -> dict:
        return {
            "compute_nj": self.compute_nj,
            "data_access_nj": self.data_access_nj,
            "cpu_nj": self.cpu_nj,
            "static_nj": self.static_nj,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EnergyBreakdown":
        return cls(
            compute_nj=float(data["compute_nj"]),
            data_access_nj=float(data["data_access_nj"]),
            cpu_nj=float(data["cpu_nj"]),
            static_nj=float(data["static_nj"]),
        )


class EnergyModel:
    """Accumulates event counts into an :class:`EnergyBreakdown`."""

    def __init__(self, coefficients: EnergyCoefficients | None = None, frequency_ghz: float = 2.8):
        self.c = coefficients or EnergyCoefficients()
        self.frequency_ghz = frequency_ghz
        self.breakdown = EnergyBreakdown()

    def reset(self) -> None:
        self.breakdown = EnergyBreakdown()

    # -- in-cache engine -------------------------------------------------- #

    def add_sram_compute(self, sram_cycles: float, active_lanes: int, energy_factor: float = 1.0) -> None:
        self.breakdown.compute_nj += (
            sram_cycles * active_lanes * self.c.sram_cycle_per_lane_pj * energy_factor / 1000.0
        )

    def add_controller(self, instructions: int) -> None:
        self.breakdown.compute_nj += instructions * self.c.controller_instruction_pj / 1000.0

    def add_tmu(self, elements: int) -> None:
        self.breakdown.data_access_nj += elements * self.c.tmu_element_pj / 1000.0

    def add_cache_lines(self, l2_lines: int, llc_lines: int = 0, dram_lines: int = 0) -> None:
        self.breakdown.data_access_nj += (
            l2_lines * self.c.l2_line_access_pj
            + llc_lines * self.c.llc_line_access_pj
            + dram_lines * self.c.dram_line_access_pj
        ) / 1000.0

    # -- scalar core / Neon ------------------------------------------------ #

    def add_scalar(self, instructions: int) -> None:
        self.breakdown.cpu_nj += instructions * self.c.scalar_instruction_pj / 1000.0

    def add_neon_ops(self, ops: int) -> None:
        self.breakdown.cpu_nj += ops * self.c.neon_op_pj / 1000.0

    def add_l1_accesses(self, accesses: int) -> None:
        self.breakdown.data_access_nj += accesses * self.c.l1_access_pj / 1000.0

    # -- static ------------------------------------------------------------ #

    def add_static(self, cycles: float, include_cache: bool = True) -> None:
        seconds = cycles / (self.frequency_ghz * 1e9)
        power_mw = self.c.core_static_mw + (self.c.cache_static_mw if include_cache else 0.0)
        self.breakdown.static_nj += power_mw * 1e-3 * seconds * 1e9
