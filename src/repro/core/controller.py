"""MVE controller and control-block models (Section V-B).

The controller sits next to the L2 cache controller.  It receives MVE
instructions from the core in program order, holds them in the Instruction
Queue, resolves dimension-level masks into a per-instruction control-block
bit-vector, and issues micro-ops to the control blocks (CBs).  Each CB is a
finite-state machine shared by four SRAM arrays.

For the cycle-accounting simulator the controller provides two services:

* mapping a vector instruction onto CBs (how many CBs participate, how many
  SIMD lanes are active, how many times the operation must be repeated when
  the scheme exposes fewer lanes than the logical vector needs), and
* the latency of a compute micro-op for the configured in-SRAM scheme.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..isa.instructions import ArithmeticInstruction, MemoryInstruction, MoveInstruction, Opcode
from ..sram.array import EngineGeometry
from ..sram.schemes import ComputeScheme

__all__ = ["InstructionPlacement", "MVEControllerModel"]


@dataclass(frozen=True)
class InstructionPlacement:
    """How one vector instruction maps onto the in-cache engine."""

    active_elements: int
    active_lanes: int
    total_lanes: int
    active_control_blocks: int
    total_control_blocks: int
    repeats: int

    @property
    def lane_utilization(self) -> float:
        return self.active_lanes / self.total_lanes if self.total_lanes else 0.0

    @property
    def cb_utilization(self) -> float:
        if not self.total_control_blocks:
            return 0.0
        return self.active_control_blocks / self.total_control_blocks


class MVEControllerModel:
    """Maps instructions onto control blocks and computes micro-op latencies."""

    def __init__(self, geometry: EngineGeometry, scheme: ComputeScheme):
        self.geometry = geometry
        self.scheme = scheme

    def _active_elements(self, instruction) -> int:
        lengths = getattr(instruction, "shape_lengths", ())
        if not lengths:
            return self.geometry.bitlines
        total = 1
        for length in lengths:
            total *= length
        mask = getattr(instruction, "mask", ())
        if mask:
            inner = total // lengths[-1]
            return inner * sum(mask)
        return total

    def placement(self, instruction, element_bits: int) -> InstructionPlacement:
        """Compute lane/CB occupancy and repeat count for an instruction."""
        active_elements = self._active_elements(instruction)
        scheme_lanes = self.scheme.lanes(self.geometry, element_bits)
        bitline_lanes = self.geometry.bitlines
        lanes_per_cb = self.geometry.lanes_per_control_block
        total_cbs = self.geometry.num_control_blocks

        # Elements map onto bit-lines in logical-lane order; the number of
        # bit-lines (and therefore CBs) touched is based on element count,
        # capped at the engine size.
        occupied_bitlines = min(active_elements, bitline_lanes)
        active_cbs = max(1, math.ceil(occupied_bitlines / lanes_per_cb)) if active_elements else 0
        repeats = max(1, math.ceil(active_elements / scheme_lanes)) if active_elements else 1
        active_lanes = min(active_elements, scheme_lanes)
        return InstructionPlacement(
            active_elements=active_elements,
            active_lanes=active_lanes,
            total_lanes=scheme_lanes,
            active_control_blocks=active_cbs,
            total_control_blocks=total_cbs,
            repeats=repeats,
        )

    def compute_sram_cycles(
        self,
        instruction,
        element_bits: int,
        float_factor: float,
        placement: InstructionPlacement | None = None,
    ) -> float:
        """SRAM cycles for an arithmetic or move instruction.

        ``placement`` may carry the caller's already-computed placement for
        this instruction to avoid resolving the mapping twice.
        """
        if isinstance(instruction, MoveInstruction):
            opcode = Opcode.CONVERT if instruction.opcode is Opcode.CONVERT else Opcode.COPY
            dtype = instruction.dtype
        elif isinstance(instruction, ArithmeticInstruction):
            opcode = instruction.opcode
            dtype = instruction.dtype
        else:
            raise TypeError(f"not a compute instruction: {instruction!r}")
        bits = dtype.bits
        latency = self.scheme.op_latency(opcode, bits)
        if dtype.is_float:
            latency *= float_factor
        if placement is None:
            placement = self.placement(instruction, bits)
        return latency * placement.repeats

    def memory_row_cycles(self, instruction: MemoryInstruction) -> float:
        """SRAM-side cycles to move a register between the arrays and the TMU."""
        bits = instruction.dtype.bits
        return bits * self.scheme.row_access_latency()
