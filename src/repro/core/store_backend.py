"""Pluggable storage backends for the content-addressed result store.

A backend moves opaque *records* -- JSON dicts carrying the cache-schema
marker -- in and out of some medium, addressed by hex cache key.  The
frontend (:class:`~repro.core.cache.ResultStore`) owns schema validation
and hit/miss accounting; backends own durability, atomicity and their own
failure modes:

* :class:`LocalDirBackend` -- one JSON file per key under a directory,
  sharded by key prefix, written atomically (the historical on-disk layout,
  refactored out of ``ResultStore`` unchanged).
* :class:`TieredBackend` -- local tier first, remote tier second:
  read-through (remote hits populate the local tier) and write-back
  (stores go to both).  Combined with the HTTP
  :class:`~repro.core.cache_service.RemoteStore` it turns any number of
  machines into one shared cache.

Backends never raise on storage trouble: a failed write degrades to a
no-op, a corrupt or unreachable read is a miss, so the simulation pipeline
above is oblivious to cache health.
"""

from __future__ import annotations

import json
import os
import threading
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Optional

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "LocalDirBackend",
    "StoreBackend",
    "TieredBackend",
]

#: bump when the record layout changes incompatibly
CACHE_SCHEMA_VERSION = 1


class StoreBackend(ABC):
    """Raw record storage addressed by cache key.

    ``load``/``store`` move full records (payload plus schema marker)
    verbatim; record movement (``load``/``store``/``contains``) must be
    safe to call from multiple threads, and every storage failure is a
    miss / no-op, never an exception.  Per-instance bookkeeping attributes
    (e.g. :attr:`TieredBackend.last_tier`) are best-effort and only
    meaningful to a single-threaded reader such as the sweep engine's
    lookup loop.
    """

    @abstractmethod
    def load(self, key: str) -> Optional[dict]:
        """The stored record for ``key``, or None on miss or corruption."""

    @abstractmethod
    def store(self, key: str, record: dict) -> bool:
        """Persist ``record`` under ``key``; False if the write was lost."""

    @abstractmethod
    def contains(self, key: str) -> bool:
        """Whether ``key`` currently resolves to a record."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored records."""

    @abstractmethod
    def clear(self) -> int:
        """Delete every record this backend owns; returns how many."""

    def load_checked(self, key: str) -> Optional[dict]:
        """The record for ``key`` only if it carries the current schema
        marker; None otherwise.  The one schema gate every frontend shares
        (:class:`~repro.core.cache.ResultStore` and the read API), so a
        record written by an incompatible version can never leak out of any
        door."""
        record = self.load(key)
        if not isinstance(record, dict) or record.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        return record

    def stats(self) -> Optional[dict]:
        """Aggregate backend statistics (shape is backend-specific)."""
        return {"entries": len(self)}


class LocalDirBackend(StoreBackend):
    """One JSON file per cache key under ``root``, sharded by key prefix.

    Writes are atomic (unique temp file + ``os.replace``) so concurrent
    writers -- threads of one process, or many processes sharing the
    directory -- can never publish a torn entry: readers see either the old
    record or the new one, and the last write wins.  Truncated or otherwise
    unparseable entries are deleted on read and reported as misses.
    """

    _tmp_counter = 0
    _tmp_lock = threading.Lock()

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    @classmethod
    def _tmp_suffix(cls) -> str:
        # pid alone is not unique enough: server threads and concurrent
        # sweeps in one process would collide on the same temp file.
        with cls._tmp_lock:
            cls._tmp_counter += 1
            serial = cls._tmp_counter
        return f".tmp.{os.getpid()}.{threading.get_ident()}.{serial}"

    def load(self, key: str) -> Optional[dict]:
        path = self.path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            if path.exists():
                # Corrupted (truncated write, bad encoding, ...): drop it so
                # the recomputed result can take its place.
                try:
                    path.unlink()
                except OSError:
                    pass
            return None

    def store(self, key: str, record: dict) -> bool:
        path = self.path(key)
        tmp = path.parent / (path.name + self._tmp_suffix())
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(record, handle)
            os.replace(tmp, path)
            return True
        except OSError:
            # A read-only or full cache directory degrades to a no-op cache.
            try:
                tmp.unlink()
            except OSError:
                pass
            return False

    def contains(self, key: str) -> bool:
        return self.path(key).is_file()

    def keys(self):
        """Every stored cache key (the file stems under ``root``)."""
        if not self.root.exists():
            return
        for path in self.root.glob("*/*.json"):
            yield path.stem

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> dict:
        return {"backend": "local", "root": str(self.root), "entries": len(self)}


class TieredBackend(StoreBackend):
    """Local tier first, remote tier second: read-through, write-back.

    A local miss consults the remote tier; a remote hit is written into the
    local tier so the next read is local.  Stores go to both tiers, so a
    result computed on any worker becomes visible to the whole fleet.  The
    remote tier is allowed to fail (the HTTP client degrades itself to a
    dead no-op after the first connectivity problem); the local tier keeps
    working regardless, and ``clear``/``__len__`` deliberately touch only
    the local tier -- one worker must never wipe the shared service.
    """

    def __init__(self, local: StoreBackend, remote: StoreBackend):
        self.local = local
        self.remote = remote
        #: tier that answered the most recent hit ("local" or "remote");
        #: best-effort bookkeeping for single-threaded readers (the engine)
        self.last_tier: Optional[str] = None
        #: keys a batched probe reported absent remotely; consulted (and
        #: consumed) by load() to skip a guaranteed-404 round trip
        self._remote_absent: set[str] = set()
        #: keys a bulk prefetch pulled from the remote tier into the local
        #: one; consulted (and consumed) by load() so the first read still
        #: reports its true origin ("remote"), not the tier it landed in
        self._remote_fetched: set[str] = set()
        self._absent_lock = threading.Lock()

    def prefetch(self, keys) -> None:
        """Pull ``keys`` from the remote tier in one round trip.

        Keys already local are untouched.  With a bulk-capable remote
        (:meth:`~repro.core.cache_service.RemoteStore.load_batch`) the
        missing records are fetched and written into the local tier up
        front -- a warm remote sweep costs one ``POST /v1/entries``
        instead of one GET per key -- while keys the service reports
        absent are remembered so the next ``load`` of each skips the
        remote round trip entirely.  Remotes with only the existence
        probe (``contains_batch``) keep the probe-only behavior; remotes
        with neither make this a no-op.
        """
        missing = [key for key in keys if not self.local.contains(key)]
        if not missing:
            return
        fetch = getattr(self.remote, "load_batch", None)
        if fetch is not None:
            records = fetch(missing)
            if records:
                with self._absent_lock:
                    for key in missing:
                        record = records.get(key)
                        if not isinstance(record, dict):
                            self._remote_absent.add(key)
                        elif record.get(
                            "schema"
                        ) == CACHE_SCHEMA_VERSION and self.local.store(key, record):
                            self._remote_fetched.add(key)
                        # Schema-mismatched or unwritable records fall
                        # through to a plain remote load (same handling a
                        # single-key read-through gives them).
            # An empty dict means the remote is dead or the transfer
            # failed: no information either way, so per-key loads decide.
            return
        probe = getattr(self.remote, "contains_batch", None)
        if probe is None:
            return
        present = probe(missing)
        with self._absent_lock:
            self._remote_absent.update(key for key in missing if not present.get(key))

    def load(self, key: str) -> Optional[dict]:
        record = self.local.load(key)
        if record is not None:
            with self._absent_lock:
                fetched = key in self._remote_fetched
                self._remote_fetched.discard(key)
            self.last_tier = "remote" if fetched else "local"
            return record
        with self._absent_lock:
            skip_remote = key in self._remote_absent
            # One skip per probe answer: the key may appear later (another
            # worker publishing it), so the next load re-checks the wire.
            self._remote_absent.discard(key)
        if skip_remote:
            self.last_tier = None
            return None
        record = self.remote.load(key)
        if not isinstance(record, dict):
            self.last_tier = None
            return None
        self.last_tier = "remote"
        if record.get("schema") == CACHE_SCHEMA_VERSION:
            # Read-through populate: next lookup of this key stays local.
            self.local.store(key, record)
        return record

    def store(self, key: str, record: dict) -> bool:
        stored_locally = self.local.store(key, record)
        self.remote.store(key, record)
        with self._absent_lock:
            self._remote_absent.discard(key)
            self._remote_fetched.discard(key)
        return stored_locally

    def contains(self, key: str) -> bool:
        return self.local.contains(key) or self.remote.contains(key)

    def __len__(self) -> int:
        return len(self.local)

    def clear(self) -> int:
        return self.local.clear()

    def stats(self) -> dict:
        return {"local": self.local.stats(), "remote": self.remote.stats()}
