"""Shared-memory trace arena: zero-copy trace shipping for the local pool.

The staged sweep's dominant distribution overhead used to be trace
*shipping*: every partition task submitted to the process pool pickled the
full decoded trace (thousands of small dataclasses) or its compressed
base64 envelope, and every worker re-materialized it per task.  The arena
replaces that with POSIX shared memory:

* the sweep parent **publishes** each resolved trace's columnar arrays
  (:func:`repro.isa.trace_io.trace_columns`) into one
  ``multiprocessing.shared_memory`` segment, exactly once per batch;
* tasks ship only a tiny :class:`TraceHandle` -- segment name, spec key,
  per-column dtype/offset/length descriptors and the sparse scalar notes;
* workers **attach** zero-copy read-only ``np.frombuffer`` views over the
  segment and rebuild the exact entry list via
  :func:`~repro.isa.trace_io.entries_from_columns` -- once per worker per
  spec, not once per task: the reconstructed list is kept in a per-process
  spec-keyed LRU (:func:`attached_trace`), so repeated partitions over the
  same trace skip even the attach.  Returning the *same list object* also
  keeps the identity-keyed compile memo
  (:func:`repro.compiler.pipeline.compile_trace_cached`) warm across
  batches on a persistent pool.

Traces are immutable post-capture; the worker views are taken over a
read-only memoryview so nothing can scribble on a segment another worker
is decoding.  Lifetime is parent-owned: segments are refcounted per
in-flight task and unlinked as soon as their count drains (plus a
``close()`` in the adapter's ``finally`` and a module ``atexit`` sweep),
so no ``repro-arena-*`` segment outlives the engine even on a crash.
Resource-tracker bookkeeping stays balanced by construction: the parent
and its forked workers share one tracker whose per-name cache is a set,
worker attaches re-register names the parent already registered (a
dedup), and the parent's ``unlink`` performs the single unregister -- so
the tracker emits no spurious leak warnings yet still unlinks segments if
the parent is SIGKILLed before its ``atexit`` sweep can run.

``REPRO_SHM_TRACE=0`` disables the arena; any ``OSError`` at segment
creation (no ``/dev/shm``, size limits, sandboxing) degrades to the
existing pickled-trace path with a single :class:`RuntimeWarning` -- the
same one-warning contract the remote cache tier uses -- and results are
bit-identical either way because both paths feed the identical entry list
to the identical replay.
"""

from __future__ import annotations

import atexit
import os
import secrets
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Optional, Sequence

import numpy as np

from ..isa.instructions import TraceEntry
from ..isa.trace_io import entries_from_columns, scalar_notes, trace_columns

__all__ = [
    "ARENA_PREFIX",
    "TraceArena",
    "TraceHandle",
    "arena_enabled",
    "attached_trace",
    "attached_trace_cache_len",
    "live_segments",
]

#: every arena segment name starts with this; the leak guards key on it
ARENA_PREFIX = "repro-arena-"


def arena_enabled() -> bool:
    """Whether the shared-memory trace plane is on (``REPRO_SHM_TRACE``,
    default on; ``0`` restores the pickled-trace shipping path)."""
    return os.environ.get("REPRO_SHM_TRACE", "1") != "0"


@dataclass(frozen=True)
class ColumnSpec:
    """Where one column lives inside a segment: dtype + element span."""

    name: str
    dtype: str
    offset: int
    count: int


@dataclass(frozen=True)
class TraceHandle:
    """Everything a worker needs to rebuild one published trace.

    A handle is what actually travels through ``pool.submit`` -- a few
    hundred bytes no matter how large the trace -- and doubles as the
    worker-side memo key (``spec_key``)."""

    segment: str
    spec_key: str
    entries: int
    columns: tuple[ColumnSpec, ...]
    notes: tuple = ()


# ---------------------------------------------------------------------- #
#  Parent side: publish + refcounted unlink
# ---------------------------------------------------------------------- #

#: segments created by this process and not yet unlinked; the atexit sweep
#: below is the last line of defence for crash/exception paths
_live_segments: dict[str, shared_memory.SharedMemory] = {}


def live_segments() -> list[str]:
    """Names of arena segments this process currently owns (diagnostics
    and the leak-guard fixtures)."""
    return sorted(_live_segments)


def _unlink_segment(name: str) -> None:
    segment = _live_segments.pop(name, None)
    if segment is None:
        return
    try:
        segment.close()
    except (OSError, BufferError):
        pass
    try:
        segment.unlink()
    except (FileNotFoundError, OSError):
        pass


@atexit.register
def _sweep_live_segments() -> None:
    for name in list(_live_segments):
        _unlink_segment(name)


class TraceArena:
    """One batch's published traces, parent-owned.

    ``publish`` lays a trace's columns into a fresh segment (memoized per
    spec key, so N partition tasks over one trace share one publish);
    ``retain``/``release`` refcount in-flight tasks per spec and unlink a
    segment the moment its last task completes; ``close`` sweeps whatever
    is left -- the adapter calls it in a ``finally`` so a crashed batch
    cannot leak.  After an ``OSError`` the arena marks itself ``dead`` and
    every further ``publish`` returns None, letting the caller fall back
    to pickled shipping for the rest of the batch with one warning.
    """

    def __init__(self) -> None:
        self._handles: dict[str, TraceHandle] = {}
        self._refs: dict[str, int] = {}
        self.dead = not arena_enabled()
        #: segments this arena created over its lifetime (monotonic)
        self.published = 0

    def publish(
        self, spec_key: str, trace: Sequence[TraceEntry]
    ) -> Optional[TraceHandle]:
        """Publish ``trace`` once and return its handle (None = degrade)."""
        if self.dead:
            return None
        handle = self._handles.get(spec_key)
        if handle is not None:
            return handle
        columns = trace_columns(trace)
        specs: list[ColumnSpec] = []
        offset = 0
        for name, column in columns.items():
            # 8-byte alignment keeps every frombuffer view itemsize-aligned
            # no matter which dtypes precede it.
            offset = (offset + 7) & ~7
            specs.append(ColumnSpec(name, column.dtype.str, offset, len(column)))
            offset += column.nbytes
        segment_name = ARENA_PREFIX + secrets.token_hex(8)
        try:
            segment = shared_memory.SharedMemory(
                create=True, size=max(1, offset), name=segment_name
            )
        except OSError:
            self.dead = True
            return None
        _live_segments[segment_name] = segment
        for spec, column in zip(specs, columns.values()):
            view = np.frombuffer(
                segment.buf, dtype=np.dtype(spec.dtype), count=spec.count,
                offset=spec.offset,
            )
            view[:] = column
        handle = TraceHandle(
            segment=segment_name,
            spec_key=spec_key,
            entries=len(trace),
            columns=tuple(specs),
            notes=tuple(tuple(pair) for pair in scalar_notes(trace)),
        )
        self._handles[spec_key] = handle
        self._refs[spec_key] = 0
        self.published += 1
        return handle

    def retain(self, spec_key: str) -> None:
        """One more in-flight task references this spec's segment."""
        if spec_key in self._refs:
            self._refs[spec_key] += 1

    def release(self, spec_key: str) -> None:
        """A task referencing this spec's segment completed; unlink on the
        last one.  Dropping the handle too means a pool-recreation retry
        republishes instead of shipping a dangling segment name."""
        count = self._refs.get(spec_key)
        if count is None:
            return
        count -= 1
        self._refs[spec_key] = count
        if count <= 0:
            handle = self._handles.pop(spec_key, None)
            self._refs.pop(spec_key, None)
            if handle is not None:
                _unlink_segment(handle.segment)

    def close(self) -> None:
        """Unlink every remaining segment (batch completion / error path)."""
        for handle in self._handles.values():
            _unlink_segment(handle.segment)
        self._handles.clear()
        self._refs.clear()


# ---------------------------------------------------------------------- #
#  Worker side: attach + per-process decoded-trace LRU
# ---------------------------------------------------------------------- #

#: decoded traces this worker process has already attached, by spec key.
#: Mirrors the engine's parent-side trace memo; sized by the same logic
#: (a worker rarely sees more live traces than the parent memoizes).
_WORKER_TRACE_CAPACITY = 32
_worker_traces: "OrderedDict[str, list[TraceEntry]]" = OrderedDict()


def attached_trace_cache_len() -> int:
    """How many decoded traces this process's attach LRU holds (tests)."""
    return len(_worker_traces)


def _decode_segment(segment: shared_memory.SharedMemory, handle: TraceHandle):
    # A read-only view of the whole segment: every column view inherits
    # non-writability, enforcing post-capture trace immutability.
    buffer = memoryview(segment.buf).toreadonly()
    try:
        columns = {
            spec.name: np.frombuffer(
                buffer, dtype=np.dtype(spec.dtype), count=spec.count,
                offset=spec.offset,
            )
            for spec in handle.columns
        }
        return entries_from_columns(columns, handle.entries, handle.notes)
    finally:
        # entries_from_columns copies everything out; drop the exported
        # views before close() so the mmap can actually release.
        del columns
        buffer.release()


def attached_trace(handle: TraceHandle) -> list[TraceEntry]:
    """The entry list for a published trace: LRU first, then attach.

    Returns the same list object for repeated lookups of one spec, which
    is what keeps the identity-keyed compile memo warm across partitions
    and batches inside one persistent pool worker."""
    trace = _worker_traces.get(handle.spec_key)
    if trace is not None:
        _worker_traces.move_to_end(handle.spec_key)
        return trace
    # Attaching re-registers the name with the (shared, fork-inherited)
    # resource tracker; that is a set-add dedup of the parent's own
    # registration, and the parent's unlink performs the one unregister.
    segment = shared_memory.SharedMemory(name=handle.segment)
    try:
        trace = _decode_segment(segment, handle)
    finally:
        segment.close()
    _worker_traces[handle.spec_key] = trace
    _worker_traces.move_to_end(handle.spec_key)
    while len(_worker_traces) > _WORKER_TRACE_CAPACITY:
        _worker_traces.popitem(last=False)
    return trace
