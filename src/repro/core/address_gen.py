"""Address generation for multi-dimensional vector memory accesses.

The MVE controller computes one byte address per SIMD lane from the base
address(es), resolved per-dimension strides and the dimension-level mask
(Algorithm 1 and Equation 1).  The timing simulator uses the resulting set
of touched cache lines to drive the cache/DRAM model, and the LSQ address
decoder in the scalar core uses the footprint (Equation 2) for memory
disambiguation.
"""

from __future__ import annotations

import numpy as np

from ..isa.instructions import MemoryInstruction

__all__ = ["element_addresses", "cache_line_addresses", "address_range"]


def element_addresses(instruction: MemoryInstruction) -> np.ndarray:
    """Byte addresses for all *active* elements of a vector memory access."""
    lengths = instruction.shape_lengths
    if not lengths:
        return np.zeros(0, dtype=np.int64)
    total = instruction.total_elements
    element_bytes = instruction.dtype.bytes
    addresses = np.zeros(total, dtype=np.int64)
    strides = instruction.resolved_strides
    lanes = np.arange(total, dtype=np.int64)
    multiplier = 1
    for dim, length in enumerate(lengths):
        indices = (lanes // multiplier) % length
        if instruction.is_random and dim == len(lengths) - 1:
            bases = np.asarray(instruction.random_bases, dtype=np.int64)
            addresses += bases[indices]
        else:
            stride = strides[dim] if dim < len(strides) else 0
            addresses += indices * (stride * element_bytes)
        multiplier *= length
    if not instruction.is_random:
        addresses += instruction.base_address

    if instruction.mask:
        mask_bits = np.asarray(instruction.mask, dtype=bool)
        inner = total // lengths[-1]
        addresses = addresses[mask_bits[lanes // inner]]
    return addresses


def cache_line_addresses(instruction: MemoryInstruction, line_bytes: int = 64) -> np.ndarray:
    """Unique cache-line base addresses touched by a vector memory access.

    Returns a sorted, deduplicated int64 array that flows into
    :meth:`~repro.memory.cache.CacheHierarchy.vector_block_access` unchanged
    -- the footprint stays an ndarray from address generation through the
    cache engine, with no Python-list round-trip.
    """
    addresses = element_addresses(instruction)
    if addresses.size == 0:
        return addresses.astype(np.int64, copy=False)
    lines = np.sort(addresses // line_bytes)
    keep = np.empty(lines.size, dtype=bool)
    keep[0] = True
    np.not_equal(lines[1:], lines[:-1], out=keep[1:])
    return lines[keep] * line_bytes


def address_range(instruction: MemoryInstruction) -> tuple[int, int]:
    """Conservative [low, high) byte range of a vector store (Equation 2).

    The LSQ address decoder computes ``Base + sum(Len_i * Stride_i)`` without
    expanding all element addresses; this mirrors that cheap computation.
    """
    element_bytes = instruction.dtype.bytes
    if instruction.is_random:
        bases = instruction.random_bases or (instruction.base_address,)
        low = min(bases)
        high = max(bases)
    else:
        low = high = instruction.base_address
    span = 0
    for dim, length in enumerate(instruction.shape_lengths):
        if instruction.is_random and dim == len(instruction.shape_lengths) - 1:
            continue
        stride = (
            instruction.resolved_strides[dim]
            if dim < len(instruction.resolved_strides)
            else 0
        )
        span += (length - 1) * stride * element_bytes
    return low, high + span + element_bytes
