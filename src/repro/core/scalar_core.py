"""Scalar core front-end model: issue, LSQ address decoder, write buffer.

MVE instructions are fetched and decoded by the scalar core, held in the ROB
and LSQ, and issued to the L2-side MVE controller at commit (Section V-A).
The details that matter for performance are:

* the rate at which the core can feed the controller (scalar IPC and issue
  width) -- this creates the *idle* time of the in-cache engine;
* the write buffer that holds committed MVE stores until the controller
  acknowledges them -- younger scalar loads that may alias a pending MVE
  store stall, using the address range of Equation 2 computed by the LSQ
  address decoder.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instructions import MemoryInstruction, ScalarBlock
from .address_gen import address_range
from .config import MachineConfig

__all__ = ["AddressDecoder", "WriteBuffer", "ScalarCoreModel"]


class AddressDecoder:
    """LSQ-side mirror of the dimension control registers (Section V-A).

    It computes the conservative byte range of a committed MVE store so the
    write buffer can detect dependences with younger scalar loads without
    expanding every element address.
    """

    @staticmethod
    def store_range(instruction: MemoryInstruction) -> tuple[int, int]:
        return address_range(instruction)


@dataclass
class _PendingStore:
    low: int
    high: int
    completes_at: float


class WriteBuffer:
    """Committed MVE stores awaiting acknowledgement from the controller."""

    def __init__(self, entries: int):
        self.entries = entries
        self._pending: list[_PendingStore] = []

    def drain_completed(self, now: float) -> None:
        self._pending = [p for p in self._pending if p.completes_at > now]

    def push(self, instruction: MemoryInstruction, completes_at: float, now: float) -> float:
        """Add a store; returns the time the core can continue (stalls if full)."""
        self.drain_completed(now)
        stall_until = now
        if len(self._pending) >= self.entries:
            # Core stalls until the oldest store completes.
            oldest = min(p.completes_at for p in self._pending)
            stall_until = max(now, oldest)
            self.drain_completed(stall_until)
        low, high = AddressDecoder.store_range(instruction)
        self._pending.append(_PendingStore(low, high, completes_at))
        return stall_until

    def conflict_delay(self, load_low: int, load_high: int, now: float) -> float:
        """Extra cycles a scalar load must wait for overlapping MVE stores."""
        self.drain_completed(now)
        delay = 0.0
        for pending in self._pending:
            if pending.low < load_high and load_low < pending.high:
                delay = max(delay, pending.completes_at - now)
        return delay

    @property
    def occupancy(self) -> int:
        return len(self._pending)


class ScalarCoreModel:
    """Simple issue-rate model of the OoO scalar core."""

    def __init__(self, config: MachineConfig):
        self.config = config
        self.write_buffer = WriteBuffer(config.write_buffer_entries)
        self.scalar_instructions = 0
        self.scalar_cycles = 0.0

    def scalar_block_cycles(self, block: ScalarBlock) -> float:
        """Cycles the core needs to execute a scalar block."""
        cycles = block.count / self.config.scalar_ipc
        # Scalar memory operations see at least L1 latency; the OoO window
        # hides most of it, so charge a small per-access penalty.
        cycles += (block.loads + block.stores) * 0.5
        self.scalar_instructions += block.count
        self.scalar_cycles += cycles
        return cycles

    def vector_issue_cycles(self) -> float:
        """Cycles to decode/commit/issue one MVE instruction to the controller."""
        return self.config.vector_issue_cycles
