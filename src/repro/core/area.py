"""Area model (Table V of the paper).

The paper reports per-module areas at 7 nm, taken from RTL synthesis (MVE
controller, address decoder), CACTI (MSHR), and prior work (TMU, crossbar,
FSM, peripherals), against a 1.07 mm^2 Cortex-A76-class scalar core.  We
encode those values and scale the array-count-dependent modules so that the
area overhead of alternative configurations (Figure 12(b) sweeps) can be
reported as well.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AreaModel", "AreaReport", "SCALAR_CORE_AREA_MM2", "NEON_AREA_MM2", "GPU_AREA_MM2"]

SCALAR_CORE_AREA_MM2 = 1.07
NEON_AREA_MM2 = 0.1741
GPU_AREA_MM2 = 11.1908

#: Table V module areas (mm^2 at 7 nm) for the default 32-array configuration.
_BASE_MODULE_AREAS = {
    "controller": 0.0043,
    "mshr": 0.0018,
    "tmu": 0.0053,
    "xb": 0.0039,
    "fsm": 0.0123,
    "peripheral": 0.0063,
    "address_decoder": 0.0042,
}

#: Modules whose area scales with the number of SRAM arrays / control blocks.
_ARRAY_SCALED_MODULES = {"tmu", "xb", "fsm", "peripheral"}


@dataclass
class AreaReport:
    """Per-module areas and the resulting overhead to the scalar core."""

    modules_mm2: dict[str, float]
    scalar_core_mm2: float = SCALAR_CORE_AREA_MM2

    @property
    def total_mm2(self) -> float:
        return sum(self.modules_mm2.values())

    @property
    def overhead_percent(self) -> float:
        return 100.0 * self.total_mm2 / self.scalar_core_mm2

    def module_overhead_percent(self, module: str) -> float:
        return 100.0 * self.modules_mm2[module] / self.scalar_core_mm2

    def to_dict(self) -> dict:
        """JSON form, mirroring :class:`~repro.core.energy.EnergyBreakdown`
        so cost metrics flow through the serializable-result surface
        (explorer frontiers, ``--export json|csv``).  The derived totals
        are included for export consumers; :meth:`from_dict` rebuilds from
        the fields alone."""
        return {
            "modules_mm2": dict(self.modules_mm2),
            "scalar_core_mm2": self.scalar_core_mm2,
            "total_mm2": self.total_mm2,
            "overhead_percent": self.overhead_percent,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AreaReport":
        return cls(
            modules_mm2={
                str(name): float(area) for name, area in data["modules_mm2"].items()
            },
            scalar_core_mm2=float(data.get("scalar_core_mm2", SCALAR_CORE_AREA_MM2)),
        )


class AreaModel:
    """Computes the MVE area overhead for a given engine configuration."""

    def __init__(
        self,
        num_arrays: int = 32,
        arrays_per_control_block: int = 4,
        peripheral_area_factor: float = 1.0,
    ):
        self.num_arrays = num_arrays
        self.arrays_per_control_block = arrays_per_control_block
        self.peripheral_area_factor = peripheral_area_factor

    def report(self) -> AreaReport:
        scale = self.num_arrays / 32.0
        cb_scale = (self.num_arrays / self.arrays_per_control_block) / 8.0
        modules = {}
        for name, base in _BASE_MODULE_AREAS.items():
            area = base
            if name in _ARRAY_SCALED_MODULES:
                area = base * scale
            if name == "fsm":
                area = base * cb_scale
            if name == "peripheral":
                area = area * self.peripheral_area_factor
            modules[name] = area
        return AreaReport(modules_mm2=modules)

    @staticmethod
    def neon_overhead_percent() -> float:
        return 100.0 * NEON_AREA_MM2 / SCALAR_CORE_AREA_MM2
