"""Trace artifacts: first-class, cacheable capture-stage outputs.

The paper's methodology is two-phase -- capture an MVE/RVV instruction
trace per kernel, then replay it through the timing model under many
hardware configurations.  This module makes the first phase's output an
explicit artifact:

* :class:`TraceSpec` is the identity of one capture: kernel, lowering,
  scale, constructor kwargs and the SIMD lane count.  It is deliberately
  independent of the rest of :class:`~repro.core.config.MachineConfig` --
  cache geometry, DRAM timing, compute scheme and TMU parameters all replay
  the *same* trace -- and its cache key is salted with
  :func:`~repro.core.cache.functional_fingerprint` (the ISA / intrinsics /
  workloads sources) rather than the whole tree, so timing-model edits keep
  captured traces warm.
* :class:`TraceArtifact` bundles the spec with the captured entry list and
  converts to/from the compact columnar payload of
  :mod:`repro.isa.trace_io`.
* :class:`TraceStore` is a namespace over the existing content-addressed
  :class:`~repro.core.cache.ResultStore`; captured traces travel through
  the same local directory and shared HTTP cache service as simulation
  results, so one machine's capture is a hit for the whole fleet.

Capture itself runs the functional machine with value recording off
(:meth:`~repro.workloads.base.Kernel.capture`): the trace carries every
timing-relevant field but no payload data, which keeps artifacts compact
and capture fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..isa.instructions import TraceEntry
from ..isa.trace_io import (
    decode_trace,
    encode_trace,
    trace_columnar_bytes,
    trace_columns,
)
from .cache import ResultStore, functional_fingerprint, stable_hash

__all__ = ["TraceSpec", "TraceArtifact", "TraceStore"]


@dataclass(frozen=True)
class TraceSpec:
    """Identity of one captured kernel trace.

    Two simulation jobs that differ only in timing parameters (scheme,
    cache/DRAM/TMU geometry, latency knobs, ...) share a spec -- and
    therefore a capture.
    """

    kernel: str
    kind: str = "mve"  # "mve" or "rvv"
    scale: float = 0.5
    kwargs: tuple[tuple[str, Any], ...] = ()
    simd_lanes: int = 8192

    def cache_key(self) -> str:
        """Content hash addressing this capture in the persistent store.

        Namespaced so a trace record can never collide with a simulation
        result, and salted with the functional-layer fingerprint only.
        """
        return stable_hash(
            {
                "namespace": "trace",
                "fingerprint": functional_fingerprint(),
                "kernel": self.kernel,
                "kind": self.kind,
                "scale": self.scale,
                "kwargs": list(self.kwargs),
                "simd_lanes": self.simd_lanes,
            }
        )

    def describe(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self.kwargs)
        suffix = f", {params}" if params else ""
        return f"{self.kernel}/{self.kind} (scale={self.scale}{suffix}, {self.simd_lanes} lanes)"

    def to_dict(self) -> dict:
        """Human-readable spec metadata stored next to the payload."""
        return {
            "kernel": self.kernel,
            "kind": self.kind,
            "scale": self.scale,
            "kwargs": dict(self.kwargs),
            "simd_lanes": self.simd_lanes,
        }

    def capture(self, record_values: bool = False) -> "TraceArtifact":
        """Run the functional machine on a fresh kernel and record the trace.

        ``record_values=False`` (the default, and what the timing pipeline
        uses) skips every flat-memory payload read/write; the emitted
        instruction stream is identical either way, which the regression
        suite pins.
        """
        from ..workloads import get_kernel_class  # deferred: avoids an import cycle

        kernel = get_kernel_class(self.kernel)(scale=self.scale, **dict(self.kwargs))
        trace = kernel.capture(
            kind=self.kind, simd_lanes=self.simd_lanes, record_values=record_values
        )
        return TraceArtifact(spec=self, trace=trace)


@dataclass
class TraceArtifact:
    """A captured trace plus the spec that identifies it."""

    spec: TraceSpec
    trace: list[TraceEntry] = field(repr=False)

    def __len__(self) -> int:
        return len(self.trace)

    def stats(self):
        """Dynamic instruction statistics (``TraceStats``) for this trace."""
        from ..intrinsics.machine import TraceStats  # deferred: import cycle

        return TraceStats(self.trace)

    def columnar_bytes(self) -> int:
        """Decoded columnar footprint of this trace, in bytes.

        What one shared-memory arena segment holds for this trace -- and
        what every pickled-trace partition task used to re-materialize.
        Surfaced by ``repro trace stats --bytes`` for capacity planning.
        """
        return trace_columnar_bytes(trace_columns(self.trace))

    def to_payload(self) -> dict:
        """The JSON-safe record body persisted in the store."""
        return {"trace": encode_trace(self.trace), "spec": self.spec.to_dict()}

    @classmethod
    def from_payload(cls, spec: TraceSpec, payload: dict) -> "TraceArtifact":
        return cls(spec=spec, trace=decode_trace(payload["trace"]))


class TraceStore:
    """Trace-artifact namespace over the content-addressed result store.

    A thin facade: keys come from :meth:`TraceSpec.cache_key`, records are
    ``{"trace": <columnar payload>, "spec": {...}}`` and travel through
    whatever backend stack the wrapped :class:`ResultStore` carries --
    including the tiered local+remote configuration, so captures are shared
    fleet-wide exactly like simulation results.  ``store=None`` degrades
    every operation to a no-op/miss (the ``--no-cache`` path).
    """

    def __init__(self, store: Optional[ResultStore]):
        self.store = store

    def load_payload(self, spec: TraceSpec) -> Optional[dict]:
        """The raw record body for ``spec``, or None on miss/corruption."""
        if self.store is None:
            return None
        record = self.store.load(spec.cache_key())
        if record is None:
            return None
        payload = record.get("trace")
        if not isinstance(payload, dict) or "npz_b64" not in payload:
            return None
        return {"trace": payload, "spec": record.get("spec", {})}

    def load(self, spec: TraceSpec) -> Optional[TraceArtifact]:
        """The decoded artifact for ``spec``, or None on miss/corruption."""
        payload = self.load_payload(spec)
        if payload is None:
            return None
        try:
            return TraceArtifact.from_payload(spec, payload)
        except (KeyError, ValueError, TypeError):
            return None

    def save_payload(self, spec: TraceSpec, payload: dict) -> None:
        if self.store is not None:
            self.store.store(spec.cache_key(), payload)

    def save(self, artifact: TraceArtifact) -> None:
        # Checked here, not just in save_payload: without a store the
        # columnar encode would be pure wasted work.
        if self.store is not None:
            self.save_payload(artifact.spec, artifact.to_payload())

    def contains_locally(self, spec: TraceSpec) -> bool:
        """Whether the local tier already holds this capture (no network)."""
        if self.store is None:
            return False
        backend = getattr(self.store.backend, "local", self.store.backend)
        return backend.contains(spec.cache_key())
