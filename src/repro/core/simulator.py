"""Trace-driven cycle-accounting simulator for the MVE architecture.

This is the reproduction's stand-in for the paper's in-house cycle-accurate
simulator.  It consumes a compiled MVE instruction trace and models:

* the scalar core issuing scalar blocks and MVE instructions in program
  order (ROB-head issue, write-buffer backpressure),
* the MVE controller instruction queue decoupling the core from the engine,
* control blocks executing in-SRAM micro-ops with latencies from the
  configured compute scheme (bit-serial by default),
* vector memory accesses flowing through the L2/LLC/DRAM hierarchy with
  MSHR-limited parallelism, and through the Transpose Memory Unit, and
* the resulting energy, following the classification of Figure 7.

The output is a :class:`~repro.core.results.SimulationResult` whose cycle
breakdown (idle / compute / data access), instruction counts and utilization
metrics feed every experiment of Section VII.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

import numpy as np

from ..compiler.pipeline import CompiledKernel, compile_trace, compile_trace_cached
from ..isa.instructions import (
    InstructionCategory,
    MemoryInstruction,
    MVEInstruction,
    ScalarBlock,
    TraceEntry,
)
from ..isa.registers import PhysicalRegisterFile
from ..memory.cache import make_hierarchy
from ..sram.schemes import ComputeScheme, get_scheme
from ..sram.tmu import TransposeMemoryUnit
from .address_gen import cache_line_addresses
from .config import MachineConfig, default_config
from .controller import MVEControllerModel
from .energy import EnergyCoefficients, EnergyModel
from .results import SimulationResult
from .scalar_core import ScalarCoreModel

__all__ = ["MVESimulator", "simulate_kernel", "simulate_trace", "simulate_trace_batch"]


class MVESimulator:
    """End-to-end timing and energy simulator for one MVE-enabled core."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        scheme: Optional[ComputeScheme] = None,
        energy_coefficients: Optional[EnergyCoefficients] = None,
    ):
        self.config = config or default_config()
        self.scheme = scheme or get_scheme(self.config.scheme_name)
        self.hierarchy = make_hierarchy(
            self.config.hierarchy, l2_compute_ways=self.config.l2_compute_ways
        )
        self.controller = MVEControllerModel(self.config.engine, self.scheme)
        self.tmu = TransposeMemoryUnit(self.config.tmu)
        self.energy_coefficients = energy_coefficients or EnergyCoefficients()
        # Cache-line footprints are pure functions of the (immutable) memory
        # instruction, so they are memoized per instruction object: warm-cache
        # runs replay the same trace and skip the address expansion entirely.
        # The instruction is kept in the value to pin its id() against reuse.
        # Footprints stay ndarrays end-to-end: address generation, the memo
        # and the cache engine's block access all speak int64 arrays.
        self._line_memo: dict[int, tuple[MemoryInstruction, np.ndarray]] = {}

    # ------------------------------------------------------------------ #

    def run(self, trace: Sequence[TraceEntry], reset_state: bool = True) -> SimulationResult:
        """Simulate an already-compiled trace and return the result.

        With ``reset_state=False`` the cache contents from a previous run are
        kept (only statistics are cleared), which models the steady-state,
        warm-cache behaviour of repeatedly-invoked library kernels.
        """
        config = self.config
        scalar_core = ScalarCoreModel(config)
        energy = EnergyModel(self.energy_coefficients, config.frequency_ghz)
        if reset_state:
            self.hierarchy.reset()
        else:
            self.hierarchy.reset_stats()
        self.tmu.reset()

        core_time = 0.0
        engine_free = 0.0
        idle = 0.0
        compute = 0.0
        data_access = 0.0

        queue: deque[float] = deque()
        queue_capacity = config.instruction_queue_entries
        dispatch = config.controller_dispatch_cycles

        vector_counts: dict[str, int] = {c.value: 0 for c in InstructionCategory}
        spills = 0
        scalar_instructions = 0

        lane_util_weight = 0.0
        cb_util_weight = 0.0
        util_weight_total = 0.0

        dram_bytes_start = self.hierarchy.dram.stats.bytes_transferred

        for entry in trace:
            if isinstance(entry, ScalarBlock):
                core_time += scalar_core.scalar_block_cycles(entry)
                scalar_instructions += entry.count
                energy.add_scalar(entry.count)
                energy.add_l1_accesses(entry.loads + entry.stores)
                continue

            instruction: MVEInstruction = entry
            category = instruction.category
            vector_counts[category.value] += 1
            if isinstance(instruction, MemoryInstruction) and instruction.is_spill:
                spills += 1

            # The core decodes/commits and issues the instruction.
            core_time += scalar_core.vector_issue_cycles()
            energy.add_scalar(1)
            energy.add_controller(1)

            # Instruction-queue backpressure.
            while queue and queue[0] <= core_time:
                queue.popleft()
            if len(queue) >= queue_capacity:
                core_time = max(core_time, queue.popleft())

            if category is InstructionCategory.CONFIG:
                # Config instructions update controller CRs; they do not
                # occupy the SRAM arrays.
                queue.append(core_time + dispatch)
                continue

            issue_time = core_time + dispatch
            start = max(issue_time, engine_free)
            if start > engine_free:
                idle += start - engine_free

            element_bits = instruction.dtype.bits
            placement = self.controller.placement(instruction, element_bits)

            if category is InstructionCategory.MEMORY:
                duration = self._memory_duration(instruction, placement, energy)
                data_access += duration
            else:
                sram_cycles = self.controller.compute_sram_cycles(
                    instruction, element_bits, config.float_latency_factor, placement
                )
                duration = sram_cycles * config.sram_cycle_multiplier + dispatch
                compute += duration
                energy.add_sram_compute(
                    sram_cycles,
                    placement.active_lanes,
                    self.scheme.energy_per_cycle_factor,
                )

            engine_free = start + duration
            queue.append(engine_free)

            lane_util_weight += placement.lane_utilization * duration
            cb_util_weight += placement.cb_utilization * duration
            util_weight_total += duration

            if isinstance(instruction, MemoryInstruction) and instruction.is_store:
                scalar_core.write_buffer.push(instruction, engine_free, core_time)

        total_cycles = max(core_time, engine_free)
        # Any time the control blocks are not computing or moving data is
        # idle time (waiting for the core to issue work), matching the
        # paper's classification.
        idle = max(idle, total_cycles - compute - data_access)
        energy.add_static(total_cycles)

        l2_stats = self.hierarchy.l2.stats
        result = SimulationResult(
            total_cycles=total_cycles,
            idle_cycles=idle,
            compute_cycles=compute,
            data_access_cycles=data_access,
            scalar_instructions=scalar_instructions,
            vector_instructions=vector_counts,
            spill_instructions=spills,
            lane_utilization=(lane_util_weight / util_weight_total) if util_weight_total else 0.0,
            cb_utilization=(cb_util_weight / util_weight_total) if util_weight_total else 0.0,
            energy=energy.breakdown,
            frequency_ghz=config.frequency_ghz,
            dram_bytes=self.hierarchy.dram.stats.bytes_transferred - dram_bytes_start,
            l2_hit_rate=l2_stats.hit_rate(),
        )
        return result

    # ------------------------------------------------------------------ #

    def _memory_duration(self, instruction: MemoryInstruction, placement, energy: EnergyModel) -> float:
        """Cycles for one vector load/store through the cache, TMU and arrays."""
        config = self.config
        hierarchy = self.hierarchy

        l2_before = hierarchy.l2.stats.hits
        llc_before = hierarchy.llc.stats.hits
        dram_before = hierarchy.dram.stats.reads + hierarchy.dram.stats.writes

        memo = self._line_memo.get(id(instruction))
        if memo is None or memo[0] is not instruction:
            lines = cache_line_addresses(instruction, hierarchy.line_bytes)
            self._line_memo[id(instruction)] = (instruction, lines)
        else:
            lines = memo[1]
        cache_cycles = hierarchy.vector_block_access(lines, instruction.is_store)

        l2_hits = hierarchy.l2.stats.hits - l2_before
        llc_hits = hierarchy.llc.stats.hits - llc_before
        dram_accesses = hierarchy.dram.stats.reads + hierarchy.dram.stats.writes - dram_before
        energy.add_cache_lines(l2_hits, llc_hits, dram_accesses)

        active_elements = instruction.active_elements()
        active_cbs = max(1, placement.active_control_blocks)
        elements_per_cb = (active_elements + active_cbs - 1) // active_cbs
        if instruction.is_store:
            tmu_cycles = self.tmu.drain_cycles(elements_per_cb, instruction.dtype.bits)
        else:
            tmu_cycles = self.tmu.fill_cycles(elements_per_cb, instruction.dtype.bits)
        energy.add_tmu(active_elements)

        sram_row_cycles = (
            self.controller.memory_row_cycles(instruction) * config.sram_cycle_multiplier
        )
        # Cache fetches and TMU routing overlap; the array write of the
        # transposed bit-slices follows.
        return max(cache_cycles, tmu_cycles) + sram_row_cycles + config.controller_dispatch_cycles


def simulate_kernel(
    trace: Sequence[TraceEntry],
    config: Optional[MachineConfig] = None,
    scheme: Optional[ComputeScheme] = None,
    compile_first: bool = True,
    warm_cache: bool = True,
) -> tuple[SimulationResult, Optional[CompiledKernel]]:
    """Compile a raw trace (scheduler + register allocation) and simulate it.

    ``warm_cache=True`` runs the trace twice and reports the second,
    steady-state run -- the equivalent of the paper's repeated kernel
    invocations on the phone, where inputs already live in the cache
    hierarchy.
    """
    config = config or default_config()
    compiled = None
    if compile_first:
        register_file = PhysicalRegisterFile(
            num_arrays=config.engine.num_arrays,
            array_rows=config.engine.array.rows,
            array_cols=config.engine.array.cols,
        )
        compiled = compile_trace(trace, register_file=register_file)
        trace = compiled.trace
    simulator = MVESimulator(config=config, scheme=scheme)
    if warm_cache:
        simulator.run(trace)
        result = simulator.run(trace, reset_state=False)
    else:
        result = simulator.run(trace)
    return result, compiled


def simulate_trace(
    trace: Sequence[TraceEntry],
    config: Optional[MachineConfig] = None,
    scheme: Optional[ComputeScheme] = None,
    warm_cache: bool = True,
) -> tuple[SimulationResult, CompiledKernel]:
    """Replay a shared, already-captured trace under one configuration.

    The staged pipeline's second phase: the trace comes from the capture
    stage (or the trace cache) and may be replayed many times, so the
    compile step goes through :func:`compile_trace_cached` -- configurations
    that keep the register-file geometry reuse the scheduled,
    register-allocated kernel and only re-run the timing model.  Identical
    to :func:`simulate_kernel` with ``compile_first=True`` result-wise.
    """
    config = config or default_config()
    register_file = PhysicalRegisterFile(
        num_arrays=config.engine.num_arrays,
        array_rows=config.engine.array.rows,
        array_cols=config.engine.array.cols,
    )
    compiled = compile_trace_cached(trace, register_file=register_file)
    simulator = MVESimulator(config=config, scheme=scheme)
    if warm_cache:
        simulator.run(compiled.trace)
        result = simulator.run(compiled.trace, reset_state=False)
    else:
        result = simulator.run(compiled.trace)
    return result, compiled


# The config-batched sibling of simulate_trace lives in .replay (it shares
# this module's timing semantics but none of its per-config state); importing
# it here keeps `from repro.core.simulator import simulate_trace_batch` the
# canonical spelling.  The import sits below the definitions it depends on
# because replay's per-config fallback calls back into simulate_trace.
from .replay import simulate_trace_batch  # noqa: E402  (intentional tail import)
