"""Shared result-cache service: the content-addressed store over HTTP.

One machine runs ``python -m repro serve``; every other machine (and CI
run) points ``--remote-cache URL`` or ``$REPRO_REMOTE_CACHE`` at it and the
fleet stops re-simulating jobs any member has already computed.  The wire
protocol is deliberately tiny -- JSON records addressed by hex cache key,
stdlib only on both sides:

==========================  ===============================================
``GET  /v1/entry/K``        200 + the record, or 404 on a miss
``HEAD /v1/entry/K``        200 / 404 without a body
``PUT  /v1/entry/K``        204; truncated or non-JSON bodies are rejected
                            with 400 and never stored (uploads are atomic)
``GET  /v1/stats``          entry count, request counters and the job-queue
                            snapshot, as JSON
``GET  /v1/experiments``    registered experiments with per-store-key
                            availability (``?scale=`` selects the options)
``GET  /v1/experiments/N``  the assembled result of experiment ``N``,
                            byte-identical to the CLI export; ``ETag``
                            derived from the store key with
                            ``If-None-Match`` -> 304 revalidation,
                            ``Accept: text/csv`` (or ``?format=csv``) for
                            the row view, ``?offset=&limit=`` pagination
``POST /v1/keys``           ``{"keys": [...]}`` -> ``{"present": {key:
                            bool}}`` (batched existence probe)
``POST /v1/entries``        ``{"get": [keys], "put": {key: record}}`` ->
                            ``{"entries": {key: record-or-null}, "stored":
                            [keys]}`` (bulk transfer, one round trip)
``POST /v1/queue/*``        the sweep-coordinator surface
                            (enqueue/lease/ack/nack/heartbeat); see
                            :mod:`repro.core.coordinator`
==========================  ===============================================

When the server is started with a token (``--token`` /
``$REPRO_CACHE_TOKEN``), every **mutating** request -- ``PUT /v1/entry``,
``POST /v1/entries`` bodies carrying ``put``, and all ``/v1/queue``
operations -- must present it (``Authorization: Bearer <token>``) or is
answered 401; tokens compare in constant time.  Reads stay open so
status probes and read-only mirrors keep working.

The server persists through a :class:`~repro.core.store_backend.LocalDirBackend`
(atomic writes, corruption-dropping reads), so killing it mid-request can
never publish a torn entry.  :class:`RemoteStore` is the matching client
backend: any timeout, refused connection, 5xx or truncated response marks
the remote **dead** after a single ``RuntimeWarning`` -- every caller
transparently degrades to its local tier, which is exactly the no-remote
behavior.  Going dead also starts a background re-probe thread that pings
``/v1/stats`` every :data:`DEFAULT_REPROBE_INTERVAL_S` seconds (tunable via
``$REPRO_REMOTE_REPROBE_S``; ``0`` disables it); if the service recovers
mid-run the store flips live again and the worker rejoins the fleet cache
without a restart.
"""

from __future__ import annotations

import hmac
import json
import os
import re
import threading
import time
import urllib.error
import urllib.request
import warnings
from http.client import HTTPException
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Iterable, Optional

from .coordinator import DEFAULT_LEASE_TTL_S, JobQueue
from .store_backend import LocalDirBackend, StoreBackend

__all__ = [
    "DEFAULT_PORT",
    "CacheRequestHandler",
    "CacheServer",
    "RemoteStore",
]

DEFAULT_PORT = 8750

#: seconds between background liveness probes after a remote goes dead
DEFAULT_REPROBE_INTERVAL_S = 15.0
_ENV_REPROBE = "REPRO_REMOTE_REPROBE_S"

#: cache keys are SHA-256 hex digests; anything else is rejected up front
#: (which also rules out path traversal before a key ever reaches a backend)
_KEY_RE = re.compile(r"^[0-9a-f]{64}$")

#: largest accepted PUT body; a simulation record is a few KiB
_MAX_BODY_BYTES = 64 * 1024 * 1024


class CacheRequestHandler(BaseHTTPRequestHandler):
    """Routes the ``/v1`` protocol onto the server's storage backend."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-cache-service/1"
    #: per-connection socket timeout: a client that stalls mid-upload must
    #: not pin a server thread (and its fd) forever
    timeout = 30

    # ------------------------------------------------------------------ #

    @property
    def backend(self) -> StoreBackend:
        return self.server.backend

    def log_message(self, format: str, *args) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_body(
        self,
        code: int,
        body: bytes,
        content_type: str = "application/json",
        headers: Optional[dict] = None,
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    def _send_json(self, code: int, payload: dict) -> None:
        self._send_body(code, json.dumps(payload).encode("utf-8"))

    def _send_empty(self, code: int) -> None:
        self.send_response(code)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def _entry_key(self) -> Optional[str]:
        prefix = "/v1/entry/"
        if not self.path.startswith(prefix):
            return None
        key = self.path[len(prefix):]
        return key if _KEY_RE.match(key) else None

    def _read_body(self) -> Optional[bytes]:
        """The full request body, or None when it is unusable (no/absurd
        Content-Length, or fewer bytes on the wire than declared -- i.e. an
        interrupted upload, which must never reach a backend)."""
        length = self.headers.get("Content-Length")
        try:
            expected = int(length)
        except (TypeError, ValueError):
            return None
        if not 0 <= expected <= _MAX_BODY_BYTES:
            return None
        body = self.rfile.read(expected)
        if len(body) != expected:
            return None
        return body

    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:
        if self.path == "/v1/stats":
            self._send_json(200, self.server.stats())
            return
        path, _, query = self.path.partition("?")
        if path == "/v1/experiments" or path.startswith("/v1/experiments/"):
            self._get_experiments(path, query)
            return
        key = self._entry_key()
        if key is None:
            self.server.count("bad_requests")
            self._send_json(400, {"error": f"bad route or key: {self.path}"})
            return
        self.server.count("gets")
        record = self.backend.load(key)
        if record is None:
            self.server.count("misses")
            self._send_json(404, {"error": "miss"})
        else:
            self.server.count("hits_served")
            self._send_json(200, record)

    # -- the read API: assembled experiment results ---------------------- #

    @staticmethod
    def _experiment_etag(key: str, fmt: str, offset: Optional[int], limit: Optional[int]) -> str:
        """Per-representation validator derived from the store key.

        The key already embeds the source fingerprint and options, so equal
        tags imply byte-equal documents; format and pagination qualifiers
        keep distinct representations from validating against each other.
        """
        tag = key
        if fmt != "json":
            tag += f".{fmt}"
        if offset is not None or limit is not None:
            tag += f".{offset or 0}.{'all' if limit is None else limit}"
        return f'"{tag}"'

    @staticmethod
    def _etag_matches(header: Optional[str], etag: str) -> bool:
        if not header:
            return False
        for candidate in header.split(","):
            candidate = candidate.strip()
            if candidate.startswith("W/"):
                candidate = candidate[2:]
            if candidate == etag or candidate == "*":
                return True
        return False

    def _get_experiments(self, path: str, query: str) -> None:
        """``GET /v1/experiments[/<name>]``: the token-free read surface.

        Registry and export modules import lazily so a pure cache/queue
        deployment never pays for (or depends on) the experiment stack.
        """
        from urllib.parse import parse_qs

        from ..experiments import export as export_api
        from ..experiments import registry

        params = parse_qs(query)

        def param(name: str) -> Optional[str]:
            values = params.get(name)
            return values[0] if values else None

        try:
            scale = float(param("scale")) if param("scale") is not None else 0.5
        except ValueError:
            self._send_json(400, {"error": f"bad scale {param('scale')!r}"})
            return
        options = registry.ExperimentOptions(scale=scale)

        if path == "/v1/experiments":
            self.server.count("experiment_gets")
            self._send_json(
                200,
                {
                    "schema": export_api.EXPORT_SCHEMA_VERSION,
                    "scale": scale,
                    "experiments": registry.experiment_catalog(
                        self.backend.contains, options
                    ),
                },
            )
            return

        name = path[len("/v1/experiments/") :]
        try:
            experiment = registry.get_experiment(name)
        except KeyError:
            self.server.count("experiment_misses")
            self._send_json(
                404,
                {
                    "error": f"unknown experiment {name!r}",
                    "experiments": registry.experiment_names(),
                },
            )
            return

        fmt = param("format")
        if fmt is None:
            fmt = "csv" if "text/csv" in self.headers.get("Accept", "") else "json"
        if fmt not in ("json", "csv"):
            self._send_json(400, {"error": f"bad format {fmt!r} (choose json or csv)"})
            return
        window: dict[str, Optional[int]] = {"offset": None, "limit": None}
        for field in window:
            raw = param(field)
            if raw is None:
                continue
            try:
                value = int(raw)
            except ValueError:
                value = -1
            if value < 0:
                self._send_json(
                    400, {"error": f"bad {field} {raw!r} (need a non-negative integer)"}
                )
                return
            window[field] = value
        offset, limit = window["offset"], window["limit"]

        key = experiment.cache_key(options)
        etag = self._experiment_etag(key, fmt, offset, limit)
        headers = {"ETag": etag, "Vary": "Accept"}
        if self._etag_matches(self.headers.get("If-None-Match"), etag) and self.backend.contains(key):
            # Content-addressed revalidation without touching the record:
            # matching tags plus a present key prove the representation is
            # unchanged, which is what makes warm re-reads nearly free.
            self.server.count("experiment_not_modified")
            self.send_response(304)
            for header_name, value in headers.items():
                self.send_header(header_name, value)
            self.end_headers()
            return

        record = self.backend.load_checked(key)
        result_payload = registry.assembled_result_payload(name, record)
        if result_payload is None:
            self.server.count("experiment_misses")
            hint = f"python -m repro run {name}"
            if experiment.uses_scale:
                hint += f" --scale {scale:g}"
            self._send_json(
                404,
                {
                    "error": f"experiment {name!r} is not in the store for these options",
                    "key": key,
                    "hint": f"warm it with: {hint}",
                },
            )
            return

        payload = export_api.experiment_export_payload(name, options, result_payload)
        if offset is None and limit is None:
            body = export_api.render_payload(payload, fmt)
        else:
            rows, fieldnames, total = export_api.paged_rows(payload, offset or 0, limit)
            if fmt == "csv":
                body = export_api.render_rows_csv(rows, fieldnames)
            else:
                body = (
                    json.dumps(
                        {
                            "schema": export_api.EXPORT_SCHEMA_VERSION,
                            "experiment": name,
                            "options": options.to_dict(),
                            "offset": offset or 0,
                            "limit": limit,
                            "total_rows": total,
                            "rows": rows,
                        },
                        indent=2,
                        sort_keys=True,
                    )
                    + "\n"
                ).encode("utf-8")
        self.server.count("experiment_gets")
        content_type = "text/csv; charset=utf-8" if fmt == "csv" else "application/json"
        self._send_body(200, body, content_type=content_type, headers=headers)

    def do_HEAD(self) -> None:
        key = self._entry_key()
        if key is None:
            self.server.count("bad_requests")
            self._send_empty(400)
            return
        self.server.count("heads")
        self._send_empty(200 if self.backend.contains(key) else 404)

    def _reject(self, message: str) -> None:
        """400 for a request whose body may still sit unread on the socket.

        Dropping the connection is mandatory: answering 400 on the
        advertised HTTP/1.1 keep-alive connection without draining the
        declared body would desync the stream and garble every subsequent
        request from that client.
        """
        self.close_connection = True
        self.server.count("bad_requests")
        self._send_json(400, {"error": message})

    def _authorized(self) -> bool:
        """Whether this request may mutate server state.

        Constant-time comparison: a timing oracle on the token would let
        an attacker recover it byte by byte.
        """
        token = self.server.token
        if not token:
            return True
        header = self.headers.get("Authorization", "")
        presented = header[len("Bearer "):] if header.startswith("Bearer ") else ""
        return hmac.compare_digest(presented.encode("utf-8"), token.encode("utf-8"))

    def _unauthorized(self) -> None:
        """401 for a mutating request without the token.  Like
        :meth:`_reject`, the connection drops because the request body may
        still sit unread on the socket."""
        self.close_connection = True
        self.server.count("unauthorized")
        self._send_json(401, {"error": "missing or invalid token"})

    def do_PUT(self) -> None:
        key = self._entry_key()
        if key is None:
            self._reject(f"bad route or key: {self.path}")
            return
        if not self._authorized():
            self._unauthorized()
            return
        body = self._read_body()
        record = None
        if body is not None:
            try:
                record = json.loads(body)
            except ValueError:
                record = None
        if not isinstance(record, dict):
            self._reject("body must be a complete JSON object")
            return
        if self.backend.store(key, record):
            self.server.count("puts")
            self._send_empty(204)
        else:
            self._send_json(500, {"error": "backend write failed"})

    def _read_json_body(self) -> Optional[dict]:
        """The request body as a JSON object, or None when unusable."""
        body = self._read_body()
        if body is None:
            return None
        try:
            record = json.loads(body)
        except ValueError:
            return None
        return record if isinstance(record, dict) else None

    def do_POST(self) -> None:
        if self.path == "/v1/keys":
            self._post_keys()
        elif self.path == "/v1/entries":
            self._post_entries()
        elif self.path.startswith("/v1/queue/"):
            self._post_queue()
        else:
            self._reject(f"bad route: {self.path}")

    def _post_keys(self) -> None:
        payload = self._read_json_body()
        keys = payload.get("keys") if payload is not None else None
        if not isinstance(keys, list):
            self._reject('body must be {"keys": [...]}')
            return
        present = {
            key: bool(_KEY_RE.match(key)) and self.backend.contains(key)
            for key in keys
            if isinstance(key, str)
        }
        self._send_json(200, {"present": present})

    def _post_entries(self) -> None:
        """Bulk transfer: many GETs and/or PUTs in one round trip.

        The body is fully read before the auth decision, so a 401 here is
        keep-alive safe -- and only bodies carrying ``put`` records need
        the token at all (bulk reads stay as open as single GETs).
        """
        payload = self._read_json_body()
        if payload is None:
            self._reject('body must be {"get": [...], "put": {...}}')
            return
        get_keys = payload.get("get", [])
        puts = payload.get("put", {})
        if not isinstance(get_keys, list) or not isinstance(puts, dict):
            self._reject('body must be {"get": [...], "put": {...}}')
            return
        if puts and not self._authorized():
            self._unauthorized()
            return
        entries = {}
        for key in get_keys:
            if isinstance(key, str) and _KEY_RE.match(key):
                entries[key] = self.backend.load(key)
        served = sum(1 for record in entries.values() if record is not None)
        self.server.count("entries_served", served)
        stored = []
        for key, record in puts.items():
            if (
                isinstance(key, str)
                and _KEY_RE.match(key)
                and isinstance(record, dict)
                and self.backend.store(key, record)
            ):
                stored.append(key)
        self.server.count("entries_stored", len(stored))
        self._send_json(200, {"entries": entries, "stored": stored})

    def _post_queue(self) -> None:
        """The coordinator surface; every operation mutates queue state,
        so all of them require the token (checked before the body read --
        hence the connection-dropping 401)."""
        if not self._authorized():
            self._unauthorized()
            return
        action = self.path[len("/v1/queue/"):]
        payload = self._read_json_body()
        if payload is None:
            self._reject("body must be a JSON object")
            return
        queue = self.server.queue
        if action == "enqueue":
            space = payload.get("space")
            if isinstance(space, dict):
                # Exploration round: a declarative search space plus point
                # ids instead of a registered experiment name.
                points = payload.get("points")
                if not isinstance(points, list):
                    self._send_json(400, {"error": 'explore enqueue needs "points"'})
                    return
                try:
                    summary = queue.enqueue_explore(space, points)
                except (KeyError, TypeError, ValueError) as error:
                    self._send_json(400, {"error": str(error)})
                    return
                self.server.count("enqueues")
                self._send_json(200, summary)
                return
            experiment = payload.get("experiment")
            if not isinstance(experiment, str):
                self._send_json(400, {"error": 'missing "experiment"'})
                return
            try:
                scale = float(payload.get("scale", 0.5))
                summary = queue.enqueue(experiment, scale)
            except (KeyError, TypeError, ValueError) as error:
                self._send_json(400, {"error": str(error)})
                return
            self.server.count("enqueues")
            self._send_json(200, summary)
            return
        worker = payload.get("worker")
        if not isinstance(worker, str) or not worker:
            self._send_json(400, {"error": 'missing "worker"'})
            return
        if action == "lease":
            self.server.count("leases")
            partition, drained = queue.lease(worker)
            self._send_json(
                200,
                {
                    "partition": partition,
                    "drained": drained,
                    "lease_ttl_s": queue.lease_ttl_s,
                },
            )
        elif action == "ack":
            ok, reason = queue.ack(worker, payload.get("partition"))
            if ok:
                self.server.count("acks")
                self._send_json(200, {"ok": True})
            else:
                # 409, not 400: the request was well-formed, the *lease*
                # state no longer matches (expired, requeued, double-ack).
                self._send_json(409, {"ok": False, "error": reason})
        elif action == "nack":
            requeued = queue.nack(
                worker, payload.get("partition"), str(payload.get("reason", ""))
            )
            self.server.count("nacks")
            self._send_json(200, {"requeued": requeued})
        elif action == "heartbeat":
            self.server.count("heartbeats")
            self._send_json(200, {"ok": True, "leases": queue.heartbeat(worker)})
        else:
            self._send_json(400, {"error": f"unknown queue action {action!r}"})


class CacheServer(ThreadingHTTPServer):
    """Threaded HTTP front end over a :class:`LocalDirBackend`.

    ``port=0`` binds an ephemeral port (read it back from :attr:`url`).
    Request counters are aggregated under a lock and served by
    ``GET /v1/stats``.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        root: Optional[str | Path] = None,
        backend: Optional[StoreBackend] = None,
        verbose: bool = False,
        token: Optional[str] = None,
        queue: Optional[JobQueue] = None,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    ):
        if backend is None:
            if root is None:
                raise ValueError("CacheServer needs a root directory or a backend")
            backend = LocalDirBackend(root)
        self.backend = backend
        self.verbose = verbose
        #: shared secret gating mutating requests; None/"" leaves them open
        self.token = token or None
        #: the sweep-coordinator queue behind /v1/queue/*
        self.queue = queue if queue is not None else JobQueue(lease_ttl_s=lease_ttl_s)
        self._counter_lock = threading.Lock()
        self._counters = {
            "gets": 0,
            "hits_served": 0,
            "misses": 0,
            "puts": 0,
            "heads": 0,
            "bad_requests": 0,
            "unauthorized": 0,
            "entries_served": 0,
            "entries_stored": 0,
            "experiment_gets": 0,
            "experiment_not_modified": 0,
            "experiment_misses": 0,
            "enqueues": 0,
            "leases": 0,
            "acks": 0,
            "nacks": 0,
            "heartbeats": 0,
        }
        super().__init__(address, CacheRequestHandler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def count(self, name: str, amount: int = 1) -> None:
        with self._counter_lock:
            self._counters[name] += amount

    def stats(self) -> dict:
        with self._counter_lock:
            counters = dict(self._counters)
        return {
            "entries": len(self.backend),
            "root": str(getattr(self.backend, "root", "")),
            "auth": self.token is not None,
            "queue": self.queue.stats(),
            **counters,
        }

    def start_in_background(self) -> threading.Thread:
        """Run ``serve_forever`` on a daemon thread (tests, embedding)."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-cache-service", daemon=True
        )
        thread.start()
        return thread

    def handle_error(self, request, client_address) -> None:
        # Clients that vanish mid-request (interrupted PUTs, closed progress
        # streams) are an expected fault mode, not a server bug.
        import sys

        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionResetError, TimeoutError)):
            return
        super().handle_error(request, client_address)


class RemoteStore(StoreBackend):
    """HTTP client backend speaking the :class:`CacheServer` protocol.

    Built for hostile networks: every request carries ``timeout``, and the
    first connectivity failure (refused connection, timeout, 5xx, truncated
    or non-JSON response) flips the store to ``dead`` with one
    ``RuntimeWarning`` -- after that every operation is an instant no-op
    and the caller's local tier serves alone.  A plain 404 is an ordinary
    miss, not a failure.

    Dead is not forever: a background daemon thread re-probes
    ``GET /v1/stats`` every ``reprobe_interval`` seconds (default
    :data:`DEFAULT_REPROBE_INTERVAL_S`, overridable with
    ``$REPRO_REMOTE_REPROBE_S``; ``<= 0`` disables re-probing) and flips
    the store live again when the service answers, so a worker mid-sweep
    rejoins a recovered cache service automatically.  A later failure goes
    through the same one-warning death again.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 5.0,
        reprobe_interval: Optional[float] = None,
        token: Optional[str] = None,
    ):
        if "://" not in base_url:
            base_url = f"http://{base_url}"
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: shared secret for servers running with --token; defaults to
        #: $REPRO_CACHE_TOKEN so fleet workers pick it up with no plumbing
        self.token = token if token is not None else os.environ.get("REPRO_CACHE_TOKEN")
        self.dead = False
        if reprobe_interval is None:
            reprobe_interval = DEFAULT_REPROBE_INTERVAL_S
            env = os.environ.get(_ENV_REPROBE)
            if env:
                try:
                    reprobe_interval = float(env)
                except ValueError:
                    warnings.warn(
                        f"ignoring {_ENV_REPROBE}={env!r}: not a number",
                        RuntimeWarning,
                        stacklevel=2,
                    )
        self.reprobe_interval = reprobe_interval
        self._fail_lock = threading.Lock()
        self._reprobe_thread: Optional[threading.Thread] = None
        #: times this store went dead and later rejoined a recovered service
        self.rejoins = 0
        self.hits = 0
        self.misses = 0
        self.puts = 0

    # ------------------------------------------------------------------ #

    def _open(self, method: str, path: str, body: Optional[bytes] = None):
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method
        )
        if body is not None:
            request.add_header("Content-Type", "application/json")
        if self.token:
            request.add_header("Authorization", f"Bearer {self.token}")
        return urllib.request.urlopen(request, timeout=self.timeout)

    def _fail(self, error: Exception) -> None:
        # Check-and-set under a lock: concurrent failing requests (threaded
        # callers) must produce exactly one warning, not one each.
        with self._fail_lock:
            if self.dead:
                return
            self.dead = True
        warnings.warn(
            f"remote cache {self.base_url} unavailable "
            f"({type(error).__name__}: {error}); "
            "falling back to the local cache only",
            RuntimeWarning,
            stacklevel=4,
        )
        self._start_reprobe()

    # -- background recovery probe ------------------------------------- #

    def _start_reprobe(self) -> None:
        if self.reprobe_interval <= 0:
            return
        with self._fail_lock:
            if self._reprobe_thread is not None and self._reprobe_thread.is_alive():
                # Still probing (it re-checks `dead` under this same lock
                # before retiring, so it cannot miss the death that brought
                # us here).  The is_alive() guard also covers a thread that
                # died abnormally: the slot is then stale and respawned.
                return
            thread = threading.Thread(
                target=self._reprobe_loop, name="repro-cache-reprobe", daemon=True
            )
            self._reprobe_thread = thread
        thread.start()

    def _probe_alive(self) -> bool:
        """One liveness check against ``/v1/stats``, ignoring ``dead``."""
        try:
            with self._open("GET", "/v1/stats") as response:
                payload = json.loads(response.read().decode("utf-8"))
        except (HTTPException, OSError, ValueError):
            return False
        return isinstance(payload, dict) and "entries" in payload

    def _reprobe_loop(self) -> None:
        """Ping the service while dead; flip the store live on recovery.

        The thread retires once the store is live again -- but only via an
        exit check that re-reads ``dead`` and clears the thread slot under
        ``_fail_lock``.  A failure that lands concurrently with a rejoin
        therefore either (a) sets ``dead`` before the exit check, which
        keeps this thread probing, or (b) finds the slot already cleared
        and spawns a fresh thread: the store can never end up dead with
        nobody probing.  The rejoin itself is silent wire-wise: flipping
        ``dead`` back is enough, because every caller re-checks the flag
        per operation.
        """
        while True:
            time.sleep(self.reprobe_interval)
            with self._fail_lock:
                if not self.dead:
                    # Live (we rejoined on a previous lap, or something
                    # external revived the store): retire this thread.
                    self._reprobe_thread = None
                    return
            if self._probe_alive():
                with self._fail_lock:
                    self.dead = False
                    self.rejoins += 1
                warnings.warn(
                    f"remote cache {self.base_url} is reachable again; rejoining",
                    RuntimeWarning,
                    stacklevel=2,
                )
                # Loop once more: the exit check above decides -- under the
                # lock -- whether to retire or keep probing a re-death.

    # ------------------------------------------------------------------ #

    def load(self, key: str) -> Optional[dict]:
        if self.dead:
            return None
        try:
            with self._open("GET", f"/v1/entry/{key}") as response:
                record = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            if error.code == 404:
                self.misses += 1
                return None
            self._fail(error)
            return None
        except (HTTPException, OSError, ValueError) as error:
            self._fail(error)
            return None
        if not isinstance(record, dict):
            # A 200 whose body is not a record means the URL points at some
            # other JSON-speaking service; without this a misconfigured
            # remote would silently cost a useless round trip per job.
            self._fail(ValueError(f"entry response is not a JSON object: {record!r:.80}"))
            return None
        self.hits += 1
        return record

    def store(self, key: str, record: dict) -> bool:
        if self.dead:
            return False
        body = json.dumps(record).encode("utf-8")
        try:
            with self._open("PUT", f"/v1/entry/{key}", body=body) as response:
                status = response.status
        except (HTTPException, OSError, ValueError) as error:
            self._fail(error)
            return False
        if status != 204:
            # The cache service acknowledges an upload with exactly 204;
            # any other 2xx is something else answering on this port.
            self._fail(ValueError(f"unexpected PUT status {status}"))
            return False
        self.puts += 1
        return True

    def contains(self, key: str) -> bool:
        if self.dead:
            return False
        try:
            with self._open("HEAD", f"/v1/entry/{key}"):
                return True
        except urllib.error.HTTPError as error:
            if error.code == 404:
                return False
            self._fail(error)
            return False
        except (HTTPException, OSError) as error:
            self._fail(error)
            return False

    def load_batch(self, keys: Iterable[str]) -> dict[str, Optional[dict]]:
        """Fetch many records in one ``POST /v1/entries`` round trip.

        Returns ``key -> record`` for hits and ``key -> None`` for
        misses; an empty dict when the store is dead or the transfer
        failed (so callers can distinguish "no information" from "the
        service says these are absent")."""
        keys = list(keys)
        if self.dead or not keys:
            return {}
        body = json.dumps({"get": keys}).encode("utf-8")
        try:
            with self._open("POST", "/v1/entries", body=body) as response:
                entries = json.loads(response.read().decode("utf-8"))["entries"]
        except (HTTPException, OSError, ValueError, KeyError, TypeError) as error:
            self._fail(error)
            return {}
        if not isinstance(entries, dict):
            self._fail(ValueError("entries response is not a JSON object"))
            return {}
        records: dict[str, Optional[dict]] = {}
        for key in keys:
            record = entries.get(key)
            if isinstance(record, dict):
                records[key] = record
                self.hits += 1
            else:
                records[key] = None
                self.misses += 1
        return records

    def store_batch(self, records: dict[str, dict]) -> list[str]:
        """Upload many records in one round trip; the keys the service
        accepted (empty when dead or the transfer failed)."""
        if self.dead or not records:
            return []
        body = json.dumps({"put": records}).encode("utf-8")
        try:
            with self._open("POST", "/v1/entries", body=body) as response:
                stored = json.loads(response.read().decode("utf-8"))["stored"]
        except (HTTPException, OSError, ValueError, KeyError, TypeError) as error:
            # Includes a 401 on a token-protected server: an operator
            # problem, not a flaky network, but the remedy is the same --
            # one warning, then local-only.
            self._fail(error)
            return []
        if not isinstance(stored, list):
            self._fail(ValueError("stored response is not a list"))
            return []
        accepted = [key for key in stored if isinstance(key, str)]
        self.puts += len(accepted)
        return accepted

    def contains_batch(self, keys: Iterable[str]) -> dict[str, bool]:
        """Which of ``keys`` the service holds, in one round trip."""
        keys = list(keys)
        absent = {key: False for key in keys}
        if self.dead or not keys:
            return absent
        body = json.dumps({"keys": keys}).encode("utf-8")
        try:
            with self._open("POST", "/v1/keys", body=body) as response:
                present = json.loads(response.read().decode("utf-8"))["present"]
        except (HTTPException, OSError, ValueError, KeyError, TypeError) as error:
            self._fail(error)
            return absent
        return {key: bool(present.get(key)) for key in keys}

    def __len__(self) -> int:
        stats = self.stats()
        if not stats:
            return 0
        try:
            return int(stats.get("entries", 0))
        except (TypeError, ValueError):
            return 0

    def clear(self) -> int:
        # Deliberately local-only across the stack: one worker clearing its
        # cache must never wipe the shared service.
        return 0

    def stats(self) -> Optional[dict]:
        """The server's ``/v1/stats`` document, or None when unreachable.

        A stats probe (``python -m repro cache``) failing does not flip the
        store dead or warn -- reporting must stay side-effect free.
        """
        if self.dead:
            return None
        try:
            with self._open("GET", "/v1/stats") as response:
                payload = json.loads(response.read().decode("utf-8"))
        except (HTTPException, OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None
