"""Result containers for the timing simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

from .energy import EnergyBreakdown

__all__ = ["SimulationResult"]


@dataclass
class SimulationResult:
    """Outcome of simulating one kernel trace on one machine configuration.

    Cycle counts are CPU cycles at the configured core frequency.  The
    breakdown follows the paper's classification: *idle* is time the control
    blocks have no MVE instruction to execute, *compute* is in-SRAM
    arithmetic/move time, and *data access* is vector load/store time
    (cache, DRAM and TMU).
    """

    total_cycles: float = 0.0
    idle_cycles: float = 0.0
    compute_cycles: float = 0.0
    data_access_cycles: float = 0.0

    scalar_instructions: int = 0
    vector_instructions: dict[str, int] = field(default_factory=dict)
    spill_instructions: int = 0

    #: average fraction of SIMD lanes doing useful work during compute ops
    lane_utilization: float = 0.0
    #: average fraction of control blocks enabled over all vector instructions
    cb_utilization: float = 0.0

    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    frequency_ghz: float = 2.8

    dram_bytes: int = 0
    l2_hit_rate: float = 0.0

    @property
    def time_ms(self) -> float:
        return self.total_cycles / (self.frequency_ghz * 1e9) * 1e3

    @property
    def time_us(self) -> float:
        return self.time_ms * 1e3

    @property
    def energy_nj(self) -> float:
        return self.energy.total_nj

    @property
    def vector_instruction_total(self) -> int:
        return sum(self.vector_instructions.values())

    def to_dict(self) -> dict:
        """JSON-serializable form, the inverse of :meth:`from_dict`.

        Used by the persistent sweep cache and the golden-trace snapshots;
        floats are stored as-is so the round-trip is bit-exact.
        """
        return {
            "total_cycles": self.total_cycles,
            "idle_cycles": self.idle_cycles,
            "compute_cycles": self.compute_cycles,
            "data_access_cycles": self.data_access_cycles,
            "scalar_instructions": self.scalar_instructions,
            "vector_instructions": dict(self.vector_instructions),
            "spill_instructions": self.spill_instructions,
            "lane_utilization": self.lane_utilization,
            "cb_utilization": self.cb_utilization,
            "energy": self.energy.to_dict(),
            "frequency_ghz": self.frequency_ghz,
            "dram_bytes": self.dram_bytes,
            "l2_hit_rate": self.l2_hit_rate,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        return cls(
            total_cycles=float(data["total_cycles"]),
            idle_cycles=float(data["idle_cycles"]),
            compute_cycles=float(data["compute_cycles"]),
            data_access_cycles=float(data["data_access_cycles"]),
            scalar_instructions=int(data["scalar_instructions"]),
            vector_instructions={k: int(v) for k, v in data["vector_instructions"].items()},
            spill_instructions=int(data["spill_instructions"]),
            lane_utilization=float(data["lane_utilization"]),
            cb_utilization=float(data["cb_utilization"]),
            energy=EnergyBreakdown.from_dict(data["energy"]),
            frequency_ghz=float(data["frequency_ghz"]),
            dram_bytes=int(data["dram_bytes"]),
            l2_hit_rate=float(data["l2_hit_rate"]),
        )

    def breakdown_fractions(self) -> dict[str, float]:
        total = max(self.total_cycles, 1e-12)
        return {
            "idle": self.idle_cycles / total,
            "compute": self.compute_cycles / total,
            "data_access": self.data_access_cycles / total,
        }

    def merged_with(self, other: "SimulationResult") -> "SimulationResult":
        """Combine results of independently-simulated kernel invocations."""
        merged = SimulationResult(
            total_cycles=self.total_cycles + other.total_cycles,
            idle_cycles=self.idle_cycles + other.idle_cycles,
            compute_cycles=self.compute_cycles + other.compute_cycles,
            data_access_cycles=self.data_access_cycles + other.data_access_cycles,
            scalar_instructions=self.scalar_instructions + other.scalar_instructions,
            spill_instructions=self.spill_instructions + other.spill_instructions,
            frequency_ghz=self.frequency_ghz,
            dram_bytes=self.dram_bytes + other.dram_bytes,
        )
        merged.vector_instructions = dict(self.vector_instructions)
        for key, value in other.vector_instructions.items():
            merged.vector_instructions[key] = merged.vector_instructions.get(key, 0) + value
        total_cycles = max(merged.total_cycles, 1e-12)
        merged.lane_utilization = (
            self.lane_utilization * self.total_cycles + other.lane_utilization * other.total_cycles
        ) / total_cycles
        merged.cb_utilization = (
            self.cb_utilization * self.total_cycles + other.cb_utilization * other.total_cycles
        ) / total_cycles
        merged.energy = EnergyBreakdown(
            compute_nj=self.energy.compute_nj + other.energy.compute_nj,
            data_access_nj=self.energy.data_access_nj + other.energy.data_access_nj,
            cpu_nj=self.energy.cpu_nj + other.energy.cpu_nj,
            static_nj=self.energy.static_nj + other.energy.static_nj,
        )
        merged.l2_hit_rate = (self.l2_hit_rate + other.l2_hit_rate) / 2.0
        return merged
