"""The paper's primary contribution: MVE controller, timing, energy, area."""

from .address_gen import address_range, cache_line_addresses, element_addresses
from .area import AreaModel, AreaReport, GPU_AREA_MM2, NEON_AREA_MM2, SCALAR_CORE_AREA_MM2
from .cache import ResultStore, code_fingerprint, config_digest, stable_hash
from .config import MachineConfig, default_config
from .store_backend import LocalDirBackend, StoreBackend, TieredBackend
from .controller import InstructionPlacement, MVEControllerModel
from .energy import EnergyBreakdown, EnergyCoefficients, EnergyModel
from .results import SimulationResult
from .scalar_core import AddressDecoder, ScalarCoreModel, WriteBuffer
from .simulator import MVESimulator, simulate_kernel

__all__ = [
    "address_range",
    "cache_line_addresses",
    "element_addresses",
    "AreaModel",
    "AreaReport",
    "GPU_AREA_MM2",
    "NEON_AREA_MM2",
    "SCALAR_CORE_AREA_MM2",
    "ResultStore",
    "LocalDirBackend",
    "StoreBackend",
    "TieredBackend",
    "code_fingerprint",
    "config_digest",
    "stable_hash",
    "MachineConfig",
    "default_config",
    "InstructionPlacement",
    "MVEControllerModel",
    "EnergyBreakdown",
    "EnergyCoefficients",
    "EnergyModel",
    "SimulationResult",
    "AddressDecoder",
    "ScalarCoreModel",
    "WriteBuffer",
    "MVESimulator",
    "simulate_kernel",
]
