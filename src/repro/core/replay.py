"""Config-batched trace replay: one pass over a trace, many configs out.

The staged pipeline (PR 5) froze the captured instruction stream, which makes
every timing model a pure function of the machine configuration.  This module
exploits that purity: :func:`simulate_trace_batch` replays one trace for a
whole *axis* of configurations, sharing every piece of work that does not
depend on the axis instead of walking the configs one at a time through
:func:`~repro.core.simulator.simulate_trace`.

The decomposition leans on three invariants of the timing models:

* **Cache and DRAM state evolution is timing-independent.**  Which lines hit,
  which victims are evicted and which DRAM rows are open depend only on the
  ordered memory footprints and the *structural* parameters (cache geometry,
  channel/bank/row/burst layout) -- never on latencies.  Configs sharing
  those replay one hierarchy; configs differing only in DRAM *timing*
  additionally share the row-buffer classification
  (:meth:`~repro.memory.dram.DRAMModel.classify_batch`) and only re-price it.
* **Placement and SRAM latencies are stateless.**  Per-instruction lane/CB
  placement, compute latencies and TMU fill/drain cycles are pure functions
  of (scheme, engine geometry, instruction), so one pass per distinct
  compute key covers every config using it.
* **The core/engine timeline is cheap.**  Given per-entry durations, the
  queue-backpressure recurrence of :meth:`MVESimulator.run` is a small
  scalar loop, so it runs per config without dominating.

Float accumulation order is replicated exactly (energy sums, utilization
weights, the timeline recurrence), so results are **bit-identical** to the
per-config path.  The ``REPRO_BATCHED_REPLAY=0`` environment switch pins
that: it routes every caller through per-config :func:`simulate_trace`, the
same way ``REPRO_SCALAR_CACHE=1`` pins the vectorized cache engine to its
scalar reference.  (When the scalar cache reference *is* selected, batching
is disabled as well: the scalar path stays the executable specification,
end to end.)

Axes that batch together: compute scheme, SRAM-cycle/float-latency knobs,
cache geometry, ``l2_compute_ways``, DRAM structure and timing, TMU and
queue/dispatch parameters.  Axes that split the batch: anything changing the
captured trace (kernel, scale, SIMD lanes) -- those are different
:class:`~repro.core.traces.TraceSpec` groups already -- and the register-file
geometry (array count/rows/cols), which changes the compiled kernel and its
spill traffic (see :func:`replay_group_key`).
"""

from __future__ import annotations

import os
from collections import deque
from typing import Optional, Sequence

import numpy as np

from ..compiler.pipeline import CompiledKernel, compile_trace_cached
from ..isa.instructions import (
    InstructionCategory,
    MemoryInstruction,
    MVEInstruction,
    ScalarBlock,
    TraceEntry,
)
from ..isa.registers import PhysicalRegisterFile
from ..memory.cache import make_hierarchy, use_scalar_cache
from ..memory.dram import DRAMConfig, DRAMModel
from ..sram.schemes import ComputeScheme, get_scheme
from ..sram.tmu import TransposeMemoryUnit
from .address_gen import cache_line_addresses
from .config import MachineConfig
from .controller import MVEControllerModel
from .energy import EnergyBreakdown, EnergyCoefficients
from .results import SimulationResult

__all__ = [
    "BATCHED_REPLAY_ENV",
    "batched_replay_enabled",
    "replay_group_key",
    "simulate_trace_batch",
]

#: environment switch disabling the batched engine (``=0`` selects the
#: per-config reference path, mirroring ``REPRO_SCALAR_CACHE``)
BATCHED_REPLAY_ENV = "REPRO_BATCHED_REPLAY"


def batched_replay_enabled() -> bool:
    """True when multi-config replays may share one batched pass.

    ``REPRO_BATCHED_REPLAY=0`` disables batching explicitly;
    ``REPRO_SCALAR_CACHE=1`` disables it implicitly, because the scalar
    cache reference is meant to be the end-to-end executable specification
    and therefore always runs the plain per-config loop.
    """
    if os.environ.get(BATCHED_REPLAY_ENV, "") == "0":
        return False
    return not use_scalar_cache()


def replay_group_key(config: MachineConfig) -> tuple[int, int, int]:
    """The compiled-kernel identity of a config: register-file geometry.

    Configs with equal keys replay the same scheduled, register-allocated
    kernel (shared via :func:`compile_trace_cached`) and may therefore share
    one batched replay; configs with different keys see different spill
    traffic and must split.
    """
    engine = config.engine
    return (engine.num_arrays, engine.array.rows, engine.array.cols)


# --------------------------------------------------------------------- #
#  Static trace decomposition (shared by every config of one compiled
#  kernel)
# --------------------------------------------------------------------- #

_OP_SCALAR = 0
_OP_CONFIG = 1
_OP_ENGINE = 2


class _StaticTrace:
    """Per-entry skeleton of one compiled trace, independent of any config."""

    def __init__(self, trace: Sequence[TraceEntry], coefficients: EnergyCoefficients):
        #: (op, index) per entry: scalar blocks index into ``scalar_blocks``,
        #: engine instructions into ``engine_entries``; config instructions
        #: carry no payload
        self.ops: list[tuple[int, int]] = []
        self.scalar_blocks: list[ScalarBlock] = []
        #: non-config MVE instructions in trace order, paired with their
        #: position among memory instructions (-1 for compute)
        self.engine_entries: list[tuple[MVEInstruction, int]] = []
        self.memory_instructions: list[MemoryInstruction] = []

        vector_counts = {category.value: 0 for category in InstructionCategory}
        spills = 0
        scalar_instructions = 0
        cpu_nj = 0.0

        for entry in trace:
            if isinstance(entry, ScalarBlock):
                self.ops.append((_OP_SCALAR, len(self.scalar_blocks)))
                self.scalar_blocks.append(entry)
                scalar_instructions += entry.count
                cpu_nj += entry.count * coefficients.scalar_instruction_pj / 1000.0
                continue
            instruction: MVEInstruction = entry
            category = instruction.category
            vector_counts[category.value] += 1
            if isinstance(instruction, MemoryInstruction) and instruction.is_spill:
                spills += 1
            cpu_nj += 1 * coefficients.scalar_instruction_pj / 1000.0
            if category is InstructionCategory.CONFIG:
                self.ops.append((_OP_CONFIG, 0))
                continue
            memory_index = -1
            if category is InstructionCategory.MEMORY:
                memory_index = len(self.memory_instructions)
                self.memory_instructions.append(instruction)
            self.ops.append((_OP_ENGINE, len(self.engine_entries)))
            self.engine_entries.append((instruction, memory_index))

        self.vector_counts = vector_counts
        self.spill_instructions = spills
        self.scalar_instructions = scalar_instructions
        self.cpu_nj = cpu_nj
        self._lines_by_width: dict[int, list[np.ndarray]] = {}

    def lines_for(self, line_bytes: int) -> list[np.ndarray]:
        """Cache-line footprints of every memory instruction, memoized per
        line size (they are pure functions of instruction and line size)."""
        lines = self._lines_by_width.get(line_bytes)
        if lines is None:
            lines = [
                cache_line_addresses(instruction, line_bytes)
                for instruction in self.memory_instructions
            ]
            self._lines_by_width[line_bytes] = lines
        return lines


# --------------------------------------------------------------------- #
#  Memory pass: one hierarchy replay per cache/DRAM-structure key
# --------------------------------------------------------------------- #


class _MemoryPass:
    """Timing and stats of the memory instructions under one hierarchy.

    ``cycles`` maps each DRAM timing variant to the per-memory-instruction
    block cycles; the hit/miss/access deltas, the final DRAM byte count and
    the L2 hit rate are shared because state evolution never depends on
    timing parameters.
    """

    def __init__(self) -> None:
        self.cycles: dict[DRAMConfig, list[int]] = {}
        self.l2_hits: list[int] = []
        self.llc_hits: list[int] = []
        self.dram_accesses: list[int] = []
        self.dram_bytes: int = 0
        self.l2_hit_rate: float = 0.0


def _run_memory_pass(
    static: _StaticTrace,
    hierarchy_config,
    l2_compute_ways: int,
    dram_variants: Sequence[DRAMConfig],
    warm_cache: bool,
) -> _MemoryPass:
    """Replay the memory footprint stream once, pricing every DRAM timing
    variant; mirrors :meth:`MVESimulator._memory_duration` state-wise."""
    hierarchy = make_hierarchy(
        hierarchy_config, l2_compute_ways=l2_compute_ways, scalar=False
    )
    lines_per_instruction = static.lines_for(hierarchy.line_bytes)
    if warm_cache:
        for instruction, lines in zip(static.memory_instructions, lines_per_instruction):
            hierarchy.vector_block_access(lines, instruction.is_store)
        hierarchy.reset_stats()

    result = _MemoryPass()
    for variant in dram_variants:
        result.cycles[variant] = []
    if len(dram_variants) == 1:
        _record_single_variant(static, hierarchy, lines_per_instruction, result)
    else:
        _record_multi_variant(
            static, hierarchy, lines_per_instruction, dram_variants, result
        )
    result.dram_bytes = hierarchy.dram.stats.bytes_transferred
    result.l2_hit_rate = hierarchy.l2.stats.hit_rate()
    return result


def _record_single_variant(static, hierarchy, lines_per_instruction, result) -> None:
    """One timing variant: drive the hierarchy's own block-access path and
    read the stat deltas around it, exactly like the per-config simulator."""
    cycles = result.cycles[next(iter(result.cycles))]
    for instruction, lines in zip(static.memory_instructions, lines_per_instruction):
        l2_before = hierarchy.l2.stats.hits
        llc_before = hierarchy.llc.stats.hits
        dram_before = hierarchy.dram.stats.reads + hierarchy.dram.stats.writes
        cycles.append(hierarchy.vector_block_access(lines, instruction.is_store))
        result.l2_hits.append(hierarchy.l2.stats.hits - l2_before)
        result.llc_hits.append(hierarchy.llc.stats.hits - llc_before)
        result.dram_accesses.append(
            hierarchy.dram.stats.reads + hierarchy.dram.stats.writes - dram_before
        )


def _record_multi_variant(
    static, hierarchy, lines_per_instruction, dram_variants, result
) -> None:
    """Several timing variants: replay cache/DRAM state once and re-price the
    miss latencies per variant.  This is an exact unrolling of
    :meth:`VectorCacheHierarchy.vector_block_access` with the DRAM latency
    lookup vectorized over the variant axis."""
    from ..memory.cache import aggregate_block_cycles, dedup_lines

    inclusive = hierarchy.config.l2.inclusive
    mshr_entries = hierarchy.config.l2.mshr_entries
    l2_hit_latency = hierarchy.config.l2.hit_latency
    base_miss_latency = hierarchy.config.l2.hit_latency + hierarchy.config.llc.hit_latency
    line_bytes = hierarchy.line_bytes
    lines_per_cycle = hierarchy.VECTOR_LINES_PER_CYCLE
    pricing_models = [DRAMModel(variant) for variant in dram_variants]

    for instruction, raw_lines in zip(static.memory_instructions, lines_per_instruction):
        is_write = instruction.is_store
        lines = dedup_lines(raw_lines)
        if lines.size == 0:
            for variant in dram_variants:
                result.cycles[variant].append(0)
            result.l2_hits.append(0)
            result.llc_hits.append(0)
            result.dram_accesses.append(0)
            continue
        l2_mask = hierarchy.l2.access_batch(
            lines, is_write, clear_presence=True, collect_evictions=inclusive
        )
        if inclusive:
            evicted = hierarchy.l2.take_evictions()
            if evicted.size:
                hierarchy.l1d.invalidate_batch(evicted)
        hit_count = int(l2_mask.sum())
        miss_lines = lines[~l2_mask]
        llc_hit_count = 0
        dram_count = 0
        if miss_lines.size:
            llc_mask = hierarchy.llc.access_batch(miss_lines, is_write)
            llc_hit_count = int(llc_mask.sum())
            dram_lines = miss_lines[~llc_mask]
            row_hit = None
            if dram_lines.size:
                row_hit = hierarchy.dram.classify_batch(dram_lines, is_write, line_bytes)
                dram_count = int(dram_lines.size)
            for variant, model in zip(dram_variants, pricing_models):
                latencies = np.full(miss_lines.size, base_miss_latency, dtype=np.int64)
                if row_hit is not None:
                    latencies[~llc_mask] += model.latencies_from_classification(
                        row_hit, line_bytes
                    )
                miss_latencies = latencies.tolist()
                result.cycles[variant].append(
                    aggregate_block_cycles(
                        hit_count,
                        miss_latencies,
                        mshr_entries,
                        l2_hit_latency,
                        model.bandwidth_cycles(len(miss_latencies) * line_bytes),
                        lines_per_cycle,
                    )
                )
        else:
            for variant, model in zip(dram_variants, pricing_models):
                result.cycles[variant].append(
                    aggregate_block_cycles(
                        hit_count,
                        [],
                        mshr_entries,
                        l2_hit_latency,
                        model.bandwidth_cycles(0),
                        lines_per_cycle,
                    )
                )
        result.l2_hits.append(hit_count)
        result.llc_hits.append(llc_hit_count)
        result.dram_accesses.append(dram_count)


def _memory_data_energy(
    static: _StaticTrace, memory: _MemoryPass, coefficients: EnergyCoefficients
) -> float:
    """``data_access_nj`` for one memory pass, accumulated in trace order
    (scalar L1 terms, cache-line terms, TMU terms) so the float sum matches
    the per-config simulator bit for bit."""
    data_nj = 0.0
    for op, payload in static.ops:
        if op == _OP_SCALAR:
            block = static.scalar_blocks[payload]
            data_nj += (block.loads + block.stores) * coefficients.l1_access_pj / 1000.0
        elif op == _OP_ENGINE:
            instruction, memory_index = static.engine_entries[payload]
            if memory_index < 0:
                continue
            data_nj += (
                memory.l2_hits[memory_index] * coefficients.l2_line_access_pj
                + memory.llc_hits[memory_index] * coefficients.llc_line_access_pj
                + memory.dram_accesses[memory_index] * coefficients.dram_line_access_pj
            ) / 1000.0
            data_nj += (
                instruction.active_elements() * coefficients.tmu_element_pj / 1000.0
            )
    return data_nj


# --------------------------------------------------------------------- #
#  Compute pass: placement / SRAM / TMU latencies per compute key
# --------------------------------------------------------------------- #


class _ComputePass:
    """Per-entry engine-side latencies for one (scheme, geometry, knobs) key."""

    def __init__(self, n_engine: int, n_memory: int) -> None:
        #: duration of each compute entry (None for memory entries)
        self.compute_durations: list[Optional[float]] = [None] * n_engine
        #: per-engine-entry utilization fractions
        self.lane_utilization: list[float] = [0.0] * n_engine
        self.cb_utilization: list[float] = [0.0] * n_engine
        #: per-memory-instruction TMU and SRAM-row components
        self.tmu_cycles: list[int] = [0] * n_memory
        self.sram_row_cycles: list[float] = [0.0] * n_memory
        self.compute_nj: float = 0.0


def _run_compute_pass(
    static: _StaticTrace,
    scheme: ComputeScheme,
    config: MachineConfig,
    coefficients: EnergyCoefficients,
) -> _ComputePass:
    """Evaluate every placement-, scheme- and TMU-dependent quantity once for
    all configs sharing this compute key."""
    controller = MVEControllerModel(config.engine, scheme)
    tmu = TransposeMemoryUnit(config.tmu)
    multiplier = config.sram_cycle_multiplier
    float_factor = config.float_latency_factor
    dispatch = config.controller_dispatch_cycles
    energy_factor = scheme.energy_per_cycle_factor

    result = _ComputePass(len(static.engine_entries), len(static.memory_instructions))
    compute_nj = 0.0
    for op, payload in static.ops:
        if op != _OP_ENGINE:
            if op == _OP_CONFIG:
                compute_nj += 1 * coefficients.controller_instruction_pj / 1000.0
            continue
        compute_nj += 1 * coefficients.controller_instruction_pj / 1000.0
        instruction, memory_index = static.engine_entries[payload]
        element_bits = instruction.dtype.bits
        placement = controller.placement(instruction, element_bits)
        result.lane_utilization[payload] = placement.lane_utilization
        result.cb_utilization[payload] = placement.cb_utilization
        if memory_index >= 0:
            active_elements = instruction.active_elements()
            active_cbs = max(1, placement.active_control_blocks)
            elements_per_cb = (active_elements + active_cbs - 1) // active_cbs
            if instruction.is_store:
                cycles = tmu.drain_cycles(elements_per_cb, element_bits)
            else:
                cycles = tmu.fill_cycles(elements_per_cb, element_bits)
            result.tmu_cycles[memory_index] = cycles
            result.sram_row_cycles[memory_index] = (
                controller.memory_row_cycles(instruction) * multiplier
            )
        else:
            sram_cycles = controller.compute_sram_cycles(
                instruction, element_bits, float_factor, placement
            )
            result.compute_durations[payload] = sram_cycles * multiplier + dispatch
            compute_nj += (
                sram_cycles
                * placement.active_lanes
                * coefficients.sram_cycle_per_lane_pj
                * energy_factor
                / 1000.0
            )
    result.compute_nj = compute_nj
    return result


# --------------------------------------------------------------------- #
#  Pair merge and per-config timeline
# --------------------------------------------------------------------- #


class _PairDurations:
    """Per-entry durations plus their order-faithful aggregates for one
    (memory variant, compute key) pair."""

    def __init__(
        self,
        static: _StaticTrace,
        memory_cycles: Sequence[int],
        compute: _ComputePass,
        dispatch: int,
    ) -> None:
        durations: list[float] = []
        compute_sum = 0.0
        data_sum = 0.0
        lane_weight = 0.0
        cb_weight = 0.0
        weight_total = 0.0
        for index, (instruction, memory_index) in enumerate(static.engine_entries):
            if memory_index >= 0:
                duration = (
                    max(memory_cycles[memory_index], compute.tmu_cycles[memory_index])
                    + compute.sram_row_cycles[memory_index]
                    + dispatch
                )
                data_sum += duration
            else:
                duration = compute.compute_durations[index]
                compute_sum += duration
            durations.append(duration)
            lane_weight += compute.lane_utilization[index] * duration
            cb_weight += compute.cb_utilization[index] * duration
            weight_total += duration
        self.durations = durations
        self.compute_cycles = compute_sum
        self.data_access_cycles = data_sum
        self.lane_utilization = (lane_weight / weight_total) if weight_total else 0.0
        self.cb_utilization = (cb_weight / weight_total) if weight_total else 0.0


def _run_timeline(
    static: _StaticTrace,
    scalar_cycles: Sequence[float],
    durations: Sequence[float],
    config: MachineConfig,
) -> tuple[float, float]:
    """The core/engine occupancy recurrence of :meth:`MVESimulator.run`,
    reduced to its timing skeleton; returns (total_cycles, raw idle)."""
    core_time = 0.0
    engine_free = 0.0
    idle = 0.0
    queue: deque[float] = deque()
    queue_capacity = config.instruction_queue_entries
    dispatch = config.controller_dispatch_cycles
    issue = config.vector_issue_cycles

    for op, payload in static.ops:
        if op == _OP_SCALAR:
            core_time += scalar_cycles[payload]
            continue
        core_time += issue
        while queue and queue[0] <= core_time:
            queue.popleft()
        if len(queue) >= queue_capacity:
            core_time = max(core_time, queue.popleft())
        if op == _OP_CONFIG:
            queue.append(core_time + dispatch)
            continue
        issue_time = core_time + dispatch
        start = max(issue_time, engine_free)
        if start > engine_free:
            idle += start - engine_free
        engine_free = start + durations[payload]
        queue.append(engine_free)

    total_cycles = max(core_time, engine_free)
    return total_cycles, idle


def _scalar_block_cycles(static: _StaticTrace, scalar_ipc: float) -> list[float]:
    """Scalar-block durations under one issue rate (see
    :meth:`ScalarCoreModel.scalar_block_cycles`)."""
    durations = []
    for block in static.scalar_blocks:
        cycles = block.count / scalar_ipc
        cycles += (block.loads + block.stores) * 0.5
        durations.append(cycles)
    return durations


# --------------------------------------------------------------------- #
#  Entry point
# --------------------------------------------------------------------- #


def _compute_key(config: MachineConfig, scheme: ComputeScheme) -> tuple:
    return (
        type(scheme),
        scheme.name,
        getattr(scheme, "segment_bits", None),
        config.engine,
        config.tmu,
        config.sram_cycle_multiplier,
        config.float_latency_factor,
        config.controller_dispatch_cycles,
    )


def _memory_key(config: MachineConfig) -> tuple:
    hierarchy = config.hierarchy
    return (
        hierarchy.l1d,
        hierarchy.l2,
        hierarchy.llc,
        config.l2_compute_ways,
        hierarchy.dram.structure,
    )


def _replay_compiled_batch(
    compiled: CompiledKernel,
    members: list[tuple[int, MachineConfig, ComputeScheme]],
    warm_cache: bool,
) -> dict[int, SimulationResult]:
    """Replay one compiled kernel for every member config, sharing the
    memory and compute passes across the axis."""
    coefficients = EnergyCoefficients()
    static = _StaticTrace(compiled.trace, coefficients)

    # Memory passes: one hierarchy replay per cache/DRAM-structure key, with
    # DRAM-timing variants priced inside the same pass.
    memory_groups: dict[tuple, dict] = {}
    for index, config, _ in members:
        group = memory_groups.setdefault(
            _memory_key(config), {"hierarchy": config.hierarchy, "variants": []}
        )
        if config.hierarchy.dram not in group["variants"]:
            group["variants"].append(config.hierarchy.dram)
    memory_passes: dict[tuple, _MemoryPass] = {}
    data_energy: dict[tuple, float] = {}
    for key, group in memory_groups.items():
        l2_compute_ways = key[3]
        memory_passes[key] = _run_memory_pass(
            static, group["hierarchy"], l2_compute_ways, group["variants"], warm_cache
        )
        data_energy[key] = _memory_data_energy(static, memory_passes[key], coefficients)

    # Compute passes: one per (scheme, engine geometry, knobs) key.
    compute_passes: dict[tuple, _ComputePass] = {}
    for index, config, scheme in members:
        key = _compute_key(config, scheme)
        if key not in compute_passes:
            compute_passes[key] = _run_compute_pass(static, scheme, config, coefficients)

    pair_cache: dict[tuple, _PairDurations] = {}
    scalar_cache: dict[float, list[float]] = {}
    results: dict[int, SimulationResult] = {}
    for index, config, scheme in members:
        memory_key = _memory_key(config)
        compute_key = _compute_key(config, scheme)
        memory = memory_passes[memory_key]
        compute = compute_passes[compute_key]
        pair_key = (memory_key, config.hierarchy.dram, compute_key)
        pair = pair_cache.get(pair_key)
        if pair is None:
            pair = _PairDurations(
                static,
                memory.cycles[config.hierarchy.dram],
                compute,
                config.controller_dispatch_cycles,
            )
            pair_cache[pair_key] = pair
        scalar_cycles = scalar_cache.get(config.scalar_ipc)
        if scalar_cycles is None:
            scalar_cycles = _scalar_block_cycles(static, config.scalar_ipc)
            scalar_cache[config.scalar_ipc] = scalar_cycles

        total_cycles, idle = _run_timeline(static, scalar_cycles, pair.durations, config)
        idle = max(idle, total_cycles - pair.compute_cycles - pair.data_access_cycles)
        seconds = total_cycles / (config.frequency_ghz * 1e9)
        power_mw = coefficients.core_static_mw + coefficients.cache_static_mw
        static_nj = power_mw * 1e-3 * seconds * 1e9

        results[index] = SimulationResult(
            total_cycles=total_cycles,
            idle_cycles=idle,
            compute_cycles=pair.compute_cycles,
            data_access_cycles=pair.data_access_cycles,
            scalar_instructions=static.scalar_instructions,
            vector_instructions=dict(static.vector_counts),
            spill_instructions=static.spill_instructions,
            lane_utilization=pair.lane_utilization,
            cb_utilization=pair.cb_utilization,
            energy=EnergyBreakdown(
                compute_nj=compute.compute_nj,
                data_access_nj=data_energy[memory_key],
                cpu_nj=static.cpu_nj,
                static_nj=static_nj,
            ),
            frequency_ghz=config.frequency_ghz,
            dram_bytes=memory.dram_bytes,
            l2_hit_rate=memory.l2_hit_rate,
        )
    return results


def simulate_trace_batch(
    trace: Sequence[TraceEntry],
    configs: Sequence[MachineConfig],
    schemes: Optional[Sequence[Optional[ComputeScheme]]] = None,
    warm_cache: bool = True,
) -> list[tuple[SimulationResult, CompiledKernel]]:
    """Replay one captured trace under every configuration in ``configs``.

    Returns ``(result, compiled)`` pairs in input order, bit-identical to
    calling :func:`~repro.core.simulator.simulate_trace` per config.  Configs
    sharing register-file geometry share the compiled kernel and one
    decomposed replay (memory pass per hierarchy key, compute pass per
    scheme/geometry key, cheap per-config timeline); geometry changes split
    the batch, exactly as :func:`replay_group_key` describes.

    ``schemes`` optionally pins a scheme object per config (defaulting to
    ``get_scheme(config.scheme_name)``).  With ``REPRO_BATCHED_REPLAY=0`` (or
    the scalar cache reference selected) this degrades to the per-config
    loop, which is the bit-identity escape hatch the parity suite pins.
    """
    if schemes is None:
        schemes = [None] * len(configs)
    if len(schemes) != len(configs):
        raise ValueError("schemes must match configs one-to-one")
    resolved_schemes = [
        scheme if scheme is not None else get_scheme(config.scheme_name)
        for config, scheme in zip(configs, schemes)
    ]

    if not batched_replay_enabled() or len(configs) < 2:
        from .simulator import simulate_trace

        return [
            simulate_trace(trace, config=config, scheme=scheme, warm_cache=warm_cache)
            for config, scheme in zip(configs, resolved_schemes)
        ]

    by_geometry: dict[tuple, list[tuple[int, MachineConfig, ComputeScheme]]] = {}
    for index, (config, scheme) in enumerate(zip(configs, resolved_schemes)):
        by_geometry.setdefault(replay_group_key(config), []).append(
            (index, config, scheme)
        )

    results: dict[int, SimulationResult] = {}
    compiled_for: dict[int, CompiledKernel] = {}
    for members in by_geometry.values():
        _, first_config, _ = members[0]
        register_file = PhysicalRegisterFile(
            num_arrays=first_config.engine.num_arrays,
            array_rows=first_config.engine.array.rows,
            array_cols=first_config.engine.array.cols,
        )
        compiled = compile_trace_cached(trace, register_file=register_file)
        group_results = _replay_compiled_batch(compiled, members, warm_cache)
        for index, _, _ in members:
            results[index] = group_results[index]
            compiled_for[index] = compiled
    return [(results[index], compiled_for[index]) for index in range(len(configs))]
