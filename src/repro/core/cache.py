"""Content-addressed result store for simulation outcomes.

Simulating one kernel trace is deterministic: the result is a pure function
of the kernel (name, scale, constructor kwargs), the lowering (MVE or RVV),
the compute scheme and the full :class:`~repro.core.config.MachineConfig`.
The store exploits that by hashing all of those inputs -- plus a fingerprint
of the simulator source tree, so any code change invalidates every entry --
into a cache key, and keeping one small JSON record per key.

Storage is pluggable (:mod:`repro.core.store_backend`): by default records
live as files under ``$REPRO_SWEEP_CACHE_DIR`` (default
``~/.cache/repro-sweep``), written atomically and loaded defensively -- a
truncated or corrupted file is treated as a miss and deleted, never
trusted.  When a remote cache service URL is configured (the ``remote=``
argument, ``--remote-cache`` on the CLI or ``$REPRO_REMOTE_CACHE``), the
local directory becomes the first tier of a
:class:`~repro.core.store_backend.TieredBackend` in front of the shared
HTTP service (``python -m repro serve``), so every machine pointing at the
same server shares one fleet-wide cache.  The store is safe to delete
wholesale at any time; ``python -m repro cache clear`` does exactly that
(local tier only -- never the shared service).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Optional, Union

from .config import MachineConfig
from .store_backend import (
    CACHE_SCHEMA_VERSION,
    LocalDirBackend,
    StoreBackend,
    TieredBackend,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ResultStore",
    "code_fingerprint",
    "config_digest",
    "functional_fingerprint",
    "load_cached_result",
    "stable_hash",
    "store_cached_result",
]

_ENV_CACHE_DIR = "REPRO_SWEEP_CACHE_DIR"
_ENV_REMOTE_CACHE = "REPRO_REMOTE_CACHE"

_code_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """Hash of every ``repro`` source file, used as a cache-key salt.

    Any edit anywhere in the package changes the fingerprint and therefore
    invalidates the whole store, which makes stale results impossible by
    construction (at the cost of a cold cache after each code change).
    Computed once per process (~90 files, a few milliseconds).
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _code_fingerprint = digest.hexdigest()
    return _code_fingerprint


#: package subtrees (relative to ``src/repro``) whose source determines what
#: a captured instruction trace looks like.  Deliberately narrower than
#: :func:`code_fingerprint`: editing the timing simulator, compiler or cache
#: models must not invalidate captured traces, only simulation results.
_FUNCTIONAL_LAYER = (
    "isa",
    "intrinsics",
    "workloads",
    "memory/flatmem.py",
    "core/traces.py",
)

_functional_fingerprint: Optional[str] = None


def functional_fingerprint() -> str:
    """Hash of the functional-layer sources, used to key trace artifacts.

    Covers the ISA definitions, the intrinsic machine, the kernels and the
    flat memory model -- everything that can change the instruction stream a
    kernel emits.  Timing-model edits leave it untouched, so a warm trace
    cache survives simulator work.
    """
    global _functional_fingerprint
    if _functional_fingerprint is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for subpath in _FUNCTIONAL_LAYER:
            path = package_root / subpath
            if not path.exists():
                # A renamed/moved functional-layer file must fail loudly:
                # silently hashing nothing would freeze the trace keys while
                # the captured instruction stream keeps changing.
                raise FileNotFoundError(
                    f"functional-fingerprint entry {subpath!r} is missing under "
                    f"{package_root}; update _FUNCTIONAL_LAYER in {__name__}"
                )
            files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
            for file in files:
                digest.update(str(file.relative_to(package_root)).encode())
                digest.update(file.read_bytes())
        _functional_fingerprint = digest.hexdigest()
    return _functional_fingerprint


def config_digest(config: MachineConfig) -> dict:
    """The full machine configuration as a plain, JSON-serializable dict."""
    return dataclasses.asdict(config)


def stable_hash(payload: Any) -> str:
    """SHA-256 of the canonical JSON encoding of ``payload``."""
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(encoded.encode()).hexdigest()


def load_cached_result(store: Optional["ResultStore"], key: str, result_type):
    """Deserialize the ``{"result": ...}`` payload stored under ``key`` via
    ``result_type.from_dict``, or None on a missing store, a miss, or a
    payload that no longer matches the expected shape.

    Single source of truth for the result-payload schema and its
    corruption tolerance, shared by every cached producer (simulation jobs,
    baseline models, raw traces, assembled experiment results).
    """
    if store is None:
        return None
    payload = store.load(key)
    if payload is None:
        return None
    try:
        return result_type.from_dict(payload["result"])
    except (KeyError, TypeError, ValueError):
        return None


def store_cached_result(store: Optional["ResultStore"], key: str, result) -> None:
    """Persist ``result`` (anything with ``to_dict``) under ``key``; the
    inverse of :func:`load_cached_result`."""
    if store is not None:
        store.store(key, {"result": result.to_dict()})


class ResultStore:
    """Schema-checked record store over a pluggable storage backend.

    Records live in a :class:`LocalDirBackend` rooted at ``root``; passing
    ``remote`` (a cache-service URL or any ready :class:`StoreBackend`)
    stacks a :class:`TieredBackend` on top so reads fall through to -- and
    writes replicate into -- the shared service.  The store validates the
    schema marker and counts hits/misses; durability, atomicity and
    network failure handling live in the backends.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        remote: Optional[Union[str, StoreBackend]] = None,
    ):
        self.root = Path(root)
        backend: StoreBackend = LocalDirBackend(self.root)
        # `is not None`, not truthiness: a StoreBackend's __len__ may
        # probe the network, and an empty remote is still a remote.
        if remote is not None:
            if isinstance(remote, str):
                from .cache_service import RemoteStore

                remote = RemoteStore(remote)
            backend = TieredBackend(backend, remote)
        self.backend = backend
        self.hits = 0
        self.misses = 0
        #: tier that answered the most recent hit ("local"/"remote"), or None
        self.last_tier: Optional[str] = None

    @classmethod
    def default_dir(cls) -> Path:
        env = os.environ.get(_ENV_CACHE_DIR)
        if env:
            return Path(env)
        return Path.home() / ".cache" / "repro-sweep"

    @classmethod
    def default_remote_url(cls) -> Optional[str]:
        return os.environ.get(_ENV_REMOTE_CACHE) or None

    @classmethod
    def default(cls) -> "ResultStore":
        return cls(cls.default_dir(), remote=cls.default_remote_url())

    @property
    def remote(self):
        """The remote-tier backend when one is configured, else None."""
        return getattr(self.backend, "remote", None)

    def _path(self, key: str) -> Path:
        # Kept as the stable address of a local entry (tests and tooling
        # poke at files directly); matches LocalDirBackend's layout.
        return self.root / key[:2] / f"{key}.json"

    def prefetch(self, keys) -> None:
        """Hint that ``keys`` are about to be loaded.

        Backends with a batched probe (the tiered store's remote tier) use
        it to collapse per-key miss round trips into one request; plain
        backends ignore it.
        """
        hook = getattr(self.backend, "prefetch", None)
        if hook is not None:
            hook(list(keys))

    def load(self, key: str) -> Optional[dict]:
        """The stored payload for ``key``, or None on miss or corruption."""
        record = self.backend.load_checked(key)
        if record is None:
            self.misses += 1
            self.last_tier = None
            return None
        self.hits += 1
        self.last_tier = getattr(self.backend, "last_tier", "local") or "local"
        return record

    def store(self, key: str, payload: dict) -> None:
        """Atomically persist ``payload`` (merged with the schema marker)."""
        self.backend.store(key, {"schema": CACHE_SCHEMA_VERSION, **payload})

    def __len__(self) -> int:
        return len(self.backend)

    def clear(self) -> int:
        """Delete every local entry; returns the number removed.

        Never touches a remote tier: clearing one worker's directory must
        not wipe the cache the rest of the fleet relies on.
        """
        return self.backend.clear()
