"""Content-addressed, on-disk result store for simulation outcomes.

Simulating one kernel trace is deterministic: the result is a pure function
of the kernel (name, scale, constructor kwargs), the lowering (MVE or RVV),
the compute scheme and the full :class:`~repro.core.config.MachineConfig`.
The store exploits that by hashing all of those inputs -- plus a fingerprint
of the simulator source tree, so any code change invalidates every entry --
into a cache key, and keeping one small JSON payload per key on disk.

Entries are written atomically and loaded defensively: a truncated or
corrupted file is treated as a miss and deleted, never trusted.  The store
lives at ``$REPRO_SWEEP_CACHE_DIR`` (default ``~/.cache/repro-sweep``) and
is safe to delete wholesale at any time; ``python -m repro cache clear``
does exactly that.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Optional

from .config import MachineConfig

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ResultStore",
    "code_fingerprint",
    "config_digest",
    "load_cached_result",
    "stable_hash",
    "store_cached_result",
]

#: bump when the payload layout changes incompatibly
CACHE_SCHEMA_VERSION = 1

_ENV_CACHE_DIR = "REPRO_SWEEP_CACHE_DIR"

_code_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """Hash of every ``repro`` source file, used as a cache-key salt.

    Any edit anywhere in the package changes the fingerprint and therefore
    invalidates the whole store, which makes stale results impossible by
    construction (at the cost of a cold cache after each code change).
    Computed once per process (~90 files, a few milliseconds).
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _code_fingerprint = digest.hexdigest()
    return _code_fingerprint


def config_digest(config: MachineConfig) -> dict:
    """The full machine configuration as a plain, JSON-serializable dict."""
    return dataclasses.asdict(config)


def stable_hash(payload: Any) -> str:
    """SHA-256 of the canonical JSON encoding of ``payload``."""
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(encoded.encode()).hexdigest()


def load_cached_result(store: Optional["ResultStore"], key: str, result_type):
    """Deserialize the ``{"result": ...}`` payload stored under ``key`` via
    ``result_type.from_dict``, or None on a missing store, a miss, or a
    payload that no longer matches the expected shape.

    Single source of truth for the result-payload schema and its
    corruption tolerance, shared by every cached producer (simulation jobs,
    baseline models, raw traces).
    """
    if store is None:
        return None
    payload = store.load(key)
    if payload is None:
        return None
    try:
        return result_type.from_dict(payload["result"])
    except (KeyError, TypeError, ValueError):
        return None


def store_cached_result(store: Optional["ResultStore"], key: str, result) -> None:
    """Persist ``result`` (anything with ``to_dict``) under ``key``; the
    inverse of :func:`load_cached_result`."""
    if store is not None:
        store.store(key, {"result": result.to_dict()})


class ResultStore:
    """One JSON file per cache key under ``root``, sharded by key prefix."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    @classmethod
    def default_dir(cls) -> Path:
        env = os.environ.get(_ENV_CACHE_DIR)
        if env:
            return Path(env)
        return Path.home() / ".cache" / "repro-sweep"

    @classmethod
    def default(cls) -> "ResultStore":
        return cls(cls.default_dir())

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[dict]:
        """The stored payload for ``key``, or None on miss or corruption."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            if path.exists():
                # Corrupted (truncated write, bad encoding, ...): drop it so
                # the recomputed result can take its place.
                try:
                    path.unlink()
                except OSError:
                    pass
            self.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("schema") != CACHE_SCHEMA_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store(self, key: str, payload: dict) -> None:
        """Atomically persist ``payload`` (merged with the schema marker)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {"schema": CACHE_SCHEMA_VERSION, **payload}
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(record, handle)
            os.replace(tmp, path)
        except OSError:
            # A read-only or full cache directory degrades to a no-op cache.
            try:
                tmp.unlink()
            except OSError:
                pass

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
