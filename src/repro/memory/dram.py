"""A compact DRAM timing model standing in for Ramulator.

The paper injects the simulator's memory accesses into Ramulator to model
memory latency and bandwidth.  This module provides a bank / row-buffer
model with the three classic timing parameters (tRCD, tCAS/CL, tRP) plus a
burst time, and enforces a peak-bandwidth limit, which together capture the
two DRAM effects that matter for this study: row-hit versus row-miss latency
and bandwidth saturation under wide vector accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DRAMConfig", "DRAMModel", "DRAMStats"]


@dataclass(frozen=True)
class DRAMConfig:
    """LPDDR4X-class timing parameters expressed in CPU cycles at 2.8 GHz."""

    num_channels: int = 4
    num_banks: int = 8
    row_size_bytes: int = 2048
    # Latencies in CPU cycles (LPDDR4X-3733: ~15 ns CL, ~18 ns RCD/RP)
    t_cas: int = 42
    t_rcd: int = 50
    t_rp: int = 50
    burst_bytes: int = 64
    t_burst: int = 8
    #: peak bandwidth in bytes per CPU cycle (about 34 GB/s at 2.8 GHz)
    peak_bytes_per_cycle: float = 12.0

    @property
    def row_miss_latency(self) -> int:
        return self.t_rp + self.t_rcd + self.t_cas + self.t_burst

    @property
    def row_hit_latency(self) -> int:
        return self.t_cas + self.t_burst

    @property
    def structure(self) -> tuple[int, int, int, int]:
        """The address-mapping parameters.  Two configs with equal structure
        classify every access stream identically (same row hits, same open-row
        evolution) and differ only in how a hit or miss is priced -- the
        invariant the config-batched replay engine leans on."""
        return (self.num_channels, self.num_banks, self.row_size_bytes, self.burst_bytes)


@dataclass
class DRAMStats:
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    bytes_transferred: int = 0
    busy_cycles: float = 0.0

    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


class DRAMModel:
    """Bank/row-buffer DRAM latency and bandwidth model."""

    def __init__(self, config: DRAMConfig | None = None):
        self.config = config or DRAMConfig()
        self.stats = DRAMStats()
        # open row per (channel, bank)
        self._open_rows: dict[tuple[int, int], int] = {}

    def reset(self) -> None:
        self.stats = DRAMStats()
        self._open_rows.clear()

    def _locate(self, address: int) -> tuple[int, int, int]:
        cfg = self.config
        row_number = address // cfg.row_size_bytes
        channel = (address // cfg.burst_bytes) % cfg.num_channels
        bank = row_number % cfg.num_banks
        return channel, bank, row_number

    def access(self, address: int, is_write: bool = False, size_bytes: int = 64) -> int:
        """Access DRAM and return the latency in CPU cycles.

        ``size_bytes`` accounts for multi-burst transfers of a full cache
        line or larger vector blocks.
        """
        cfg = self.config
        channel, bank, row = self._locate(address)
        key = (channel, bank)
        open_row = self._open_rows.get(key)
        if open_row == row:
            latency = cfg.row_hit_latency
            self.stats.row_hits += 1
        else:
            latency = cfg.row_miss_latency
            self.stats.row_misses += 1
            self._open_rows[key] = row
        bursts = max(1, (size_bytes + cfg.burst_bytes - 1) // cfg.burst_bytes)
        latency += (bursts - 1) * cfg.t_burst

        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        self.stats.bytes_transferred += size_bytes
        self.stats.busy_cycles += bursts * cfg.t_burst
        return latency

    def classify_batch(
        self, addresses: np.ndarray, is_write: bool = False, size_bytes: int = 64
    ) -> np.ndarray:
        """Row-hit mask for a batch of accesses, in request order.

        Performs the full state transition of :meth:`access_batch` -- the
        open-row table and every statistic are updated exactly as a
        per-address :meth:`access` sequence would -- but returns the boolean
        row-buffer classification instead of latencies.  The classification
        depends only on the structural parameters (channels, banks, row and
        burst size), never on the timing parameters, which is what lets the
        config-batched replay engine share one classification pass across
        configs that differ only in DRAM timing.
        """
        addresses = addresses.astype(np.int64, copy=False).ravel()
        n = int(addresses.size)
        if n == 0:
            return np.zeros(0, dtype=bool)
        cfg = self.config
        rows = addresses // cfg.row_size_bytes
        channels = (addresses // cfg.burst_bytes) % cfg.num_channels
        banks = rows % cfg.num_banks
        keys = channels * cfg.num_banks + banks

        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        sorted_rows = rows[order]
        previous = np.empty(n, dtype=np.int64)
        previous[1:] = sorted_rows[:-1]
        group_start = np.empty(n, dtype=bool)
        group_start[0] = True
        group_start[1:] = sorted_keys[1:] != sorted_keys[:-1]
        for position in np.flatnonzero(group_start).tolist():
            key = int(sorted_keys[position])
            open_row = self._open_rows.get((key // cfg.num_banks, key % cfg.num_banks))
            previous[position] = -1 if open_row is None else open_row

        sorted_row_hit = previous == sorted_rows

        group_end = np.empty(n, dtype=bool)
        group_end[-1] = True
        group_end[:-1] = sorted_keys[1:] != sorted_keys[:-1]
        for position in np.flatnonzero(group_end).tolist():
            key = int(sorted_keys[position])
            self._open_rows[(key // cfg.num_banks, key % cfg.num_banks)] = int(
                sorted_rows[position]
            )

        hits = int(sorted_row_hit.sum())
        self.stats.row_hits += hits
        self.stats.row_misses += n - hits
        if is_write:
            self.stats.writes += n
        else:
            self.stats.reads += n
        self.stats.bytes_transferred += n * size_bytes
        bursts = max(1, (size_bytes + cfg.burst_bytes - 1) // cfg.burst_bytes)
        self.stats.busy_cycles += n * bursts * cfg.t_burst

        row_hit = np.empty(n, dtype=bool)
        row_hit[order] = sorted_row_hit
        return row_hit

    def access_batch(
        self, addresses: np.ndarray, is_write: bool = False, size_bytes: int = 64
    ) -> np.ndarray:
        """Per-access latencies for a batch of accesses, in request order.

        Bit-for-bit equivalent to calling :meth:`access` once per address in
        sequence -- including the open-row state carried between accesses --
        but with the row-buffer classification done in array form: requests
        are stably grouped by (channel, bank), each compared against its
        predecessor in the same bank (the first against the open-row table),
        and the table updated with each bank's last row (see
        :meth:`classify_batch`, which holds that logic).
        """
        addresses = addresses.astype(np.int64, copy=False).ravel()
        if addresses.size == 0:
            return np.zeros(0, dtype=np.int64)
        row_hit = self.classify_batch(addresses, is_write, size_bytes)
        return self.latencies_from_classification(row_hit, size_bytes)

    def latencies_from_classification(
        self, row_hit: np.ndarray, size_bytes: int = 64
    ) -> np.ndarray:
        """Latencies for an already-classified batch under *this* config's
        timing parameters.  Split out so one :meth:`classify_batch` pass can
        be priced under several timing configurations."""
        cfg = self.config
        bursts = max(1, (size_bytes + cfg.burst_bytes - 1) // cfg.burst_bytes)
        per_access = (bursts - 1) * cfg.t_burst
        return np.where(
            row_hit, cfg.row_hit_latency + per_access, cfg.row_miss_latency + per_access
        ).astype(np.int64)

    def bandwidth_cycles(self, total_bytes: int) -> float:
        """Minimum cycles needed to move ``total_bytes`` at peak bandwidth."""
        return total_bytes / self.config.peak_bytes_per_cycle
