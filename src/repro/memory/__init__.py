"""Memory substrates: flat functional memory, DRAM timing, cache hierarchy."""

from .flatmem import Allocation, FlatMemory
from .dram import DRAMConfig, DRAMModel, DRAMStats
from .cache import (
    AccessResult,
    Cache,
    CacheConfig,
    CacheHierarchy,
    CacheStats,
    HierarchyConfig,
    make_hierarchy,
)
from .vector_cache import VectorCache, VectorCacheHierarchy

__all__ = [
    "Allocation",
    "FlatMemory",
    "DRAMConfig",
    "DRAMModel",
    "DRAMStats",
    "AccessResult",
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "CacheStats",
    "HierarchyConfig",
    "VectorCache",
    "VectorCacheHierarchy",
    "make_hierarchy",
]
