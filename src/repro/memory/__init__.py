"""Memory substrates: flat functional memory, DRAM timing, cache hierarchy."""

from .flatmem import Allocation, FlatMemory
from .dram import DRAMConfig, DRAMModel, DRAMStats
from .cache import (
    AccessResult,
    Cache,
    CacheConfig,
    CacheHierarchy,
    CacheStats,
    HierarchyConfig,
)

__all__ = [
    "Allocation",
    "FlatMemory",
    "DRAMConfig",
    "DRAMModel",
    "DRAMStats",
    "AccessResult",
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "CacheStats",
    "HierarchyConfig",
]
