"""Set-associative cache hierarchy model (Table IV configuration).

The hierarchy mirrors the Snapdragon 855 prime-core configuration the paper
evaluates against: 64 KB L1-D, a 512 KB private inclusive L2 (half of which
can be repurposed for in-cache computing) and a 2 MB shared LLC, backed by
the DRAM model.  Each level tracks hit/miss statistics and models a limited
number of Miss Status Holding Registers (MSHRs) which bound the memory-level
parallelism available to wide vector gathers.

Two interchangeable implementations exist:

* :class:`Cache`/:class:`CacheHierarchy` (this module) -- the scalar,
  per-line reference implementation, and
* :class:`~repro.memory.vector_cache.VectorCache` /
  :class:`~repro.memory.vector_cache.VectorCacheHierarchy` -- a batched,
  numpy-backed engine that processes a whole vector op's line list in array
  form and is bit-for-bit identical to the reference.

:func:`make_hierarchy` picks the vectorized engine unless
``REPRO_SCALAR_CACHE=1`` is set in the environment.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from .dram import DRAMConfig, DRAMModel

__all__ = [
    "CacheConfig",
    "Cache",
    "CacheStats",
    "CacheHierarchy",
    "AccessResult",
    "HierarchyConfig",
    "make_hierarchy",
]

#: environment switch selecting the scalar reference implementation
SCALAR_CACHE_ENV = "REPRO_SCALAR_CACHE"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = 64
    hit_latency: int = 4
    mshr_entries: int = 20
    inclusive: bool = True

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.ways * self.line_bytes)
        if sets <= 0:
            raise ValueError(f"cache {self.name} too small for {self.ways} ways")
        return sets


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class AccessResult:
    """Outcome of a single cache-line access through the hierarchy."""

    latency: int
    hit_level: str


# ---------------------------------------------------------------------- #
#  Shared helpers (used by both the scalar reference and the vector engine
#  so the two paths cannot drift apart)
# ---------------------------------------------------------------------- #


def _ceil_div(numerator: int, denominator: int) -> int:
    return -(-numerator // denominator)


def dedup_lines(line_addresses: Union[np.ndarray, Iterable[int]]) -> np.ndarray:
    """The line-address stream as an int64 array, deduplicated in
    first-occurrence order (the order the MSHRs would see the requests)."""
    if isinstance(line_addresses, np.ndarray):
        lines = line_addresses.astype(np.int64, copy=False).ravel()
    else:
        lines = np.fromiter(line_addresses, dtype=np.int64)
    if lines.size < 2:
        return lines
    if np.all(lines[1:] > lines[:-1]):
        # Already strictly increasing (the common output of
        # cache_line_addresses): sorted and unique by construction.
        return lines
    _, first = np.unique(lines, return_index=True)
    first.sort()
    return lines[first]


def aggregate_block_cycles(
    hit_count: int,
    miss_latencies: Sequence[int],
    mshr_entries: int,
    hit_latency: int,
    bandwidth_floor: float,
    lines_per_cycle: int,
) -> int:
    """Combine per-line outcomes of one vector block access into cycles.

    Hits stream bank-parallel after the initial access latency; misses
    overlap in windows of ``mshr_entries`` outstanding requests but can
    never beat the DRAM peak bandwidth.  Both the hit and the per-window
    streaming terms use the same rounding (the first line arrives with the
    base latency, the remaining ``n - 1`` stream at ``lines_per_cycle``,
    rounded up) and the result is an integer cycle count.
    """
    hit_cycles = 0
    if hit_count:
        hit_cycles = hit_latency + _ceil_div(hit_count - 1, lines_per_cycle)
    if not miss_latencies:
        return hit_cycles
    miss_cycles = 0
    for start in range(0, len(miss_latencies), mshr_entries):
        window = miss_latencies[start : start + mshr_entries]
        miss_cycles += max(window) + _ceil_div(len(window) - 1, lines_per_cycle)
    return hit_cycles + max(miss_cycles, math.ceil(bandwidth_floor))


# ---------------------------------------------------------------------- #
#  Scalar reference implementation
# ---------------------------------------------------------------------- #


class _Line:
    __slots__ = ("tag", "valid", "dirty", "present_in_l1", "lru")

    def __init__(self) -> None:
        self.tag = -1
        self.valid = False
        self.dirty = False
        self.present_in_l1 = False
        self.lru = 0


class Cache:
    """One set-associative, write-back, LRU cache level (scalar reference)."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        self._sets = [[_Line() for _ in range(config.ways)] for _ in range(config.num_sets)]
        self._tick = 0
        #: line-aligned address evicted by the most recent single ``access``
        #: (None when the access hit or filled an invalid way)
        self.last_eviction: Optional[int] = None

    def reset(self) -> None:
        self.stats = CacheStats()
        for cache_set in self._sets:
            for line in cache_set:
                line.tag = -1
                line.valid = False
                line.dirty = False
                line.present_in_l1 = False
                line.lru = 0
        self._tick = 0
        self.last_eviction = None

    def _index_tag(self, address: int) -> tuple[int, int]:
        line_addr = address // self.config.line_bytes
        return line_addr % self.config.num_sets, line_addr // self.config.num_sets

    def _line_address(self, index: int, tag: int) -> int:
        return (tag * self.config.num_sets + index) * self.config.line_bytes

    def lookup(self, address: int) -> Optional[_Line]:
        """Return the resident line for ``address`` without updating stats."""
        index, tag = self._index_tag(address)
        for line in self._sets[index]:
            if line.valid and line.tag == tag:
                return line
        return None

    def probe(self, address: int) -> bool:
        """True if the line holding ``address`` is resident."""
        return self.lookup(address) is not None

    def _select_victim(self, cache_set: list[_Line]) -> _Line:
        """Invalid ways are filled before any valid line is evicted; among
        valid lines the least-recently-used one goes."""
        for line in cache_set:
            if not line.valid:
                return line
        return min(cache_set, key=lambda candidate: candidate.lru)

    def access(self, address: int, is_write: bool = False) -> bool:
        """Access one cache line; returns True on hit.

        On a miss the line is installed (the caller models the fill latency
        through the next level).
        """
        self._tick += 1
        self.last_eviction = None
        index, tag = self._index_tag(address)
        cache_set = self._sets[index]
        for line in cache_set:
            if line.valid and line.tag == tag:
                line.lru = self._tick
                if is_write:
                    line.dirty = True
                self.stats.hits += 1
                return True
        self.stats.misses += 1
        victim = self._select_victim(cache_set)
        if victim.valid:
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.writebacks += 1
            self.last_eviction = self._line_address(index, victim.tag)
        victim.tag = tag
        victim.valid = True
        victim.dirty = is_write
        victim.present_in_l1 = False
        victim.lru = self._tick
        return False

    def invalidate(self, address: int) -> bool:
        """Drop the line holding ``address`` (inclusive back-invalidation);
        returns True if a line was resident.  No statistics are updated."""
        line = self.lookup(address)
        if line is None:
            return False
        line.valid = False
        line.tag = -1
        line.dirty = False
        line.present_in_l1 = False
        line.lru = 0
        return True

    def mark_present_in_l1(self, address: int, present: bool = True) -> None:
        line = self.lookup(address)
        if line is not None:
            line.present_in_l1 = present

    def present_in_l1(self, address: int) -> bool:
        line = self.lookup(address)
        return bool(line and line.present_in_l1)

    def dirty_line_count(self) -> int:
        return sum(
            1 for cache_set in self._sets for line in cache_set if line.valid and line.dirty
        )

    def valid_line_count(self) -> int:
        return sum(1 for cache_set in self._sets for line in cache_set if line.valid)


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache-hierarchy configuration (defaults follow Table IV)."""

    l1d: CacheConfig = CacheConfig(
        name="L1-D", size_bytes=64 * 1024, ways=4, hit_latency=4, mshr_entries=20
    )
    l2: CacheConfig = CacheConfig(
        name="L2", size_bytes=512 * 1024, ways=8, hit_latency=12, mshr_entries=46
    )
    llc: CacheConfig = CacheConfig(
        name="LLC", size_bytes=2 * 1024 * 1024, ways=8, hit_latency=31, mshr_entries=64
    )
    #: backing-memory timing; part of the machine config so DRAM becomes a
    #: sweepable axis (and flows into result cache keys via config_digest)
    dram: DRAMConfig = DRAMConfig()


class CacheHierarchy:
    """L1-D / private L2 / shared LLC backed by DRAM.

    ``l2_compute_ways`` of the L2 are repurposed for in-cache computing
    (default: half), which halves the cache capacity available to normal
    lookups while MVE is active.

    Subclasses swap :attr:`cache_class` to change the per-level
    implementation; the single-access logic below is shared so the scalar
    and vectorized hierarchies agree by construction.
    """

    #: per-level cache implementation used by this hierarchy
    cache_class = Cache

    def __init__(
        self,
        config: HierarchyConfig | None = None,
        dram: DRAMModel | None = None,
        l2_compute_ways: int = 4,
    ):
        self.config = config or HierarchyConfig()
        self.dram = dram or DRAMModel(self.config.dram)
        self.l2_compute_ways = l2_compute_ways

        l2_cfg = self.config.l2
        storage_ways = max(1, l2_cfg.ways - l2_compute_ways)
        l2_storage_cfg = CacheConfig(
            name=l2_cfg.name,
            size_bytes=l2_cfg.size_bytes * storage_ways // l2_cfg.ways,
            ways=storage_ways,
            line_bytes=l2_cfg.line_bytes,
            hit_latency=l2_cfg.hit_latency,
            mshr_entries=l2_cfg.mshr_entries,
            inclusive=l2_cfg.inclusive,
        )
        self.l1d = self.cache_class(self.config.l1d)
        self.l2 = self.cache_class(l2_storage_cfg)
        self.llc = self.cache_class(self.config.llc)

    def reset(self) -> None:
        self.l1d.reset()
        self.l2.reset()
        self.llc.reset()
        self.dram.reset()

    def reset_stats(self) -> None:
        """Clear statistics while keeping cache contents (warm-cache runs)."""
        self.l1d.stats = CacheStats()
        self.l2.stats = CacheStats()
        self.llc.stats = CacheStats()
        self.dram.stats = type(self.dram.stats)()

    @property
    def line_bytes(self) -> int:
        return self.config.l1d.line_bytes

    def core_access(self, address: int, is_write: bool = False) -> AccessResult:
        """A scalar-core access that goes through L1 first."""
        latency = self.config.l1d.hit_latency
        if self.l1d.access(address, is_write):
            return AccessResult(latency, "L1-D")
        # The L1 fill may have displaced another line; the inclusive L2 must
        # drop its presence bit or later engine-side accesses to that line
        # pay a phantom coherence penalty.
        evicted = self.l1d.last_eviction
        if evicted is not None:
            self.l2.mark_present_in_l1(evicted, False)
        result = self.l2_access(address, is_write, from_core=True)
        return AccessResult(latency + result.latency, result.hit_level)

    def l2_access(self, address: int, is_write: bool = False, from_core: bool = False) -> AccessResult:
        """An access that starts at the L2 (used by the MVE controller).

        When the access originates from the in-cache engine (``from_core``
        False) and the line is present in the L1, the inclusive presence bit
        forces an L1 eviction to preserve coherency (Section V-C); the
        eviction cost is folded into the returned latency.
        """
        latency = self.config.l2.hit_latency
        coherence_penalty = 0
        if not from_core and self.l2.present_in_l1(address):
            coherence_penalty = self.config.l1d.hit_latency
            self.l2.mark_present_in_l1(address, False)
        if self.l2.access(address, is_write):
            if from_core:
                self.l2.mark_present_in_l1(address, True)
            return AccessResult(latency + coherence_penalty, "L2")
        # The install displaced an L2 victim; an inclusive L2 must
        # back-invalidate the victim's L1 copy, or the L1 keeps serving a
        # line the L2 no longer tracks (and later engine accesses to it
        # would skip the coherence penalty bookkeeping entirely).  The LLC
        # is modelled non-inclusive, so no such propagation happens there.
        evicted = self.l2.last_eviction
        if evicted is not None and self.config.l2.inclusive:
            self.l1d.invalidate(evicted)
        latency += self.config.llc.hit_latency
        if self.llc.access(address, is_write):
            if from_core:
                self.l2.mark_present_in_l1(address, True)
            return AccessResult(latency + coherence_penalty, "LLC")
        latency += self.dram.access(address, is_write, self.line_bytes)
        if from_core:
            self.l2.mark_present_in_l1(address, True)
        return AccessResult(latency + coherence_penalty, "DRAM")

    #: cache lines the L2 can hand to the TMU per cycle once streaming
    #: (the compute half reads whole 64 B lines bank-parallel)
    VECTOR_LINES_PER_CYCLE = 2

    def vector_block_access(
        self, line_addresses: Union[np.ndarray, Iterable[int]], is_write: bool = False
    ) -> int:
        """Access a set of cache lines on behalf of one vector memory op.

        Hits stream at :data:`VECTOR_LINES_PER_CYCLE`; misses overlap up to
        the L2 MSHR count.  The returned value is the estimated cycles until
        all lines are available at the Transpose Memory Unit's input.
        """
        lines = dedup_lines(line_addresses)
        if lines.size == 0:
            return 0
        hit_count = 0
        miss_latencies: list[int] = []
        for line_addr in lines.tolist():
            result = self.l2_access(line_addr, is_write, from_core=False)
            if result.hit_level == "L2":
                hit_count += 1
            else:
                miss_latencies.append(result.latency)
        return aggregate_block_cycles(
            hit_count,
            miss_latencies,
            self.config.l2.mshr_entries,
            self.config.l2.hit_latency,
            self.dram.bandwidth_cycles(len(miss_latencies) * self.line_bytes),
            self.VECTOR_LINES_PER_CYCLE,
        )

    def flush_dirty_cycles(self) -> int:
        """Cycles to flush dirty L2 lines before entering compute mode."""
        dirty = self.l2.dirty_line_count()
        return dirty * (self.config.llc.hit_latency // 2 + 1)


def use_scalar_cache() -> bool:
    """True when ``REPRO_SCALAR_CACHE=1`` selects the scalar reference."""
    return os.environ.get(SCALAR_CACHE_ENV, "") == "1"


def make_hierarchy(
    config: HierarchyConfig | None = None,
    dram: DRAMModel | None = None,
    l2_compute_ways: int = 4,
    scalar: Optional[bool] = None,
) -> CacheHierarchy:
    """Build the configured cache-hierarchy implementation.

    The batched numpy engine is the default; ``scalar=True`` (or the
    ``REPRO_SCALAR_CACHE=1`` environment switch) selects the per-line scalar
    reference.  Both produce bit-for-bit identical results -- the scalar
    path exists as the executable specification the vectorized engine is
    tested against.
    """
    if scalar is None:
        scalar = use_scalar_cache()
    if scalar:
        return CacheHierarchy(config, dram, l2_compute_ways)
    from .vector_cache import VectorCacheHierarchy

    return VectorCacheHierarchy(config, dram, l2_compute_ways)
