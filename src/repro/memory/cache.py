"""Set-associative cache hierarchy model (Table IV configuration).

The hierarchy mirrors the Snapdragon 855 prime-core configuration the paper
evaluates against: 64 KB L1-D, a 512 KB private inclusive L2 (half of which
can be repurposed for in-cache computing) and a 2 MB shared LLC, backed by
the DRAM model.  Each level tracks hit/miss statistics and models a limited
number of Miss Status Holding Registers (MSHRs) which bound the memory-level
parallelism available to wide vector gathers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from .dram import DRAMModel

__all__ = ["CacheConfig", "Cache", "CacheStats", "CacheHierarchy", "AccessResult"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = 64
    hit_latency: int = 4
    mshr_entries: int = 20
    inclusive: bool = True

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.ways * self.line_bytes)
        if sets <= 0:
            raise ValueError(f"cache {self.name} too small for {self.ways} ways")
        return sets


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class AccessResult:
    """Outcome of a single cache-line access through the hierarchy."""

    latency: int
    hit_level: str


class _Line:
    __slots__ = ("tag", "valid", "dirty", "present_in_l1", "lru")

    def __init__(self) -> None:
        self.tag = -1
        self.valid = False
        self.dirty = False
        self.present_in_l1 = False
        self.lru = 0


class Cache:
    """One set-associative, write-back, LRU cache level."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        self._sets = [[_Line() for _ in range(config.ways)] for _ in range(config.num_sets)]
        self._tick = 0

    def reset(self) -> None:
        self.stats = CacheStats()
        for cache_set in self._sets:
            for line in cache_set:
                line.valid = False
                line.dirty = False
                line.present_in_l1 = False
        self._tick = 0

    def _index_tag(self, address: int) -> tuple[int, int]:
        line_addr = address // self.config.line_bytes
        return line_addr % self.config.num_sets, line_addr // self.config.num_sets

    def lookup(self, address: int) -> Optional[_Line]:
        """Return the resident line for ``address`` without updating stats."""
        index, tag = self._index_tag(address)
        for line in self._sets[index]:
            if line.valid and line.tag == tag:
                return line
        return None

    def probe(self, address: int) -> bool:
        """True if the line holding ``address`` is resident."""
        return self.lookup(address) is not None

    def access(self, address: int, is_write: bool = False) -> bool:
        """Access one cache line; returns True on hit.

        On a miss the line is installed (the caller models the fill latency
        through the next level).
        """
        self._tick += 1
        index, tag = self._index_tag(address)
        cache_set = self._sets[index]
        for line in cache_set:
            if line.valid and line.tag == tag:
                line.lru = self._tick
                if is_write:
                    line.dirty = True
                self.stats.hits += 1
                return True
        self.stats.misses += 1
        victim = min(cache_set, key=lambda candidate: candidate.lru)
        if victim.valid:
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.writebacks += 1
        victim.tag = tag
        victim.valid = True
        victim.dirty = is_write
        victim.present_in_l1 = False
        victim.lru = self._tick
        return False

    def mark_present_in_l1(self, address: int, present: bool = True) -> None:
        line = self.lookup(address)
        if line is not None:
            line.present_in_l1 = present

    def present_in_l1(self, address: int) -> bool:
        line = self.lookup(address)
        return bool(line and line.present_in_l1)

    def dirty_line_count(self) -> int:
        return sum(
            1 for cache_set in self._sets for line in cache_set if line.valid and line.dirty
        )

    def valid_line_count(self) -> int:
        return sum(1 for cache_set in self._sets for line in cache_set if line.valid)


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache-hierarchy configuration (defaults follow Table IV)."""

    l1d: CacheConfig = CacheConfig(
        name="L1-D", size_bytes=64 * 1024, ways=4, hit_latency=4, mshr_entries=20
    )
    l2: CacheConfig = CacheConfig(
        name="L2", size_bytes=512 * 1024, ways=8, hit_latency=12, mshr_entries=46
    )
    llc: CacheConfig = CacheConfig(
        name="LLC", size_bytes=2 * 1024 * 1024, ways=8, hit_latency=31, mshr_entries=64
    )


class CacheHierarchy:
    """L1-D / private L2 / shared LLC backed by DRAM.

    ``l2_compute_ways`` of the L2 are repurposed for in-cache computing
    (default: half), which halves the cache capacity available to normal
    lookups while MVE is active.
    """

    def __init__(
        self,
        config: HierarchyConfig | None = None,
        dram: DRAMModel | None = None,
        l2_compute_ways: int = 4,
    ):
        self.config = config or HierarchyConfig()
        self.dram = dram or DRAMModel()
        self.l2_compute_ways = l2_compute_ways

        l2_cfg = self.config.l2
        storage_ways = max(1, l2_cfg.ways - l2_compute_ways)
        l2_storage_cfg = CacheConfig(
            name=l2_cfg.name,
            size_bytes=l2_cfg.size_bytes * storage_ways // l2_cfg.ways,
            ways=storage_ways,
            line_bytes=l2_cfg.line_bytes,
            hit_latency=l2_cfg.hit_latency,
            mshr_entries=l2_cfg.mshr_entries,
            inclusive=l2_cfg.inclusive,
        )
        self.l1d = Cache(self.config.l1d)
        self.l2 = Cache(l2_storage_cfg)
        self.llc = Cache(self.config.llc)

    def reset(self) -> None:
        self.l1d.reset()
        self.l2.reset()
        self.llc.reset()
        self.dram.reset()

    def reset_stats(self) -> None:
        """Clear statistics while keeping cache contents (warm-cache runs)."""
        self.l1d.stats = CacheStats()
        self.l2.stats = CacheStats()
        self.llc.stats = CacheStats()
        self.dram.stats = type(self.dram.stats)()

    @property
    def line_bytes(self) -> int:
        return self.config.l1d.line_bytes

    def core_access(self, address: int, is_write: bool = False) -> AccessResult:
        """A scalar-core access that goes through L1 first."""
        latency = self.config.l1d.hit_latency
        if self.l1d.access(address, is_write):
            return AccessResult(latency, "L1-D")
        result = self.l2_access(address, is_write, from_core=True)
        return AccessResult(latency + result.latency, result.hit_level)

    def l2_access(self, address: int, is_write: bool = False, from_core: bool = False) -> AccessResult:
        """An access that starts at the L2 (used by the MVE controller).

        When the access originates from the in-cache engine (``from_core``
        False) and the line is present in the L1, the inclusive presence bit
        forces an L1 eviction to preserve coherency (Section V-C); the
        eviction cost is folded into the returned latency.
        """
        latency = self.config.l2.hit_latency
        coherence_penalty = 0
        if not from_core and self.l2.present_in_l1(address):
            coherence_penalty = self.config.l1d.hit_latency
            self.l2.mark_present_in_l1(address, False)
        if self.l2.access(address, is_write):
            if from_core:
                self.l2.mark_present_in_l1(address, True)
            return AccessResult(latency + coherence_penalty, "L2")
        latency += self.config.llc.hit_latency
        if self.llc.access(address, is_write):
            if from_core:
                self.l2.mark_present_in_l1(address, True)
            return AccessResult(latency + coherence_penalty, "LLC")
        latency += self.dram.access(address, is_write, self.line_bytes)
        if from_core:
            self.l2.mark_present_in_l1(address, True)
        return AccessResult(latency + coherence_penalty, "DRAM")

    #: cache lines the L2 can hand to the TMU per cycle once streaming
    #: (the compute half reads whole 64 B lines bank-parallel)
    VECTOR_LINES_PER_CYCLE = 2

    def vector_block_access(
        self, line_addresses: Iterable[int], is_write: bool = False
    ) -> int:
        """Access a set of cache lines on behalf of one vector memory op.

        Hits stream at :data:`VECTOR_LINES_PER_CYCLE`; misses overlap up to
        the L2 MSHR count.  The returned value is the estimated cycles until
        all lines are available at the Transpose Memory Unit's input.
        """
        lines = list(dict.fromkeys(line_addresses))
        if not lines:
            return 0
        mshrs = self.config.l2.mshr_entries
        hit_latency = self.config.l2.hit_latency
        hit_count = 0
        miss_latencies: list[int] = []
        for line_addr in lines:
            result = self.l2_access(line_addr, is_write, from_core=False)
            if result.hit_level == "L2":
                hit_count += 1
            else:
                miss_latencies.append(result.latency)
        # Hits stream bank-parallel after the initial access latency.
        hit_cycles = 0
        if hit_count:
            hit_cycles = hit_latency + (hit_count - 1) // self.VECTOR_LINES_PER_CYCLE
        if not miss_latencies:
            return hit_cycles
        # Misses overlap in windows of `mshrs` outstanding requests, but the
        # aggregate can never beat the DRAM peak bandwidth.
        miss_cycles = 0.0
        for start in range(0, len(miss_latencies), mshrs):
            window = miss_latencies[start : start + mshrs]
            miss_cycles += max(window) + len(window) // self.VECTOR_LINES_PER_CYCLE
        bandwidth_floor = self.dram.bandwidth_cycles(len(miss_latencies) * self.line_bytes)
        return max(hit_cycles, 0) + max(miss_cycles, bandwidth_floor)

    def flush_dirty_cycles(self) -> int:
        """Cycles to flush dirty L2 lines before entering compute mode."""
        dirty = self.l2.dirty_line_count()
        return dirty * (self.config.llc.hit_latency // 2 + 1)
