"""Byte-addressable flat memory used by the functional simulator.

The functional MVE machine needs a concrete memory to load from and store
to.  :class:`FlatMemory` is a simple bump-allocated byte array backed by
numpy with typed accessors, plus gather/scatter helpers used by the
multi-dimensional memory-access instructions.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..isa.datatypes import DataType

__all__ = ["FlatMemory", "Allocation"]


class Allocation:
    """A named region of :class:`FlatMemory`.

    Behaves like a typed array view while remembering its base byte address,
    which is what MVE memory instructions operate on.
    """

    def __init__(self, memory: "FlatMemory", address: int, dtype: DataType, count: int):
        self._memory = memory
        self.address = address
        self.dtype = dtype
        self.count = count

    @property
    def nbytes(self) -> int:
        return self.count * self.dtype.bytes

    def view(self) -> np.ndarray:
        """A live numpy view of the allocation (writes are visible to MVE)."""
        return self._memory.view(self.address, self.dtype, self.count)

    def write(self, values: np.ndarray | Sequence) -> None:
        arr = np.asarray(values, dtype=self.dtype.numpy_dtype).reshape(-1)
        if arr.size != self.count:
            raise ValueError(f"expected {self.count} values, got {arr.size}")
        self.view()[:] = arr

    def read(self) -> np.ndarray:
        return self.view().copy()

    def element_address(self, index: int) -> int:
        """Byte address of element ``index``."""
        if not 0 <= index < self.count:
            raise IndexError(f"element index {index} out of range (count={self.count})")
        return self.address + index * self.dtype.bytes

    def __len__(self) -> int:
        return self.count


class FlatMemory:
    """Bump-allocated byte-addressable memory."""

    def __init__(self, size_bytes: int = 64 * 1024 * 1024, base_address: int = 0x1000):
        if size_bytes <= 0:
            raise ValueError("memory size must be positive")
        self._data = np.zeros(size_bytes, dtype=np.uint8)
        self.base_address = base_address
        self._next_free = base_address

    @property
    def size(self) -> int:
        return self._data.size

    @property
    def bytes_allocated(self) -> int:
        return self._next_free - self.base_address

    def allocate(self, dtype: DataType, count: int, align: int = 64) -> Allocation:
        """Allocate ``count`` elements of ``dtype`` aligned to ``align`` bytes."""
        if count < 0:
            raise ValueError("allocation count must be non-negative")
        address = (self._next_free + align - 1) // align * align
        nbytes = count * dtype.bytes
        if address - self.base_address + nbytes > self.size:
            raise MemoryError(
                f"flat memory exhausted: requested {nbytes} bytes at 0x{address:x}"
            )
        self._next_free = address + nbytes
        return Allocation(self, address, dtype, count)

    def allocate_array(self, values: np.ndarray | Sequence, dtype: DataType) -> Allocation:
        """Allocate and initialise a region from an existing array."""
        arr = np.asarray(values, dtype=dtype.numpy_dtype).reshape(-1)
        allocation = self.allocate(dtype, arr.size)
        allocation.write(arr)
        return allocation

    def _offset(self, address: int) -> int:
        offset = address - self.base_address
        if not 0 <= offset < self.size:
            raise IndexError(f"address 0x{address:x} outside flat memory")
        return offset

    def view(self, address: int, dtype: DataType, count: int) -> np.ndarray:
        offset = self._offset(address)
        nbytes = count * dtype.bytes
        if offset + nbytes > self.size:
            raise IndexError(f"read of {nbytes} bytes at 0x{address:x} overruns memory")
        return self._data[offset : offset + nbytes].view(dtype.numpy_dtype)

    def read_elements(self, addresses: np.ndarray, dtype: DataType) -> np.ndarray:
        """Gather elements of ``dtype`` from arbitrary byte addresses."""
        addresses = np.asarray(addresses, dtype=np.int64)
        offsets = addresses - self.base_address
        if offsets.size == 0:
            return np.empty(0, dtype=dtype.numpy_dtype)
        if offsets.min() < 0 or offsets.max() + dtype.bytes > self.size:
            raise IndexError("gather address outside flat memory")
        itemsize = dtype.bytes
        byte_index = offsets[:, None] + np.arange(itemsize, dtype=np.int64)
        return self._data[byte_index].reshape(-1).view(dtype.numpy_dtype)

    def write_elements(self, addresses: np.ndarray, values: np.ndarray, dtype: DataType) -> None:
        """Scatter elements of ``dtype`` to arbitrary byte addresses."""
        addresses = np.asarray(addresses, dtype=np.int64)
        values = np.ascontiguousarray(values, dtype=dtype.numpy_dtype).reshape(-1)
        if addresses.size != values.size:
            raise ValueError("address and value counts differ")
        offsets = addresses - self.base_address
        if offsets.size == 0:
            return
        if offsets.min() < 0 or offsets.max() + dtype.bytes > self.size:
            raise IndexError("scatter address outside flat memory")
        itemsize = dtype.bytes
        flat = self._data
        value_bytes = values.view(np.uint8).reshape(-1, itemsize)
        if np.unique(offsets).size == offsets.size:
            byte_index = offsets[:, None] + np.arange(itemsize, dtype=np.int64)
            flat[byte_index] = value_bytes
            return
        # Duplicate target addresses: fall back to the in-order scatter so the
        # last write wins, matching sequential store semantics.
        for i, off in enumerate(offsets):
            flat[off : off + itemsize] = value_bytes[i]

    def read_pointer_table(self, address: int, count: int) -> np.ndarray:
        """Read ``count`` 64-bit pointers starting at ``address``."""
        return self.view(address, DataType.UINT64, count).astype(np.int64)
