"""Batched, numpy-backed implementation of the cache hierarchy.

This is the default engine behind :func:`repro.memory.cache.make_hierarchy`.
Tags, valid/dirty bits, the L1-presence bit and the LRU clock live in
``(num_sets, ways)`` arrays, and :meth:`VectorCacheHierarchy.vector_block_access`
resolves a whole vector op's deduplicated line list in array form:
set-indexing, tag compare, victim selection, the MSHR windowing and the
DRAM row-buffer classification are all vectorized.

The engine is bit-for-bit identical to the scalar reference
(:class:`repro.memory.cache.Cache` et al., selectable with
``REPRO_SCALAR_CACHE=1``); the property suite in ``tests/test_properties.py``
drives random access streams through both and asserts identical latencies
and statistics.  Exactness hinges on two observations:

* the LRU clock only ever *compares* within one set, so per-access tick
  values can be assigned up front from each line's position in the batch,
  and
* sets are independent of each other, so the batch is replayed as rounds --
  round *r* carries every set's *r*-th line -- where each round touches
  pairwise-distinct sets and resolves fully in parallel.  A batch with no
  set conflicts (the common case) is a single round.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

from .cache import (
    CacheConfig,
    CacheHierarchy,
    CacheStats,
    aggregate_block_cycles,
    dedup_lines,
)

__all__ = ["VectorCache", "VectorCacheHierarchy"]


class VectorCache:
    """One set-associative, write-back, LRU cache level on numpy state."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        self._num_sets = config.num_sets
        shape = (self._num_sets, config.ways)
        self._tags = np.full(shape, -1, dtype=np.int64)
        self._valid = np.zeros(shape, dtype=bool)
        self._dirty = np.zeros(shape, dtype=bool)
        self._present = np.zeros(shape, dtype=bool)
        self._lru = np.zeros(shape, dtype=np.int64)
        self._tick = 0
        #: line-aligned address evicted by the most recent single ``access``
        self.last_eviction: Optional[int] = None
        #: when not None, every batch eviction's line address is appended
        #: here (as int or int64 array) for inclusive back-invalidation
        self._evictions_buffer: Optional[list] = None

    def reset(self) -> None:
        self.stats = CacheStats()
        self._tags.fill(-1)
        self._valid.fill(False)
        self._dirty.fill(False)
        self._present.fill(False)
        self._lru.fill(0)
        self._tick = 0
        self.last_eviction = None
        self._evictions_buffer = None

    # -- single-line API (scalar-core path and tests) ------------------- #

    def _index_tag(self, address: int) -> tuple[int, int]:
        line_addr = address // self.config.line_bytes
        return line_addr % self._num_sets, line_addr // self._num_sets

    def _find_way(self, index: int, tag: int) -> Optional[int]:
        match = self._valid[index] & (self._tags[index] == tag)
        if not match.any():
            return None
        return int(match.argmax())

    def lookup(self, address: int) -> Optional[int]:
        """The way holding ``address``, or None (no stats update)."""
        index, tag = self._index_tag(address)
        return self._find_way(index, tag)

    def probe(self, address: int) -> bool:
        return self.lookup(address) is not None

    def access(self, address: int, is_write: bool = False) -> bool:
        """Access one cache line; returns True on hit (see scalar
        :meth:`~repro.memory.cache.Cache.access`)."""
        self._tick += 1
        index, tag = self._index_tag(address)
        return self._access_one(index, tag, self._tick, is_write)

    def _access_one(
        self,
        index: int,
        tag: int,
        tick: int,
        is_write: bool,
        clear_presence: bool = False,
    ) -> bool:
        self.last_eviction = None
        way = self._find_way(index, tag)
        if way is not None:
            if clear_presence:
                self._present[index, way] = False
            self._lru[index, way] = tick
            if is_write:
                self._dirty[index, way] = True
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        invalid = ~self._valid[index]
        if invalid.any():
            way = int(invalid.argmax())
        else:
            way = int(self._lru[index].argmin())
        if self._valid[index, way]:
            self.stats.evictions += 1
            if self._dirty[index, way]:
                self.stats.writebacks += 1
            self.last_eviction = (
                int(self._tags[index, way]) * self._num_sets + index
            ) * self.config.line_bytes
            if self._evictions_buffer is not None:
                self._evictions_buffer.append(self.last_eviction)
        self._tags[index, way] = tag
        self._valid[index, way] = True
        self._dirty[index, way] = is_write
        self._present[index, way] = False
        self._lru[index, way] = tick
        return False

    def invalidate(self, address: int) -> bool:
        """Drop the line holding ``address`` (inclusive back-invalidation);
        returns True if a line was resident.  No statistics are updated."""
        index, tag = self._index_tag(address)
        way = self._find_way(index, tag)
        if way is None:
            return False
        self._invalidate_way(index, way)
        return True

    def _invalidate_way(self, index, way) -> None:
        self._valid[index, way] = False
        self._tags[index, way] = -1
        self._dirty[index, way] = False
        self._present[index, way] = False
        self._lru[index, way] = 0

    def invalidate_batch(self, addresses: np.ndarray) -> None:
        """Drop every resident line among ``addresses`` (distinct lines)."""
        addresses = addresses.astype(np.int64, copy=False).ravel()
        if addresses.size == 0:
            return
        line_addr = addresses // self.config.line_bytes
        index = line_addr % self._num_sets
        tag = line_addr // self._num_sets
        match = self._valid[index] & (self._tags[index] == tag[:, None])
        resident = match.any(axis=1)
        if not resident.any():
            return
        self._invalidate_way(index[resident], match[resident].argmax(axis=1))

    def mark_present_in_l1(self, address: int, present: bool = True) -> None:
        way = self.lookup(address)
        if way is not None:
            index, _ = self._index_tag(address)
            self._present[index, way] = present

    def present_in_l1(self, address: int) -> bool:
        index, tag = self._index_tag(address)
        way = self._find_way(index, tag)
        return bool(way is not None and self._present[index, way])

    def dirty_line_count(self) -> int:
        return int((self._valid & self._dirty).sum())

    def valid_line_count(self) -> int:
        return int(self._valid.sum())

    # -- batched API ----------------------------------------------------- #

    def access_batch(
        self,
        addresses: np.ndarray,
        is_write: bool = False,
        clear_presence: bool = False,
        collect_evictions: bool = False,
    ) -> np.ndarray:
        """Access a batch of distinct lines; returns the per-line hit mask.

        Equivalent to calling :meth:`access` per address in order (with
        ``clear_presence`` additionally dropping the presence bit of every
        hit, as an engine-side access does).  Each access's LRU tick comes
        from its batch position, so the only ordering that matters is
        between lines mapping to the same set; those resolve over
        successive all-distinct-sets rounds.

        With ``collect_evictions`` the line addresses of every displaced
        valid victim are recorded; drain them with :meth:`take_evictions`
        (the hierarchy uses this for inclusive L1 back-invalidation).
        """
        self._evictions_buffer = [] if collect_evictions else None
        addresses = addresses.astype(np.int64, copy=False).ravel()
        n = int(addresses.size)
        hits = np.zeros(n, dtype=bool)
        if n == 0:
            return hits
        line_addr = addresses // self.config.line_bytes
        index = line_addr % self._num_sets
        tag = line_addr // self._num_sets
        ticks = self._tick + 1 + np.arange(n, dtype=np.int64)
        self._tick += n

        # Rank each line within its set (0 for the set's first line in the
        # batch, 1 for its second, ...).  Round r then touches every set at
        # most once, so all of round r resolves in parallel, and per-set
        # request order -- the only order that matters -- is preserved
        # across rounds.  Sets receiving many lines are inherently
        # sequential, so they are replayed in one tight per-set loop instead
        # of degenerating into thousands of single-line rounds.
        order = np.argsort(index, kind="stable")
        sorted_index = index[order]
        starts = np.empty(n, dtype=bool)
        starts[0] = True
        starts[1:] = sorted_index[1:] != sorted_index[:-1]
        group_first = np.flatnonzero(starts)
        group_id = np.cumsum(starts) - 1
        counts = np.diff(np.append(group_first, n))
        rank = np.arange(n, dtype=np.int64) - group_first[group_id]

        hot = counts > self._HOT_SET_THRESHOLD
        if hot.any():
            for group in np.flatnonzero(hot).tolist():
                begin = int(group_first[group])
                members = order[begin : begin + int(counts[group])]
                self._replay_set(
                    int(sorted_index[begin]),
                    tag[members],
                    ticks[members],
                    is_write,
                    clear_presence,
                    hits,
                    members,
                )
            cold_sorted = ~hot[group_id]
            round_count = int(counts[~hot].max()) if (~hot).any() else 0
        else:
            cold_sorted = None
            round_count = int(counts.max())

        for round_number in range(round_count):
            in_round = rank == round_number
            if cold_sorted is not None:
                in_round &= cold_sorted
            members = order[in_round]
            if members.size == 0:
                break
            if members.size >= 4:
                self._access_distinct_sets(
                    index[members],
                    tag[members],
                    ticks[members],
                    is_write,
                    clear_presence,
                    hits,
                    members,
                )
            else:
                for position in members.tolist():
                    hits[position] = self._access_one(
                        int(index[position]),
                        int(tag[position]),
                        int(ticks[position]),
                        is_write,
                        clear_presence,
                    )
        return hits

    #: batch lines landing in one set before it is replayed sequentially
    #: rather than spread over all-distinct-sets rounds
    _HOT_SET_THRESHOLD = 8

    def take_evictions(self) -> np.ndarray:
        """Line addresses evicted by the last ``collect_evictions`` batch
        (drains the buffer).

        **Ordering guarantee: set equality, not per-access order.**  Hot-set
        groups (more than :data:`_HOT_SET_THRESHOLD` lines on one set) are
        replayed before the all-distinct-sets rounds, so the buffer's order
        can differ from the order a per-access scalar replay would evict in.
        The *multiset* of evicted lines is always identical to the scalar
        reference: eviction decisions are local to a set (victim choice reads
        only that set's ways, and per-set request order is preserved by both
        the hot-set replay and the round schedule), so reordering whole sets
        against each other cannot change which lines each set evicts.  That
        is sufficient for the only consumer, inclusive L1 back-invalidation:
        ``invalidate_batch`` drops the L1 copy of every listed line, and
        between a batch's first eviction and the batch's end no L1 fill can
        interleave (L1 traffic only originates from core accesses, never from
        the engine-side batch), so dropping the lines in any order leaves the
        same L1 state.  ``tests/test_memory.py`` pins both properties against
        the scalar reference."""
        buffer, self._evictions_buffer = self._evictions_buffer, None
        if not buffer:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(
            [np.atleast_1d(np.asarray(chunk, dtype=np.int64)) for chunk in buffer]
        )

    def _replay_set(
        self,
        index: int,
        tags: np.ndarray,
        ticks: np.ndarray,
        is_write: bool,
        clear_presence: bool,
        hits: np.ndarray,
        positions: np.ndarray,
    ) -> None:
        """Replay one heavily-conflicted set's lines in request order.

        The set's ways are pulled into plain Python lists once, mutated in a
        tight loop (identical transition rules to :meth:`_access_one`) and
        written back, so a set receiving hundreds of batch lines costs
        O(lines * ways) Python-level operations and no per-line numpy calls.
        """
        way_tags = self._tags[index].tolist()
        way_valid = self._valid[index].tolist()
        way_dirty = self._dirty[index].tolist()
        way_present = self._present[index].tolist()
        way_lru = self._lru[index].tolist()
        ways = len(way_tags)
        hit_count = miss_count = evictions = writebacks = 0

        for tag, tick, position in zip(tags.tolist(), ticks.tolist(), positions.tolist()):
            way = None
            for candidate in range(ways):
                if way_valid[candidate] and way_tags[candidate] == tag:
                    way = candidate
                    break
            if way is not None:
                hits[position] = True
                hit_count += 1
                if clear_presence:
                    way_present[way] = False
                way_lru[way] = tick
                if is_write:
                    way_dirty[way] = True
                continue
            miss_count += 1
            way = None
            for candidate in range(ways):
                if not way_valid[candidate]:
                    way = candidate
                    break
            if way is None:
                way = min(range(ways), key=way_lru.__getitem__)
                evictions += 1
                if way_dirty[way]:
                    writebacks += 1
                if self._evictions_buffer is not None:
                    self._evictions_buffer.append(
                        (way_tags[way] * self._num_sets + index) * self.config.line_bytes
                    )
            way_tags[way] = tag
            way_valid[way] = True
            way_dirty[way] = is_write
            way_present[way] = False
            way_lru[way] = tick

        self._tags[index] = way_tags
        self._valid[index] = way_valid
        self._dirty[index] = way_dirty
        self._present[index] = way_present
        self._lru[index] = way_lru
        self.stats.hits += hit_count
        self.stats.misses += miss_count
        self.stats.evictions += evictions
        self.stats.writebacks += writebacks

    def _access_distinct_sets(
        self,
        index: np.ndarray,
        tag: np.ndarray,
        ticks: np.ndarray,
        is_write: bool,
        clear_presence: bool,
        hits: np.ndarray,
        positions: np.ndarray,
    ) -> None:
        """Resolve a round of lines mapping to pairwise-distinct sets."""
        set_valid = self._valid[index]  # (m, ways) gathers
        match = set_valid & (self._tags[index] == tag[:, None])
        is_hit = match.any(axis=1)
        hits[positions] = is_hit

        hit_sets = index[is_hit]
        if hit_sets.size:
            hit_ways = match[is_hit].argmax(axis=1)
            if clear_presence:
                self._present[hit_sets, hit_ways] = False
            self._lru[hit_sets, hit_ways] = ticks[is_hit]
            if is_write:
                self._dirty[hit_sets, hit_ways] = True

        missed = ~is_hit
        miss_sets = index[missed]
        if miss_sets.size:
            invalid = ~set_valid[missed]
            has_invalid = invalid.any(axis=1)
            victim = np.where(
                has_invalid, invalid.argmax(axis=1), self._lru[miss_sets].argmin(axis=1)
            )
            victim_valid = self._valid[miss_sets, victim]
            self.stats.evictions += int(victim_valid.sum())
            self.stats.writebacks += int(
                (victim_valid & self._dirty[miss_sets, victim]).sum()
            )
            if self._evictions_buffer is not None and victim_valid.any():
                evicted_sets = miss_sets[victim_valid]
                evicted_tags = self._tags[evicted_sets, victim[victim_valid]]
                self._evictions_buffer.append(
                    (evicted_tags * self._num_sets + evicted_sets) * self.config.line_bytes
                )
            self._tags[miss_sets, victim] = tag[missed]
            self._valid[miss_sets, victim] = True
            self._dirty[miss_sets, victim] = is_write
            self._present[miss_sets, victim] = False
            self._lru[miss_sets, victim] = ticks[missed]

        self.stats.hits += int(is_hit.sum())
        self.stats.misses += int(missed.sum())


class VectorCacheHierarchy(CacheHierarchy):
    """The cache hierarchy on :class:`VectorCache` levels with a batched
    vector access path; single-line traffic reuses the shared base-class
    logic, so only the block access differs from the reference."""

    cache_class = VectorCache

    def vector_block_access(
        self, line_addresses: Union[np.ndarray, Iterable[int]], is_write: bool = False
    ) -> int:
        lines = dedup_lines(line_addresses)
        if lines.size == 0:
            return 0
        inclusive = self.config.l2.inclusive
        l2_hits = self.l2.access_batch(
            lines, is_write, clear_presence=True, collect_evictions=inclusive
        )
        if inclusive:
            evicted = self.l2.take_evictions()
            if evicted.size:
                # Inclusive back-invalidation: L1 copies of displaced L2
                # lines are dropped, mirroring the per-line reference path.
                self.l1d.invalidate_batch(evicted)
        hit_count = int(l2_hits.sum())
        miss_lines = lines[~l2_hits]
        miss_latencies: list[int] = []
        if miss_lines.size:
            llc_hits = self.llc.access_batch(miss_lines, is_write)
            latencies = np.full(
                miss_lines.size,
                self.config.l2.hit_latency + self.config.llc.hit_latency,
                dtype=np.int64,
            )
            dram_lines = miss_lines[~llc_hits]
            if dram_lines.size:
                latencies[~llc_hits] += self.dram.access_batch(
                    dram_lines, is_write, self.line_bytes
                )
            miss_latencies = latencies.tolist()
        return aggregate_block_cycles(
            hit_count,
            miss_latencies,
            self.config.l2.mshr_entries,
            self.config.l2.hit_latency,
            self.dram.bandwidth_cycles(len(miss_latencies) * self.line_bytes),
            self.VECTOR_LINES_PER_CYCLE,
        )
