"""Execution adapters: *how* a batch of pending jobs actually runs.

:class:`~repro.experiments.sweep.ParallelSweepEngine` owns the *what* --
memoization, the persistent store tiers, trace-group resolution, counters
-- and delegates the *where/how* of executing the jobs that survive every
cache tier to a pluggable :class:`ExecutionAdapter`:

* :class:`SerialAdapter` -- everything in-process, no pool ever created.
  The default for ``jobs=1`` (the interactive :class:`ExperimentRunner`).
* :class:`LocalPoolAdapter` -- a **persistent** ``ProcessPoolExecutor``
  (created on first use, kept warm for the engine's lifetime, recreated
  once after a mid-batch ``BrokenProcessPool``) fed through the
  **shared-memory trace arena** (:mod:`repro.core.trace_arena`): resolved
  traces are published once per batch and tasks ship only tiny handles,
  so a one-kernel/many-config sweep never pickles the same multi-megabyte
  trace into every partition task, and worker-side decoded-trace/compile
  LRUs stay warm across batches.  ``REPRO_SHM_TRACE=0`` or any ``OSError``
  at segment creation degrades to the historical pickled-trace path (one
  ``RuntimeWarning``, bit-identical results); a pool that cannot start or
  dies twice degrades to the serial path.  The default for ``jobs > 1``.

The fleet path reuses the same seam from the outside: ``python -m repro
worker`` (:mod:`repro.worker`) leases partitions from a coordinator
(:mod:`repro.core.coordinator`) and drains every one through a single
long-lived engine carrying one of the adapters above -- so fleet workers
inherit the persistent pool and its warm caches across partitions, and
distribution lives in the lease protocol, not in yet another execution
code path, keeping fleet results bit-identical to local runs by
construction.

Adapters call back into engine helpers (``_resolve_groups``,
``_split_resolved_groups``, ``_capture_starved_groups``,
``_run_group_serial``) rather than owning copies: those helpers maintain
engine state (trace memo, capture/store-hit/batched-replay/arena
counters) that must stay consistent no matter which adapter ran the
jobs.  Engines call :meth:`ExecutionAdapter.close` (via
``engine.close()`` / ``__del__``) to release whatever the adapter holds.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Optional

__all__ = [
    "ExecutionAdapter",
    "LocalPoolAdapter",
    "SerialAdapter",
]


class ExecutionAdapter(ABC):
    """Strategy for executing one batch of uncached jobs.

    ``execute`` receives the engine (for its resolution helpers, counters
    and store), the pending job list, and an ``emit(job, outcome)``
    callback that must be invoked exactly once per job as its result
    becomes available -- the engine layers persistence and progress
    streaming on top of it.
    """

    #: parallelism this adapter offers; the engine mirrors it as
    #: ``engine.jobs`` so group splitting can size its chunks
    jobs: int = 1
    name: str = "base"

    @abstractmethod
    def execute(self, engine, pending: list, emit: Callable) -> None:
        """Run every job in ``pending``, emitting each outcome once."""

    def close(self) -> None:
        """Release long-lived resources (pools); default: nothing held."""


class SerialAdapter(ExecutionAdapter):
    """Run every trace group in-process, in submission order."""

    name = "serial"

    def execute(self, engine, pending: list, emit: Callable) -> None:
        for spec, group, trace, payload in engine._resolve_groups(pending):
            engine._run_group_serial(spec, group, trace, payload, emit)


class LocalPoolAdapter(ExecutionAdapter):
    """Shard trace groups across a persistent local process pool.

    Simulation is pure Python + numpy, so process-level parallelism is
    the only way to use more than one core.  Capture work is pinned to
    one worker per trace group (keeping every capture single-shot even
    under a pool); replays of already-resolved traces are split per
    batched-replay partition (per up-to-``jobs`` chunk with
    ``REPRO_BATCHED_REPLAY=0``) before submission, with each resolved
    trace published once into the shared-memory arena and shipped to its
    partition tasks as a handle.  The pool outlives the batch: worker
    processes keep their spec-keyed decoded-trace LRU and the
    identity-keyed compile memo warm, so follow-up batches over the same
    trace skip the decode *and* the recompile.  A pool that cannot start
    (fork blocked) degrades to the serial path; one that dies mid-batch
    is recreated once and, failing that, the leftovers run serially --
    never failing the sweep.  ``persistent=False`` restores the
    pool-per-batch lifetime (the pre-arena behaviour; kept as the
    benchmark baseline and for callers that cannot keep workers around).
    """

    name = "local-pool"

    def __init__(self, jobs: Optional[int] = None, persistent: bool = True):
        from .sweep import default_job_count

        self.jobs = max(1, default_job_count() if jobs is None else jobs)
        self.persistent = persistent
        self._pool: Optional[ProcessPoolExecutor] = None
        self._arena_warned = False

    # -- pool lifetime ------------------------------------------------- #

    def _ensure_pool(self, engine) -> Optional[ProcessPoolExecutor]:
        """The live pool, creating it on first use (None: cannot start)."""
        if self._pool is not None:
            engine._count_pool_reuse()
            return self._pool
        try:
            import multiprocessing

            context = None
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=context
            )
        except OSError:
            # Restricted environments (fork blocked by seccomp/cgroups):
            # degrade to the serial path rather than failing the sweep.
            self._pool = None
        return self._pool

    def close(self) -> None:
        """Shut the persistent pool down (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # -- batch execution ----------------------------------------------- #

    def _warn_arena_degraded(self) -> None:
        if self._arena_warned:
            return
        self._arena_warned = True
        warnings.warn(
            "shared-memory trace arena unavailable (shm creation failed); "
            "falling back to pickled trace shipping for this engine "
            "(results are unaffected; set REPRO_SHM_TRACE=0 to silence)",
            RuntimeWarning,
            stacklevel=4,
        )

    def _submit(self, pool, engine, arena, task):
        """Submit one task, via an arena handle whenever the trace is in
        hand and the arena is alive.  Returns (future, retained spec key
        or None)."""
        from .sweep import execute_trace_group, execute_trace_group_arena

        spec, group, trace, payload = task
        if trace is not None and not arena.dead:
            before = arena.published
            handle = arena.publish(spec.cache_key(), trace)
            if handle is None:
                # Creation just failed (OSError inside publish): one
                # warning, then pickled shipping for the rest of the run.
                self._warn_arena_degraded()
            else:
                if arena.published > before:
                    engine._count_arena_publish(spec)
                arena.retain(handle.spec_key)
                return pool.submit(execute_trace_group_arena, group, handle), handle.spec_key
        return pool.submit(execute_trace_group, group, payload, trace), None

    def _drain_once(self, engine, pool, arena, tasks, remaining, emit) -> bool:
        """Submit every remaining task and consume completions.  Returns
        True when the pool broke mid-batch (caller recreates and retries,
        then degrades to serial)."""
        from ..isa.trace_io import decode_trace

        broken = False
        futures: dict = {}
        retained: dict[int, str] = {}
        try:
            for index in sorted(remaining):
                future, spec_key = self._submit(pool, engine, arena, tasks[index])
                futures[future] = index
                if spec_key is not None:
                    retained[index] = spec_key
        except (OSError, BrokenProcessPool):
            broken = True
        for future in as_completed(futures):
            index = futures[future]
            spec, group, task_trace, task_payload = tasks[index]
            try:
                outcomes, captured = future.result()
            except (OSError, BrokenProcessPool):
                # Workers killed mid-batch: leave this task for the retry
                # pool (or the serial pass).  Release its arena ref so the
                # refcount stays balanced across resubmission.
                broken = True
                spec_key = retained.pop(index, None)
                if spec_key is not None:
                    arena.release(spec_key)
                continue
            if captured is not None:
                engine._count_capture(spec)
                engine._trace_store.save_payload(spec, captured)
                if engine.store is None:
                    # No store to answer later lookups: memoize the
                    # decoded trace so captured_trace() and follow-up
                    # batches never recapture.
                    try:
                        engine._memo_trace(spec, decode_trace(captured["trace"]))
                    except (KeyError, TypeError, ValueError):
                        pass
            elif task_trace is None and task_payload is not None:
                # The worker replayed a stored payload: that is the store
                # hit (counted here, post-decode; the per-spec set keeps
                # repeats idempotent).
                engine._count_store_hit(spec)
            engine._count_batched_replays(group)
            remaining.discard(index)
            spec_key = retained.pop(index, None)
            if spec_key is not None:
                arena.release(spec_key)
            # emit runs outside the except scopes above so a
            # callback/persistence error propagates instead of being
            # mistaken for a broken pool (which would silently
            # re-simulate already-finished jobs).
            for job, outcome in zip(group, outcomes):
                emit(job, outcome)
        return broken

    def execute(self, engine, pending: list, emit: Callable) -> None:
        from ..core.replay import batched_replay_enabled
        from ..core.trace_arena import TraceArena
        from .sweep import batch_partitions

        tasks = engine._resolve_groups(pending)
        if self.jobs > 1:
            # Will splitting alone feed the pool?  Resolved groups yield one
            # task per batched-replay partition (or up to `jobs` chunks with
            # batching off); capture-needed groups stay whole.
            batched = batched_replay_enabled()
            projected = sum(
                1
                if trace is None and payload is None
                else (
                    len(batch_partitions(group))
                    if batched
                    else min(self.jobs, len(group))
                )
                for _, group, trace, payload in tasks
            )
            if projected < min(self.jobs, len(pending)):
                # Too few tasks to feed the pool: capture the cold groups
                # up front (cheap) so their replays parallelize too.
                tasks = engine._capture_starved_groups(tasks)
            # Single split pass: chunks are never re-split into singletons,
            # preserving within-chunk decode/compile sharing.
            tasks = engine._split_resolved_groups(tasks)
        remaining = set(range(len(tasks)))
        if self.jobs > 1 and len(tasks) > 1:
            arena = TraceArena()
            try:
                # Two attempts: the live (or fresh) pool, then -- if it
                # broke mid-batch -- one recreated pool for the leftovers.
                for _ in range(2):
                    if not remaining:
                        break
                    pool = self._ensure_pool(engine)
                    if pool is None:
                        break
                    if not self._drain_once(engine, pool, arena, tasks, remaining, emit):
                        break
                    self.close()
            finally:
                arena.close()
                if not self.persistent:
                    self.close()
        for index, (spec, group, trace, payload) in enumerate(tasks):
            if index in remaining:
                engine._run_group_serial(spec, group, trace, payload, emit)
