"""Execution adapters: *how* a batch of pending jobs actually runs.

:class:`~repro.experiments.sweep.ParallelSweepEngine` owns the *what* --
memoization, the persistent store tiers, trace-group resolution, counters
-- and delegates the *where/how* of executing the jobs that survive every
cache tier to a pluggable :class:`ExecutionAdapter`:

* :class:`SerialAdapter` -- everything in-process, no pool ever created.
  The default for ``jobs=1`` (the interactive :class:`ExperimentRunner`).
* :class:`LocalPoolAdapter` -- the historical ``ProcessPoolExecutor``
  path: capture work pinned to one worker per trace group, resolved
  groups split per batched-replay partition, broken pools degrading to
  the serial path.  The default for ``jobs > 1``.

The fleet path reuses the same seam from the outside: ``python -m repro
worker`` (:mod:`repro.worker`) leases partitions from a coordinator
(:mod:`repro.core.coordinator`) and drains each one through an ordinary
engine carrying one of the adapters above -- distribution lives in the
lease protocol, not in yet another execution code path, so fleet results
are bit-identical to local runs by construction.

Adapters call back into engine helpers (``_resolve_groups``,
``_split_resolved_groups``, ``_capture_starved_groups``,
``_run_group_serial``) rather than owning copies: those helpers maintain
engine state (trace memo, capture/store-hit/batched-replay counters) that
must stay consistent no matter which adapter ran the jobs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Optional

__all__ = [
    "ExecutionAdapter",
    "LocalPoolAdapter",
    "SerialAdapter",
]


class ExecutionAdapter(ABC):
    """Strategy for executing one batch of uncached jobs.

    ``execute`` receives the engine (for its resolution helpers, counters
    and store), the pending job list, and an ``emit(job, outcome)``
    callback that must be invoked exactly once per job as its result
    becomes available -- the engine layers persistence and progress
    streaming on top of it.
    """

    #: parallelism this adapter offers; the engine mirrors it as
    #: ``engine.jobs`` so group splitting can size its chunks
    jobs: int = 1
    name: str = "base"

    @abstractmethod
    def execute(self, engine, pending: list, emit: Callable) -> None:
        """Run every job in ``pending``, emitting each outcome once."""


class SerialAdapter(ExecutionAdapter):
    """Run every trace group in-process, in submission order."""

    name = "serial"

    def execute(self, engine, pending: list, emit: Callable) -> None:
        for spec, group, trace, payload in engine._resolve_groups(pending):
            engine._run_group_serial(spec, group, trace, payload, emit)


class LocalPoolAdapter(ExecutionAdapter):
    """Shard trace groups across a local ``ProcessPoolExecutor``.

    Simulation is pure Python + numpy, so process-level parallelism is
    the only way to use more than one core.  Capture work is pinned to
    one worker per trace group (keeping every capture single-shot even
    under a pool); replays of already-resolved traces are split per
    batched-replay partition (per up-to-``jobs`` chunk with
    ``REPRO_BATCHED_REPLAY=0``) before submission.  A pool that cannot
    start (fork blocked) or dies mid-batch degrades to the serial path
    for whatever work is left -- never failing the sweep.
    """

    name = "local-pool"

    def __init__(self, jobs: Optional[int] = None):
        from .sweep import default_job_count

        self.jobs = max(1, default_job_count() if jobs is None else jobs)

    def execute(self, engine, pending: list, emit: Callable) -> None:
        from ..core.replay import batched_replay_enabled
        from ..isa.trace_io import decode_trace
        from .sweep import batch_partitions, execute_trace_group

        tasks = engine._resolve_groups(pending)
        if self.jobs > 1:
            # Will splitting alone feed the pool?  Resolved groups yield one
            # task per batched-replay partition (or up to `jobs` chunks with
            # batching off); capture-needed groups stay whole.
            batched = batched_replay_enabled()
            projected = sum(
                1
                if trace is None and payload is None
                else (
                    len(batch_partitions(group))
                    if batched
                    else min(self.jobs, len(group))
                )
                for _, group, trace, payload in tasks
            )
            if projected < min(self.jobs, len(pending)):
                # Too few tasks to feed the pool: capture the cold groups
                # up front (cheap) so their replays parallelize too.
                tasks = engine._capture_starved_groups(tasks)
            # Single split pass: chunks are never re-split into singletons,
            # preserving within-chunk decode/compile sharing.
            tasks = engine._split_resolved_groups(tasks)
        remaining = set(range(len(tasks)))
        if self.jobs > 1 and len(tasks) > 1:
            pool = None
            try:
                import multiprocessing

                context = None
                if "fork" in multiprocessing.get_all_start_methods():
                    context = multiprocessing.get_context("fork")
                workers = min(self.jobs, len(tasks))
                pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
            except OSError:
                # Restricted environments (fork blocked by seccomp/cgroups):
                # degrade to the serial path rather than failing the sweep.
                pool = None
            if pool is not None:
                with pool:
                    try:
                        futures = {
                            pool.submit(execute_trace_group, group, payload, trace): index
                            for index, (spec, group, trace, payload) in enumerate(tasks)
                        }
                    except (OSError, BrokenProcessPool):
                        futures = {}
                    for future in as_completed(futures):
                        index = futures[future]
                        spec, group, task_trace, task_payload = tasks[index]
                        try:
                            outcomes, captured = future.result()
                        except (OSError, BrokenProcessPool):
                            # Workers killed mid-batch: leave this group for
                            # the serial pass below.
                            continue
                        if captured is not None:
                            engine._count_capture(spec)
                            engine._trace_store.save_payload(spec, captured)
                            if engine.store is None:
                                # No store to answer later lookups: memoize
                                # the decoded trace so captured_trace() and
                                # follow-up batches never recapture.
                                try:
                                    engine._memo_trace(
                                        spec, decode_trace(captured["trace"])
                                    )
                                except (KeyError, TypeError, ValueError):
                                    pass
                        elif task_trace is None and task_payload is not None:
                            # The worker replayed a stored payload: that is
                            # the store hit (counted here, post-decode; the
                            # per-spec set keeps repeats idempotent).
                            engine._count_store_hit(spec)
                        engine._count_batched_replays(group)
                        remaining.discard(index)
                        # emit runs outside the except scopes above so a
                        # callback/persistence error propagates instead of
                        # being mistaken for a broken pool (which would
                        # silently re-simulate already-finished jobs).
                        for job, outcome in zip(group, outcomes):
                            emit(job, outcome)
        for index, (spec, group, trace, payload) in enumerate(tasks):
            if index in remaining:
                engine._run_group_serial(spec, group, trace, payload, emit)
