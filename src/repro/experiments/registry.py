"""Declarative experiment registry: every table/figure as an addressable unit.

The paper's evaluation used to be eight bespoke ``run_*`` entry points with
incompatible signatures.  This module turns each of them into a first-class
:class:`Experiment` that declares

* its **job set** -- ``specs(options)`` returns the same
  :class:`~repro.experiments.sweep.SweepSpec` single-sources-of-truth the
  figure modules and the CLI already share, so registry-built jobs hash to
  exactly the same cache keys as the legacy ``run_figureN`` paths, and
* its **assembly** -- ``assemble(runner, options)`` turns the simulated jobs
  into the figure's serializable result dataclass.

Experiment modules register themselves at import time via
:func:`register_experiment`; :func:`run_experiment` is the one call sites
need: it prefetches the job set through the
:class:`~repro.experiments.sweep.ParallelSweepEngine` (streaming per-job
progress to an optional ``on_result`` callback), answers whole assembled
results from the persistent :class:`~repro.core.cache.ResultStore` when the
options and source fingerprint match, and caches fresh results there.
Because the assembled-result cache sits on the same store as the job cache,
a tiered store (``$REPRO_REMOTE_CACHE`` / ``--remote-cache``) shares both
layers across machines: a second machine running the same experiment
fetches the finished result without simulating a single job.
``python -m repro`` exposes the registry as a CLI.
"""

from __future__ import annotations

import importlib
import re
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional

from ..core.cache import (
    ResultStore,
    code_fingerprint,
    config_digest,
    load_cached_result,
    stable_hash,
    store_cached_result,
)
from ..core.config import MachineConfig, default_config
from .adapters import ExecutionAdapter
from .runner import ExperimentRunner
from .sweep import (
    KernelJob,
    OnResult,
    ParallelSweepEngine,
    SweepSpec,
    default_job_count,
    partition_jobs,
)

__all__ = [
    "Experiment",
    "ExperimentOptions",
    "all_experiments",
    "assembled_result_payload",
    "build_runner",
    "experiment_catalog",
    "experiment_names",
    "experiment_partitions",
    "experiment_store_key",
    "get_experiment",
    "load_assembled",
    "register_experiment",
    "run_experiment",
]

#: modules that register experiments on import (one per table/figure)
_EXPERIMENT_MODULES = (
    "repro.experiments.tables",
    "repro.experiments.figure7",
    "repro.experiments.figure8",
    "repro.experiments.figure9",
    "repro.experiments.figure10",
    "repro.experiments.figure11",
    "repro.experiments.figure12",
    "repro.experiments.figure13",
)


@dataclass(frozen=True)
class ExperimentOptions:
    """Caller-tunable knobs shared by every experiment.

    ``scale`` is honoured only by experiments with ``uses_scale=True`` (the
    fixed-shape sweeps pin the paper's dataset sizes); ``config=None`` means
    the runner's machine configuration.
    """

    scale: float = 0.5
    config: Optional[MachineConfig] = None

    def resolved_config(self) -> MachineConfig:
        return self.config if self.config is not None else default_config()

    def to_dict(self) -> dict:
        """The options as the JSON dict used in cache keys and exports."""
        return {"scale": self.scale, "config": config_digest(self.resolved_config())}


@dataclass(frozen=True)
class Experiment:
    """One table/figure of the evaluation, runnable over the sweep engine."""

    name: str
    description: str
    #: result dataclass with ``to_dict``/``from_dict`` (ResultStore payload)
    result_type: type
    #: turns prefetched jobs into the result; must only request jobs that
    #: ``specs`` declares, so the two can never drift apart
    assemble: Callable[[ExperimentRunner, ExperimentOptions], Any] = field(repr=False)
    #: the declarative job set; empty for analytic/static experiments
    specs: Callable[[ExperimentOptions], tuple[SweepSpec, ...]] = field(
        default=lambda options: (), repr=False
    )
    #: whether ``options.scale`` changes the job set
    uses_scale: bool = False
    #: streaming alternative to ``assemble``: a factory returning an object
    #: with ``on_result(job, outcome, completed, total)`` and ``result()``.
    #: When set, :func:`run_experiment` feeds outcomes through it
    #: incrementally (``stream_jobs``: no outcome dict, no memo growth), so
    #: result types that fold -- frontiers, histograms, running reductions --
    #: stay bounded-memory on 10^5-job sets
    stream_assemble: Optional[
        Callable[[ExperimentRunner, ExperimentOptions], Any]
    ] = field(default=None, repr=False)

    def sweep_specs(self, options: Optional[ExperimentOptions] = None) -> tuple[SweepSpec, ...]:
        return tuple(self.specs(options or ExperimentOptions()))

    def jobs(self, options: Optional[ExperimentOptions] = None) -> list[KernelJob]:
        """The engine job set, deduplicated across this experiment's specs."""
        expanded: list[KernelJob] = []
        for spec in self.sweep_specs(options):
            expanded.extend(spec.jobs())
        return list(dict.fromkeys(expanded))

    def cache_key(self, options: ExperimentOptions) -> str:
        """Identity of the assembled result in the persistent store."""
        encoded = options.to_dict()
        if not self.uses_scale:
            # Fixed-shape experiments ignore --scale; keying on it would
            # store duplicate results under distinct keys.
            del encoded["scale"]
        return stable_hash(
            {
                "experiment": self.name,
                "fingerprint": code_fingerprint(),
                "options": encoded,
            }
        )


_REGISTRY: dict[str, Experiment] = {}


def register_experiment(
    name: str,
    description: str,
    result_type: type,
    assemble: Callable[[ExperimentRunner, ExperimentOptions], Any],
    specs: Optional[Callable[[ExperimentOptions], tuple[SweepSpec, ...]]] = None,
    uses_scale: bool = False,
    stream_assemble: Optional[
        Callable[[ExperimentRunner, ExperimentOptions], Any]
    ] = None,
) -> Experiment:
    """Register (or replace) one experiment; returns the registered record."""
    experiment = Experiment(
        name=name,
        description=description,
        result_type=result_type,
        assemble=assemble,
        specs=specs if specs is not None else (lambda options: ()),
        uses_scale=uses_scale,
        stream_assemble=stream_assemble,
    )
    _REGISTRY[name] = experiment
    return experiment


def _ensure_registered() -> None:
    for module in _EXPERIMENT_MODULES:
        importlib.import_module(module)


def _natural_key(name: str) -> tuple:
    return tuple(int(part) if part.isdigit() else part for part in re.split(r"(\d+)", name))


def experiment_names() -> list[str]:
    """Registered experiment names in natural order (figure7 < figure10)."""
    _ensure_registered()
    return sorted(_REGISTRY, key=_natural_key)


def all_experiments() -> list[Experiment]:
    return [_REGISTRY[name] for name in experiment_names()]


def get_experiment(name: str) -> Experiment:
    _ensure_registered()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {', '.join(experiment_names())}"
        ) from None


def experiment_partitions(
    name: str, options: Optional[ExperimentOptions] = None
) -> list[list[KernelJob]]:
    """An experiment's job set split into the fleet's lease-sized units.

    Jobs group by trace spec (so one partition replays one captured
    trace) and then by batched-replay partition
    (:func:`~repro.experiments.sweep.batch_partitions`: compiled-kernel
    geometry) -- exactly the units the local pool adapter submits to its
    workers, so a leased partition costs ~one batched replay pass.

    Deterministic given the source tree: the coordinator and every
    worker re-derive identical partitions (and identical job cache keys,
    which embed the source fingerprint), which is how version skew
    across a fleet is detected instead of silently simulated wrong.
    """
    experiment = get_experiment(name)
    options = options or ExperimentOptions()
    return partition_jobs(experiment.jobs(options))


def experiment_store_key(name: str, options: Optional[ExperimentOptions] = None) -> str:
    """Where ``name``'s assembled result lives in the store, without running
    anything -- the address readers (the read API, the static exporter)
    resolve before deciding whether a result is available."""
    return get_experiment(name).cache_key(options or ExperimentOptions())


def load_assembled(name: str, store, options: Optional[ExperimentOptions] = None):
    """The assembled result for ``name`` from ``store`` alone, or None.

    Never simulates: a cold store is answered with None, which is what lets
    read-only consumers (``repro export``, the read API) make "zero
    simulation" a structural guarantee instead of a promise.
    """
    experiment = get_experiment(name)
    options = options or ExperimentOptions()
    return load_cached_result(store, experiment.cache_key(options), experiment.result_type)


def assembled_result_payload(name: str, record) -> Optional[dict]:
    """The validated raw ``result`` dict inside a store record for ``name``.

    Returns the payload only when it parses as the experiment's result type;
    serving the stored dict verbatim (rather than re-serializing the parsed
    object) keeps the read API byte-identical to the CLI export for free,
    because ``to_dict``/``from_dict`` round trips are bit-exact.
    """
    experiment = get_experiment(name)
    if not isinstance(record, dict):
        return None
    payload = record.get("result")
    if not isinstance(payload, dict):
        return None
    try:
        experiment.result_type.from_dict(payload)
    except (KeyError, TypeError, ValueError):
        return None
    return payload


def experiment_catalog(
    contains: Callable[[str], bool], options: Optional[ExperimentOptions] = None
) -> list[dict]:
    """One availability row per registered experiment.

    ``contains`` is a store backend's existence probe; availability is
    reported per store key, so the catalog tells a reader exactly which
    documents ``GET /v1/experiments/<name>`` would answer right now.
    """
    options = options or ExperimentOptions()
    rows = []
    for experiment in all_experiments():
        key = experiment.cache_key(options)
        rows.append(
            {
                "name": experiment.name,
                "description": experiment.description,
                "uses_scale": experiment.uses_scale,
                "jobs": len(experiment.jobs(options)),
                "key": key,
                "available": bool(contains(key)),
            }
        )
    return rows


def build_runner(
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
    config: Optional[MachineConfig] = None,
    default_scale: float = 0.5,
    remote: Optional[str] = None,
    adapter: Optional[ExecutionAdapter] = None,
) -> ExperimentRunner:
    """An :class:`ExperimentRunner` over a parallel engine -- the standard
    stack the CLI, the benchmark session and the example scripts share.

    ``remote`` (a ``python -m repro serve`` URL) without an explicit
    ``store`` builds the default tiered store: local cache directory first,
    shared cache service second, so simulation jobs *and* assembled
    experiment results are shared across machines.  ``adapter`` overrides
    how the engine executes uncached jobs (default: serial for one job
    slot, the local process pool otherwise).
    """
    if store is None and remote is not None:
        store = ResultStore(ResultStore.default_dir(), remote=remote)
    engine = ParallelSweepEngine(
        jobs=default_job_count() if jobs is None else jobs, store=store, adapter=adapter
    )
    return ExperimentRunner(config=config, default_scale=default_scale, engine=engine)


def run_experiment(
    name: str,
    runner: Optional[ExperimentRunner] = None,
    options: Optional[ExperimentOptions] = None,
    use_cache: bool = True,
    on_result: Optional[OnResult] = None,
):
    """Run one registered experiment end to end and return its result.

    The job set is prefetched as a single engine batch (sharded over worker
    processes when the runner's engine has ``jobs > 1``), with ``on_result``
    streaming per-job progress.  With ``use_cache`` and a store attached,
    the assembled result itself is answered from / persisted to the store,
    keyed by experiment name, options and the source fingerprint.
    """
    experiment = get_experiment(name)
    options = options or ExperimentOptions()
    if runner is None:
        runner = build_runner(
            store=ResultStore.default() if use_cache else None, config=options.config
        )
    if options.config is None:
        options = replace(options, config=runner.config)
    elif config_digest(options.config) != config_digest(runner.config):
        # The spec/assemble contract keys every job on the runner's config;
        # honour an explicit override by rebinding the runner (sharing its
        # engine, so memo and store stay warm).
        runner = ExperimentRunner(
            config=options.config,
            default_scale=runner.default_scale,
            engine=runner.engine,
        )
    store = runner.engine.store if use_cache else None
    key = experiment.cache_key(options)
    cached = load_cached_result(store, key, experiment.result_type)
    if cached is not None:
        return cached
    jobs = experiment.jobs(options)
    if experiment.stream_assemble is not None:
        # Streaming path: outcomes fold into the assembler as they arrive
        # and are never materialized -- neither here nor in the engine memo.
        assembler = experiment.stream_assemble(runner, options)

        def tee(job, outcome, completed, total):
            assembler.on_result(job, outcome, completed, total)
            if on_result is not None:
                on_result(job, outcome, completed, total)

        if jobs:
            runner.engine.stream_jobs(jobs, on_result=tee)
        result = assembler.result()
    else:
        if jobs:
            runner.engine.run_jobs(jobs, on_result=on_result)
        result = experiment.assemble(runner, options)
    store_cached_result(store, key, result)
    return result
