"""Figure 8: Adreno-class GPU execution time and energy normalized to MVE."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.config import MachineConfig, default_config
from .registry import register_experiment
from .runner import ExperimentRunner
from .serialize import SerializableResult
from .sweep import SweepSpec

__all__ = [
    "GpuComparison",
    "Figure8Result",
    "run_figure8",
    "figure8_sweep_spec",
    "FIGURE8_KERNELS",
]

#: kernels used for the GPU comparison (the paper's CSUM..IDCT selection)
FIGURE8_KERNELS = (
    "csum",
    "lpack",
    "fir_v",
    "fir_s",
    "fir_l",
    "gemm",
    "spmm",
    "satd",
    "intra",
    "dct",
    "idct",
)

#: per-kernel dataset scales keeping trace lengths manageable
_KERNEL_SCALES = {"satd": 0.25, "dct": 0.25, "idct": 0.25}


def figure8_sweep_spec(
    scale: float = 0.5, base_config: Optional[MachineConfig] = None
) -> SweepSpec:
    """The exact MVE job set :func:`run_figure8` simulates (shared with the CLI)."""
    config = base_config if base_config is not None else default_config()
    return SweepSpec(
        name="figure8",
        kernels=[
            (name, {"scale": _KERNEL_SCALES.get(name, scale)}) for name in FIGURE8_KERNELS
        ],
        schemes=(config.scheme_name,),
        default_scale=scale,
        base_config=config,
    )


@dataclass
class GpuComparison(SerializableResult):
    kernel: str
    #: GPU / MVE execution-time ratio including host-to-device data transfer
    time_ratio_with_transfer: float
    #: GPU / MVE execution-time ratio for the kernel execution alone
    time_ratio_kernel_only: float
    energy_ratio: float
    gpu_transfer_fraction: float


@dataclass
class Figure8Result(SerializableResult):
    kernels: list[GpuComparison]
    mean_time_ratio: float
    mean_kernel_only_ratio: float
    mean_energy_ratio: float


def run_figure8(
    runner: Optional[ExperimentRunner] = None, scale: float = 0.5
) -> Figure8Result:
    """Compare MVE against the mobile-GPU model on the selected kernels."""
    runner = runner or ExperimentRunner()
    runner.prefetch(figure8_sweep_spec(scale, runner.config).jobs())
    rows: list[GpuComparison] = []
    for name in FIGURE8_KERNELS:
        kernel_scale = _KERNEL_SCALES.get(name, scale)
        mve = runner.run_mve(name, scale=kernel_scale)
        gpu = runner.run_gpu(name, scale=kernel_scale)
        rows.append(
            GpuComparison(
                kernel=name,
                time_ratio_with_transfer=gpu.time_ms / mve.result.time_ms,
                time_ratio_kernel_only=gpu.kernel_only_time_ms / mve.result.time_ms,
                energy_ratio=gpu.energy_nj / mve.result.energy_nj,
                gpu_transfer_fraction=gpu.transfer_time_s / gpu.total_time_s,
            )
        )
    return Figure8Result(
        kernels=rows,
        mean_time_ratio=float(np.exp(np.mean(np.log([r.time_ratio_with_transfer for r in rows])))),
        mean_kernel_only_ratio=float(
            np.exp(np.mean(np.log([r.time_ratio_kernel_only for r in rows])))
        ),
        mean_energy_ratio=float(np.exp(np.mean(np.log([r.energy_ratio for r in rows])))),
    )


register_experiment(
    name="figure8",
    description="Adreno-class GPU time and energy normalized to MVE",
    result_type=Figure8Result,
    assemble=lambda runner, options: run_figure8(runner, scale=options.scale),
    specs=lambda options: (figure8_sweep_spec(options.scale, base_config=options.config),),
    uses_scale=True,
)
