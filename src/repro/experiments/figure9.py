"""Figure 9: GEMM / SpMM execution time of MVE and the GPU versus problem size.

The paper sweeps CNN-layer matrix sizes and finds that the GPU only wins
above roughly 6.0M (GEMM) and 4.6M (SpMM) multiply-accumulate operations;
below that, the kernel-launch and copy overheads dominate and MVE wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.config import MachineConfig, default_config
from .registry import register_experiment
from .runner import ExperimentRunner
from .serialize import SerializableResult
from .sweep import SweepSpec

__all__ = [
    "SweepPoint",
    "Figure9Result",
    "run_figure9",
    "figure9_sweep_spec",
    "GEMM_SWEEP",
    "SPMM_SWEEP",
]

#: (N, K, M) GEMM layer shapes, small to large (CNN-layer-like sizes)
GEMM_SWEEP: tuple[tuple[int, int, int], ...] = (
    (32, 32, 32),
    (64, 64, 64),
    (128, 64, 64),
    (128, 128, 128),
    (256, 128, 128),
    (256, 256, 256),
)

#: (N, K, M, NNZ) SpMM layer shapes
SPMM_SWEEP: tuple[tuple[int, int, int, int], ...] = (
    (32, 64, 32, 8),
    (64, 128, 64, 8),
    (128, 128, 64, 16),
    (128, 256, 128, 16),
    (256, 256, 128, 32),
    (512, 512, 256, 64),
    (1024, 512, 256, 96),
)


@dataclass
class SweepPoint(SerializableResult):
    kernel: str
    shape: tuple
    flops: float
    mve_time_ms: float
    gpu_time_ms: float

    @property
    def mve_wins(self) -> bool:
        return self.mve_time_ms <= self.gpu_time_ms


@dataclass
class Figure9Result(SerializableResult):
    gemm_points: list[SweepPoint]
    spmm_points: list[SweepPoint]

    @staticmethod
    def _crossover(points: list[SweepPoint]) -> Optional[float]:
        """FLOP count where the GPU starts winning (None if it never does)."""
        for point in points:
            if not point.mve_wins:
                return point.flops
        return None

    @property
    def gemm_crossover_flops(self) -> Optional[float]:
        return self._crossover(self.gemm_points)

    @property
    def spmm_crossover_flops(self) -> Optional[float]:
        return self._crossover(self.spmm_points)


def figure9_sweep_spec(
    gemm_sweep: Sequence[tuple[int, int, int]] = GEMM_SWEEP,
    spmm_sweep: Sequence[tuple[int, int, int, int]] = SPMM_SWEEP,
    base_config: Optional[MachineConfig] = None,
) -> SweepSpec:
    """The exact MVE job set :func:`run_figure9` simulates (shared with the CLI)."""
    config = base_config if base_config is not None else default_config()
    return SweepSpec(
        name="figure9",
        kernels=[
            ("gemm", {"scale": 1.0, "n": n, "k": k, "m": m}) for n, k, m in gemm_sweep
        ]
        + [
            ("spmm", {"scale": 1.0, "n": n, "k": k, "m": m, "nnz": nnz})
            for n, k, m, nnz in spmm_sweep
        ],
        schemes=(config.scheme_name,),
        base_config=config,
    )


def run_figure9(
    runner: Optional[ExperimentRunner] = None,
    gemm_sweep: Sequence[tuple[int, int, int]] = GEMM_SWEEP,
    spmm_sweep: Sequence[tuple[int, int, int, int]] = SPMM_SWEEP,
) -> Figure9Result:
    runner = runner or ExperimentRunner()
    runner.prefetch(figure9_sweep_spec(gemm_sweep, spmm_sweep, runner.config).jobs())

    gemm_points = []
    for n, k, m in gemm_sweep:
        mve = runner.run_mve("gemm", scale=1.0, n=n, k=k, m=m)
        gpu = runner.run_gpu("gemm", scale=1.0, n=n, k=k, m=m)
        gemm_points.append(
            SweepPoint(
                kernel="gemm",
                shape=(n, k, m),
                flops=mve.kernel.profile().total_ops,
                mve_time_ms=mve.result.time_ms,
                gpu_time_ms=gpu.time_ms,
            )
        )

    spmm_points = []
    for n, k, m, nnz in spmm_sweep:
        mve = runner.run_mve("spmm", scale=1.0, n=n, k=k, m=m, nnz=nnz)
        gpu = runner.run_gpu("spmm", scale=1.0, n=n, k=k, m=m, nnz=nnz)
        spmm_points.append(
            SweepPoint(
                kernel="spmm",
                shape=(n, k, m, nnz),
                flops=mve.kernel.profile().total_ops,
                mve_time_ms=mve.result.time_ms,
                gpu_time_ms=gpu.time_ms,
            )
        )
    return Figure9Result(gemm_points=gemm_points, spmm_points=spmm_points)


register_experiment(
    name="figure9",
    description="GEMM/SpMM time vs problem size, MVE against the GPU",
    result_type=Figure9Result,
    assemble=lambda runner, options: run_figure9(runner),
    specs=lambda options: (figure9_sweep_spec(base_config=options.config),),
)
