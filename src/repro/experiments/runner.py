"""Shared helpers for the experiment modules (one module per table/figure).

The runner caches simulation results within a process so that experiments
sharing kernels (e.g. Figures 10 and 11 both need the RVV traces) do not
re-simulate them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..baselines.gpu import GPUModel, GPUResult
from ..baselines.neon import NeonModel, NeonResult
from ..core.config import MachineConfig, default_config
from ..core.results import SimulationResult
from ..core.simulator import simulate_kernel
from ..sram.schemes import get_scheme
from ..workloads import create_kernel
from ..workloads.base import Kernel

__all__ = ["KernelRun", "ExperimentRunner"]


@dataclass
class KernelRun:
    """One kernel simulated on one configuration."""

    kernel: Kernel
    result: SimulationResult
    spills: int = 0


class ExperimentRunner:
    """Runs kernels on the MVE simulator and the baseline models, with caching."""

    def __init__(self, config: Optional[MachineConfig] = None, default_scale: float = 0.5):
        self.config = config or default_config()
        self.default_scale = default_scale
        self._mve_cache: dict = {}
        self._rvv_cache: dict = {}
        self._kernel_cache: dict = {}

    # ------------------------------------------------------------------ #

    def _get_kernel(self, name: str, scale: float, **kwargs) -> Kernel:
        key = (name, scale, tuple(sorted(kwargs.items())))
        if key not in self._kernel_cache:
            kernel = create_kernel(name, scale=scale, **kwargs) if not kwargs else None
            if kernel is None:
                from ..workloads import get_kernel_class

                kernel = get_kernel_class(name)(scale=scale, **kwargs)
            self._kernel_cache[key] = kernel
        return self._kernel_cache[key]

    def run_mve(
        self,
        name: str,
        scale: Optional[float] = None,
        config: Optional[MachineConfig] = None,
        scheme_name: Optional[str] = None,
        **kernel_kwargs,
    ) -> KernelRun:
        """Simulate the MVE implementation of a kernel."""
        scale = scale if scale is not None else self.default_scale
        config = config or self.config
        scheme_name = scheme_name or config.scheme_name
        key = (
            name,
            scale,
            scheme_name,
            config.engine.num_arrays,
            tuple(sorted(kernel_kwargs.items())),
        )
        if key not in self._mve_cache:
            kernel = self._get_kernel(name, scale, **kernel_kwargs)
            trace = kernel.trace_mve(simd_lanes=config.simd_lanes)
            result, compiled = simulate_kernel(
                trace, config=config, scheme=get_scheme(scheme_name)
            )
            spills = compiled.spill_count if compiled else 0
            self._mve_cache[key] = KernelRun(kernel=kernel, result=result, spills=spills)
        return self._mve_cache[key]

    def run_rvv(
        self,
        name: str,
        scale: Optional[float] = None,
        config: Optional[MachineConfig] = None,
        scheme_name: Optional[str] = None,
        **kernel_kwargs,
    ) -> KernelRun:
        """Simulate the 1D (RVV) lowering of a kernel on the same engine."""
        scale = scale if scale is not None else self.default_scale
        config = config or self.config
        scheme_name = scheme_name or config.scheme_name
        key = (
            name,
            scale,
            scheme_name,
            config.engine.num_arrays,
            tuple(sorted(kernel_kwargs.items())),
        )
        if key not in self._rvv_cache:
            kernel = self._get_kernel(name, scale, **kernel_kwargs)
            trace = kernel.trace_rvv(simd_lanes=config.simd_lanes)
            result, compiled = simulate_kernel(
                trace, config=config, scheme=get_scheme(scheme_name)
            )
            spills = compiled.spill_count if compiled else 0
            self._rvv_cache[key] = KernelRun(kernel=kernel, result=result, spills=spills)
        return self._rvv_cache[key]

    def run_neon(self, name: str, scale: Optional[float] = None, **kernel_kwargs) -> NeonResult:
        scale = scale if scale is not None else self.default_scale
        kernel = self._get_kernel(name, scale, **kernel_kwargs)
        kernel.setup()
        return NeonModel(self.config).run(kernel.profile())

    def run_gpu(
        self,
        name: str,
        scale: Optional[float] = None,
        include_transfer: bool = True,
        **kernel_kwargs,
    ) -> GPUResult:
        scale = scale if scale is not None else self.default_scale
        kernel = self._get_kernel(name, scale, **kernel_kwargs)
        kernel.setup()
        return GPUModel().run(kernel.profile(), include_transfer=include_transfer)
