"""Shared helpers for the experiment modules (one module per table/figure).

The runner sits on top of the :class:`ParallelSweepEngine`: every MVE/RVV
simulation becomes a :class:`KernelJob` keyed by the *full* machine
configuration, the scheme, the kernel and its parameters, so results are
memoized in-process (and, when a persistent store is attached, on disk --
or fleet-wide, when the store carries a remote cache-service tier)
without any risk of two different configurations aliasing the same entry.
The baseline models (Neon/GPU) cache through the same store, so they share
the remote tier too.
Experiments that know their job set up front call :meth:`ExperimentRunner.prefetch`
so the engine can shard the batch across worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Union

from ..baselines.gpu import GPUModel, GPUResult
from ..baselines.neon import NeonModel, NeonResult
from ..core.cache import (
    ResultStore,
    code_fingerprint,
    config_digest,
    load_cached_result,
    stable_hash,
    store_cached_result,
)
from ..core.config import MachineConfig, default_config
from ..core.results import SimulationResult
from ..workloads.base import Kernel
from .sweep import KernelJob, ParallelSweepEngine

__all__ = ["KernelRun", "ExperimentRunner"]


@dataclass
class KernelRun:
    """One kernel simulated on one configuration.

    The kernel object is materialized lazily: most consumers only read
    ``result``, and on a warm cache executing every kernel's functional
    model up front would dominate the runtime of an otherwise
    simulation-free run.
    """

    _kernel: Union[Kernel, Callable[[], Kernel]] = field(repr=False)
    result: SimulationResult = field(default_factory=SimulationResult)
    spills: int = 0

    @property
    def kernel(self) -> Kernel:
        """The kernel instance, with its lowering executed (built on first
        access, so outputs in its flat memory are populated as if it had
        just been traced)."""
        if callable(self._kernel):
            self._kernel = self._kernel()
        return self._kernel


class ExperimentRunner:
    """Runs kernels on the MVE simulator and the baseline models, with caching."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        default_scale: float = 0.5,
        engine: Optional[ParallelSweepEngine] = None,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        adapter=None,
    ):
        self.config = config or default_config()
        self.default_scale = default_scale
        self.engine = engine or ParallelSweepEngine(
            jobs=jobs, store=store, adapter=adapter
        )
        self._kernel_cache: dict = {}
        self._traced: set = set()
        #: baseline results by cache key, mirroring the engine's job memo so
        #: repeated run_neon/run_gpu calls never re-read the persistent store
        self._baseline_memo: dict = {}

    # ------------------------------------------------------------------ #

    def _get_kernel(self, name: str, scale: float, **kwargs) -> Kernel:
        key = (name, scale, tuple(sorted(kwargs.items())))
        if key not in self._kernel_cache:
            from ..workloads import get_kernel_class

            kernel = get_kernel_class(name)(scale=scale, **kwargs)
            kernel.setup()
            self._kernel_cache[key] = kernel
        return self._kernel_cache[key]

    def _get_traced_kernel(self, job: KernelJob) -> Kernel:
        """The job's kernel with its lowering executed on the functional
        machine, so post-run state (``output()``, memory buffers) is
        populated exactly as on the pre-engine serial path."""
        kernel = self._get_kernel(job.kernel, job.scale, **dict(job.kwargs))
        trace_key = (job.kernel, job.scale, job.kwargs, job.kind, job.config.simd_lanes)
        if trace_key not in self._traced:
            if job.kind == "rvv":
                kernel.trace_rvv(simd_lanes=job.config.simd_lanes)
            else:
                kernel.trace_mve(simd_lanes=job.config.simd_lanes)
            self._traced.add(trace_key)
        return kernel

    def job(
        self,
        name: str,
        kind: str = "mve",
        scale: Optional[float] = None,
        config: Optional[MachineConfig] = None,
        scheme_name: Optional[str] = None,
        **kernel_kwargs,
    ) -> KernelJob:
        """The fully-resolved simulation job for one runner request."""
        scale = scale if scale is not None else self.default_scale
        config = config or self.config
        scheme_name = scheme_name or config.scheme_name
        return KernelJob(
            kernel=name,
            kind=kind,
            scale=scale,
            kwargs=tuple(sorted(kernel_kwargs.items())),
            scheme_name=scheme_name,
            config=config,
        )

    def _run(self, job: KernelJob) -> KernelRun:
        outcome = self.engine.run_one(job)
        return KernelRun(
            lambda: self._get_traced_kernel(job),
            result=outcome.result,
            spills=outcome.spills,
        )

    def captured_trace(self, job: KernelJob):
        """The capture-stage trace for ``job``, via the engine's trace cache.

        Experiments that consume raw instruction streams (the Duality Cache
        transform of figure12a) must use this instead of calling
        ``kernel.trace_mve`` directly: the capture is answered from the
        engine's trace memo / the persistent trace store (including the
        shared remote tier) and is counted like any other capture.
        """
        return self.engine.captured_trace(job.trace_spec())

    def prefetch(self, jobs: Iterable[KernelJob]) -> None:
        """Execute a batch of jobs up front (in parallel when engine.jobs > 1).

        Subsequent ``run_mve``/``run_rvv`` calls for the same jobs answer
        from the engine memo; experiments call this with their full job set
        so the serial result-assembly loop below stays trivially cheap.
        """
        self.engine.run_jobs(list(jobs))

    def run_mve(
        self,
        name: str,
        scale: Optional[float] = None,
        config: Optional[MachineConfig] = None,
        scheme_name: Optional[str] = None,
        **kernel_kwargs,
    ) -> KernelRun:
        """Simulate the MVE implementation of a kernel."""
        return self._run(
            self.job(name, "mve", scale=scale, config=config, scheme_name=scheme_name, **kernel_kwargs)
        )

    def run_rvv(
        self,
        name: str,
        scale: Optional[float] = None,
        config: Optional[MachineConfig] = None,
        scheme_name: Optional[str] = None,
        **kernel_kwargs,
    ) -> KernelRun:
        """Simulate the 1D (RVV) lowering of a kernel on the same engine."""
        return self._run(
            self.job(name, "rvv", scale=scale, config=config, scheme_name=scheme_name, **kernel_kwargs)
        )

    # -- baseline models (persistent-cached like the simulator jobs) ------ #

    def _baseline_key(
        self, baseline: str, name: str, scale: float, extra: dict, config: MachineConfig
    ) -> str:
        """Cache key mirroring :meth:`KernelJob.cache_key`: full config,
        kernel identity and the source-tree fingerprint."""
        return stable_hash(
            {
                "baseline": baseline,
                "fingerprint": code_fingerprint(),
                "kernel": name,
                "scale": scale,
                "extra": sorted(extra.items()),
                "config": config_digest(config),
            }
        )

    def _baseline_run(self, key: str, result_type, compute):
        """Memo -> persistent store -> ``compute()``, mirroring the engine's
        lookup order for simulation jobs."""
        memo = self._baseline_memo.get(key)
        if memo is not None:
            return memo
        result = load_cached_result(self.engine.store, key, result_type)
        if result is None:
            result = compute()
            store_cached_result(self.engine.store, key, result)
        self._baseline_memo[key] = result
        return result

    def run_neon(
        self,
        name: str,
        scale: Optional[float] = None,
        config: Optional[MachineConfig] = None,
        **kernel_kwargs,
    ) -> NeonResult:
        """The Neon baseline for a kernel, answered from the in-process memo
        or the persistent store when possible (its cache traffic runs on the
        same engine as the MVE simulations, so recomputation is no longer
        trivial)."""
        scale = scale if scale is not None else self.default_scale
        config = config or self.config
        key = self._baseline_key("neon", name, scale, dict(kernel_kwargs), config)
        return self._baseline_run(
            key,
            NeonResult,
            lambda: NeonModel(config).run(
                self._get_kernel(name, scale, **kernel_kwargs).profile()
            ),
        )

    def run_gpu(
        self,
        name: str,
        scale: Optional[float] = None,
        config: Optional[MachineConfig] = None,
        include_transfer: bool = True,
        **kernel_kwargs,
    ) -> GPUResult:
        scale = scale if scale is not None else self.default_scale
        config = config or self.config
        key = self._baseline_key(
            "gpu", name, scale, {"include_transfer": include_transfer, **kernel_kwargs}, config
        )
        return self._baseline_run(
            key,
            GPUResult,
            lambda: GPUModel().run(
                self._get_kernel(name, scale, **kernel_kwargs).profile(),
                include_transfer=include_transfer,
            ),
        )
