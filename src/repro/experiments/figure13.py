"""Figure 13: MVE versus RVV across in-SRAM computing schemes (BS/BH/BP/AC)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.config import MachineConfig, default_config
from ..sram.schemes import SCHEME_NAMES
from .figure10 import kernel_run_parameters
from .registry import register_experiment
from .runner import ExperimentRunner
from .serialize import SerializableResult
from .sweep import SweepSpec

__all__ = [
    "SchemeComparison",
    "Figure13Result",
    "run_figure13",
    "figure13_sweep_spec",
    "FIGURE13_KERNELS",
]

#: representative kernel subset (one per dimensionality class)
FIGURE13_KERNELS = ("csum", "gemm", "intra", "dct")


@dataclass
class SchemeComparison(SerializableResult):
    scheme: str
    #: geometric-mean MVE / RVV execution-time ratio (lower favours MVE)
    time_ratio: float
    mve_breakdown: dict[str, float]
    rvv_breakdown: dict[str, float]

    @property
    def speedup(self) -> float:
        return 1.0 / self.time_ratio if self.time_ratio else float("inf")


@dataclass
class Figure13Result(SerializableResult):
    schemes: list[SchemeComparison]

    def speedup_for(self, scheme: str) -> float:
        for row in self.schemes:
            if row.scheme == scheme:
                return row.speedup
        raise KeyError(scheme)


def figure13_sweep_spec(
    kernels: Sequence[str] = FIGURE13_KERNELS,
    schemes: Sequence[str] = SCHEME_NAMES,
    base_config: Optional[MachineConfig] = None,
) -> SweepSpec:
    """The exact MVE+RVV job set :func:`run_figure13` simulates (shared with the CLI)."""
    return SweepSpec(
        name="figure13",
        kernels=[(name, kernel_run_parameters(name)) for name in kernels],
        kinds=("mve", "rvv"),
        schemes=tuple(schemes),
        base_config=base_config if base_config is not None else default_config(),
    )


def run_figure13(
    runner: Optional[ExperimentRunner] = None,
    kernels: Sequence[str] = FIGURE13_KERNELS,
    schemes: Sequence[str] = SCHEME_NAMES,
) -> Figure13Result:
    runner = runner or ExperimentRunner()
    runner.prefetch(figure13_sweep_spec(kernels, schemes, runner.config).jobs())
    rows = []
    for scheme in schemes:
        ratios = []
        mve_fracs = {"idle": [], "compute": [], "data_access": []}
        rvv_fracs = {"idle": [], "compute": [], "data_access": []}
        for name in kernels:
            params = kernel_run_parameters(name)
            mve = runner.run_mve(name, scheme_name=scheme, **params)
            rvv = runner.run_rvv(name, scheme_name=scheme, **params)
            ratios.append(mve.result.total_cycles / rvv.result.total_cycles)
            for key in mve_fracs:
                mve_fracs[key].append(mve.result.breakdown_fractions()[key])
                rvv_fracs[key].append(rvv.result.breakdown_fractions()[key])
        rows.append(
            SchemeComparison(
                scheme=scheme,
                time_ratio=float(np.exp(np.mean(np.log(ratios)))),
                mve_breakdown={k: float(np.mean(v)) for k, v in mve_fracs.items()},
                rvv_breakdown={k: float(np.mean(v)) for k, v in rvv_fracs.items()},
            )
        )
    return Figure13Result(schemes=rows)


register_experiment(
    name="figure13",
    description="MVE vs RVV across in-SRAM compute schemes (BS/BH/BP/AC)",
    result_type=Figure13Result,
    assemble=lambda runner, options: run_figure13(runner),
    specs=lambda options: (figure13_sweep_spec(base_config=options.config),),
)
