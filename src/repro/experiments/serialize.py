"""Typed (de)serialization for experiment result dataclasses.

Every ``FigureNResult``/``LibraryComparison``/... is a plain dataclass of
scalars, strings, dicts and (lists of) further result dataclasses.  Instead
of hand-writing one ``to_dict``/``from_dict`` pair per class -- and letting
the pairs drift from the field lists -- the classes mix in
:class:`SerializableResult`, which derives both methods from the dataclass
fields and their type hints.  ``from_dict`` rebuilds nested dataclasses,
tuples and numeric types from the hint, so a JSON round trip returns an
object that compares equal to the original; that is what makes experiment
results storable in the persistent :class:`~repro.core.cache.ResultStore`
and exportable from the CLI.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Union, get_args, get_origin, get_type_hints

__all__ = [
    "SerializableResult",
    "dataclass_to_dict",
    "dataclass_from_dict",
    "to_jsonable",
    "flatten",
    "result_rows",
]


def to_jsonable(value: Any) -> Any:
    """``value`` as JSON-encodable primitives (recursing into containers)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        to_dict = getattr(value, "to_dict", None)
        if callable(to_dict):
            return to_dict()
        return dataclass_to_dict(value)
    if isinstance(value, dict):
        return {key: to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    # numpy scalars and other zero-dim array-likes
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return value


def dataclass_to_dict(obj: Any) -> dict:
    """The dataclass' fields as a JSON-serializable dict."""
    return {f.name: to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)}


def _from_hint(hint: Any, value: Any) -> Any:
    """Rebuild ``value`` (fresh from JSON) into the shape ``hint`` declares."""
    if value is None:
        return None
    origin = get_origin(hint)
    if origin is Union:
        non_none = [arg for arg in get_args(hint) if arg is not type(None)]
        if len(non_none) == 1:
            return _from_hint(non_none[0], value)
        return value
    if isinstance(hint, type) and dataclasses.is_dataclass(hint):
        from_dict = getattr(hint, "from_dict", None)
        if callable(from_dict):
            return from_dict(value)
        return dataclass_from_dict(hint, value)
    if origin is list:
        (element,) = get_args(hint) or (Any,)
        return [_from_hint(element, item) for item in value]
    if origin is tuple:
        args = get_args(hint)
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(_from_hint(args[0], item) for item in value)
        if args:
            return tuple(_from_hint(arg, item) for arg, item in zip(args, value))
        return tuple(value)
    if hint is tuple:
        return tuple(value)
    if origin is dict:
        key_type, value_type = get_args(hint) or (Any, Any)
        return {
            _from_hint(key_type, key): _from_hint(value_type, item)
            for key, item in value.items()
        }
    if hint in (float, int, str, bool):
        return hint(value)
    return value


def dataclass_from_dict(cls: type, data: dict) -> Any:
    """Instantiate ``cls`` from :func:`dataclass_to_dict` output (inverse)."""
    hints = get_type_hints(cls)
    kwargs = {}
    for field in dataclasses.fields(cls):
        if field.name in data:
            kwargs[field.name] = _from_hint(hints.get(field.name, Any), data[field.name])
    return cls(**kwargs)


class SerializableResult:
    """Mixin deriving ``to_dict``/``from_dict`` from the dataclass fields."""

    def to_dict(self) -> dict:
        """JSON-serializable form, the inverse of :meth:`from_dict`."""
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict):
        """Rebuild an instance comparing equal to the one serialized."""
        return dataclass_from_dict(cls, data)


# ---------------------------------------------------------------------- #
#  Tabular views (CSV export, CLI rendering)
# ---------------------------------------------------------------------- #


def flatten(mapping: dict, prefix: str = "") -> dict:
    """One-level dict with dotted keys; nested lists become JSON strings."""
    flat: dict = {}
    for key, value in mapping.items():
        full = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(flatten(value, f"{full}."))
        elif isinstance(value, (list, tuple)):
            flat[full] = json.dumps(to_jsonable(value))
        else:
            flat[full] = value
    return flat


def result_rows(data: dict) -> list[dict]:
    """A serialized result as flat rows, one per element of each list field.

    Every top-level field holding a list of records (or a dict of records,
    like Table I's per-ISA feature map) contributes one row per record with
    a ``section`` column naming the field; the remaining scalar fields are
    gathered into a single trailing ``summary`` row.  This is the shape the
    CSV export and the CLI's table rendering share.
    """
    rows: list[dict] = []
    scalars: dict = {}
    for key, value in data.items():
        if isinstance(value, list) and value and all(isinstance(v, dict) for v in value):
            for record in value:
                rows.append({"section": key, **flatten(record)})
        elif isinstance(value, dict) and value and all(
            isinstance(v, dict) for v in value.values()
        ):
            for name, record in value.items():
                rows.append({"section": key, "key": name, **flatten(record)})
        else:
            scalars[key] = value
    if scalars:
        rows.append({"section": "summary", **flatten(scalars)})
    return rows
