"""Canonical export rendering: one byte-exact surface for CLI and HTTP.

Every consumer of an assembled experiment result -- ``python -m repro run
--export``, the read API (``GET /v1/experiments/<name>`` on
:class:`~repro.core.cache_service.CacheServer`) and the static dataset
exporter (``python -m repro export``) -- renders through this module, so
the same store entry always produces the same bytes no matter which door
it leaves through.  JSON documents are ``json.dumps(payload, indent=2,
sort_keys=True)`` plus a trailing newline; CSV documents are the payload's
row view through :class:`csv.DictWriter` (RFC-4180 ``\r\n`` terminators,
columns in first-seen order).

The payload builders are pure functions of the stored result: an
experiment payload deliberately carries no timings, hostnames or other
run-local noise, which is what makes "served bytes == exported bytes"
a testable identity rather than an aspiration.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Optional, TextIO

from .serialize import flatten, result_rows

__all__ = [
    "EXPORT_SCHEMA_VERSION",
    "columns",
    "experiment_export_payload",
    "explore_export_payload",
    "export_rows",
    "export_static_dataset",
    "paged_rows",
    "render_payload",
    "render_rows_csv",
    "rows_to_csv",
    "schema_outline",
    "sweep_export_payload",
]

#: bump when the structure of exported JSON/CSV payloads changes
EXPORT_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------- #
#  Payload builders
# ---------------------------------------------------------------------- #


def experiment_export_payload(name: str, options, result) -> dict:
    """The canonical export document for one assembled experiment result.

    ``result`` may be the result dataclass or its already-serialized dict
    (the raw ``record["result"]`` a store backend holds); both produce the
    same document, because ``to_dict``/``from_dict`` round trips are
    bit-exact.
    """
    result_dict = result if isinstance(result, dict) else result.to_dict()
    return {
        "schema": EXPORT_SCHEMA_VERSION,
        "experiment": name,
        "options": options.to_dict(),
        "result": result_dict,
    }


def sweep_export_payload(sweep) -> dict:
    """The JSON document ``run --sweep/--kernels --export json`` writes."""
    return {
        "schema": EXPORT_SCHEMA_VERSION,
        "sweep": sweep.spec.name,
        "elapsed_s": sweep.elapsed_s,
        "jobs": [
            {
                "kernel": job.kernel,
                "kind": job.kind,
                "scale": job.scale,
                "kwargs": dict(job.kwargs),
                "scheme": job.scheme_name,
                "cache_key": job.cache_key(),
                "source": outcome.source,
                "spills": outcome.spills,
                "result": outcome.result.to_dict(),
            }
            for job, outcome in sweep.outcomes.items()
        ],
    }


def explore_export_payload(space, state, elapsed_s: float = 0.0) -> dict:
    """The JSON document ``explore export`` / ``explore run --export`` writes.

    ``space`` is a :class:`~repro.explore.space.SearchSpace` and ``state``
    the :class:`~repro.explore.state.SearchState` to publish; the frontier
    rows carry the full serialized :class:`PointMetrics` (cycles, time,
    energy breakdown, area report) per surviving point.
    """
    return {
        "schema": EXPORT_SCHEMA_VERSION,
        "explore": {
            "kernel": space.kernel,
            "kind": space.kind,
            "scale": space.scale,
            "strategy": state.strategy,
            "seed": state.seed,
            "objectives": list(state.objectives),
            "space_size": space.size,
            "evaluated": len(state.evaluated),
            "simulated": state.simulated_total,
            "rounds": len(state.rounds),
            "done": state.done,
        },
        "space": space.to_dict(),
        "elapsed_s": elapsed_s,
        "frontier": [member.to_dict() for member in state.frontier],
    }


def schema_outline(payload) -> object:
    """The type-shape of a JSON payload, independent of its values.

    Dicts keep their (sorted) keys, lists collapse to the outline of their
    first element, and scalars become type names.  Two exports of the same
    experiment at different dataset scales produce the same outline, which
    is what the CI schema-drift gate compares against the checked-in golden.
    """
    if isinstance(payload, dict):
        return {key: schema_outline(value) for key, value in sorted(payload.items())}
    if isinstance(payload, list):
        return [schema_outline(payload[0])] if payload else []
    if isinstance(payload, bool):
        return "bool"
    if isinstance(payload, int):
        return "int"
    if isinstance(payload, float):
        return "float"
    if payload is None:
        return "null"
    return "str"


# ---------------------------------------------------------------------- #
#  Tabular views and rendering
# ---------------------------------------------------------------------- #


def export_rows(payload: dict) -> list[dict]:
    """The row-oriented view of any export payload (the CSV body)."""
    if "jobs" in payload:  # sweep payload: one row per job
        return [flatten(job) for job in payload["jobs"]]
    if "frontier" in payload:  # explore payload: one row per frontier point
        return [flatten(member) for member in payload["frontier"]]
    return result_rows(payload["result"])


def columns(rows: list[dict]) -> list[str]:
    """Union of row keys, preserving first-seen order."""
    ordered: list[str] = []
    for row in rows:
        for key in row:
            if key not in ordered:
                ordered.append(key)
    return ordered


def rows_to_csv(rows: list[dict], out: TextIO, fieldnames: Optional[list[str]] = None) -> None:
    writer = csv.DictWriter(out, fieldnames=fieldnames or columns(rows), restval="")
    writer.writeheader()
    writer.writerows(rows)


def render_rows_csv(rows: list[dict], fieldnames: Optional[list[str]] = None) -> bytes:
    """``rows`` as CSV bytes (``\\r\\n`` terminators, UTF-8)."""
    buffer = io.StringIO()
    rows_to_csv(rows, buffer, fieldnames=fieldnames)
    return buffer.getvalue().encode("utf-8")


def render_payload(payload: dict, fmt: str) -> bytes:
    """An export payload as the exact bytes every surface emits.

    Bytes, not text: the CSV representation carries ``\\r\\n`` terminators
    that a text-mode file write would mangle on platforms with newline
    translation, and the HTTP layer needs a byte count for Content-Length
    anyway.
    """
    if fmt == "json":
        return (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
    if fmt == "csv":
        return render_rows_csv(export_rows(payload))
    raise ValueError(f"unknown export format {fmt!r} (choose json or csv)")


def paged_rows(
    payload: dict, offset: int, limit: Optional[int]
) -> tuple[list[dict], list[str], int]:
    """An ``offset``/``limit`` window over the payload's row view.

    Returns ``(window, columns, total)`` with ``columns`` computed over the
    *full* row set, so every page of one document shares one header.
    """
    rows = export_rows(payload)
    offset = max(0, offset)
    end = None if limit is None else offset + max(0, limit)
    return rows[offset:end], columns(rows), len(rows)


# ---------------------------------------------------------------------- #
#  Static dataset exporter
# ---------------------------------------------------------------------- #


def export_static_dataset(
    store, out_dir: str | Path, names: list[str], options
) -> tuple[Optional[dict], list[dict]]:
    """Render ``names`` from a warm ``store`` into a static dataset directory.

    Zero simulation by construction: results come exclusively from
    :func:`~repro.experiments.registry.load_assembled`.  All-or-nothing --
    when any experiment is cold the return is ``(None, missing)`` with one
    ``{"name", "key"}`` entry per absent result and *nothing* is written,
    so a published directory can never hold a partial dataset.  On success
    the directory holds ``<name>.json`` + ``<name>.csv`` per experiment
    (byte-identical to the CLI export and the read API) plus an
    ``index.json`` manifest, and the return is ``(manifest, [])``.
    """
    from .registry import get_experiment, load_assembled

    loaded = []
    missing: list[dict] = []
    for name in names:
        experiment = get_experiment(name)
        key = experiment.cache_key(options)
        result = load_assembled(name, store, options)
        if result is None:
            missing.append({"name": name, "key": key})
        else:
            loaded.append((experiment, key, result))
    if missing:
        return None, missing

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    entries = []
    for experiment, key, result in loaded:
        payload = experiment_export_payload(experiment.name, options, result)
        json_bytes = render_payload(payload, "json")
        csv_bytes = render_payload(payload, "csv")
        (out_dir / f"{experiment.name}.json").write_bytes(json_bytes)
        (out_dir / f"{experiment.name}.csv").write_bytes(csv_bytes)
        entries.append(
            {
                "name": experiment.name,
                "description": experiment.description,
                "uses_scale": experiment.uses_scale,
                "key": key,
                "files": {
                    "json": f"{experiment.name}.json",
                    "csv": f"{experiment.name}.csv",
                },
                "bytes": {"json": len(json_bytes), "csv": len(csv_bytes)},
                "rows": len(export_rows(payload)),
            }
        )
    # No timestamps: the manifest is a pure function of the store content,
    # so re-exporting an unchanged store is byte-stable (and CI-diffable).
    manifest = {
        "schema": EXPORT_SCHEMA_VERSION,
        "options": options.to_dict(),
        "experiments": entries,
    }
    (out_dir / "index.json").write_bytes(
        (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode("utf-8")
    )
    return manifest, []
