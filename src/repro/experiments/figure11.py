"""Figure 11: dynamic instruction distribution, MVE versus RVV.

This is a different view of the same runs as Figure 10: the per-category
vector instruction distribution (config / move / memory / arithmetic) and
the dynamic scalar instruction count, both normalized to RVV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .figure10 import Figure10Result, figure10_sweep_spec, run_figure10
from .registry import register_experiment
from .runner import ExperimentRunner
from .serialize import SerializableResult

__all__ = ["InstructionMix", "Figure11Result", "run_figure11"]


@dataclass
class InstructionMix(SerializableResult):
    kernel: str
    dims: str
    #: per-category dynamic vector instruction counts
    mve_counts: dict[str, int]
    rvv_counts: dict[str, int]
    mve_scalar: int
    rvv_scalar: int

    def mve_fraction_of_rvv(self) -> float:
        """Total MVE vector instructions as a fraction of RVV's."""
        rvv_total = max(1, sum(self.rvv_counts.values()))
        return sum(self.mve_counts.values()) / rvv_total


@dataclass
class Figure11Result(SerializableResult):
    kernels: list[InstructionMix]
    mean_vector_reduction: float
    mean_scalar_reduction: float


def run_figure11(
    runner: Optional[ExperimentRunner] = None,
    figure10: Optional[Figure10Result] = None,
) -> Figure11Result:
    """Derive the instruction-mix view from the Figure 10 runs."""
    runner = runner or ExperimentRunner()
    figure10 = figure10 or run_figure10(runner)
    rows = []
    for comparison in figure10.kernels:
        rows.append(
            InstructionMix(
                kernel=comparison.kernel,
                dims=comparison.dims,
                mve_counts=comparison.mve_vector_instructions,
                rvv_counts=comparison.rvv_vector_instructions,
                mve_scalar=comparison.mve_scalar_instructions,
                rvv_scalar=comparison.rvv_scalar_instructions,
            )
        )
    return Figure11Result(
        kernels=rows,
        mean_vector_reduction=figure10.mean_vector_instruction_reduction,
        mean_scalar_reduction=figure10.mean_scalar_instruction_reduction,
    )


register_experiment(
    name="figure11",
    description="dynamic vector/scalar instruction mix, MVE vs RVV",
    result_type=Figure11Result,
    assemble=lambda runner, options: run_figure11(runner),
    # Same runs as Figure 10: the spec is shared, so the jobs come for free
    # when both figures are produced on one engine.
    specs=lambda options: (figure10_sweep_spec(base_config=options.config),),
)
