"""Figure 7: MVE execution time and energy normalized to Arm Neon, per library."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.config import MachineConfig, default_config
from ..workloads import kernels_in_library, library_names
from .registry import register_experiment
from .runner import ExperimentRunner
from .serialize import SerializableResult
from .sweep import SweepSpec

__all__ = ["LibraryComparison", "Figure7Result", "run_figure7", "figure7_sweep_spec"]


def figure7_sweep_spec(
    scale: float = 0.5,
    libraries: Optional[list[str]] = None,
    base_config: Optional[MachineConfig] = None,
) -> SweepSpec:
    """The exact job set :func:`run_figure7` simulates, as a sweep spec.

    Single source of truth shared by the figure's prefetch, the experiment
    registry and the ``python -m repro`` CLI, so they can never drift apart.
    """
    config = base_config if base_config is not None else default_config()
    return SweepSpec(
        name="figure7",
        kernels=[
            (name, {"scale": scale})
            for library in (libraries or library_names())
            for name in kernels_in_library(library)
        ],
        schemes=(config.scheme_name,),
        default_scale=scale,
        base_config=config,
    )


@dataclass
class LibraryComparison(SerializableResult):
    """Per-library aggregate of the MVE vs Neon comparison."""

    library: str
    dims: str
    speedup: float
    energy_ratio: float
    #: MVE execution-time fractions (idle / compute / data access)
    idle_fraction: float
    compute_fraction: float
    data_fraction: float
    kernels: list[str] = field(default_factory=list)

    @property
    def normalized_time_percent(self) -> float:
        """MVE time as a percentage of Neon time (the Figure 7(a) bar height)."""
        return 100.0 / self.speedup

    @property
    def normalized_energy_percent(self) -> float:
        return 100.0 / self.energy_ratio


@dataclass
class Figure7Result(SerializableResult):
    libraries: list[LibraryComparison]
    mean_speedup: float
    mean_energy_ratio: float
    mean_idle_fraction: float
    mean_compute_fraction: float
    mean_data_fraction: float


def run_figure7(
    runner: Optional[ExperimentRunner] = None,
    scale: float = 0.5,
    libraries: Optional[list[str]] = None,
) -> Figure7Result:
    """MVE vs the packed-SIMD Neon baseline over the whole workload suite."""
    runner = runner or ExperimentRunner()
    libraries = libraries or library_names()
    runner.prefetch(figure7_sweep_spec(scale, libraries, runner.config).jobs())

    per_library: list[LibraryComparison] = []
    for library in libraries:
        kernel_list = kernels_in_library(library)
        if not kernel_list:
            continue
        speedups, energy_ratios = [], []
        idles, computes, datas = [], [], []
        for name in kernel_list:
            mve = runner.run_mve(name, scale=scale)
            neon = runner.run_neon(name, scale=scale)
            speedups.append(neon.time_ms / mve.result.time_ms)
            energy_ratios.append(neon.energy_nj / mve.result.energy_nj)
            fractions = mve.result.breakdown_fractions()
            idles.append(fractions["idle"])
            computes.append(fractions["compute"])
            datas.append(fractions["data_access"])
        from ..workloads import library_info

        _, dims = library_info(library)
        per_library.append(
            LibraryComparison(
                library=library,
                dims=dims,
                speedup=float(np.exp(np.mean(np.log(speedups)))),
                energy_ratio=float(np.exp(np.mean(np.log(energy_ratios)))),
                idle_fraction=float(np.mean(idles)),
                compute_fraction=float(np.mean(computes)),
                data_fraction=float(np.mean(datas)),
                kernels=kernel_list,
            )
        )

    speedups = [lib.speedup for lib in per_library]
    energies = [lib.energy_ratio for lib in per_library]
    return Figure7Result(
        libraries=per_library,
        mean_speedup=float(np.exp(np.mean(np.log(speedups)))),
        mean_energy_ratio=float(np.exp(np.mean(np.log(energies)))),
        mean_idle_fraction=float(np.mean([lib.idle_fraction for lib in per_library])),
        mean_compute_fraction=float(np.mean([lib.compute_fraction for lib in per_library])),
        mean_data_fraction=float(np.mean([lib.data_fraction for lib in per_library])),
    )


register_experiment(
    name="figure7",
    description="MVE vs Arm Neon execution time and energy, per library",
    result_type=Figure7Result,
    assemble=lambda runner, options: run_figure7(runner, scale=options.scale),
    specs=lambda options: (figure7_sweep_spec(options.scale, base_config=options.config),),
    uses_scale=True,
)
