"""Experiment modules: one per table/figure of the paper's evaluation.

Every module registers itself with the :mod:`~repro.experiments.registry`,
which makes each table/figure an addressable, serializable experiment:
``run_experiment("figure7")`` (or ``python -m repro run figure7``) replaces
calling the module's ``run_*`` function by hand.
"""

from .registry import (
    Experiment,
    ExperimentOptions,
    all_experiments,
    build_runner,
    experiment_names,
    get_experiment,
    register_experiment,
    run_experiment,
)
from .runner import ExperimentRunner, KernelRun
from .serialize import SerializableResult
from .sweep import (
    JobOutcome,
    KernelJob,
    ParallelSweepEngine,
    SweepResult,
    SweepSpec,
    default_job_count,
    execute_job,
)
from .tables import (
    TablesResult,
    format_table,
    run_tables,
    table1_isa_comparison,
    table2_instruction_latencies,
    table3_libraries,
    table5_area,
    table5_summary,
)
from .figure7 import Figure7Result, LibraryComparison, run_figure7
from .figure8 import Figure8Result, GpuComparison, run_figure8, FIGURE8_KERNELS
from .figure9 import Figure9Result, SweepPoint, run_figure9, GEMM_SWEEP, SPMM_SWEEP
from .figure10 import Figure10Result, RvvComparison, run_figure10, FIGURE10_KERNELS
from .figure11 import Figure11Result, InstructionMix, run_figure11
from .figure12 import (
    Figure12Result,
    Figure12aResult,
    Figure12bResult,
    Figure12cResult,
    run_figure12,
    run_figure12a,
    run_figure12b,
    run_figure12c,
    FIGURE12_KERNELS,
)
from .figure13 import Figure13Result, SchemeComparison, run_figure13, FIGURE13_KERNELS

__all__ = [
    "Experiment",
    "ExperimentOptions",
    "all_experiments",
    "build_runner",
    "experiment_names",
    "get_experiment",
    "register_experiment",
    "run_experiment",
    "ExperimentRunner",
    "KernelRun",
    "SerializableResult",
    "JobOutcome",
    "KernelJob",
    "ParallelSweepEngine",
    "SweepResult",
    "SweepSpec",
    "default_job_count",
    "execute_job",
    "TablesResult",
    "format_table",
    "run_tables",
    "table1_isa_comparison",
    "table2_instruction_latencies",
    "table3_libraries",
    "table5_area",
    "table5_summary",
    "Figure7Result",
    "LibraryComparison",
    "run_figure7",
    "Figure8Result",
    "GpuComparison",
    "run_figure8",
    "FIGURE8_KERNELS",
    "Figure9Result",
    "SweepPoint",
    "run_figure9",
    "GEMM_SWEEP",
    "SPMM_SWEEP",
    "Figure10Result",
    "RvvComparison",
    "run_figure10",
    "FIGURE10_KERNELS",
    "Figure11Result",
    "InstructionMix",
    "run_figure11",
    "Figure12Result",
    "Figure12aResult",
    "Figure12bResult",
    "Figure12cResult",
    "run_figure12",
    "run_figure12a",
    "run_figure12b",
    "run_figure12c",
    "FIGURE12_KERNELS",
    "Figure13Result",
    "SchemeComparison",
    "run_figure13",
    "FIGURE13_KERNELS",
]
