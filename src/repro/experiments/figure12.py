"""Figure 12: Duality Cache comparison, SRAM-array scalability, precision sweep.

(a) MVE's SIMD model versus the Duality Cache SIMT model.
(b) Performance scalability when the engine has 8 to 64 SRAM arrays.
(c) Sensitivity to element precision (fp32 / int32 / fp16 / int16).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..baselines.duality_cache import DualityCacheModel
from ..baselines.neon import NeonModel
from ..baselines.profile import KernelProfile
from ..compiler.pipeline import compile_trace
from ..core.config import MachineConfig, default_config
from ..core.simulator import simulate_kernel
from ..intrinsics.machine import MVEMachine
from ..isa.datatypes import DataType
from ..memory.flatmem import FlatMemory
from .registry import register_experiment
from .runner import ExperimentRunner
from .serialize import SerializableResult
from .sweep import SweepSpec

__all__ = [
    "DualityCacheComparison",
    "ScalabilityPoint",
    "PrecisionPoint",
    "Figure12Result",
    "Figure12aResult",
    "Figure12bResult",
    "Figure12cResult",
    "run_figure12a",
    "run_figure12b",
    "run_figure12c",
    "run_figure12",
    "figure12a_sweep_spec",
    "figure12b_sweep_spec",
    "FIGURE12_KERNELS",
    "FIGURE12B_KERNELS",
    "FIGURE12B_ARRAY_COUNTS",
]

FIGURE12_KERNELS = ("gemm", "spmm", "fir_v", "fir_s", "fir_l")

#: scalability-study subset and engine sizes (Figure 12b)
FIGURE12B_KERNELS = ("gemm", "spmm", "fir_l")
FIGURE12B_ARRAY_COUNTS = (8, 16, 32, 64)

_KERNEL_PARAMS = {
    "gemm": {"scale": 0.5},
    "spmm": {"scale": 0.5},
    "fir_v": {"scale": 0.5},
    "fir_s": {"scale": 0.5},
    "fir_l": {"scale": 0.5},
}


@dataclass
class DualityCacheComparison(SerializableResult):
    kernel: str
    #: Duality Cache / MVE execution time (values > 1 mean MVE is faster)
    dc_over_mve_time: float
    dc_breakdown: dict[str, float]


@dataclass
class ScalabilityPoint(SerializableResult):
    kernel: str
    num_arrays: int
    #: execution time normalized to the 8-array configuration
    normalized_time: float
    breakdown: dict[str, float]


@dataclass
class PrecisionPoint(SerializableResult):
    precision: str
    #: execution time normalized to fp32
    normalized_time: float
    #: MVE speedup over Neon at this precision
    speedup_over_neon: float


@dataclass
class Figure12Result(SerializableResult):
    duality_cache: list[DualityCacheComparison]
    scalability: list[ScalabilityPoint]
    precision: list[PrecisionPoint]
    mean_dc_slowdown: float


@dataclass
class Figure12aResult(SerializableResult):
    """The Duality Cache comparison rows, as a registry-addressable result."""

    rows: list[DualityCacheComparison]


@dataclass
class Figure12bResult(SerializableResult):
    """The SRAM-array scalability points, as a registry-addressable result."""

    points: list[ScalabilityPoint]


@dataclass
class Figure12cResult(SerializableResult):
    """The precision-sensitivity points, as a registry-addressable result."""

    points: list[PrecisionPoint]


def figure12a_sweep_spec(
    kernels: Sequence[str] = FIGURE12_KERNELS,
    base_config: Optional[MachineConfig] = None,
) -> SweepSpec:
    """The exact MVE job set :func:`run_figure12a` simulates (shared with the CLI)."""
    config = base_config if base_config is not None else default_config()
    return SweepSpec(
        name="figure12a",
        kernels=[(name, _KERNEL_PARAMS.get(name, {"scale": 0.5})) for name in kernels],
        schemes=(config.scheme_name,),
        base_config=config,
    )


def figure12b_sweep_spec(
    kernels: Sequence[str] = FIGURE12B_KERNELS,
    array_counts: Sequence[int] = FIGURE12B_ARRAY_COUNTS,
    base_config: Optional[MachineConfig] = None,
) -> SweepSpec:
    """The exact MVE job set :func:`run_figure12b` simulates (shared with the CLI)."""
    config = base_config if base_config is not None else default_config()
    return SweepSpec(
        name="figure12b",
        kernels=[(name, _KERNEL_PARAMS.get(name, {"scale": 0.5})) for name in kernels],
        schemes=(config.scheme_name,),
        array_counts=tuple(array_counts),
        base_config=config,
    )


def run_figure12a(
    runner: Optional[ExperimentRunner] = None,
    kernels: Sequence[str] = FIGURE12_KERNELS,
) -> list[DualityCacheComparison]:
    """MVE (SIMD) versus Duality Cache (SIMT) on the same engine."""
    runner = runner or ExperimentRunner()
    runner.prefetch(figure12a_sweep_spec(kernels, runner.config).jobs())
    rows = []
    for name in kernels:
        params = _KERNEL_PARAMS.get(name, {"scale": 0.5})
        mve = runner.run_mve(name, **params)
        # The SIMT transform consumes the same capture-stage artifact the
        # timing run replayed (engine trace memo / store), instead of
        # re-running the functional machine through kernel.trace_mve.
        trace = runner.captured_trace(runner.job(name, "mve", **params))
        compiled = compile_trace(trace)
        dc_result = DualityCacheModel(config=runner.config).run(compiled.trace)
        rows.append(
            DualityCacheComparison(
                kernel=name,
                dc_over_mve_time=dc_result.total_cycles / mve.result.total_cycles,
                dc_breakdown=dc_result.breakdown_fractions(),
            )
        )
    return rows


def run_figure12b(
    runner: Optional[ExperimentRunner] = None,
    kernels: Sequence[str] = FIGURE12B_KERNELS,
    array_counts: Sequence[int] = FIGURE12B_ARRAY_COUNTS,
) -> list[ScalabilityPoint]:
    """Performance scalability with the number of compute SRAM arrays."""
    runner = runner or ExperimentRunner()
    runner.prefetch(figure12b_sweep_spec(kernels, array_counts, runner.config).jobs())
    points = []
    for name in kernels:
        params = _KERNEL_PARAMS.get(name, {"scale": 0.5})
        baseline_cycles = None
        for count in array_counts:
            config = runner.config.with_arrays(count)
            run = runner.run_mve(name, config=config, **params)
            if baseline_cycles is None:
                baseline_cycles = run.result.total_cycles
            points.append(
                ScalabilityPoint(
                    kernel=name,
                    num_arrays=count,
                    normalized_time=run.result.total_cycles / baseline_cycles,
                    breakdown=run.result.breakdown_fractions(),
                )
            )
    return points


class _PrecisionSweepKernel:
    """Synthetic multiply-accumulate kernel parameterised by element type.

    The suite's kernels each have a fixed element type, so the precision
    sensitivity study uses this small dedicated kernel: an 8K-wide
    ``out = a * b + c`` stream, the core loop of the FIR/GEMM kernels.
    """

    ELEMENTS = 32 * 1024

    def __init__(self, dtype: DataType):
        self.dtype = dtype
        self.memory = FlatMemory()
        count = self.ELEMENTS
        if dtype.is_float:
            data = np.ones(count, dtype=dtype.numpy_dtype)
        else:
            data = np.ones(count, dtype=dtype.numpy_dtype)
        self.a = self.memory.allocate_array(data, dtype)
        self.b = self.memory.allocate_array(data, dtype)
        self.c = self.memory.allocate_array(data, dtype)
        self.out = self.memory.allocate(dtype, count)

    def trace(self, simd_lanes: int = 8192):
        machine = MVEMachine(self.memory, simd_lanes=simd_lanes)
        machine.vsetdimc(1)
        offset = 0
        element_bytes = self.dtype.bytes
        while offset < self.ELEMENTS:
            tile = min(simd_lanes, self.ELEMENTS - offset)
            machine.scalar(8)
            machine.vsetdiml(0, tile)
            a = machine.vsld(self.dtype, self.a.address + offset * element_bytes, (1,))
            b = machine.vsld(self.dtype, self.b.address + offset * element_bytes, (1,))
            c = machine.vsld(self.dtype, self.c.address + offset * element_bytes, (1,))
            machine.vsst(
                machine.vadd(machine.vmul(a, b), c),
                self.out.address + offset * element_bytes,
                (1,),
            )
            offset += tile
        return machine.trace

    def profile(self) -> KernelProfile:
        return KernelProfile(
            name=f"mac_{self.dtype.suffix}",
            element_bits=self.dtype.bits,
            is_float=self.dtype.is_float,
            elements=self.ELEMENTS,
            ops_per_element={"mac": 1.0},
            bytes_read=self.ELEMENTS * self.dtype.bytes * 3,
            bytes_written=self.ELEMENTS * self.dtype.bytes,
        )


def run_figure12c(
    config: Optional[MachineConfig] = None,
    precisions: Sequence[DataType] = (
        DataType.FLOAT32,
        DataType.INT32,
        DataType.FLOAT16,
        DataType.INT16,
    ),
) -> list[PrecisionPoint]:
    """Execution time and Neon-relative speedup at different precisions."""
    config = config or default_config()
    neon = NeonModel(config)
    points = []
    baseline_time = None
    for dtype in precisions:
        kernel = _PrecisionSweepKernel(dtype)
        result, _ = simulate_kernel(kernel.trace(config.simd_lanes), config=config)
        neon_result = neon.run(kernel.profile())
        if baseline_time is None:
            baseline_time = result.total_cycles
        points.append(
            PrecisionPoint(
                precision=dtype.name,
                normalized_time=result.total_cycles / baseline_time,
                speedup_over_neon=neon_result.time_ms / result.time_ms,
            )
        )
    return points


def run_figure12(runner: Optional[ExperimentRunner] = None) -> Figure12Result:
    runner = runner or ExperimentRunner()
    duality = run_figure12a(runner)
    scalability = run_figure12b(runner)
    precision = run_figure12c(runner.config)
    return Figure12Result(
        duality_cache=duality,
        scalability=scalability,
        precision=precision,
        mean_dc_slowdown=float(
            np.exp(np.mean(np.log([row.dc_over_mve_time for row in duality])))
        ),
    )


register_experiment(
    name="figure12a",
    description="Duality Cache (SIMT) vs MVE (SIMD) on the same engine",
    result_type=Figure12aResult,
    assemble=lambda runner, options: Figure12aResult(rows=run_figure12a(runner)),
    specs=lambda options: (figure12a_sweep_spec(base_config=options.config),),
)

register_experiment(
    name="figure12b",
    description="performance scalability from 8 to 64 SRAM arrays",
    result_type=Figure12bResult,
    assemble=lambda runner, options: Figure12bResult(points=run_figure12b(runner)),
    specs=lambda options: (figure12b_sweep_spec(base_config=options.config),),
)

register_experiment(
    name="figure12c",
    description="sensitivity to element precision (fp32/int32/fp16/int16)",
    result_type=Figure12cResult,
    # Runs the simulator directly on a synthetic kernel: no engine job set.
    assemble=lambda runner, options: Figure12cResult(
        points=run_figure12c(config=runner.config)
    ),
)

register_experiment(
    name="figure12",
    description="Duality Cache comparison + array scalability + precision",
    result_type=Figure12Result,
    assemble=lambda runner, options: run_figure12(runner),
    specs=lambda options: (
        figure12a_sweep_spec(base_config=options.config),
        figure12b_sweep_spec(base_config=options.config),
    ),
)
