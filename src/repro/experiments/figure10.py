"""Figures 10 and 11: MVE versus RISC-V RVV on the same bit-serial engine.

Figure 10 compares execution time (idle / compute / data-access breakdown)
and Figure 11 compares the dynamic vector-instruction distribution and the
scalar instruction count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.config import MachineConfig, default_config
from .registry import register_experiment
from .runner import ExperimentRunner
from .serialize import SerializableResult
from .sweep import SweepSpec

__all__ = [
    "RvvComparison",
    "Figure10Result",
    "run_figure10",
    "figure10_sweep_spec",
    "FIGURE10_KERNELS",
    "kernel_run_parameters",
]

#: kernels with their dimensionality label, as in Figures 10/11
FIGURE10_KERNELS = (
    ("csum", "1D"),
    ("lpack", "1D"),
    ("fir_s", "1D"),
    ("gemm", "2D"),
    ("spmm", "2D"),
    ("satd", "3D"),
    ("intra", "3D"),
    ("dct", "3D"),
    ("idct", "3D"),
)


def kernel_run_parameters(name: str) -> dict:
    """Dataset parameters used for the RVV comparison.

    The matrix kernels use wide output matrices (CNN-layer-like shapes) so
    that the per-segment overhead of the 1D ISA matches the regime the paper
    describes; the block kernels use a reduced block count to keep the RVV
    traces tractable.
    """
    if name == "gemm":
        return {"scale": 1.0, "n": 64, "k": 32, "m": 512}
    if name == "spmm":
        return {"scale": 1.0, "n": 64, "k": 128, "m": 512, "nnz": 8}
    if name in ("dct", "idct", "satd"):
        return {"scale": 0.125}
    if name == "intra":
        return {"scale": 0.5}
    return {"scale": 0.5}


@dataclass
class RvvComparison(SerializableResult):
    kernel: str
    dims: str
    #: MVE / RVV execution time (lower is better for MVE)
    time_ratio: float
    #: RVV / MVE dynamic vector instruction count
    vector_instruction_ratio: float
    #: RVV / MVE dynamic scalar instruction count
    scalar_instruction_ratio: float
    mve_breakdown: dict[str, float]
    rvv_breakdown: dict[str, float]
    mve_vector_instructions: dict[str, int]
    rvv_vector_instructions: dict[str, int]
    mve_scalar_instructions: int
    rvv_scalar_instructions: int
    mve_cb_utilization: float
    rvv_cb_utilization: float


@dataclass
class Figure10Result(SerializableResult):
    kernels: list[RvvComparison]
    mean_speedup_over_rvv: float
    mean_vector_instruction_reduction: float
    mean_scalar_instruction_reduction: float
    mean_mve_cb_utilization: float
    mean_rvv_cb_utilization: float


def figure10_sweep_spec(base_config: Optional[MachineConfig] = None) -> SweepSpec:
    """The exact MVE+RVV job set :func:`run_figure10` simulates (shared with the CLI)."""
    config = base_config if base_config is not None else default_config()
    return SweepSpec(
        name="figure10",
        kernels=[(name, kernel_run_parameters(name)) for name, _ in FIGURE10_KERNELS],
        kinds=("mve", "rvv"),
        schemes=(config.scheme_name,),
        base_config=config,
    )


def run_figure10(runner: Optional[ExperimentRunner] = None) -> Figure10Result:
    runner = runner or ExperimentRunner()
    runner.prefetch(figure10_sweep_spec(runner.config).jobs())
    rows: list[RvvComparison] = []
    for name, dims in FIGURE10_KERNELS:
        params = kernel_run_parameters(name)
        mve = runner.run_mve(name, **params)
        rvv = runner.run_rvv(name, **params)
        rows.append(
            RvvComparison(
                kernel=name,
                dims=dims,
                time_ratio=mve.result.total_cycles / rvv.result.total_cycles,
                vector_instruction_ratio=(
                    rvv.result.vector_instruction_total
                    / max(1, mve.result.vector_instruction_total)
                ),
                scalar_instruction_ratio=(
                    rvv.result.scalar_instructions / max(1, mve.result.scalar_instructions)
                ),
                mve_breakdown=mve.result.breakdown_fractions(),
                rvv_breakdown=rvv.result.breakdown_fractions(),
                mve_vector_instructions=dict(mve.result.vector_instructions),
                rvv_vector_instructions=dict(rvv.result.vector_instructions),
                mve_scalar_instructions=mve.result.scalar_instructions,
                rvv_scalar_instructions=rvv.result.scalar_instructions,
                mve_cb_utilization=mve.result.cb_utilization,
                rvv_cb_utilization=rvv.result.cb_utilization,
            )
        )
    speedups = [1.0 / row.time_ratio for row in rows]
    return Figure10Result(
        kernels=rows,
        mean_speedup_over_rvv=float(np.exp(np.mean(np.log(speedups)))),
        mean_vector_instruction_reduction=float(
            np.exp(np.mean(np.log([row.vector_instruction_ratio for row in rows])))
        ),
        mean_scalar_instruction_reduction=float(
            np.exp(np.mean(np.log([row.scalar_instruction_ratio for row in rows])))
        ),
        mean_mve_cb_utilization=float(np.mean([row.mve_cb_utilization for row in rows])),
        mean_rvv_cb_utilization=float(np.mean([row.rvv_cb_utilization for row in rows])),
    )


register_experiment(
    name="figure10",
    description="MVE vs RISC-V RVV execution-time breakdown per kernel",
    result_type=Figure10Result,
    assemble=lambda runner, options: run_figure10(runner),
    specs=lambda options: (figure10_sweep_spec(base_config=options.config),),
)
