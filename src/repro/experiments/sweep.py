"""Declarative kernel sweeps with staged execution and persistent caching.

This is the execution engine underneath every experiment module: a sweep is
the Cartesian product of kernels x lowerings x schemes x machine configs,
each point an independent, deterministic simulation job.  Execution is
staged, mirroring the paper's capture-once/replay-many methodology:

* **Capture** -- jobs are grouped by :class:`~repro.core.traces.TraceSpec`
  (kernel, lowering, scale, kwargs, SIMD lanes); each distinct trace is
  captured exactly once per batch -- or loaded from the
  :class:`~repro.core.traces.TraceStore` namespace of the persistent cache,
  where captures are shared fleet-wide like any other result -- and fanned
  out to every machine configuration in the group.
* **Replay** -- each job replays the shared trace through the timing model;
  configurations with the same register-file geometry also share the
  compiled (scheduled + register-allocated) kernel via
  :func:`~repro.compiler.pipeline.compile_trace_cached`.

The engine also

* deduplicates jobs and answers repeats from an in-process memo,
* answers previously-simulated jobs from the persistent, content-addressed
  :class:`~repro.core.cache.ResultStore` (keyed by the full machine config
  and a source-tree fingerprint, so results can never go stale) -- including
  its remote tier when the store is pointed at a shared cache service
  (``python -m repro serve``), and
* shards the remaining work across a ``ProcessPoolExecutor`` -- simulation
  is pure Python + numpy, so process-level parallelism is the only way to
  use more than one core.  Capture work is pinned to one worker per trace
  group (keeping every capture single-shot even under a pool); replays of
  already-resolved traces are split per batched-replay partition
  (:func:`batch_partitions`): configs sharing a compiled kernel replay
  together through :func:`~repro.core.replay.simulate_trace_batch`, so a
  K-config scheme/cache/DRAM axis costs ~1 decomposed replay instead of K
  (``REPRO_BATCHED_REPLAY=0`` restores the per-job split and loop).

``python -m repro`` exposes the same engine as a batch CLI (with
``python -m repro.sweep`` kept as a deprecated alias); the
:class:`~repro.experiments.runner.ExperimentRunner` sits on top of it so the
figure modules, the experiment registry, the benchmark suite and the example
scripts all share one cache.  :meth:`ParallelSweepEngine.run_jobs` streams
results through an optional ``on_result`` callback as jobs complete, so
callers can report progress and rely on partial batches being persisted.
"""

from __future__ import annotations

import os
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

from ..core.cache import ResultStore, code_fingerprint, config_digest, stable_hash
from ..core.config import MachineConfig, default_config
from ..core.replay import batched_replay_enabled, replay_group_key, simulate_trace_batch
from ..core.results import SimulationResult
from ..core.simulator import simulate_trace
from ..core.traces import TraceArtifact, TraceSpec, TraceStore
from ..isa.instructions import TraceEntry
from ..isa.trace_io import decode_trace
from ..sram.schemes import get_scheme
from .adapters import ExecutionAdapter, LocalPoolAdapter, SerialAdapter

__all__ = [
    "KernelJob",
    "JobOutcome",
    "OnResult",
    "SweepSpec",
    "SweepResult",
    "ParallelSweepEngine",
    "ExecutionAdapter",
    "LocalPoolAdapter",
    "SerialAdapter",
    "batch_partitions",
    "partition_jobs",
    "execute_job",
    "execute_trace_group",
    "execute_trace_group_arena",
    "simulate_traced_group",
    "simulate_traced_job",
    "default_job_count",
]

#: progress callback: ``on_result(job, outcome, completed, total)``
OnResult = Callable[["KernelJob", "JobOutcome", int, int], None]


def default_job_count() -> int:
    """Worker processes to use when the caller does not say: all cores."""
    env = os.environ.get("REPRO_SWEEP_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(
                f"ignoring REPRO_SWEEP_JOBS={env!r}: not an integer; "
                "falling back to the core count",
                RuntimeWarning,
                stacklevel=2,
            )
    return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class KernelJob:
    """One independent simulation: a kernel lowering on one configuration."""

    kernel: str
    kind: str = "mve"  # "mve" or "rvv"
    scale: float = 0.5
    kwargs: tuple[tuple[str, Any], ...] = ()
    scheme_name: str = "bit-serial"
    config: MachineConfig = field(default_factory=default_config)

    def __post_init__(self):
        if self.kind not in ("mve", "rvv"):
            raise ValueError(f"unknown trace kind {self.kind!r}")
        # Normalize so scheme_name and config.scheme_name never disagree:
        # the simulation only reads scheme_name, and without this two jobs
        # describing the same simulation would hash to different cache keys.
        if self.config.scheme_name != self.scheme_name:
            object.__setattr__(self, "config", self.config.with_scheme(self.scheme_name))

    def cache_key(self) -> str:
        """Content hash identifying this job's result in the persistent store."""
        return stable_hash(
            {
                "fingerprint": code_fingerprint(),
                "kernel": self.kernel,
                "kind": self.kind,
                "scale": self.scale,
                "kwargs": list(self.kwargs),
                "scheme": self.scheme_name,
                "config": config_digest(self.config),
            }
        )

    def describe(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self.kwargs)
        suffix = f", {params}" if params else ""
        return f"{self.kernel}/{self.kind} (scale={self.scale}{suffix}, {self.scheme_name})"

    def trace_spec(self) -> TraceSpec:
        """Identity of the capture-stage artifact this job replays.

        Only the SIMD lane count survives from the machine configuration:
        every other config field is a replay-time (timing) parameter, so
        jobs that differ only in those share one captured trace.
        """
        return TraceSpec(
            kernel=self.kernel,
            kind=self.kind,
            scale=self.scale,
            kwargs=self.kwargs,
            simd_lanes=self.config.simd_lanes,
        )


@dataclass
class JobOutcome:
    """Simulation result of one job plus where it came from."""

    result: SimulationResult
    spills: int = 0
    #: "computed", "memo" (in-process), "disk" (local store tier) or
    #: "remote" (answered by the shared cache service)
    source: str = "computed"


def simulate_traced_job(job: KernelJob, trace: Sequence[TraceEntry]) -> JobOutcome:
    """Replay an already-captured trace under one job's configuration."""
    result, compiled = simulate_trace(
        trace, config=job.config, scheme=get_scheme(job.scheme_name)
    )
    return JobOutcome(result=result, spills=compiled.spill_count)


def batch_partitions(jobs: Sequence[KernelJob]) -> list[list[KernelJob]]:
    """Partition jobs (sharing one trace spec) into batched-replay units.

    Jobs in one partition share the compiled kernel
    (:func:`~repro.core.replay.replay_group_key`: register-file geometry) and
    replay together through one :func:`simulate_trace_batch` pass; every
    other config axis -- scheme, cache geometry, DRAM structure/timing, TMU
    and latency knobs -- batches.  Partition order follows first appearance,
    and each partition preserves the input job order."""
    groups: dict[tuple, list[KernelJob]] = {}
    for job in jobs:
        groups.setdefault(replay_group_key(job.config), []).append(job)
    return list(groups.values())


def partition_jobs(jobs: Sequence[KernelJob]) -> list[list[KernelJob]]:
    """Any job set split into the fleet's lease-sized units: first by trace
    spec (one partition replays one captured trace), then by batched-replay
    partition (:func:`batch_partitions`).  Deterministic given the source
    tree -- the coordinator and every worker derive identical partitions,
    whether the jobs came from an experiment or an exploration round."""
    groups: dict[TraceSpec, list[KernelJob]] = {}
    for job in jobs:
        groups.setdefault(job.trace_spec(), []).append(job)
    partitions: list[list[KernelJob]] = []
    for group in groups.values():
        partitions.extend(batch_partitions(group))
    return partitions


def simulate_traced_group(
    jobs: Sequence[KernelJob], trace: Sequence[TraceEntry]
) -> list[JobOutcome]:
    """Replay one resolved trace for every job, batching the config axis.

    With batching enabled (the default), jobs replay through
    :func:`simulate_trace_batch`, which groups them by compiled-kernel
    geometry internally -- a K-config axis costs ~1 decomposed replay instead
    of K.  ``REPRO_BATCHED_REPLAY=0`` (or the scalar cache reference) falls
    back to the per-job loop; outcomes are bit-identical either way."""
    if len(jobs) == 1 or not batched_replay_enabled():
        return [simulate_traced_job(job, trace) for job in jobs]
    replays = simulate_trace_batch(
        trace,
        [job.config for job in jobs],
        schemes=[get_scheme(job.scheme_name) for job in jobs],
    )
    return [
        JobOutcome(result=result, spills=compiled.spill_count)
        for result, compiled in replays
    ]


def _resolve_group_trace(
    spec: TraceSpec,
    payload: Optional[dict],
    trace: Optional[list[TraceEntry]],
) -> tuple[list[TraceEntry], Optional["TraceArtifact"]]:
    """One group's trace from whatever source is at hand.

    Preference order: an already-decoded ``trace``, then a stored
    ``payload`` (a corrupt one degrades to recapture rather than failing
    the group), then a fresh capture.  Returns the trace plus the
    freshly-captured artifact when capture ran (None on reuse) so the
    caller can persist and count it -- encoding is the caller's decision,
    so storeless paths never pay for a payload they would discard.
    Single source of truth for the decode-else-capture contract shared by
    the serial and pool paths.
    """
    if trace is not None:
        return trace, None
    if payload is not None:
        try:
            return decode_trace(payload["trace"]), None
        except (KeyError, TypeError, ValueError):
            pass
    artifact = spec.capture()
    return artifact.trace, artifact


def execute_trace_group(
    jobs: Sequence[KernelJob],
    payload: Optional[dict] = None,
    trace: Optional[list[TraceEntry]] = None,
) -> tuple[list[JobOutcome], Optional[dict]]:
    """Capture (or decode) one shared trace, then replay it for every job.

    All jobs must share one :meth:`KernelJob.trace_spec`.  ``payload`` is a
    stored trace record body (decoded here, in the worker, so the parent
    never pays for traces it only forwards); ``trace`` short-circuits with
    an already-decoded entry list.  Returns the outcomes in job order plus
    the freshly-captured payload when capture ran (None on reuse), so the
    parent can persist it.

    Module-level so worker processes can import it by qualified name.
    """
    trace, artifact = _resolve_group_trace(jobs[0].trace_spec(), payload, trace)
    captured = artifact.to_payload() if artifact is not None else None
    return simulate_traced_group(jobs, trace), captured


def execute_trace_group_arena(
    jobs: Sequence[KernelJob], handle
) -> tuple[list[JobOutcome], Optional[dict]]:
    """Replay one arena-published trace for every job (worker side).

    ``handle`` is a :class:`~repro.core.trace_arena.TraceHandle`; the
    attach goes through the per-process decoded-trace LRU, so only this
    worker's *first* task over a given spec pays the shared-memory decode
    -- later partitions (and later batches, on the persistent pool) reuse
    the same entry list object and therefore also hit the identity-keyed
    compile memo.  Return shape matches :func:`execute_trace_group`
    (captures never happen here: only resolved traces are published).

    Module-level so worker processes can import it by qualified name.
    """
    from ..core.trace_arena import attached_trace

    return simulate_traced_group(jobs, attached_trace(handle)), None


def execute_job(job: KernelJob) -> JobOutcome:
    """Capture the job's lowering and simulate it (the fused path, now a
    one-job staged run with no persistence and therefore no encode).

    Module-level so worker processes can import it by qualified name.
    """
    trace, _ = _resolve_group_trace(job.trace_spec(), None, None)
    return simulate_traced_job(job, trace)


class ParallelSweepEngine:
    """Executes :class:`KernelJob` batches with memoization and sharding.

    *How* the surviving jobs run is delegated to a pluggable
    :class:`~repro.experiments.adapters.ExecutionAdapter`: ``jobs=1``
    (the default for the interactive :class:`ExperimentRunner`) selects
    the in-process :class:`SerialAdapter` -- no pool is ever created --
    and higher counts the :class:`LocalPoolAdapter`; an explicit
    ``adapter`` overrides both.  The fleet worker
    (``python -m repro worker``) drains coordinator-leased partitions
    through this same engine, so every execution path shares one
    cache/counter/trace-resolution implementation.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        adapter: Optional[ExecutionAdapter] = None,
    ):
        if adapter is None:
            adapter = SerialAdapter() if max(1, jobs) == 1 else LocalPoolAdapter(jobs)
        self.adapter = adapter
        #: mirror of ``adapter.jobs`` -- group splitting sizes chunks off it
        self.jobs = max(1, adapter.jobs)
        self.store = store
        self.computed = 0
        self._memo: dict[KernelJob, JobOutcome] = {}
        # -- capture stage state -------------------------------------- #
        self._trace_store = TraceStore(store)
        # Bounded LRU of decoded traces: repeats within a run (and no-store
        # pooled runs, which have no other tier to answer from) hit the
        # memo; everything older is re-answered by the TraceStore.
        self._trace_memo: "OrderedDict[TraceSpec, list[TraceEntry]]" = OrderedDict()
        #: capture invocations per spec; a staged batch performs exactly one
        #: capture per distinct trace spec (asserted by the parity suite)
        self.trace_captures: dict[TraceSpec, int] = {}
        #: distinct specs answered by the persistent store instead of
        #: captured; a set (not an event counter) so the count stays "one per
        #: warm trace" no matter how many chunks, workers or repeat lookups
        #: touch the same payload
        self._trace_store_hit_specs: set[TraceSpec] = set()
        #: multi-config batched replay passes performed (one per partition
        #: of :func:`batch_partitions` with at least two jobs)
        self.batched_replays = 0
        #: shared-memory publishes per spec; the arena contract is exactly
        #: one per distinct resolved trace per batch, no matter how many
        #: partition tasks replay it (asserted by the shm perf smoke)
        self.arena_publishes: dict[TraceSpec, int] = {}
        #: batches answered by an already-live persistent worker pool
        #: (vs. batches that had to create one)
        self.pool_reuses = 0

    @property
    def trace_store_hits(self) -> int:
        """Distinct traces answered by the persistent store this engine's
        lifetime.  Derived from a per-spec set, which structurally prevents
        the historical over-count where a warm single-kernel sweep split
        into ``--jobs`` chunks reported one hit per chunk."""
        return len(self._trace_store_hit_specs)

    @property
    def traces_captured(self) -> int:
        """Total functional-machine capture runs this engine performed."""
        return sum(self.trace_captures.values())

    #: decoded traces kept in memory at once; older entries fall back to
    #: the persistent TraceStore (or recapture, on store-less engines)
    _TRACE_MEMO_CAPACITY = 32

    # ------------------------------------------------------------------ #

    def _count_capture(self, spec: TraceSpec) -> None:
        self.trace_captures[spec] = self.trace_captures.get(spec, 0) + 1

    def _count_arena_publish(self, spec: TraceSpec) -> None:
        self.arena_publishes[spec] = self.arena_publishes.get(spec, 0) + 1

    def _count_pool_reuse(self) -> None:
        self.pool_reuses += 1

    def close(self) -> None:
        """Release adapter-held resources (the persistent worker pool).

        Idempotent; also invoked by ``__del__`` and ``__exit__`` so
        engines used as locals or context managers cannot strand worker
        processes.  A closed engine stays usable -- the next parallel
        batch simply recreates the pool.
        """
        close = getattr(self.adapter, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "ParallelSweepEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass  # interpreter teardown: modules may already be gone

    def _count_store_hit(self, spec: TraceSpec) -> None:
        self._trace_store_hit_specs.add(spec)

    def _count_batched_replays(self, group: Sequence[KernelJob]) -> None:
        """Record the batched replay passes a group's execution performed
        (the parent computes the same geometry partitioning the worker
        does, so pool-side replays are counted without shipping state
        back)."""
        if not batched_replay_enabled():
            return
        for partition in batch_partitions(group):
            if len(partition) > 1:
                self.batched_replays += 1

    def _memo_trace(self, spec: TraceSpec, trace: list[TraceEntry]) -> None:
        self._trace_memo[spec] = trace
        self._trace_memo.move_to_end(spec)
        while len(self._trace_memo) > self._TRACE_MEMO_CAPACITY:
            self._trace_memo.popitem(last=False)

    def _memoized_trace(self, spec: TraceSpec) -> Optional[list[TraceEntry]]:
        trace = self._trace_memo.get(spec)
        if trace is not None:
            self._trace_memo.move_to_end(spec)
        return trace

    def captured_trace(self, spec: TraceSpec) -> list[TraceEntry]:
        """The captured trace for ``spec``: memo, then store, then capture.

        The capture-stage analogue of :meth:`run_jobs`'s per-job lookup;
        experiments that need the raw instruction stream (figure12's
        Duality Cache transform, ``repro trace``) go through here so they
        share captures with the timing pipeline instead of re-running the
        functional machine.
        """
        trace = self._memoized_trace(spec)
        if trace is None:
            artifact = self._trace_store.load(spec)
            if artifact is not None:
                self._count_store_hit(spec)
            else:
                artifact = spec.capture()
                self._count_capture(spec)
                self._trace_store.save(artifact)
            trace = artifact.trace
            self._memo_trace(spec, trace)
        return trace

    def _from_store(self, job: KernelJob) -> Optional[JobOutcome]:
        if self.store is None:
            return None
        payload = self.store.load(job.cache_key())
        if payload is None:
            return None
        source = "remote" if getattr(self.store, "last_tier", None) == "remote" else "disk"
        try:
            return JobOutcome(
                result=SimulationResult.from_dict(payload["result"]),
                spills=int(payload["spills"]),
                source=source,
            )
        except (KeyError, TypeError, ValueError):
            return None

    def _to_store(self, job: KernelJob, outcome: JobOutcome) -> None:
        if self.store is None:
            return
        self.store.store(
            job.cache_key(),
            {"result": outcome.result.to_dict(), "spills": outcome.spills},
        )

    def _resolve_groups(
        self, pending: list[KernelJob]
    ) -> list[tuple[TraceSpec, list[KernelJob], Optional[list[TraceEntry]], Optional[dict]]]:
        """Group uncached jobs by trace spec and resolve each group's trace
        source up front: the in-process trace memo, a stored payload, or
        None (the group must capture)."""
        groups: dict[TraceSpec, list[KernelJob]] = {}
        for job in pending:
            groups.setdefault(job.trace_spec(), []).append(job)
        if self.store is not None:
            unknown = [spec for spec in groups if spec not in self._trace_memo]
            if len(unknown) > 1:
                # Same batched remote probe the job lookup uses: one round
                # trip instead of a guaranteed-404 GET per cold trace.
                self.store.prefetch(spec.cache_key() for spec in unknown)
        tasks = []
        for spec, group in groups.items():
            trace = self._memoized_trace(spec)
            payload = None
            if trace is None:
                # A store hit is only counted once the payload actually
                # decodes (split/serial/worker paths below): a corrupt
                # record recaptures and must not read as hit + capture.
                payload = self._trace_store.load_payload(spec)
            tasks.append((spec, group, trace, payload))
        return tasks

    def _run_group_serial(
        self,
        spec: TraceSpec,
        group: list[KernelJob],
        trace: Optional[list[TraceEntry]],
        payload: Optional[dict],
        emit: Callable[[KernelJob, JobOutcome], None],
    ) -> None:
        """Capture/decode one group's trace in-process and replay it."""
        had_payload = trace is None and payload is not None
        trace, artifact = _resolve_group_trace(spec, payload, trace)
        if artifact is not None:
            self._count_capture(spec)
            self._trace_store.save(artifact)
        elif had_payload:
            self._count_store_hit(spec)
        self._memo_trace(spec, trace)
        self._count_batched_replays(group)
        for job, outcome in zip(group, simulate_traced_group(group, trace)):
            emit(job, outcome)

    def _split_resolved_groups(self, tasks):
        """Split multi-job groups whose trace is already in hand so a worker
        pool can parallelize the replays of a single-kernel multi-config
        sweep.

        With batched replay enabled the split unit is a
        :func:`batch_partitions` partition: one partition is ~one decomposed
        replay pass, so finer chunks would only re-run shared passes in
        separate workers.  With batching off, groups chunk into up to
        ``self.jobs`` slices as before (chunks rather than singletons keep
        the decode and the geometry-keyed compile memo shared within each
        worker).  Groups that still need their capture stay whole --
        splitting them would break the capture-once-per-batch invariant.
        Stored payloads are decoded here (once, in the parent) rather than
        per task in the workers -- single-job groups included, so no task
        ever re-decodes an envelope the parent already resolved; a corrupt
        payload leaves its group whole so it degrades to a single
        recapture."""
        split = []
        for spec, group, trace, payload in tasks:
            if trace is None and payload is not None:
                try:
                    trace = decode_trace(payload["trace"])
                except (KeyError, TypeError, ValueError):
                    payload = None  # corrupt: let the group recapture once
                else:
                    payload = None
                    self._count_store_hit(spec)
                    self._memo_trace(spec, trace)
            if trace is None or len(group) == 1:
                split.append((spec, group, trace, payload))
            elif batched_replay_enabled():
                split.extend(
                    (spec, partition, trace, None)
                    for partition in batch_partitions(group)
                )
            else:
                size = (len(group) + self.jobs - 1) // self.jobs
                split.extend(
                    (spec, group[i : i + size], trace, None)
                    for i in range(0, len(group), size)
                )
        return split

    def _capture_starved_groups(self, tasks):
        """Capture multi-job cold groups in the parent when they would
        starve the pool.

        Capture is the cheap stage; replay dominates.  When there are
        fewer tasks than workers (e.g. a cold single-kernel multi-config
        sweep: one group, one task), running each cold group's capture
        here -- still exactly once per spec -- turns it into a resolved
        group whose replays can then fan out per job."""
        resolved = []
        for spec, group, trace, payload in tasks:
            if trace is None and payload is None and len(group) > 1:
                artifact = spec.capture()
                self._count_capture(spec)
                self._trace_store.save(artifact)
                self._memo_trace(spec, artifact.trace)
                trace = artifact.trace
            resolved.append((spec, group, trace, payload))
        return resolved

    def _execute_streaming(
        self,
        pending: list[KernelJob],
        emit: Callable[[KernelJob, JobOutcome], None],
    ) -> None:
        """Execute ``pending`` in trace groups, calling ``emit(job, outcome)``
        for each job as soon as its result is available (group-completion
        order when a worker pool is used, submission order serially).

        The trace group is the unit of capture: each group captures (or
        loads) its trace once and replays it for every member job, so a
        multi-config sweep runs the functional machine once per distinct
        trace even when sharded across worker processes.  The adapter owns
        the parallelism strategy (pool sharding, partition splitting,
        broken-pool degradation); see :mod:`repro.experiments.adapters`.
        """
        self.adapter.execute(self, pending, emit)

    def run_jobs(
        self,
        jobs: Sequence[KernelJob],
        on_result: Optional[OnResult] = None,
    ) -> dict[KernelJob, JobOutcome]:
        """Execute (or recall) every distinct job; returns job -> outcome.

        When ``on_result`` is given it is called as
        ``on_result(job, outcome, completed, total)`` for every distinct job
        -- cached answers immediately, computed ones as they finish (which is
        out of submission order on the parallel path).  Computed results are
        persisted to the store *before* their callback fires, so partial
        sweep progress survives an interrupted batch.
        """
        return self._run_jobs(jobs, on_result, collect=True)

    def stream_jobs(
        self,
        jobs: Sequence[KernelJob],
        on_result: Optional[OnResult] = None,
    ) -> int:
        """:meth:`run_jobs` without materializing anything: outcomes flow
        through ``on_result`` only, and neither the returned dict nor the
        in-process memo is populated -- peak memory is one in-flight
        partition, independent of batch size, which is what makes
        10^5-job explorations and streaming assemblers safe.  Persistence
        is unchanged (results still hit the store before each callback);
        returns the number of distinct jobs processed.
        """
        distinct = self._run_jobs(jobs, on_result, collect=False)
        return len(distinct)

    def _run_jobs(
        self,
        jobs: Sequence[KernelJob],
        on_result: Optional[OnResult],
        collect: bool,
    ) -> Any:
        distinct = list(dict.fromkeys(jobs))
        total = len(distinct)
        outcomes: dict[KernelJob, JobOutcome] = {}
        completed = 0

        def emit(job: KernelJob, outcome: JobOutcome) -> None:
            nonlocal completed
            if collect:
                outcomes[job] = outcome
            completed += 1
            if on_result is not None:
                on_result(job, outcome, completed, total)

        if self.store is not None:
            unmemoized = [job for job in distinct if job not in self._memo]
            if len(unmemoized) > 1:
                # One batched existence probe against a remote cache tier
                # instead of a guaranteed-404 GET per cold job (no-op for
                # purely local stores, and not worth a round trip for one).
                self.store.prefetch(job.cache_key() for job in unmemoized)

        pending: list[KernelJob] = []
        for job in distinct:
            memo = self._memo.get(job)
            if memo is not None:
                emit(job, JobOutcome(memo.result, memo.spills, source="memo"))
                continue
            stored = self._from_store(job)
            if stored is not None:
                if collect:
                    self._memo[job] = stored
                emit(job, stored)
                continue
            pending.append(job)

        def record(job: KernelJob, outcome: JobOutcome) -> None:
            self.computed += 1
            if collect:
                self._memo[job] = outcome
            self._to_store(job, outcome)
            emit(job, outcome)

        if pending:
            self._execute_streaming(pending, record)
        if not collect:
            return distinct
        # Return in the caller's job order regardless of completion order.
        return {job: outcomes[job] for job in distinct}

    def run_one(self, job: KernelJob) -> JobOutcome:
        return self.run_jobs([job])[job]


# ---------------------------------------------------------------------- #
#  Declarative sweeps
# ---------------------------------------------------------------------- #


@dataclass
class SweepSpec:
    """The Cartesian product of kernels x kinds x schemes x configurations.

    ``kernels`` maps a kernel name to its run parameters; ``scale`` inside
    the parameter dict overrides ``default_scale``, everything else is
    forwarded to the kernel constructor.  Adding a new sweep axis means
    adding a field here and expanding it in :meth:`jobs` -- the engine and
    cache key handle any ``MachineConfig`` change automatically.
    """

    name: str = "sweep"
    kernels: Sequence[tuple[str, Mapping[str, Any]]] = ()
    kinds: Sequence[str] = ("mve",)
    schemes: Sequence[str] = ("bit-serial",)
    #: engine-size axis; None keeps the base config's array count
    array_counts: Optional[Sequence[int]] = None
    default_scale: float = 0.5
    base_config: MachineConfig = field(default_factory=default_config)

    def configs(self) -> list[MachineConfig]:
        if not self.array_counts:
            return [self.base_config]
        return [self.base_config.with_arrays(count) for count in self.array_counts]

    def jobs(self) -> list[KernelJob]:
        expanded: list[KernelJob] = []
        for kernel, params in self.kernels:
            params = dict(params)
            scale = params.pop("scale", self.default_scale)
            kwargs = tuple(sorted(params.items()))
            for config in self.configs():
                for scheme in self.schemes:
                    for kind in self.kinds:
                        expanded.append(
                            KernelJob(
                                kernel=kernel,
                                kind=kind,
                                scale=scale,
                                kwargs=kwargs,
                                scheme_name=scheme,
                                config=config,
                            )
                        )
        return expanded


@dataclass
class SweepResult:
    spec: SweepSpec
    outcomes: dict[KernelJob, JobOutcome]
    elapsed_s: float = 0.0

    @property
    def computed(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.source == "computed")

    @property
    def from_cache(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.source != "computed")
