"""Declarative kernel sweeps with parallel execution and persistent caching.

This is the execution engine underneath every experiment module: a sweep is
the Cartesian product of kernels x lowerings x schemes x machine configs,
each point an independent, deterministic simulation job.  The engine

* deduplicates jobs and answers repeats from an in-process memo,
* answers previously-simulated jobs from the persistent, content-addressed
  :class:`~repro.core.cache.ResultStore` (keyed by the full machine config
  and a source-tree fingerprint, so results can never go stale) -- including
  its remote tier when the store is pointed at a shared cache service
  (``python -m repro serve``), so a job computed by any machine in the
  fleet is a hit everywhere, and
* shards the remaining jobs across a ``ProcessPoolExecutor`` -- simulation
  is pure Python + numpy, so process-level parallelism is the only way to
  use more than one core.

``python -m repro`` exposes the same engine as a batch CLI (with
``python -m repro.sweep`` kept as a deprecated alias); the
:class:`~repro.experiments.runner.ExperimentRunner` sits on top of it so the
figure modules, the experiment registry, the benchmark suite and the example
scripts all share one cache.  :meth:`ParallelSweepEngine.run_jobs` streams
results through an optional ``on_result`` callback as jobs complete, so
callers can report progress and rely on partial batches being persisted.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

from ..core.cache import ResultStore, code_fingerprint, config_digest, stable_hash
from ..core.config import MachineConfig, default_config
from ..core.results import SimulationResult
from ..core.simulator import simulate_kernel
from ..sram.schemes import get_scheme
from ..workloads import get_kernel_class

__all__ = [
    "KernelJob",
    "JobOutcome",
    "OnResult",
    "SweepSpec",
    "SweepResult",
    "ParallelSweepEngine",
    "execute_job",
    "default_job_count",
]

#: progress callback: ``on_result(job, outcome, completed, total)``
OnResult = Callable[["KernelJob", "JobOutcome", int, int], None]


def default_job_count() -> int:
    """Worker processes to use when the caller does not say: all cores."""
    env = os.environ.get("REPRO_SWEEP_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(
                f"ignoring REPRO_SWEEP_JOBS={env!r}: not an integer; "
                "falling back to the core count",
                RuntimeWarning,
                stacklevel=2,
            )
    return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class KernelJob:
    """One independent simulation: a kernel lowering on one configuration."""

    kernel: str
    kind: str = "mve"  # "mve" or "rvv"
    scale: float = 0.5
    kwargs: tuple[tuple[str, Any], ...] = ()
    scheme_name: str = "bit-serial"
    config: MachineConfig = field(default_factory=default_config)

    def __post_init__(self):
        if self.kind not in ("mve", "rvv"):
            raise ValueError(f"unknown trace kind {self.kind!r}")
        # Normalize so scheme_name and config.scheme_name never disagree:
        # the simulation only reads scheme_name, and without this two jobs
        # describing the same simulation would hash to different cache keys.
        if self.config.scheme_name != self.scheme_name:
            object.__setattr__(self, "config", self.config.with_scheme(self.scheme_name))

    def cache_key(self) -> str:
        """Content hash identifying this job's result in the persistent store."""
        return stable_hash(
            {
                "fingerprint": code_fingerprint(),
                "kernel": self.kernel,
                "kind": self.kind,
                "scale": self.scale,
                "kwargs": list(self.kwargs),
                "scheme": self.scheme_name,
                "config": config_digest(self.config),
            }
        )

    def describe(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self.kwargs)
        suffix = f", {params}" if params else ""
        return f"{self.kernel}/{self.kind} (scale={self.scale}{suffix}, {self.scheme_name})"


@dataclass
class JobOutcome:
    """Simulation result of one job plus where it came from."""

    result: SimulationResult
    spills: int = 0
    #: "computed", "memo" (in-process), "disk" (local store tier) or
    #: "remote" (answered by the shared cache service)
    source: str = "computed"


def execute_job(job: KernelJob) -> JobOutcome:
    """Build the kernel, trace the requested lowering and simulate it.

    Module-level so worker processes can import it by qualified name.
    """
    kernel = get_kernel_class(job.kernel)(scale=job.scale, **dict(job.kwargs))
    if job.kind == "rvv":
        trace = kernel.trace_rvv(simd_lanes=job.config.simd_lanes)
    else:
        trace = kernel.trace_mve(simd_lanes=job.config.simd_lanes)
    result, compiled = simulate_kernel(
        trace, config=job.config, scheme=get_scheme(job.scheme_name)
    )
    return JobOutcome(result=result, spills=compiled.spill_count if compiled else 0)


class ParallelSweepEngine:
    """Executes :class:`KernelJob` batches with memoization and sharding.

    ``jobs=1`` runs everything in-process (no pool is ever created), which
    is the default for the interactive :class:`ExperimentRunner`; the CLI
    and the benchmark session pass higher counts.
    """

    def __init__(self, jobs: int = 1, store: Optional[ResultStore] = None):
        self.jobs = max(1, jobs)
        self.store = store
        self.computed = 0
        self._memo: dict[KernelJob, JobOutcome] = {}

    # ------------------------------------------------------------------ #

    def _from_store(self, job: KernelJob) -> Optional[JobOutcome]:
        if self.store is None:
            return None
        payload = self.store.load(job.cache_key())
        if payload is None:
            return None
        source = "remote" if getattr(self.store, "last_tier", None) == "remote" else "disk"
        try:
            return JobOutcome(
                result=SimulationResult.from_dict(payload["result"]),
                spills=int(payload["spills"]),
                source=source,
            )
        except (KeyError, TypeError, ValueError):
            return None

    def _to_store(self, job: KernelJob, outcome: JobOutcome) -> None:
        if self.store is None:
            return
        self.store.store(
            job.cache_key(),
            {"result": outcome.result.to_dict(), "spills": outcome.spills},
        )

    def _execute_streaming(
        self,
        pending: list[KernelJob],
        emit: Callable[[KernelJob, JobOutcome], None],
    ) -> None:
        """Execute ``pending``, calling ``emit(job, outcome)`` for each job as
        soon as its result is available (completion order when a worker pool
        is used, submission order on the serial path)."""
        remaining = set(pending)
        if self.jobs > 1 and len(pending) > 1:
            pool = None
            try:
                import multiprocessing

                context = None
                if "fork" in multiprocessing.get_all_start_methods():
                    context = multiprocessing.get_context("fork")
                workers = min(self.jobs, len(pending))
                pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
            except OSError:
                # Restricted environments (fork blocked by seccomp/cgroups):
                # degrade to the serial path rather than failing the sweep.
                pool = None
            if pool is not None:
                with pool:
                    try:
                        futures = {pool.submit(execute_job, job): job for job in pending}
                    except (OSError, BrokenProcessPool):
                        futures = {}
                    for future in as_completed(futures):
                        job = futures[future]
                        try:
                            outcome = future.result()
                        except (OSError, BrokenProcessPool):
                            # Workers killed mid-batch: leave this job for the
                            # serial pass below.
                            continue
                        # emit runs outside the except scopes above so a
                        # callback/persistence error propagates instead of
                        # being mistaken for a broken pool (which would
                        # silently re-simulate already-finished jobs).
                        emit(job, outcome)
                        remaining.discard(job)
        for job in pending:
            if job in remaining:
                emit(job, execute_job(job))

    def run_jobs(
        self,
        jobs: Sequence[KernelJob],
        on_result: Optional[OnResult] = None,
    ) -> dict[KernelJob, JobOutcome]:
        """Execute (or recall) every distinct job; returns job -> outcome.

        When ``on_result`` is given it is called as
        ``on_result(job, outcome, completed, total)`` for every distinct job
        -- cached answers immediately, computed ones as they finish (which is
        out of submission order on the parallel path).  Computed results are
        persisted to the store *before* their callback fires, so partial
        sweep progress survives an interrupted batch.
        """
        distinct = list(dict.fromkeys(jobs))
        total = len(distinct)
        outcomes: dict[KernelJob, JobOutcome] = {}
        completed = 0

        def emit(job: KernelJob, outcome: JobOutcome) -> None:
            nonlocal completed
            outcomes[job] = outcome
            completed += 1
            if on_result is not None:
                on_result(job, outcome, completed, total)

        if self.store is not None:
            unmemoized = [job for job in distinct if job not in self._memo]
            if len(unmemoized) > 1:
                # One batched existence probe against a remote cache tier
                # instead of a guaranteed-404 GET per cold job (no-op for
                # purely local stores, and not worth a round trip for one).
                self.store.prefetch(job.cache_key() for job in unmemoized)

        pending: list[KernelJob] = []
        for job in distinct:
            memo = self._memo.get(job)
            if memo is not None:
                emit(job, JobOutcome(memo.result, memo.spills, source="memo"))
                continue
            stored = self._from_store(job)
            if stored is not None:
                self._memo[job] = stored
                emit(job, stored)
                continue
            pending.append(job)

        def record(job: KernelJob, outcome: JobOutcome) -> None:
            self.computed += 1
            self._memo[job] = outcome
            self._to_store(job, outcome)
            emit(job, outcome)

        if pending:
            self._execute_streaming(pending, record)
        # Return in the caller's job order regardless of completion order.
        return {job: outcomes[job] for job in distinct}

    def run_one(self, job: KernelJob) -> JobOutcome:
        return self.run_jobs([job])[job]


# ---------------------------------------------------------------------- #
#  Declarative sweeps
# ---------------------------------------------------------------------- #


@dataclass
class SweepSpec:
    """The Cartesian product of kernels x kinds x schemes x configurations.

    ``kernels`` maps a kernel name to its run parameters; ``scale`` inside
    the parameter dict overrides ``default_scale``, everything else is
    forwarded to the kernel constructor.  Adding a new sweep axis means
    adding a field here and expanding it in :meth:`jobs` -- the engine and
    cache key handle any ``MachineConfig`` change automatically.
    """

    name: str = "sweep"
    kernels: Sequence[tuple[str, Mapping[str, Any]]] = ()
    kinds: Sequence[str] = ("mve",)
    schemes: Sequence[str] = ("bit-serial",)
    #: engine-size axis; None keeps the base config's array count
    array_counts: Optional[Sequence[int]] = None
    default_scale: float = 0.5
    base_config: MachineConfig = field(default_factory=default_config)

    def configs(self) -> list[MachineConfig]:
        if not self.array_counts:
            return [self.base_config]
        return [self.base_config.with_arrays(count) for count in self.array_counts]

    def jobs(self) -> list[KernelJob]:
        expanded: list[KernelJob] = []
        for kernel, params in self.kernels:
            params = dict(params)
            scale = params.pop("scale", self.default_scale)
            kwargs = tuple(sorted(params.items()))
            for config in self.configs():
                for scheme in self.schemes:
                    for kind in self.kinds:
                        expanded.append(
                            KernelJob(
                                kernel=kernel,
                                kind=kind,
                                scale=scale,
                                kwargs=kwargs,
                                scheme_name=scheme,
                                config=config,
                            )
                        )
        return expanded


@dataclass
class SweepResult:
    spec: SweepSpec
    outcomes: dict[KernelJob, JobOutcome]
    elapsed_s: float = 0.0

    @property
    def computed(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.source == "computed")

    @property
    def from_cache(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.source != "computed")
