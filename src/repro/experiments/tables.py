"""Static table reproductions: Table I, Table II, Table III and Table V."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.area import AreaModel, AreaReport, NEON_AREA_MM2, SCALAR_CORE_AREA_MM2
from ..isa.datatypes import DataType
from ..isa.instructions import Opcode
from ..sram.schemes import BitSerialScheme
from ..workloads import kernels_in_library, library_info, library_names
from .registry import register_experiment
from .serialize import SerializableResult

__all__ = [
    "TablesResult",
    "run_tables",
    "table1_isa_comparison",
    "table2_instruction_latencies",
    "table3_libraries",
    "table5_area",
    "format_table",
]


def format_table(headers: list[str], rows: list[list]) -> str:
    """Plain-text table formatting used by the example scripts and benches."""
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = [
        "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def table1_isa_comparison() -> dict[str, dict[str, str]]:
    """Table I: qualitative ISA feature comparison."""
    return {
        "MVE": {
            "max_vector_length": "infinite",
            "strided_access": "Flexible 4D",
            "random_access": "Random base + strided offset",
            "masked_execution": "Predicate / dimension-level",
        },
        "RISC-V RVV": {
            "max_vector_length": "infinite",
            "strided_access": "Flexible 1D",
            "random_access": "Random offset",
            "masked_execution": "Predicate",
        },
        "Arm SVE": {
            "max_vector_length": "2048 bits",
            "strided_access": "-",
            "random_access": "Random base / random offset",
            "masked_execution": "Predicate",
        },
        "NEC": {
            "max_vector_length": "16384 bits",
            "strided_access": "Constant 2D",
            "random_access": "-",
            "masked_execution": "Predicate",
        },
    }


@dataclass
class InstructionLatency(SerializableResult):
    opcode: str
    category: str
    latency_32bit: int
    latency_formula: str


def table2_instruction_latencies(element_bits: int = 32) -> list[InstructionLatency]:
    """Table II: MVE operations with their bit-serial latency (precision n)."""
    scheme = BitSerialScheme()
    formulas = {
        Opcode.SET_DUP: "n",
        Opcode.SHIFT_IMM: "n",
        Opcode.ROTATE_IMM: "n",
        Opcode.SHIFT_REG: "n log n",
        Opcode.ADD: "n",
        Opcode.SUB: "2n",
        Opcode.MUL: "n^2 + 5n",
        Opcode.MIN: "2n",
        Opcode.MAX: "2n",
        Opcode.XOR: "n",
        Opcode.GT: "n",
        Opcode.LT: "n",
        Opcode.EQ: "n",
        Opcode.COPY: "n",
        Opcode.CONVERT: "n",
    }
    rows = []
    for opcode, formula in formulas.items():
        rows.append(
            InstructionLatency(
                opcode=opcode.value,
                category="arithmetic" if opcode not in (Opcode.COPY, Opcode.CONVERT) else "move",
                latency_32bit=scheme.op_latency(opcode, element_bits),
                latency_formula=formula,
            )
        )
    return rows


def table3_libraries() -> list[dict[str, object]]:
    """Table III: evaluated libraries, their domains and kernel counts."""
    rows = []
    for library in library_names():
        domain, dims = library_info(library)
        kernels = kernels_in_library(library)
        rows.append(
            {
                "library": library,
                "domain": domain,
                "dims": dims,
                "num_kernels": len(kernels),
                "kernels": kernels,
            }
        )
    return rows


def table5_area(num_arrays: int = 32, arrays_per_cb: int = 4) -> AreaReport:
    """Table V: MVE module areas and overhead to the scalar core."""
    return AreaModel(num_arrays=num_arrays, arrays_per_control_block=arrays_per_cb).report()


def table5_summary() -> dict[str, float]:
    report = table5_area()
    return {
        "mve_total_mm2": report.total_mm2,
        "mve_overhead_percent": report.overhead_percent,
        "neon_overhead_percent": 100.0 * NEON_AREA_MM2 / SCALAR_CORE_AREA_MM2,
        "scalar_core_mm2": SCALAR_CORE_AREA_MM2,
    }


@dataclass
class TablesResult(SerializableResult):
    """All static tables of the paper as one serializable result."""

    table1: dict[str, dict[str, str]]
    table2: list[InstructionLatency]
    table3: list[dict]
    table5_modules_mm2: dict[str, float]
    table5: dict[str, float]


def run_tables() -> TablesResult:
    """Reproduce Tables I/II/III/V (analytic: no simulation jobs)."""
    return TablesResult(
        table1=table1_isa_comparison(),
        table2=table2_instruction_latencies(),
        table3=table3_libraries(),
        table5_modules_mm2=dict(table5_area().modules_mm2),
        table5=table5_summary(),
    )


register_experiment(
    name="tables",
    description="Tables I/II/III/V: ISA features, latencies, libraries, area",
    result_type=TablesResult,
    assemble=lambda runner, options: run_tables(),
)
