#!/usr/bin/env python3
"""Video-coding scenario: HEVC transforms and SATD on the in-cache engine.

Runs the Kvazaar-derived kernels (DCT, IDCT, SATD, intra prediction) from
the workload suite, validates them functionally, and compares the four
in-SRAM computing schemes (bit-serial / bit-hybrid / bit-parallel /
associative) on the forward DCT -- the Section VII-C study in miniature.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import simulate_kernel
from repro.sram import SCHEME_NAMES, get_scheme
from repro.workloads import create_kernel

KERNELS = ("dct", "idct", "satd", "intra")
SCALE = 0.25  # 256 8x8 blocks per kernel


def main() -> None:
    print("Validating and simulating the video-coding kernels "
          f"(scale={SCALE}, bit-serial engine)")
    traces = {}
    for name in KERNELS:
        kernel = create_kernel(name, scale=SCALE)
        assert kernel.validate(), f"{name} failed functional validation"
        trace = kernel.trace_mve()
        traces[name] = trace
        result, _ = simulate_kernel(trace)
        fractions = result.breakdown_fractions()
        print(f"  {name:6s}: {result.total_cycles:10.0f} cycles  "
              f"{result.time_us:8.2f} us  "
              f"idle/comp/data = {fractions['idle']:.0%}/{fractions['compute']:.0%}/"
              f"{fractions['data_access']:.0%}  "
              f"lane util {result.lane_utilization:.0%}")

    print("\nForward DCT across in-SRAM computing schemes:")
    for scheme_name in SCHEME_NAMES:
        result, _ = simulate_kernel(traces["dct"], scheme=get_scheme(scheme_name))
        print(f"  {scheme_name:13s}: {result.total_cycles:10.0f} cycles "
              f"(compute {result.compute_cycles:10.0f})")


if __name__ == "__main__":
    main()
