#!/usr/bin/env python3
"""Regenerate the headline numbers of the paper's evaluation section.

Runs every experiment of the registry (Tables I/II/III/V, Figures 7-13) at
a reduced dataset scale and prints the measured values next to the paper's.
Kernel simulations are sharded over worker processes (``--jobs``) and both
the per-kernel simulations and the assembled experiment results are
answered from the persistent sweep cache on repeat runs (disable with
``--no-cache``); the same code paths are exercised with asserts by
``pytest benchmarks/ --benchmark-only`` and served by ``python -m repro``.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.cache import ResultStore
from repro.experiments import (
    ExperimentOptions,
    build_runner,
    default_job_count,
    run_experiment,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs", type=int, default=default_job_count(),
        help="worker processes for kernel simulation (default: all cores)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="bypass the persistent sweep cache"
    )
    args = parser.parse_args()

    runner = build_runner(
        jobs=args.jobs,
        store=None if args.no_cache else ResultStore.default(),
        default_scale=0.5,
    )

    def run(name, scale=0.5):
        return run_experiment(
            name, runner=runner, options=ExperimentOptions(scale=scale),
            use_cache=not args.no_cache,
        )

    area = run("tables").table5
    print("Table V  : MVE area overhead "
          f"{area['mve_overhead_percent']:.2f}% (paper 3.59%), "
          f"Neon {area['neon_overhead_percent']:.1f}% (paper 16.3%)")

    fig7 = run("figure7")
    print(f"Figure 7 : MVE vs Neon speedup {fig7.mean_speedup:.2f}x (paper 2.9x), "
          f"energy reduction {fig7.mean_energy_ratio:.2f}x (paper 8.8x)")

    fig8 = run("figure8")
    print(f"Figure 8 : GPU/MVE time {fig8.mean_time_ratio:.2f}x (paper 9.3x), "
          f"kernel-only {fig8.mean_kernel_only_ratio:.2f}x (paper 2.4x), "
          f"energy {fig8.mean_energy_ratio:.2f}x (paper 5.2x)")

    fig9 = run("figure9")
    gemm_cross = fig9.gemm_crossover_flops
    spmm_cross = fig9.spmm_crossover_flops
    print("Figure 9 : GPU overtakes MVE at "
          f"{gemm_cross / 1e6 if gemm_cross else float('nan'):.1f}M GEMM ops (paper ~6.0M), "
          f"{spmm_cross / 1e6 if spmm_cross else float('nan'):.1f}M SpMM ops (paper ~4.6M)")

    fig10 = run("figure10")
    print(f"Figure 10: speedup over RVV {fig10.mean_speedup_over_rvv:.2f}x (paper 2.0x)")
    print(f"Figure 11: vector instr reduction {fig10.mean_vector_instruction_reduction:.2f}x "
          f"(paper 2.3x), scalar reduction {fig10.mean_scalar_instruction_reduction:.2f}x "
          f"(paper 2.0x)")

    fig12a = run("figure12a").rows
    mean_dc = sum(r.dc_over_mve_time for r in fig12a) / len(fig12a)
    print(f"Figure 12a: Duality Cache slowdown vs MVE {mean_dc:.2f}x (paper ~1.5x)")

    fig12c = run("figure12c").points
    ratios = {p.precision: p.speedup_over_neon for p in fig12c}
    print(f"Figure 12c: speedup over Neon by precision "
          f"fp32 {ratios['FLOAT32']:.2f}x, int32 {ratios['INT32']:.2f}x, "
          f"fp16 {ratios['FLOAT16']:.2f}x, int16 {ratios['INT16']:.2f}x")

    fig13 = run("figure13")
    speedups = {row.scheme: row.speedup for row in fig13.schemes}
    print("Figure 13: MVE speedup over RVV per scheme "
          + ", ".join(f"{name} {value:.2f}x" for name, value in speedups.items())
          + " (paper BS 3.8x, BH 2.8x, BP 1.8x, AC 1.2x)")


if __name__ == "__main__":
    main()
