#!/usr/bin/env python3
"""Quickstart: write an MVE kernel, validate it, and simulate it.

This example walks through the full tool flow on a small image-blend
kernel:

1. allocate inputs in the flat memory model,
2. express the kernel with MVE intrinsics (multi-dimensional strided loads,
   arithmetic, dimension-level configuration),
3. check the functional result against numpy,
4. compile the recorded trace (register allocation + scheduling), and
5. simulate it on the in-cache engine and compare against the Neon model.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import DataType, FlatMemory, MVEMachine, simulate_kernel
from repro.baselines import KernelProfile, NeonModel

# One full in-cache register worth of pixels (32 x 256 = 8192 SIMD lanes).
ROWS, COLS = 32, 256


def main() -> None:
    memory = FlatMemory()
    machine = MVEMachine(memory)

    foreground = np.random.default_rng(0).integers(0, 255, (ROWS, COLS)).astype(np.int32)
    background = np.random.default_rng(1).integers(0, 255, (ROWS, COLS)).astype(np.int32)
    fg = memory.allocate_array(foreground.reshape(-1), DataType.INT32)
    bg = memory.allocate_array(background.reshape(-1), DataType.INT32)
    out = memory.allocate(DataType.INT32, ROWS * COLS)

    # A 2D kernel: blend = (fg + bg) >> 1, processed as (columns, rows) tiles.
    machine.vsetdimc(2)
    machine.vsetdiml(0, COLS)
    machine.vsetdiml(1, ROWS)
    machine.scalar(8)
    fg_vec = machine.vsld(DataType.INT32, fg.address, (1, 2))
    bg_vec = machine.vsld(DataType.INT32, bg.address, (1, 2))
    blended = machine.vshr_imm(machine.vadd(fg_vec, bg_vec), 1)
    machine.vsst(blended, out.address, (1, 2))

    expected = (foreground + background) >> 1
    assert np.array_equal(out.read().reshape(ROWS, COLS), expected), "functional mismatch"
    print(f"functional check passed on {ROWS}x{COLS} pixels")

    result, compiled = simulate_kernel(machine.trace)
    print(f"MVE: {result.total_cycles:.0f} cycles ({result.time_us:.2f} us), "
          f"{result.energy_nj:.0f} nJ, spills={compiled.spill_count}")
    fractions = result.breakdown_fractions()
    print(f"     breakdown: idle {fractions['idle']:.0%}, compute {fractions['compute']:.0%}, "
          f"data access {fractions['data_access']:.0%}")

    profile = KernelProfile(
        name="blend", element_bits=32, is_float=False, elements=ROWS * COLS,
        ops_per_element={"add": 1.0, "shift": 1.0},
        bytes_read=ROWS * COLS * 8, bytes_written=ROWS * COLS * 4,
    )
    neon = NeonModel().run(profile)
    print(f"Neon baseline: {neon.total_cycles:.0f} cycles ({neon.time_ms * 1e3:.2f} us), "
          f"{neon.energy_nj:.0f} nJ")
    print(f"MVE speedup {neon.total_cycles / result.total_cycles:.2f}x, "
          f"energy reduction {neon.energy_nj / result.energy_nj:.2f}x")


if __name__ == "__main__":
    main()
