#!/usr/bin/env python3
"""Machine-learning inference scenario: GEMM / SpMM, MVE vs the mobile GPU.

Sweeps CNN-layer-like matrix sizes (the Figure 9 experiment) to find the
problem size where the GPU's raw throughput overtakes MVE despite its
kernel-launch and data-copy overheads.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import run_experiment


def main() -> None:
    result = run_experiment("figure9")

    print("GEMM sweep (fp32, dense):")
    for point in result.gemm_points:
        winner = "MVE" if point.mve_wins else "GPU"
        print(f"  {str(point.shape):>18s}  {point.flops / 1e6:7.2f}M ops  "
              f"MVE {point.mve_time_ms:8.4f} ms  GPU {point.gpu_time_ms:8.4f} ms  -> {winner}")
    cross = result.gemm_crossover_flops
    print("  crossover:", f"{cross / 1e6:.1f}M ops" if cross else "GPU never wins in this sweep",
          "(paper: ~6.0M)")

    print("\nSpMM sweep (fp32, sparse ELL):")
    for point in result.spmm_points:
        winner = "MVE" if point.mve_wins else "GPU"
        print(f"  {str(point.shape):>18s}  {point.flops / 1e6:7.2f}M ops  "
              f"MVE {point.mve_time_ms:8.4f} ms  GPU {point.gpu_time_ms:8.4f} ms  -> {winner}")
    cross = result.spmm_crossover_flops
    print("  crossover:", f"{cross / 1e6:.1f}M ops" if cross else "GPU never wins in this sweep",
          "(paper: ~4.6M)")


if __name__ == "__main__":
    main()
