"""Benchmark regenerating Figure 10: MVE vs RVV on the same bit-serial engine.

Paper: 2.0x average speedup over RVV; RVV's extra partial accesses and
packing moves show up as idle time on the in-cache engine.
"""

from repro.experiments import format_table


def test_figure10_mve_vs_rvv(benchmark, run):
    result = benchmark.pedantic(run, args=("figure10",), rounds=1, iterations=1)
    rows = [
        [
            row.kernel,
            row.dims,
            f"{row.time_ratio * 100:.1f}%",
            f"{1.0 / row.time_ratio:.2f}x",
            f"{row.mve_cb_utilization * 100:.0f}%",
            f"{row.rvv_cb_utilization * 100:.0f}%",
        ]
        for row in result.kernels
    ]
    print("\nFigure 10 - MVE execution time normalized to RVV")
    print(
        format_table(
            ["kernel", "dims", "MVE/RVV time", "speedup", "MVE CB util", "RVV CB util"], rows
        )
    )
    print(f"mean speedup over RVV {result.mean_speedup_over_rvv:.2f}x (paper 2.0x)")
    assert result.mean_speedup_over_rvv > 1.2
