"""Benchmark regenerating Figure 7: MVE vs Arm Neon, per library.

Paper: 2.9x average speedup, 8.8x average energy reduction; execution time
split roughly 40% idle / 25% compute / 35% data access.
"""

from repro.experiments import format_table


def test_figure7_mve_vs_neon(benchmark, run):
    result = benchmark.pedantic(run, args=("figure7",), rounds=1, iterations=1)
    rows = [
        [
            lib.library,
            lib.dims,
            f"{lib.normalized_time_percent:.1f}%",
            f"{lib.speedup:.2f}x",
            f"{lib.energy_ratio:.2f}x",
            f"{lib.idle_fraction * 100:.0f}/{lib.compute_fraction * 100:.0f}/"
            f"{lib.data_fraction * 100:.0f}",
        ]
        for lib in result.libraries
    ]
    print("\nFigure 7 - MVE normalized to Neon (per library)")
    print(
        format_table(
            ["library", "dims", "MVE/Neon time", "speedup", "energy gain",
             "idle/comp/data %"],
            rows,
        )
    )
    print(
        f"mean speedup {result.mean_speedup:.2f}x (paper 2.9x), "
        f"mean energy reduction {result.mean_energy_ratio:.2f}x (paper 8.8x)"
    )
    # Shape checks: MVE wins on average, and by a sizeable factor on energy.
    assert result.mean_speedup > 1.5
    assert result.mean_energy_ratio > 3.0
