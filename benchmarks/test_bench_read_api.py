"""Perf smoke check for the read API.

The read surface exists to make a warm store cheap to publish: a 304
revalidation must not load or parse the record, and full reads must not
serialize behind a lock.  This check drives keep-alive readers against a
served store and fails if throughput ever regresses to
parse-per-request speed.  Floors are conservative (a laptop does two
orders of magnitude better) so the gate survives slow CI hosts.
"""

import http.client
import threading
import time

from repro.cli import main as cli_main
from repro.core.cache_service import CacheServer

_SCALE = 0.1
_THREADS = 4
_REQUESTS_EACH = 100


def _drive(server, conditional):
    host, port = server.server_address[:2]
    path = f"/v1/experiments/tables?scale={_SCALE}"
    headers = {}
    if conditional:
        probe = http.client.HTTPConnection(host, port, timeout=30)
        probe.request("GET", path)
        response = probe.getresponse()
        response.read()
        headers = {"If-None-Match": response.headers["ETag"]}
        probe.close()
    errors = []

    def reader():
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            for _ in range(_REQUESTS_EACH):
                connection.request("GET", path, headers=headers)
                response = connection.getresponse()
                response.read()
                if response.status not in (200, 304):
                    raise AssertionError(f"status {response.status}")
        except Exception as error:  # noqa: BLE001 - reported below
            errors.append(repr(error))
        finally:
            connection.close()

    threads = [threading.Thread(target=reader) for _ in range(_THREADS)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    elapsed = time.perf_counter() - started
    assert not errors, errors
    return _THREADS * _REQUESTS_EACH / elapsed


def test_read_api_sustains_concurrent_reads(tmp_path):
    cache_dir = tmp_path / "store"
    assert cli_main(["--cache-dir", str(cache_dir), "run", "tables",
                     "--scale", str(_SCALE), "--no-progress"]) == 0
    server = CacheServer(("127.0.0.1", 0), root=cache_dir)
    server.start_in_background()
    try:
        full_rps = _drive(server, conditional=False)
        revalidate_rps = _drive(server, conditional=True)
    finally:
        server.shutdown()
        server.server_close()
    assert full_rps > 20, f"full reads at {full_rps:.0f} req/s"
    assert revalidate_rps > 100, f"304 revalidations at {revalidate_rps:.0f} req/s"
    # The 304 path skips the record load/parse entirely, so it must beat
    # full reads by a wide structural margin, not a rounding error.
    assert revalidate_rps > full_rps * 2, (
        f"revalidations ({revalidate_rps:.0f} req/s) barely beat full reads "
        f"({full_rps:.0f} req/s): is the 304 path loading the record?"
    )
    print(
        f"read API: {full_rps:.0f} req/s full reads, "
        f"{revalidate_rps:.0f} req/s revalidations "
        f"({_THREADS} keep-alive readers)"
    )
