"""Perf smoke check for the staged trace pipeline.

The staged engine exists so a multi-config sweep runs the functional
machine once per distinct trace and replays the capture per configuration
(sharing the compiled kernel when the register-file geometry matches).
This check fails if staging ever regresses to the seed's fused
capture-per-job behaviour.  The comparison is relative (same machine, same
process), so it is robust to slow CI hosts; the absolute numbers recorded
from a quiet host live in ``BENCH_trace_reuse.json``.
"""

import time

from repro.core.simulator import simulate_kernel
from repro.experiments.sweep import ParallelSweepEngine, SweepSpec
from repro.sram.schemes import SCHEME_NAMES, get_scheme
from repro.workloads import get_kernel_class

#: capture-heavy kernels swept over every compute scheme: 12 timing runs
#: but only 3 distinct traces
SPEC = SweepSpec(
    name="trace-reuse",
    kernels=[
        ("gemm", {"scale": 0.5}),
        ("satd", {"scale": 0.25}),
        ("memcpy", {"scale": 0.5}),
    ],
    schemes=SCHEME_NAMES,
)


def _fused_seed_path(jobs) -> None:
    """The seed engine's semantics: every job re-runs the functional machine
    (values recorded) and recompiles before simulating."""
    for job in jobs:
        kernel = get_kernel_class(job.kernel)(scale=job.scale, **dict(job.kwargs))
        trace = kernel.trace_mve(simd_lanes=job.config.simd_lanes)
        simulate_kernel(trace, config=job.config, scheme=get_scheme(job.scheme_name))


def test_staged_sweep_beats_fused_per_job():
    jobs = SPEC.jobs()
    # Warm numpy/import allocation paths so neither side pays first-run cost.
    _fused_seed_path(jobs[:1])

    start = time.perf_counter()
    _fused_seed_path(jobs)
    fused_s = time.perf_counter() - start

    engine = ParallelSweepEngine(jobs=1, store=None)
    start = time.perf_counter()
    outcomes = engine.run_jobs(jobs)
    staged_s = time.perf_counter() - start

    assert len(outcomes) == len(jobs)
    assert engine.traces_captured == len({job.trace_spec() for job in jobs})
    print(
        f"\nfused per-job {fused_s:.2f}s vs staged {staged_s:.2f}s "
        f"({fused_s / max(staged_s, 1e-9):.2f}x, "
        f"{engine.traces_captured} captures for {len(jobs)} jobs)"
    )
    # Expected ~1.5x on this job set; 1.2x leaves headroom for noisy CI
    # hosts while still catching a regression to capture-per-job behaviour.
    assert staged_s * 1.2 < fused_s, (
        f"staged sweep too slow: {staged_s:.2f}s vs fused {fused_s:.2f}s"
    )


def test_warm_trace_store_skips_every_capture(tmp_path):
    """With traces already in the store (e.g. after a timing-model edit
    rolled the result keys but not the functional fingerprint), a sweep
    replays without a single functional-machine run."""
    from repro.core.cache import ResultStore

    jobs = SPEC.jobs()
    store = ResultStore(tmp_path)
    ParallelSweepEngine(jobs=1, store=store).run_jobs(jobs)

    # Drop the results, keep the trace artifacts.
    trace_keys = {job.trace_spec().cache_key() for job in jobs}
    for path in tmp_path.glob("*/*.json"):
        if path.stem not in trace_keys:
            path.unlink()

    replay = ParallelSweepEngine(jobs=1, store=ResultStore(tmp_path))
    outcomes = replay.run_jobs(jobs)
    assert len(outcomes) == len(jobs)
    assert replay.computed == len(jobs)  # results really were cold
    assert replay.traces_captured == 0
    assert replay.trace_store_hits == len(trace_keys)
