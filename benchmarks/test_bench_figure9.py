"""Benchmark regenerating Figure 9: GEMM/SpMM execution time vs problem size.

Paper: MVE wins below roughly 6.0M (GEMM) / 4.6M (SpMM) MAC operations; the
GPU's raw throughput wins above that once launch/copy overheads amortize.
"""

from repro.experiments import format_table


def test_figure9_gemm_spmm_crossover(benchmark, run):
    result = benchmark.pedantic(run, args=("figure9",), rounds=1, iterations=1)

    def rows(points):
        return [
            [
                "x".join(str(s) for s in p.shape),
                f"{p.flops / 1e6:.2f}M",
                f"{p.mve_time_ms:.4f}",
                f"{p.gpu_time_ms:.4f}",
                "MVE" if p.mve_wins else "GPU",
            ]
            for p in points
        ]

    print("\nFigure 9 - GEMM sweep")
    print(format_table(["shape", "ops", "MVE ms", "GPU ms", "winner"], rows(result.gemm_points)))
    print("\nFigure 9 - SpMM sweep")
    print(format_table(["shape", "ops", "MVE ms", "GPU ms", "winner"], rows(result.spmm_points)))
    gemm_cross = result.gemm_crossover_flops
    spmm_cross = result.spmm_crossover_flops
    print(
        f"crossover: GEMM {gemm_cross / 1e6 if gemm_cross else float('inf'):.1f}M ops "
        f"(paper ~6.0M), SpMM {spmm_cross / 1e6 if spmm_cross else float('inf'):.1f}M ops "
        f"(paper ~4.6M)"
    )
    # Shape check: MVE wins the smallest problem in both sweeps.
    assert result.gemm_points[0].mve_wins
    assert result.spmm_points[0].mve_wins
