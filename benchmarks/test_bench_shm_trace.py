"""Perf smoke for the zero-copy trace plane.

A warm-trace multi-kernel sweep repeated batch after batch is the fleet
worker's steady state: traces are already captured, so each batch is
nothing but replay -- plus whatever the execution plane spends on pool
creation, trace shipping and worker-side re-decode/re-compile.  The
shared-memory arena + persistent pool eliminates exactly those costs:
tasks ship tiny segment handles instead of pickled traces, the pool (and
its decoded-trace/compile LRUs) survives across batches, and each
resolved trace is published into shared memory exactly once per batch.

The legacy side below *is* the pre-arena behaviour, reconstructed from
the escape hatches: ``REPRO_SHM_TRACE=0`` (pickled trace shipping) plus
``persistent=False`` (one pool per batch).  The comparison is relative
(same machine, same process) so it is robust to slow CI hosts; absolute
numbers from a quiet host live in ``BENCH_shm_trace_plane.json``.
"""

import os
import statistics
import time

import repro.core.trace_arena as ta
from repro.core.cache import ResultStore
from repro.experiments.adapters import LocalPoolAdapter
from repro.experiments.sweep import KernelJob, ParallelSweepEngine
from repro.sram.schemes import SCHEME_NAMES

#: small structural traces with cheap replays: the batch wall clock is
#: dominated by the execution plane (pool + shipping), which is the thing
#: under test, not by the simulator
KERNELS = (
    ("transpose", 0.25),
    ("transpose", 0.5),
    ("png_filter_up", 0.25),
    ("png_filter_up", 0.5),
)
BATCHES = 6


def sweep_jobs():
    jobs = [
        KernelJob(kernel=kernel, scale=scale, scheme_name=scheme)
        for kernel, scale in KERNELS
        for scheme in SCHEME_NAMES
    ]
    assert len({job.trace_spec() for job in jobs}) == len(KERNELS)
    return jobs


def drop_results_keep_traces(store_root, jobs):
    trace_keys = {job.trace_spec().cache_key() for job in jobs}
    for path in store_root.glob("*/*.json"):
        if path.stem not in trace_keys:
            path.unlink()


def run_batches(store_root, jobs, adapter):
    """One engine, one untimed warm-up batch, ``BATCHES`` timed batches
    (results dropped between batches so every batch really replays).
    Returns (per-batch walls, engine, last batch's outcomes)."""
    engine = ParallelSweepEngine(store=ResultStore(store_root), adapter=adapter)
    walls, last = [], {}
    try:
        for timed in [False] + [True] * BATCHES:
            drop_results_keep_traces(store_root, jobs)
            engine._trace_store_hit_specs.clear()
            last = {}
            start = time.perf_counter()
            done = engine.stream_jobs(
                jobs, on_result=lambda job, out, *_: last.__setitem__(job, out)
            )
            if timed:
                walls.append(time.perf_counter() - start)
            assert done == len(jobs)
    finally:
        engine.close()
    return walls, engine, last


def outcome_map(outcomes):
    return {
        job.cache_key(): (out.result.to_dict(), out.spills)
        for job, out in outcomes.items()
    }


def test_arena_pool_beats_per_batch_pickle_pool(tmp_path, monkeypatch):
    jobs = sweep_jobs()
    ParallelSweepEngine(jobs=1, store=ResultStore(tmp_path)).run_jobs(jobs)

    # Legacy plane: fresh pool every batch, traces pickled into each task.
    monkeypatch.setenv("REPRO_SHM_TRACE", "0")
    legacy_walls, legacy_engine, legacy_last = run_batches(
        tmp_path, jobs, LocalPoolAdapter(jobs=2, persistent=False)
    )
    monkeypatch.delenv("REPRO_SHM_TRACE")

    arena_walls, arena_engine, arena_last = run_batches(
        tmp_path, jobs, LocalPoolAdapter(jobs=2, persistent=True)
    )

    # Same results bit-for-bit, whichever plane shipped the traces.
    assert outcome_map(arena_last) == outcome_map(legacy_last)

    # The contracts that produce the speedup: the legacy side never touched
    # the arena; the arena side published each resolved trace exactly once
    # per batch (warm-up + timed) and reused one pool for every batch after
    # the first.
    assert legacy_engine.arena_publishes == {}
    assert legacy_engine.pool_reuses == 0
    specs = {job.trace_spec() for job in jobs}
    assert arena_engine.arena_publishes == {spec: BATCHES + 1 for spec in specs}
    assert arena_engine.pool_reuses == BATCHES

    # Nothing outlives the engines -- neither in this process's ledger nor
    # on the shm filesystem (the session-wide conftest guard re-checks).
    assert not ta.live_segments()
    shm_dir = os.path.join(os.sep, "dev", "shm")
    if os.path.isdir(shm_dir):
        leaked = [n for n in os.listdir(shm_dir) if n.startswith(ta.ARENA_PREFIX)]
        assert not leaked, f"leaked trace-arena segments: {leaked}"

    # The floor compares median per-batch walls: a single descheduled batch
    # (this is a shared 1-core CI container) must not decide the verdict.
    legacy_s, arena_s = statistics.median(legacy_walls), statistics.median(arena_walls)
    speedup = legacy_s / max(arena_s, 1e-9)
    print(
        f"\nper-batch pickle pool {sum(legacy_walls):.3f}s vs arena+persistent "
        f"pool {sum(arena_walls):.3f}s over {BATCHES} warm batches of "
        f"{len(specs)} trace specs (median batch {legacy_s * 1e3:.1f}ms vs "
        f"{arena_s * 1e3:.1f}ms, {speedup:.2f}x)"
    )
    # Measured ~2x on a quiet host (BENCH_shm_trace_plane.json); 1.5x is
    # the acceptance floor with room for noisy CI machines.
    assert arena_s * 1.5 < legacy_s, (
        f"trace plane too slow: median batch {arena_s * 1e3:.1f}ms vs "
        f"pickle pool {legacy_s * 1e3:.1f}ms"
    )
