"""Benchmarks regenerating Table I, Table II, Table III and Table V."""

from repro.experiments import (
    format_table,
    table1_isa_comparison,
    table2_instruction_latencies,
    table3_libraries,
    table5_area,
    table5_summary,
)


def test_table1_isa_comparison(benchmark):
    table = benchmark.pedantic(table1_isa_comparison, rounds=1, iterations=1)
    rows = [
        [isa, spec["max_vector_length"], spec["strided_access"], spec["random_access"],
         spec["masked_execution"]]
        for isa, spec in table.items()
    ]
    print("\nTable I - Vector ISA extension comparison")
    print(format_table(["ISA", "Max VL", "Strided", "Random", "Masking"], rows))
    assert "dimension-level" in table["MVE"]["masked_execution"]


def test_table2_bit_serial_latencies(benchmark):
    rows = benchmark.pedantic(table2_instruction_latencies, args=(32,), rounds=1, iterations=1)
    print("\nTable II - MVE operations and bit-serial latency (n = 32)")
    print(
        format_table(
            ["op", "category", "latency(n=32)", "formula"],
            [[r.opcode, r.category, r.latency_32bit, r.latency_formula] for r in rows],
        )
    )
    by_name = {r.opcode: r.latency_32bit for r in rows}
    assert by_name["vadd"] == 32 and by_name["vmul"] == 32 * 32 + 5 * 32


def test_table3_evaluated_libraries(benchmark):
    rows = benchmark.pedantic(table3_libraries, rounds=1, iterations=1)
    print("\nTable III - Evaluated libraries")
    print(
        format_table(
            ["library", "domain", "dims", "#kernels"],
            [[r["library"], r["domain"], r["dims"], r["num_kernels"]] for r in rows],
        )
    )
    assert len(rows) == 12


def test_table5_area_overhead(benchmark):
    report = benchmark.pedantic(table5_area, rounds=1, iterations=1)
    summary = table5_summary()
    print("\nTable V - Area overhead to the scalar core")
    print(
        format_table(
            ["module", "area (mm^2)", "overhead (%)"],
            [
                [name, f"{area:.4f}", f"{report.module_overhead_percent(name):.3f}"]
                for name, area in report.modules_mm2.items()
            ]
            + [["total", f"{report.total_mm2:.4f}", f"{report.overhead_percent:.3f}"]],
        )
    )
    print(
        f"paper: MVE 3.59% vs Neon 16.3% | measured: MVE "
        f"{summary['mve_overhead_percent']:.2f}% vs Neon {summary['neon_overhead_percent']:.2f}%"
    )
    assert 3.0 < report.overhead_percent < 4.2
