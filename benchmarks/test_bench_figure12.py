"""Benchmark regenerating Figure 12: Duality Cache comparison, SRAM-array
scalability and precision sensitivity.

Paper: (a) MVE is ~1.5x faster than the Duality Cache SIMT model;
(b) going from 8 to 64 arrays speeds kernels up by 3.0-6.7x;
(c) lower precision runs faster and widens the gap over Neon.
"""

from repro.experiments import format_table


def test_figure12a_duality_cache(benchmark, run):
    rows = benchmark.pedantic(run, args=("figure12a",), rounds=1, iterations=1).rows
    print("\nFigure 12(a) - Duality Cache (SIMT) time normalized to MVE")
    print(
        format_table(
            ["kernel", "DC/MVE time", "DC idle/comp/data %"],
            [
                [
                    row.kernel,
                    f"{row.dc_over_mve_time:.2f}x",
                    f"{row.dc_breakdown['idle'] * 100:.0f}/"
                    f"{row.dc_breakdown['compute'] * 100:.0f}/"
                    f"{row.dc_breakdown['data_access'] * 100:.0f}",
                ]
                for row in rows
            ],
        )
    )
    mean = sum(row.dc_over_mve_time for row in rows) / len(rows)
    print(f"mean DC/MVE slowdown {mean:.2f}x (paper ~1.5x)")
    assert all(row.dc_over_mve_time > 1.0 for row in rows)


def test_figure12b_array_scalability(benchmark, run):
    points = benchmark.pedantic(run, args=("figure12b",), rounds=1, iterations=1).points
    print("\nFigure 12(b) - execution time normalized to the 8-array engine")
    print(
        format_table(
            ["kernel", "#arrays", "normalized time"],
            [[p.kernel, p.num_arrays, f"{p.normalized_time:.2f}"] for p in points],
        )
    )
    # 64 arrays must be faster than 8 arrays for every kernel.
    for kernel in {p.kernel for p in points}:
        series = [p for p in points if p.kernel == kernel]
        assert series[-1].normalized_time < series[0].normalized_time


def test_figure12c_precision_sensitivity(benchmark, run):
    points = benchmark.pedantic(run, args=("figure12c",), rounds=1, iterations=1).points
    print("\nFigure 12(c) - sensitivity to element precision (MAC kernel)")
    print(
        format_table(
            ["precision", "time vs fp32", "speedup over Neon"],
            [
                [p.precision, f"{p.normalized_time:.2f}", f"{p.speedup_over_neon:.2f}x"]
                for p in points
            ],
        )
    )
    by_name = {p.precision: p for p in points}
    assert by_name["INT16"].speedup_over_neon > by_name["INT32"].speedup_over_neon
    assert by_name["FLOAT16"].normalized_time < by_name["FLOAT32"].normalized_time
