"""Benchmark regenerating Figure 11: dynamic instruction counts, MVE vs RVV.

Paper: MVE needs 2.3x fewer dynamic vector instructions and 2.0x fewer
scalar instructions than RVV on the same engine.
"""

from repro.experiments import format_table


def test_figure11_instruction_distribution(benchmark, run):
    # Shares the Figure 10 job set: on a shared engine the simulations are
    # answered from the memo populated by the figure10 benchmark.
    result = benchmark.pedantic(run, args=("figure11",), rounds=1, iterations=1)
    rows = []
    for mix in result.kernels:
        mve_total = sum(mix.mve_counts.values())
        rvv_total = sum(mix.rvv_counts.values())
        rows.append(
            [
                mix.kernel,
                mix.dims,
                mve_total,
                rvv_total,
                f"{rvv_total / max(1, mve_total):.1f}x",
                mix.mve_scalar,
                mix.rvv_scalar,
                f"{mix.rvv_scalar / max(1, mix.mve_scalar):.1f}x",
            ]
        )
    print("\nFigure 11 - dynamic instruction counts (MVE vs RVV)")
    print(
        format_table(
            ["kernel", "dims", "MVE vec", "RVV vec", "vec ratio", "MVE scalar",
             "RVV scalar", "scalar ratio"],
            rows,
        )
    )
    print(
        f"mean vector-instruction reduction {result.mean_vector_reduction:.2f}x (paper 2.3x), "
        f"scalar reduction {result.mean_scalar_reduction:.2f}x (paper 2.0x)"
    )
    assert result.mean_vector_reduction > 1.0
    assert result.mean_scalar_reduction > 1.0
