"""Benchmark regenerating Figure 13: MVE vs RVV for every in-SRAM scheme.

Paper: MVE improves bit-serial by 3.8x, bit-hybrid by 2.8x, bit-parallel by
1.8x and associative computing by 1.2x; AC benefits least because its
arithmetic latency dominates.
"""

from repro.experiments import format_table


def test_figure13_schemes(benchmark, run):
    result = benchmark.pedantic(run, args=("figure13",), rounds=1, iterations=1)
    rows = [
        [
            row.scheme,
            f"{row.time_ratio * 100:.1f}%",
            f"{row.speedup:.2f}x",
            f"{row.rvv_breakdown['idle'] * 100:.0f}%",
            f"{row.mve_breakdown['idle'] * 100:.0f}%",
        ]
        for row in result.schemes
    ]
    print("\nFigure 13 - MVE time normalized to RVV per in-SRAM scheme")
    print(
        format_table(
            ["scheme", "MVE/RVV time", "speedup", "RVV idle", "MVE idle"], rows
        )
    )
    print("paper speedups: BS 3.8x, BH 2.8x, BP 1.8x, AC 1.2x")
    speedups = {row.scheme: row.speedup for row in result.schemes}
    # Every scheme benefits, and associative computing benefits the least.
    assert all(value >= 1.0 for value in speedups.values())
    assert speedups["associative"] <= max(speedups.values())
