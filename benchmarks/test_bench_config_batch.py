"""Perf smoke for the config-batched replay engine.

A warm-trace multi-config sweep is the staged pipeline's hot loop: the
functional machine never runs, so all the wall-clock is timing replay.
The batched engine evaluates the whole config axis in one pass over the
trace -- one cache/DRAM state replay per distinct memory configuration,
one compute pass per distinct engine configuration -- instead of one full
``simulate_trace`` per config.  This check fails if the batched path ever
regresses to per-config replay cost.  The comparison is relative (same
machine, same process) so it is robust to slow CI hosts; absolute numbers
from a quiet host live in ``BENCH_config_batch.json``.
"""

import dataclasses
import time

from repro.core.cache import ResultStore
from repro.core.config import default_config
from repro.experiments.sweep import KernelJob, ParallelSweepEngine
from repro.sram.schemes import SCHEME_NAMES


def eight_config_jobs():
    """One captured trace, eight configs: 4 schemes x 2 l2_compute_ways."""
    base = default_config()
    jobs = [
        KernelJob(
            kernel="gemm",
            scale=0.5,
            scheme_name=scheme,
            config=dataclasses.replace(base.with_scheme(scheme), l2_compute_ways=ways),
        )
        for scheme in SCHEME_NAMES
        for ways in (4, 6)
    ]
    assert len({job.trace_spec() for job in jobs}) == 1
    return jobs


def drop_results_keep_traces(store_root, jobs):
    trace_keys = {job.trace_spec().cache_key() for job in jobs}
    for path in store_root.glob("*/*.json"):
        if path.stem not in trace_keys:
            path.unlink()


def test_batched_replay_beats_per_config(tmp_path, monkeypatch):
    jobs = eight_config_jobs()
    ParallelSweepEngine(jobs=1, store=ResultStore(tmp_path)).run_jobs(jobs)

    # Results cold, trace warm: the legacy escape hatch replays per config.
    drop_results_keep_traces(tmp_path, jobs)
    monkeypatch.setenv("REPRO_BATCHED_REPLAY", "0")
    legacy = ParallelSweepEngine(jobs=1, store=ResultStore(tmp_path))
    start = time.perf_counter()
    legacy_outcomes = legacy.run_jobs(jobs)
    legacy_s = time.perf_counter() - start
    monkeypatch.delenv("REPRO_BATCHED_REPLAY")

    drop_results_keep_traces(tmp_path, jobs)
    batched = ParallelSweepEngine(jobs=1, store=ResultStore(tmp_path))
    start = time.perf_counter()
    outcomes = batched.run_jobs(jobs)
    batched_s = time.perf_counter() - start

    # Both sides really replayed (no result-cache short-circuit), the
    # batched side in a single pass, and bit-identically.
    assert legacy.computed == batched.computed == len(jobs)
    assert legacy.traces_captured == batched.traces_captured == 0
    assert legacy.batched_replays == 0
    assert batched.batched_replays == 1
    for job in jobs:
        assert outcomes[job].result.to_dict() == legacy_outcomes[job].result.to_dict()

    speedup = legacy_s / max(batched_s, 1e-9)
    print(
        f"\nper-config {legacy_s:.2f}s vs batched {batched_s:.2f}s "
        f"({speedup:.2f}x over 8 configs, 1 batched replay)"
    )
    # Measured ~4-5x on a quiet host (BENCH_config_batch.json); 3x is the
    # acceptance floor and still leaves room for noisy CI machines.
    assert batched_s * 3.0 < legacy_s, (
        f"batched replay too slow: {batched_s:.2f}s vs per-config {legacy_s:.2f}s"
    )
