"""Perf smoke check for the batched cache engine.

The vectorized engine exists to kill the per-line Python loop that
dominated simulation time; this check fails if it ever regresses back to
scalar-reference speed.  The comparison is relative (same machine, same
process), so it is robust to slow CI hosts.
"""

import time

import numpy as np

from repro.memory import CacheHierarchy, VectorCacheHierarchy

#: contiguous footprint (worst case for the scalar loop, common case for
#: the engine: one distinct set per line)
_CONTIGUOUS = np.arange(0x100000, 0x100000 + 64 * 8192, 64, dtype=np.int64)
#: strided footprint mapping many lines onto few sets (conflict rounds)
_STRIDED = np.arange(0x100000, 0x100000 + 1024 * 64 * 2048, 1024 * 64, dtype=np.int64)


def _drive(hierarchy, lines, passes=3):
    hierarchy.reset()
    start = time.perf_counter()
    for _ in range(passes):
        hierarchy.vector_block_access(lines)
        hierarchy.vector_block_access(lines, is_write=True)
    return time.perf_counter() - start


def test_vectorized_engine_beats_scalar_reference():
    scalar = CacheHierarchy()
    vector = VectorCacheHierarchy()
    _drive(vector, _CONTIGUOUS, passes=1)  # warm allocation paths
    scalar_time = _drive(scalar, _CONTIGUOUS)
    vector_time = _drive(vector, _CONTIGUOUS)
    assert vector_time * 3 < scalar_time, (
        f"vectorized engine too slow: {vector_time:.3f}s vs scalar {scalar_time:.3f}s"
    )


def test_vectorized_engine_fast_on_conflict_heavy_batches():
    scalar = CacheHierarchy()
    vector = VectorCacheHierarchy()
    _drive(vector, _STRIDED, passes=1)
    scalar_time = _drive(scalar, _STRIDED)
    vector_time = _drive(vector, _STRIDED)
    # Conflict replay is inherently sequential in both engines, so the
    # margin is structural rather than large; 1.3x leaves headroom for
    # noisy CI hosts while still catching a regression to per-line speed.
    assert vector_time * 1.3 < scalar_time, (
        f"conflict rounds too slow: {vector_time:.3f}s vs scalar {scalar_time:.3f}s"
    )


def test_block_access_throughput(benchmark):
    hierarchy = VectorCacheHierarchy()
    hierarchy.vector_block_access(_CONTIGUOUS)

    def warm_block():
        return hierarchy.vector_block_access(_CONTIGUOUS)

    cycles = benchmark(warm_block)
    assert cycles > 0
