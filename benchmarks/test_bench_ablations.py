"""Ablation benchmarks for the design choices called out in DESIGN.md.

These do not correspond to a single paper figure; they quantify the impact
of individual mechanisms: control-block granularity, the controller's
instruction queue depth, warm versus cold caches, and the register-pressure
scheduler.
"""

from dataclasses import replace

from repro.compiler import compile_trace
from repro.core import AreaModel, default_config, simulate_kernel
from repro.experiments import format_table
from repro.isa import PhysicalRegisterFile
from repro.workloads import create_kernel


def test_ablation_control_block_granularity(benchmark):
    """Fewer arrays per CB means more FSMs: area grows, flexibility grows."""

    def run():
        rows = []
        for arrays_per_cb in (1, 2, 4, 8):
            report = AreaModel(num_arrays=32, arrays_per_control_block=arrays_per_cb).report()
            rows.append([arrays_per_cb, 32 // arrays_per_cb, f"{report.overhead_percent:.2f}%"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation - control-block granularity (area)")
    print(format_table(["arrays per CB", "#CBs", "area overhead"], rows))
    # The paper's 4-array CB sits well below the per-array-FSM design.
    assert float(rows[2][2].rstrip("%")) < float(rows[0][2].rstrip("%"))


def test_ablation_instruction_queue_depth(benchmark, runner):
    """A deeper Intrinsic-Q lets the core run ahead of the engine."""
    kernel = create_kernel("webp_dither", scale=0.5)
    trace = kernel.trace_mve()

    def run():
        rows = []
        for entries in (4, 16, 64, 256):
            config = replace(default_config(), instruction_queue_entries=entries)
            result, _ = simulate_kernel(trace, config=config)
            rows.append([entries, f"{result.total_cycles:.0f}",
                         f"{result.breakdown_fractions()['idle']:.0%}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation - controller instruction queue depth")
    print(format_table(["queue entries", "cycles", "idle"], rows))
    assert float(rows[-1][1]) <= float(rows[0][1])


def test_ablation_warm_vs_cold_cache(benchmark):
    """Steady-state (warm LLC) versus first-invocation (cold) behaviour."""
    kernel = create_kernel("memcpy", scale=0.5)
    trace = kernel.trace_mve()

    def run():
        warm, _ = simulate_kernel(trace, warm_cache=True)
        cold, _ = simulate_kernel(trace, warm_cache=False)
        return warm, cold

    warm, cold = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation - warm vs cold cache (memcpy)")
    print(format_table(
        ["state", "cycles", "data-access cycles", "energy (nJ)"],
        [["warm", f"{warm.total_cycles:.0f}", f"{warm.data_access_cycles:.0f}",
          f"{warm.energy_nj:.0f}"],
         ["cold", f"{cold.total_cycles:.0f}", f"{cold.data_access_cycles:.0f}",
          f"{cold.energy_nj:.0f}"]],
    ))
    assert cold.total_cycles >= warm.total_cycles


def test_ablation_register_pressure_scheduler(benchmark):
    """List scheduling shortens live ranges under register pressure.

    The trace loads many vectors up front and consumes them later -- the
    pattern where sinking definitions toward their first use pays off.
    """
    import numpy as np

    from repro.intrinsics import MVEMachine
    from repro.isa import DataType
    from repro.memory import FlatMemory

    memory = FlatMemory()
    machine = MVEMachine(memory)
    inputs = [
        memory.allocate_array(np.arange(1024, dtype=np.float32), DataType.FLOAT32)
        for _ in range(10)
    ]
    out = memory.allocate(DataType.FLOAT32, 1024)
    machine.vsetdimc(1)
    machine.vsetdiml(0, 1024)
    loaded = [machine.vsld(DataType.FLOAT32, alloc.address, (1,)) for alloc in inputs]
    acc = loaded[0]
    for value in loaded[1:]:
        acc = machine.vadd(acc, value)
    machine.vsst(acc, out.address, (1,))
    trace = machine.trace
    tiny_file = PhysicalRegisterFile(num_arrays=32, array_rows=128)  # 4 fp32 PRs

    def run():
        with_sched = compile_trace(trace, register_file=tiny_file, use_scheduler=True)
        without = compile_trace(trace, register_file=tiny_file, use_scheduler=False)
        return with_sched, without

    with_sched, without = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation - list scheduler under register pressure (10-input sum, 4 PRs)")
    print(format_table(
        ["configuration", "peak pressure", "spill ops"],
        [["with scheduler", with_sched.peak_pressure, with_sched.spill_count],
         ["without scheduler", without.peak_pressure, without.spill_count]],
    ))
    assert with_sched.spill_count <= without.spill_count
    assert with_sched.peak_pressure <= without.peak_pressure
