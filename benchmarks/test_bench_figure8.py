"""Benchmark regenerating Figure 8: mobile GPU normalized to MVE.

Paper: GPU is 9.3x slower (including data transfer) and uses 5.2x more
energy; after discounting transfer the GPU is still 2.4x slower on average.
"""

from repro.experiments import format_table


def test_figure8_gpu_vs_mve(benchmark, run):
    result = benchmark.pedantic(run, args=("figure8",), rounds=1, iterations=1)
    rows = [
        [
            row.kernel,
            f"{row.time_ratio_with_transfer:.2f}x",
            f"{row.time_ratio_kernel_only:.2f}x",
            f"{row.energy_ratio:.2f}x",
            f"{row.gpu_transfer_fraction * 100:.0f}%",
        ]
        for row in result.kernels
    ]
    print("\nFigure 8 - GPU / MVE ratios (per kernel)")
    print(
        format_table(
            ["kernel", "GPU/MVE time (with copy)", "GPU/MVE time (kernel only)",
             "GPU/MVE energy", "copy share of GPU time"],
            rows,
        )
    )
    print(
        f"mean GPU/MVE time {result.mean_time_ratio:.2f}x (paper 9.3x), kernel-only "
        f"{result.mean_kernel_only_ratio:.2f}x (paper 2.4x), energy "
        f"{result.mean_energy_ratio:.2f}x (paper 5.2x)"
    )
    assert result.mean_time_ratio > 1.0
