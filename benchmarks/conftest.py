"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper's evaluation
section and prints the corresponding rows/series.  A single
ExperimentRunner is shared across the session so kernels simulated for one
figure are reused by another.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.experiments import ExperimentRunner


@pytest.fixture(scope="session")
def runner():
    return ExperimentRunner(default_scale=0.5)
