"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper's evaluation
section and prints the corresponding rows/series.  A single
ExperimentRunner is shared across the session, backed by the parallel sweep
engine and the persistent on-disk result store: kernels simulated for one
figure are reused by another, and a re-run of the suite answers from the
cache as long as the simulator sources are unchanged.

Environment knobs:

* ``REPRO_SWEEP_JOBS``      worker processes (default: all cores)
* ``REPRO_SWEEP_CACHE_DIR`` cache location (default ~/.cache/repro-sweep)
* ``REPRO_NO_CACHE=1``      disable the persistent cache for this session
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.core.cache import ResultStore
from repro.experiments import ExperimentRunner, ParallelSweepEngine, default_job_count


@pytest.fixture(scope="session")
def runner():
    use_cache = os.environ.get("REPRO_NO_CACHE", "") != "1"
    engine = ParallelSweepEngine(
        jobs=default_job_count(),
        store=ResultStore.default() if use_cache else None,
    )
    return ExperimentRunner(default_scale=0.5, engine=engine)
