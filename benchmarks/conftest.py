"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper's evaluation
section through the experiment registry (``repro.experiments.registry``)
and prints the corresponding rows/series.  A single ExperimentRunner is
shared across the session, backed by the parallel sweep engine and the
persistent on-disk result store: kernels simulated for one figure are
reused by another, assembled experiment results are answered from the
store, and a re-run of the suite is simulation-free as long as the
simulator sources are unchanged.

Environment knobs:

* ``REPRO_SWEEP_JOBS``      worker processes (default: all cores)
* ``REPRO_SWEEP_CACHE_DIR`` cache location (default ~/.cache/repro-sweep)
* ``REPRO_NO_CACHE=1``      disable the persistent cache for this session
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.core.cache import ResultStore
from repro.experiments import ExperimentOptions, build_runner, run_experiment


@pytest.fixture(scope="session")
def runner():
    use_cache = os.environ.get("REPRO_NO_CACHE", "") != "1"
    return build_runner(
        store=ResultStore.default() if use_cache else None, default_scale=0.5
    )


@pytest.fixture(scope="session")
def run(runner):
    """Run a registered experiment on the shared session runner."""

    def _run(name, scale=0.5):
        return run_experiment(name, runner=runner, options=ExperimentOptions(scale=scale))

    return _run
