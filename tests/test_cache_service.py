"""Fault-injection, parity and concurrency tests for the shared cache service.

The contract under test: a sweep pointed at a remote cache is *never worse*
than a local-only sweep.  A healthy server shares results across machines
(zero re-simulation, bit-identical payloads); a dead, flaky, hanging or
lying server costs exactly one warning and the run completes locally with
identical output; interrupted uploads and concurrent writers can never
publish a torn entry in either tier.
"""

import json
import socket
import threading
import time
import urllib.error
import urllib.request
import warnings
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.core.cache import CACHE_SCHEMA_VERSION, ResultStore
from repro.core.cache_service import CacheServer, RemoteStore
from repro.core.store_backend import LocalDirBackend, TieredBackend
from repro.experiments.registry import ExperimentOptions, build_runner, run_experiment
from repro.experiments.sweep import ParallelSweepEngine, SweepSpec

SPEC = SweepSpec(
    name="svc-mini",
    kernels=[("csum", {"scale": 0.25}), ("memcpy", {"scale": 0.25})],
)

KEY_A = "ab" * 32
KEY_B = "cd" * 32


def outcome_dicts(outcomes):
    """Canonical JSON text per job: the bit-for-bit comparison currency."""
    return {
        job: json.dumps(
            {"result": outcome.result.to_dict(), "spills": outcome.spills},
            sort_keys=True,
        )
        for job, outcome in outcomes.items()
    }


@pytest.fixture(scope="module")
def expected():
    """The no-remote ground truth for SPEC, computed once."""
    outcomes = ParallelSweepEngine(jobs=1, store=None).run_jobs(SPEC.jobs())
    return outcome_dicts(outcomes)


@pytest.fixture
def server(tmp_path):
    srv = CacheServer(("127.0.0.1", 0), root=tmp_path / "server")
    srv.start_in_background()
    yield srv
    srv.shutdown()
    srv.server_close()


def single_remote_warning(caught):
    messages = [
        str(w.message) for w in caught
        if issubclass(w.category, RuntimeWarning) and "remote cache" in str(w.message)
    ]
    assert len(messages) == 1, messages
    return messages[0]


# ---------------------------------------------------------------------- #
#  Protocol round trips
# ---------------------------------------------------------------------- #


class TestProtocol:
    def test_put_get_head_roundtrip(self, server):
        remote = RemoteStore(server.url)
        record = {"schema": CACHE_SCHEMA_VERSION, "result": {"total_cycles": 7.0}}
        assert not remote.contains(KEY_A)
        assert remote.load(KEY_A) is None  # 404 is a miss, not a failure
        assert not remote.dead
        assert remote.store(KEY_A, record)
        assert remote.contains(KEY_A)
        assert remote.load(KEY_A) == record

    def test_stats_counts_requests_and_entries(self, server):
        remote = RemoteStore(server.url)
        remote.store(KEY_A, {"schema": CACHE_SCHEMA_VERSION, "result": {}})
        remote.load(KEY_A)
        remote.load(KEY_B)
        stats = remote.stats()
        assert stats["entries"] == 1
        assert stats["puts"] == 1
        assert stats["hits_served"] == 1
        assert stats["misses"] == 1
        assert len(remote) == 1

    def test_batched_key_probe(self, server):
        remote = RemoteStore(server.url)
        remote.store(KEY_A, {"schema": CACHE_SCHEMA_VERSION, "result": {}})
        present = remote.contains_batch([KEY_A, KEY_B, "not-a-key"])
        assert present == {KEY_A: True, KEY_B: False, "not-a-key": False}

    def test_malformed_keys_and_bodies_are_rejected(self, server):
        def status(method, path, body=None):
            request = urllib.request.Request(server.url + path, data=body, method=method)
            try:
                with urllib.request.urlopen(request, timeout=5) as response:
                    return response.status
            except urllib.error.HTTPError as error:
                return error.code

        assert status("GET", "/v1/entry/../../etc/passwd") == 400
        assert status("GET", "/v1/entry/ZZ" + "0" * 62) == 400
        assert status("PUT", f"/v1/entry/{KEY_A}", body=b"{not json") == 400
        assert status("PUT", f"/v1/entry/{KEY_A}", body=b'["not", "an", "object"]') == 400
        assert status("POST", "/v1/keys", body=b'{"keys": "nope"}') == 400
        assert status("GET", "/v1/unknown") == 400
        # None of the rejected requests stored anything.
        assert len(server.backend) == 0

    def test_rejected_put_closes_the_keepalive_connection(self, server):
        """A 400 that leaves body bytes unread must drop the connection;
        keeping it alive would desync the stream and misparse the stale
        body as the next request."""
        host, port = server.server_address[:2]
        body = b'{"schema": 1, "result": {}}'
        request = (
            f"PUT /v1/entry/not-a-valid-key HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode() + body
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(request)
            sock.settimeout(5)
            data = b""
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                data += chunk
        assert data.startswith(b"HTTP/1.1 400")
        # Exactly one response then EOF: the body was never parsed as a
        # follow-up request on the (dropped) keep-alive connection.
        assert data.count(b"HTTP/1.1") == 1

    def test_interrupted_put_is_never_stored(self, server):
        """A client that dies mid-upload (fewer body bytes than its
        Content-Length) must not corrupt the server tier."""
        host, port = server.server_address[:2]
        payload = b'{"schema": 1, "result": {"total_cycles": 1.0}}'
        head = (
            f"PUT /v1/entry/{KEY_A} HTTP/1.1\r\n"
            f"Host: {host}\r\nContent-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n"
        ).encode()
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(head + payload[: len(payload) // 2])
        # Give the handler thread a moment to observe the dropped connection.
        deadline = time.monotonic() + 5
        while server.backend.contains(KEY_A) and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not server.backend.contains(KEY_A)
        # The server keeps serving healthy clients afterwards.
        remote = RemoteStore(server.url)
        assert remote.store(KEY_A, json.loads(payload))
        assert remote.load(KEY_A)["result"] == {"total_cycles": 1.0}


# ---------------------------------------------------------------------- #
#  Tiered store semantics
# ---------------------------------------------------------------------- #


class TestTieredStore:
    def test_write_back_and_read_through(self, server, tmp_path):
        writer = ResultStore(tmp_path / "writer", remote=server.url)
        writer.store(KEY_A, {"result": {"x": 1}})
        # Write-back: both tiers hold the record.
        assert writer._path(KEY_A).exists()
        assert server.backend.contains(KEY_A)

        # A different machine (fresh local dir) reads through the service...
        reader = ResultStore(tmp_path / "reader", remote=server.url)
        assert reader.load(KEY_A)["result"] == {"x": 1}
        assert reader.last_tier == "remote"
        # ...and the read-through populated its local tier.
        assert reader._path(KEY_A).exists()
        assert reader.load(KEY_A)["result"] == {"x": 1}
        assert reader.last_tier == "local"

    def test_last_write_wins_across_tiers(self, server, tmp_path):
        store = ResultStore(tmp_path / "w", remote=server.url)
        store.store(KEY_A, {"result": "old"})
        store.store(KEY_A, {"result": "new"})
        assert store.load(KEY_A)["result"] == "new"
        fresh = ResultStore(tmp_path / "fresh", remote=server.url)
        assert fresh.load(KEY_A)["result"] == "new"

    def test_garbage_remote_record_does_not_poison_local_tier(self, tmp_path, server):
        """A service serving schema-mismatched records is a miss, and the
        junk is not replicated into the local directory."""
        server.backend.store(KEY_A, {"schema": CACHE_SCHEMA_VERSION + 1, "result": {}})
        store = ResultStore(tmp_path / "local", remote=server.url)
        assert store.load(KEY_A) is None
        assert not store._path(KEY_A).exists()

    def test_wrong_service_on_the_port_trips_the_fallback(self, tmp_path):
        """A URL pointing at some other JSON-speaking HTTP service must
        degrade like any other fault -- one warning, then local-only --
        not silently cost a useless round trip per job."""

        class _OtherServiceHandler(BaseHTTPRequestHandler):
            def do_GET(self):
                body = b'["some", "other", "api"]'
                self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format, *args):
                pass

        srv = ThreadingHTTPServer(("127.0.0.1", 0), _OtherServiceHandler)
        threading.Thread(target=srv.serve_forever, daemon=True).start()
        try:
            remote = RemoteStore(f"http://127.0.0.1:{srv.server_address[1]}")
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                assert remote.load(KEY_A) is None
                assert not remote.store(KEY_A, {"schema": 1, "result": {}})
            assert remote.dead
            single_remote_warning(caught)
        finally:
            srv.shutdown()
            srv.server_close()

    def test_remote_env_var_wires_the_default_store(self, server, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path / "env-local"))
        monkeypatch.setenv("REPRO_REMOTE_CACHE", server.url)
        store = ResultStore.default()
        assert store.root == tmp_path / "env-local"
        assert isinstance(store.backend, TieredBackend)
        assert store.remote.base_url == server.url

    def test_build_runner_accepts_remote_url(self, server, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path / "runner-local"))
        runner = build_runner(jobs=1, remote=server.url)
        assert runner.engine.store.remote.base_url == server.url


# ---------------------------------------------------------------------- #
#  Cross-machine sharing (the acceptance criterion, in miniature)
# ---------------------------------------------------------------------- #


class TestCrossMachineSharing:
    def test_second_engine_simulates_nothing_and_matches_bitwise(
        self, server, tmp_path, expected
    ):
        first = ParallelSweepEngine(
            jobs=1, store=ResultStore(tmp_path / "machine-a", remote=server.url)
        )
        run_a = first.run_jobs(SPEC.jobs())
        assert first.computed == len(SPEC.jobs())
        assert outcome_dicts(run_a) == expected

        second = ParallelSweepEngine(
            jobs=1, store=ResultStore(tmp_path / "machine-b", remote=server.url)
        )
        run_b = second.run_jobs(SPEC.jobs())
        assert second.computed == 0
        assert {o.source for o in run_b.values()} == {"remote"}
        assert outcome_dicts(run_b) == expected

    def test_assembled_experiment_result_is_shared(self, server, tmp_path):
        """The registry's assembled-result cache rides the same tiers: the
        second machine fetches the finished figure without running one job."""
        options = ExperimentOptions(scale=0.1)
        runner_a = build_runner(
            jobs=1, store=ResultStore(tmp_path / "a", remote=server.url), default_scale=0.1
        )
        result_a = run_experiment("figure8", runner=runner_a, options=options)
        assert runner_a.engine.computed > 0

        runner_b = build_runner(
            jobs=1, store=ResultStore(tmp_path / "b", remote=server.url), default_scale=0.1
        )
        result_b = run_experiment("figure8", runner=runner_b, options=options)
        assert runner_b.engine.computed == 0
        assert json.dumps(result_b.to_dict(), sort_keys=True) == json.dumps(
            result_a.to_dict(), sort_keys=True
        )


class TestBatchedPrefetch:
    def test_cold_sweep_collapses_misses_into_one_probe(self, server, tmp_path):
        """A cold sweep must not pay a guaranteed-404 GET per job: the
        engine batch-probes the remote tier once and skips the misses."""
        engine = ParallelSweepEngine(
            jobs=1, store=ResultStore(tmp_path / "a", remote=server.url)
        )
        engine.run_jobs(SPEC.jobs())
        stats = server.stats()
        assert stats["gets"] == 0 and stats["misses"] == 0
        # Every simulation result plus every capture-stage trace artifact
        # is published to the shared tier.
        assert stats["puts"] == len(SPEC.jobs()) + engine.traces_captured
        assert engine.traces_captured == 2

    def test_probe_does_not_hide_warm_remote_entries(self, server, tmp_path, expected):
        ParallelSweepEngine(
            jobs=1, store=ResultStore(tmp_path / "a", remote=server.url)
        ).run_jobs(SPEC.jobs())
        second = ParallelSweepEngine(
            jobs=1, store=ResultStore(tmp_path / "b", remote=server.url)
        )
        outcomes = second.run_jobs(SPEC.jobs())
        assert second.computed == 0
        assert {o.source for o in outcomes.values()} == {"remote"}
        assert outcome_dicts(outcomes) == expected

    def test_absent_marker_is_consumed_after_one_skip(self, server, tmp_path):
        """A probe answer is a snapshot, not a verdict: after one skipped
        lookup the next load re-checks the wire, so results published by
        another worker after the probe are still found."""
        reader = ResultStore(tmp_path / "reader", remote=server.url)
        reader.prefetch([KEY_A])
        ResultStore(tmp_path / "writer", remote=server.url).store(
            KEY_A, {"result": {"x": 1}}
        )
        assert reader.load(KEY_A) is None  # stale probe answer, skipped GET
        assert reader.load(KEY_A)["result"] == {"x": 1}  # re-checked

    def test_prefetch_is_a_noop_for_local_stores(self, tmp_path):
        store = ResultStore(tmp_path / "local-only")
        store.prefetch([KEY_A, KEY_B])  # must not raise or change behavior
        assert store.load(KEY_A) is None


# ---------------------------------------------------------------------- #
#  Fault injection: the remote tier misbehaves, the sweep must not care
# ---------------------------------------------------------------------- #


class _FaultyHandler(BaseHTTPRequestHandler):
    """Responds per the owning server's failure mode, for every route."""

    def _respond(self):
        mode = self.server.mode
        if mode == "hang":
            time.sleep(self.server.hang_s)
            mode = "error"
        if mode == "error":
            self.send_response(500)
            self.send_header("Content-Length", "0")
            self.end_headers()
        elif mode == "truncate":
            body = b'{"schema": 1, "result": {"total_cycles"'
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            # Promise more bytes than will ever arrive, then hang up.
            self.send_header("Content-Length", str(len(body) + 512))
            self.end_headers()
            self.wfile.write(body)
            self.close_connection = True

    do_GET = do_PUT = do_HEAD = do_POST = _respond

    def log_message(self, format, *args):
        pass


class _FaultyServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, mode, hang_s=0.5):
        self.mode = mode
        self.hang_s = hang_s
        super().__init__(("127.0.0.1", 0), _FaultyHandler)

    def handle_error(self, request, client_address):
        pass  # dropped client connections are the point of the exercise


@pytest.fixture
def faulty_server(request):
    srv = _FaultyServer(mode=request.param)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()


class TestFaultInjection:
    def _run_with_remote(self, tmp_path, remote, expected):
        """One sweep through a tiered store; asserts the single-warning
        degradation contract and bit-identical local fallback."""
        store = ResultStore(tmp_path / "local", remote=remote)
        engine = ParallelSweepEngine(jobs=1, store=store)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            outcomes = engine.run_jobs(SPEC.jobs())
        message = single_remote_warning(caught)
        assert "falling back to the local cache only" in message
        assert outcome_dicts(outcomes) == expected
        # The local tier is intact and fully populated despite the remote.
        rerun = ParallelSweepEngine(jobs=1, store=ResultStore(tmp_path / "local"))
        replay = rerun.run_jobs(SPEC.jobs())
        assert rerun.computed == 0
        assert {o.source for o in replay.values()} == {"disk"}
        assert outcome_dicts(replay) == expected

    def test_refused_connection_falls_back_locally(self, tmp_path, expected):
        # Bind-then-close guarantees a dead port.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        self._run_with_remote(tmp_path, f"http://127.0.0.1:{port}", expected)

    @pytest.mark.parametrize("faulty_server", ["error"], indirect=True)
    def test_internal_errors_fall_back_locally(self, tmp_path, faulty_server, expected):
        self._run_with_remote(tmp_path, faulty_server_url(faulty_server), expected)

    @pytest.mark.parametrize("faulty_server", ["truncate"], indirect=True)
    def test_truncated_responses_fall_back_locally(self, tmp_path, faulty_server, expected):
        self._run_with_remote(tmp_path, faulty_server_url(faulty_server), expected)

    @pytest.mark.parametrize("faulty_server", ["hang"], indirect=True)
    def test_timeouts_fall_back_locally(self, tmp_path, faulty_server, expected):
        remote = RemoteStore(faulty_server_url(faulty_server), timeout=0.1)
        self._run_with_remote(tmp_path, remote, expected)

    def test_server_killed_mid_sweep(self, tmp_path, expected):
        """The server dies between jobs; the sweep finishes locally with one
        warning and identical results, and nothing in either tier is torn."""
        srv = CacheServer(("127.0.0.1", 0), root=tmp_path / "server")
        srv.start_in_background()
        store = ResultStore(tmp_path / "local", remote=srv.url)
        engine = ParallelSweepEngine(jobs=1, store=store)
        killed = []

        def kill_server_after_first_result(job, outcome, completed, total):
            if not killed:
                srv.shutdown()
                srv.server_close()
                killed.append(job)

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            outcomes = engine.run_jobs(SPEC.jobs(), on_result=kill_server_after_first_result)
        single_remote_warning(caught)
        assert outcome_dicts(outcomes) == expected
        # The first job -- its capture-stage trace artifact and its result
        # -- made it to the server before the kill, atomically.
        server_backend = LocalDirBackend(tmp_path / "server")
        assert len(server_backend) == 2
        for entry in (tmp_path / "server").glob("*/*.json"):
            assert json.loads(entry.read_text())["schema"] == CACHE_SCHEMA_VERSION
        # The local tier holds every result uncorrupted.
        replay = ParallelSweepEngine(jobs=1, store=ResultStore(tmp_path / "local"))
        assert outcome_dicts(replay.run_jobs(SPEC.jobs())) == expected
        assert replay.computed == 0

    def test_dead_remote_stops_costing_requests(self, tmp_path):
        """After the first failure every remote operation is an instant
        no-op: a hanging server must not add its timeout to every job."""
        srv = _FaultyServer(mode="hang", hang_s=0.3)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            remote = RemoteStore(faulty_server_url(srv), timeout=0.1)
            store = ResultStore(tmp_path / "local", remote=remote)
            with warnings.catch_warnings(record=True):
                warnings.simplefilter("always")
                store.load(KEY_A)  # pays the timeout, flips dead
            assert remote.dead
            start = time.perf_counter()
            for index in range(50):
                store.store(f"{index:02x}" + "0" * 62, {"result": {}})
                store.load(f"{index:02x}" + "0" * 62)
            assert time.perf_counter() - start < 2.0
        finally:
            srv.shutdown()
            srv.server_close()


def faulty_server_url(srv) -> str:
    host, port = srv.server_address[:2]
    return f"http://{host}:{port}"


# ---------------------------------------------------------------------- #
#  Background re-probe: dead is not forever
# ---------------------------------------------------------------------- #


class TestBackgroundReprobe:
    def _wait_for_rejoin(self, remote, timeout_s=5.0):
        deadline = time.time() + timeout_s
        while remote.dead and time.time() < deadline:
            time.sleep(0.02)
        assert not remote.dead, "store never rejoined the recovered service"

    def test_store_rejoins_recovered_service(self, tmp_path):
        """Kill the service, watch the store die with one warning, restart
        the service on the same port, and assert the background probe flips
        the store live again and requests flow end to end."""
        record = {"schema": CACHE_SCHEMA_VERSION, "result": {"x": 1}}
        srv = CacheServer(("127.0.0.1", 0), root=tmp_path / "server")
        srv.start_in_background()
        port = srv.server_address[1]
        remote = RemoteStore(srv.url, timeout=2.0, reprobe_interval=0.05)
        assert remote.store(KEY_A, record)
        srv.shutdown()
        srv.server_close()

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert remote.load(KEY_B) is None
            assert remote.dead
            srv2 = CacheServer(("127.0.0.1", port), root=tmp_path / "server")
            srv2.start_in_background()
            try:
                self._wait_for_rejoin(remote)
                assert remote.rejoins == 1
                # live again in both directions
                assert remote.load(KEY_A) == record
                assert remote.store(KEY_B, record)
                assert remote.contains(KEY_B)
            finally:
                srv2.shutdown()
                srv2.server_close()
        messages = [
            str(w.message) for w in caught
            if issubclass(w.category, RuntimeWarning) and "remote cache" in str(w.message)
        ]
        assert len(messages) == 2, messages
        assert "falling back" in messages[0]
        assert "rejoining" in messages[1]

    def test_sweep_worker_rejoins_service_that_recovers_mid_run(self, tmp_path, expected):
        """Engine-level fault injection: a worker degrades to local-only,
        the service comes back, and later sweep batches publish to -- and
        are answered by -- the shared tier again without a restart."""
        srv = CacheServer(("127.0.0.1", 0), root=tmp_path / "server")
        srv.start_in_background()
        port = srv.server_address[1]
        srv.shutdown()
        srv.server_close()

        remote = RemoteStore(f"http://127.0.0.1:{port}", timeout=1.0, reprobe_interval=0.05)
        store = ResultStore(tmp_path / "local", remote=remote)
        engine = ParallelSweepEngine(jobs=1, store=store)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            outcomes = engine.run_jobs(SPEC.jobs())
            assert remote.dead
            assert outcome_dicts(outcomes) == expected

            # The service recovers; the background probe rejoins the fleet.
            srv2 = CacheServer(("127.0.0.1", port), root=tmp_path / "server")
            srv2.start_in_background()
            try:
                self._wait_for_rejoin(remote)
                late_jobs = SweepSpec(
                    name="late", kernels=[("adler32", {"scale": 0.25})]
                ).jobs()
                engine.run_jobs(late_jobs)
                # The post-recovery batch reached the shared tier: result
                # plus capture-stage trace artifact.
                server_backend = LocalDirBackend(tmp_path / "server")
                assert server_backend.contains(late_jobs[0].cache_key())
                assert server_backend.contains(late_jobs[0].trace_spec().cache_key())
                # ...and a fresh machine is answered entirely remotely.
                other = ParallelSweepEngine(
                    jobs=1, store=ResultStore(tmp_path / "other", remote=srv2.url)
                )
                replayed = other.run_jobs(late_jobs)
                assert other.computed == 0
                assert replayed[late_jobs[0]].source == "remote"
            finally:
                srv2.shutdown()
                srv2.server_close()

    def test_zero_interval_disables_reprobing(self, tmp_path):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        remote = RemoteStore(f"http://127.0.0.1:{port}", timeout=0.5, reprobe_interval=0)
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            assert remote.load(KEY_A) is None
        assert remote.dead
        assert remote._reprobe_thread is None


# ---------------------------------------------------------------------- #
#  Concurrent writers
# ---------------------------------------------------------------------- #


class TestConcurrentWriters:
    N_WRITERS = 8
    PER_WRITER = 12

    def test_no_torn_entries_under_contention(self, server, tmp_path):
        """N threads hammer one server and one shared local directory with
        PUTs to the same and disjoint keys; every surviving entry must be a
        complete record that some writer actually wrote."""
        shared_local = tmp_path / "shared-local"
        contended = "ff" * 32
        errors = []

        def writer(thread_id):
            try:
                store = ResultStore(shared_local, remote=RemoteStore(server.url))
                for i in range(self.PER_WRITER):
                    disjoint = f"{thread_id:02x}{i:02x}" + "0" * 60
                    store.store(disjoint, {"result": {"writer": thread_id, "i": i}})
                    store.store(contended, {"result": {"writer": thread_id, "i": i}})
            except Exception as error:  # surfaced below; threads must not raise
                errors.append(error)

        with ThreadPoolExecutor(max_workers=self.N_WRITERS) as pool:
            list(pool.map(writer, range(self.N_WRITERS)))
        assert errors == []

        # Every disjoint key reads back exactly what its writer stored, from
        # the shared local dir, from the server, and via a fresh machine.
        local_reader = ResultStore(shared_local)
        fresh_machine = ResultStore(tmp_path / "fresh", remote=RemoteStore(server.url))
        for thread_id in range(self.N_WRITERS):
            for i in range(self.PER_WRITER):
                key = f"{thread_id:02x}{i:02x}" + "0" * 60
                want = {"writer": thread_id, "i": i}
                assert local_reader.load(key)["result"] == want
                assert server.backend.load(key)["result"] == want
                assert fresh_machine.load(key)["result"] == want

        # The contended key holds one complete write in both tiers (atomic
        # replace: torn/interleaved JSON would fail to parse or validate).
        for record in (local_reader.load(contended), server.backend.load(contended)):
            assert record["schema"] == CACHE_SCHEMA_VERSION
            assert set(record["result"]) == {"writer", "i"}
            assert 0 <= record["result"]["writer"] < self.N_WRITERS

        # Sequential writes after the storm: last write wins everywhere.
        finalist = ResultStore(shared_local, remote=RemoteStore(server.url))
        finalist.store(contended, {"result": "penultimate"})
        finalist.store(contended, {"result": "final"})
        assert ResultStore(shared_local).load(contended)["result"] == "final"
        assert server.backend.load(contended)["result"] == "final"

    def test_no_temp_file_droppings(self, server, tmp_path):
        """Atomic-write temp files never survive a completed store, even
        with many threads writing the same shard concurrently."""
        shared_local = tmp_path / "shared-local"

        def writer(thread_id):
            store = ResultStore(shared_local, remote=RemoteStore(server.url))
            for i in range(self.PER_WRITER):
                store.store("ee" * 32, {"result": thread_id * 1000 + i})

        with ThreadPoolExecutor(max_workers=self.N_WRITERS) as pool:
            list(pool.map(writer, range(self.N_WRITERS)))
        leftovers = [p for p in shared_local.rglob("*") if ".tmp." in p.name]
        leftovers += [p for p in (tmp_path / "server").rglob("*") if ".tmp." in p.name]
        assert leftovers == []


# ---------------------------------------------------------------------- #
#  CLI integration
# ---------------------------------------------------------------------- #


class TestCacheServiceCli:
    def test_run_shares_results_between_fresh_cache_dirs(self, server, tmp_path, capsys):
        from repro.cli import main as cli_main

        base = ["run", "--kernels", "csum", "--scale", "0.25", "--jobs", "1",
                "--remote-cache", server.url]
        assert cli_main(["--cache-dir", str(tmp_path / "a")] + base) == 0
        out_a = capsys.readouterr().out
        assert "1 simulated" in out_a and f"remote {server.url}" in out_a

        assert cli_main(["--cache-dir", str(tmp_path / "b")] + base) == 0
        out_b = capsys.readouterr().out
        assert "0 simulated" in out_b and "remote" in out_b

    def test_cache_reports_remote_tier_stats(self, server, tmp_path, capsys, monkeypatch):
        """Regression for the `repro cache` satellite: with REPRO_REMOTE_CACHE
        set the subcommand reports the service, not just the local dir."""
        from repro.cli import main as cli_main

        remote = RemoteStore(server.url)
        remote.store(KEY_A, {"schema": CACHE_SCHEMA_VERSION, "result": {}})
        remote.load(KEY_A)
        monkeypatch.setenv("REPRO_REMOTE_CACHE", server.url)
        assert cli_main(["--cache-dir", str(tmp_path / "local"), "cache"]) == 0
        out = capsys.readouterr().out
        assert f"Remote: {server.url}" in out
        assert "1 entries" in out and "1 hits served" in out

    def test_cache_reports_unreachable_remote(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main as cli_main

        monkeypatch.setenv("REPRO_REMOTE_CACHE", "http://127.0.0.1:1")
        assert cli_main(["--cache-dir", str(tmp_path / "local"), "cache"]) == 0
        assert "(unreachable)" in capsys.readouterr().out

    def test_cache_clear_leaves_remote_untouched(self, server, tmp_path, capsys):
        from repro.cli import main as cli_main

        store = ResultStore(tmp_path / "local", remote=server.url)
        store.store(KEY_A, {"result": {}})
        argv = ["--cache-dir", str(tmp_path / "local"),
                "--remote-cache", server.url, "cache", "clear"]
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "removed 1" in out and "left untouched" in out
        assert server.backend.contains(KEY_A)
