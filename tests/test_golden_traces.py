"""Golden-trace regression suite.

Each snapshot under ``tests/golden/`` pins the full observable outcome of
simulating one representative kernel: instruction-category counts, cycle
totals and the energy breakdown.  The suite guards two invariants:

* the serial ``simulate_kernel`` path keeps producing the checked-in
  numbers (any simulator change that shifts results must regenerate the
  snapshots deliberately), and
* the parallel sweep engine -- worker processes plus the persistent cache
  -- reproduces the serial numbers bit-for-bit.

Regenerate snapshots after an intentional model change with::

    PYTHONPATH=src python tests/test_golden_traces.py --update
"""

import json
from pathlib import Path

import pytest

from repro.core.cache import ResultStore
from repro.experiments.sweep import KernelJob, ParallelSweepEngine, execute_job

GOLDEN_DIR = Path(__file__).parent / "golden"

#: (kernel, kind, scale, kwargs, scheme) -- spans 1D/2D/3D kernels, strided
#: and random memory access, the RVV lowering and a non-default scheme
GOLDEN_CASES = [
    ("csum", "mve", 0.5, {}, "bit-serial"),
    ("csum", "rvv", 0.5, {}, "bit-serial"),
    ("gemm", "mve", 0.5, {}, "bit-serial"),
    ("gemm", "mve", 0.5, {}, "bit-parallel"),
    ("spmm", "mve", 0.5, {}, "bit-serial"),
    ("dct", "mve", 0.125, {}, "bit-serial"),
    ("png_filter_up", "mve", 0.5, {}, "bit-serial"),
    ("memcpy", "mve", 0.5, {}, "bit-serial"),
]


def case_id(case) -> str:
    kernel, kind, _, _, scheme = case
    return f"{kernel}-{kind}-{scheme}"


def job_for(case) -> KernelJob:
    kernel, kind, scale, kwargs, scheme = case
    return KernelJob(
        kernel=kernel,
        kind=kind,
        scale=scale,
        kwargs=tuple(sorted(kwargs.items())),
        scheme_name=scheme,
    )


def snapshot_path(case) -> Path:
    return GOLDEN_DIR / f"{case_id(case)}.json"


def snapshot_from_outcome(case, outcome) -> dict:
    kernel, kind, scale, kwargs, scheme = case
    result = outcome.result
    return {
        "kernel": kernel,
        "kind": kind,
        "scale": scale,
        "kwargs": kwargs,
        "scheme": scheme,
        "total_cycles": result.total_cycles,
        "idle_cycles": result.idle_cycles,
        "compute_cycles": result.compute_cycles,
        "data_access_cycles": result.data_access_cycles,
        "scalar_instructions": result.scalar_instructions,
        "vector_instructions": dict(result.vector_instructions),
        "spill_instructions": result.spill_instructions,
        "energy": result.energy.to_dict(),
        "energy_total_nj": result.energy.total_nj,
        "dram_bytes": result.dram_bytes,
    }


@pytest.fixture(scope="module")
def serial_outcomes():
    """Every golden case simulated through the plain serial path."""
    return {case_id(case): execute_job(job_for(case)) for case in GOLDEN_CASES}


@pytest.fixture(scope="module")
def parallel_outcomes(tmp_path_factory):
    """The same cases through the parallel engine with a fresh disk store."""
    store = ResultStore(tmp_path_factory.mktemp("sweep-cache"))
    engine = ParallelSweepEngine(jobs=4, store=store)
    return engine.run_jobs([job_for(case) for case in GOLDEN_CASES])


@pytest.mark.parametrize("case", GOLDEN_CASES, ids=case_id)
def test_serial_matches_golden(case, serial_outcomes):
    path = snapshot_path(case)
    assert path.exists(), f"missing golden snapshot {path}; regenerate with --update"
    golden = json.loads(path.read_text())
    actual = snapshot_from_outcome(case, serial_outcomes[case_id(case)])

    assert actual["vector_instructions"] == golden["vector_instructions"]
    assert actual["scalar_instructions"] == golden["scalar_instructions"]
    assert actual["spill_instructions"] == golden["spill_instructions"]
    assert actual["dram_bytes"] == golden["dram_bytes"]
    for field in ("total_cycles", "idle_cycles", "compute_cycles", "data_access_cycles"):
        assert actual[field] == pytest.approx(golden[field], rel=1e-12), field
    assert actual["energy_total_nj"] == pytest.approx(golden["energy_total_nj"], rel=1e-12)
    for component, value in golden["energy"].items():
        assert actual["energy"][component] == pytest.approx(value, rel=1e-12), component


@pytest.mark.parametrize("case", GOLDEN_CASES, ids=case_id)
def test_parallel_engine_matches_serial_bit_for_bit(case, serial_outcomes, parallel_outcomes):
    serial = serial_outcomes[case_id(case)]
    parallel = parallel_outcomes[job_for(case)]
    assert parallel.result.to_dict() == serial.result.to_dict()
    assert parallel.spills == serial.spills


@pytest.mark.parametrize("case", GOLDEN_CASES[:3], ids=case_id)
def test_scalar_cache_reference_matches_golden(case, serial_outcomes, monkeypatch):
    """The scalar reference cache (REPRO_SCALAR_CACHE=1) reproduces the same
    golden numbers bit-for-bit as the default vectorized engine."""
    monkeypatch.setenv("REPRO_SCALAR_CACHE", "1")
    scalar = execute_job(job_for(case))
    assert scalar.result.to_dict() == serial_outcomes[case_id(case)].result.to_dict()


def test_cached_reload_is_bit_for_bit(tmp_path, serial_outcomes):
    """A disk round-trip (simulate, persist, reload) loses nothing."""
    store = ResultStore(tmp_path / "cache")
    engine = ParallelSweepEngine(jobs=1, store=store)
    job = job_for(GOLDEN_CASES[0])
    first = engine.run_one(job)
    assert first.source == "computed"

    reloaded = ParallelSweepEngine(jobs=1, store=store).run_one(job)
    assert reloaded.source == "disk"
    assert reloaded.result.to_dict() == first.result.to_dict()
    assert reloaded.result.to_dict() == serial_outcomes[case_id(GOLDEN_CASES[0])].result.to_dict()


def _update_goldens() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for case in GOLDEN_CASES:
        outcome = execute_job(job_for(case))
        path = snapshot_path(case)
        path.write_text(json.dumps(snapshot_from_outcome(case, outcome), indent=2) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    if "--update" in sys.argv:
        _update_goldens()
    else:
        print(__doc__)
