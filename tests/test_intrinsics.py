"""Unit tests for the functional MVE machine (intrinsics + trace recording)."""

import numpy as np
import pytest

from repro.intrinsics import MDV, MVEMachine
from repro.isa import (
    DataType,
    InstructionCategory,
    MemoryInstruction,
    Opcode,
    ScalarBlock,
    StrideMode,
    VectorShape,
)
from repro.memory import FlatMemory


@pytest.fixture
def machine():
    return MVEMachine(FlatMemory())


def alloc(machine, values, dtype=DataType.INT32):
    return machine.memory.allocate_array(np.asarray(values), dtype)


class TestConfig:
    def test_config_instructions_recorded(self, machine):
        machine.vsetdimc(2)
        machine.vsetdiml(0, 8)
        machine.vsetdiml(1, 4)
        machine.vsetmask(0)
        machine.vunsetmask(1)
        machine.vsetwidth(16)
        machine.vsetldstr(1, 640)
        machine.vsetststr(1, 320)
        stats = machine.stats()
        assert stats.config == 8
        assert machine.cr.shape.lengths == (8, 4)
        assert machine.cr.element_bits == 16
        assert machine.cr.load_strides[1] == 640

    def test_scalar_accounting(self, machine):
        machine.scalar(12, loads=2, stores=1)
        machine.scalar(0)  # no-op
        stats = machine.stats()
        assert stats.scalar == 12
        assert stats.scalar_loads == 2


class TestStridedAccess:
    def test_1d_load_store_roundtrip(self, machine):
        data = alloc(machine, np.arange(16, dtype=np.int32))
        out = machine.memory.allocate(DataType.INT32, 16)
        machine.vsetdimc(1)
        machine.vsetdiml(0, 16)
        value = machine.vsld(DataType.INT32, data.address, (1,))
        machine.vsst(value, out.address, (1,))
        np.testing.assert_array_equal(out.read(), np.arange(16))

    def test_2d_sequential_load(self, machine):
        matrix = np.arange(12, dtype=np.int32).reshape(3, 4)
        data = alloc(machine, matrix.reshape(-1))
        machine.vsetdimc(2)
        machine.vsetdiml(0, 4)
        machine.vsetdiml(1, 3)
        value = machine.vsld(DataType.INT32, data.address, (1, 2))
        # lane order: dim0 (columns) fastest -> row-major flattening
        np.testing.assert_array_equal(value.values, matrix.reshape(-1))

    def test_stride_zero_replicates(self, machine):
        data = alloc(machine, np.array([7, 8, 9], dtype=np.int32))
        machine.vsetdimc(2)
        machine.vsetdiml(0, 4)
        machine.vsetdiml(1, 3)
        value = machine.vsld(DataType.INT32, data.address, (0, 1))
        expected = np.repeat([7, 8, 9], 4)
        np.testing.assert_array_equal(value.values, expected)

    def test_stride_register_mode(self, machine):
        matrix = np.arange(20, dtype=np.int32).reshape(4, 5)
        data = alloc(machine, matrix.reshape(-1))
        machine.vsetdimc(2)
        machine.vsetdiml(0, 4)
        machine.vsetdiml(1, 3)
        machine.vsetldstr(0, 5)
        # dim0 walks down a column (stride 5), dim1 walks across columns
        value = machine.vsld(DataType.INT32, data.address, (3, 1))
        np.testing.assert_array_equal(value.values, matrix[:, :3].T.reshape(-1))

    def test_intrapicture_example_of_figure3(self, machine):
        """The Figure 3 example: 2D memory -> 3D register with replication."""
        data = alloc(machine, np.arange(9, dtype=np.int32))  # rows [0 1 2][3 4 5][6 7 8]
        machine.vsetdimc(3)
        machine.vsetdiml(0, 3)
        machine.vsetdiml(1, 2)
        machine.vsetdiml(2, 3)
        machine.vsetldstr(2, 3)
        value = machine.vsld(DataType.INT32, data.address, (1, 0, 3))
        expected = np.array([0, 1, 2, 0, 1, 2, 3, 4, 5, 3, 4, 5, 6, 7, 8, 6, 7, 8])
        np.testing.assert_array_equal(value.values, expected)

    def test_transpose_via_strided_store(self, machine):
        matrix = np.arange(6, dtype=np.int32).reshape(2, 3)
        src = alloc(machine, matrix.reshape(-1))
        dst = machine.memory.allocate(DataType.INT32, 6)
        machine.vsetdimc(2)
        machine.vsetdiml(0, 2)   # rows of the source
        machine.vsetdiml(1, 3)   # columns of the source
        machine.vsetldstr(0, 3)
        machine.vsetststr(1, 2)
        value = machine.vsld(DataType.INT32, src.address, (3, 1))
        machine.vsst(value, dst.address, (1, 3))
        np.testing.assert_array_equal(dst.read(), matrix.T.reshape(-1))

    def test_shape_larger_than_lanes_rejected(self):
        machine = MVEMachine(FlatMemory(), simd_lanes=64)
        data = machine.memory.allocate(DataType.INT32, 128)
        machine.vsetdimc(1)
        machine.vsetdiml(0, 128)
        with pytest.raises(ValueError):
            machine.vsld(DataType.INT32, data.address, (1,))


class TestRandomAccess:
    def test_random_load_uses_pointer_table(self, machine):
        row0 = alloc(machine, np.array([1, 2], dtype=np.int32))
        row1 = alloc(machine, np.array([3, 4], dtype=np.int32))
        table = machine.memory.allocate_array(
            np.array([row1.address, row0.address], dtype=np.uint64), DataType.UINT64
        )
        machine.vsetdimc(2)
        machine.vsetdiml(0, 2)
        machine.vsetdiml(1, 2)
        value = machine.vrld(DataType.INT32, table.address, (1,))
        np.testing.assert_array_equal(value.values, [3, 4, 1, 2])
        instr = machine.trace[-1]
        assert isinstance(instr, MemoryInstruction) and instr.is_random
        assert instr.random_bases == (row1.address, row0.address)

    def test_random_load_with_replication(self, machine):
        """The h2v2 upsample pattern of Figure 4: replicate pixels twice."""
        row = alloc(machine, np.array([5, 6], dtype=np.int32))
        table = machine.memory.allocate_array(
            np.array([row.address], dtype=np.uint64), DataType.UINT64
        )
        machine.vsetdimc(3)
        machine.vsetdiml(0, 2)  # replication
        machine.vsetdiml(1, 2)  # pixels
        machine.vsetdiml(2, 1)  # rows (random)
        value = machine.vrld(DataType.INT32, table.address, (0, 1))
        np.testing.assert_array_equal(value.values, [5, 5, 6, 6])

    def test_random_store(self, machine):
        out_row = machine.memory.allocate(DataType.INT32, 4)
        table = machine.memory.allocate_array(
            np.array([out_row.address], dtype=np.uint64), DataType.UINT64
        )
        machine.vsetdimc(2)
        machine.vsetdiml(0, 4)
        machine.vsetdiml(1, 1)
        value = machine.vsetdup(DataType.INT32, 9)
        machine.vrst(value, table.address, (1,))
        np.testing.assert_array_equal(out_row.read(), [9, 9, 9, 9])


class TestMasking:
    def test_masked_store_skips_masked_elements(self, machine):
        out = machine.memory.allocate_array(np.zeros(8, dtype=np.int32), DataType.INT32)
        machine.vsetdimc(2)
        machine.vsetdiml(0, 4)
        machine.vsetdiml(1, 2)
        value = machine.vsetdup(DataType.INT32, 5)
        machine.vunsetmask(0)
        machine.vsst(value, out.address, (1, 2))
        np.testing.assert_array_equal(out.read(), [0, 0, 0, 0, 5, 5, 5, 5])

    def test_masked_load_zeroes_masked_lanes(self, machine):
        data = alloc(machine, np.arange(8, dtype=np.int32) + 1)
        machine.vsetdimc(2)
        machine.vsetdiml(0, 4)
        machine.vsetdiml(1, 2)
        machine.vunsetmask(1)
        value = machine.vsld(DataType.INT32, data.address, (1, 2))
        np.testing.assert_array_equal(value.values, [1, 2, 3, 4, 0, 0, 0, 0])

    def test_mask_snapshot_recorded_in_instruction(self, machine):
        data = alloc(machine, np.arange(8, dtype=np.int32))
        machine.vsetdimc(2)
        machine.vsetdiml(0, 4)
        machine.vsetdiml(1, 2)
        machine.vunsetmask(0)
        machine.vsld(DataType.INT32, data.address, (1, 2))
        instr = machine.trace[-1]
        assert instr.mask == (False, True)
        assert instr.active_elements() == 4

    def test_reset_mask(self, machine):
        machine.vsetdimc(2)
        machine.vsetdiml(1, 4)
        machine.vunsetmask(2)
        machine.vresetmask()
        assert machine.cr.active_mask() == [True] * 4


class TestArithmetic:
    def _vec(self, machine, values, dtype=DataType.INT32):
        data = alloc(machine, np.asarray(values), dtype)
        machine.vsetdimc(1)
        machine.vsetdiml(0, len(values))
        return machine.vsld(dtype, data.address, (1,))

    def test_add_sub_mul(self, machine):
        a = self._vec(machine, [1, 2, 3, 4])
        b = self._vec(machine, [10, 20, 30, 40])
        np.testing.assert_array_equal(machine.vadd(a, b).values, [11, 22, 33, 44])
        np.testing.assert_array_equal(machine.vsub(b, a).values, [9, 18, 27, 36])
        np.testing.assert_array_equal(machine.vmul(a, b).values, [10, 40, 90, 160])

    def test_integer_wraparound(self, machine):
        a = self._vec(machine, [127], DataType.INT8)
        one = machine.vsetdup(DataType.INT8, 1)
        assert machine.vadd(a, one).values[0] == -128

    def test_min_max(self, machine):
        a = self._vec(machine, [1, 5, 3])
        b = self._vec(machine, [4, 2, 3])
        np.testing.assert_array_equal(machine.vmin(a, b).values, [1, 2, 3])
        np.testing.assert_array_equal(machine.vmax(a, b).values, [4, 5, 3])

    def test_logical_ops(self, machine):
        a = self._vec(machine, [0b1100, 0b1010])
        b = self._vec(machine, [0b1010, 0b0110])
        np.testing.assert_array_equal(machine.vand(a, b).values, [0b1000, 0b0010])
        np.testing.assert_array_equal(machine.vor(a, b).values, [0b1110, 0b1110])
        np.testing.assert_array_equal(machine.vxor(a, b).values, [0b0110, 0b1100])
        np.testing.assert_array_equal(machine.vnot(a).values, [~0b1100, ~0b1010])

    def test_shifts_and_rotate(self, machine):
        a = self._vec(machine, [8, 16])
        np.testing.assert_array_equal(machine.vshl_imm(a, 2).values, [32, 64])
        np.testing.assert_array_equal(machine.vshr_imm(a, 2).values, [2, 4])
        rotated = machine.vrot_imm(self._vec(machine, [1], DataType.UINT8), 1)
        assert rotated.values[0] == 2

    def test_shift_by_register(self, machine):
        a = self._vec(machine, [1, 1, 1])
        s = self._vec(machine, [0, 1, 2])
        np.testing.assert_array_equal(machine.vshl_reg(a, s).values, [1, 2, 4])

    def test_comparisons_produce_01(self, machine):
        a = self._vec(machine, [1, 5, 3])
        b = self._vec(machine, [3, 3, 3])
        np.testing.assert_array_equal(machine.vgt(a, b).values, [0, 1, 0])
        np.testing.assert_array_equal(machine.vlte(a, b).values, [1, 0, 1])
        np.testing.assert_array_equal(machine.veq(a, b).values, [0, 0, 1])

    def test_division_guards_zero(self, machine):
        a = self._vec(machine, [10, 9])
        b = self._vec(machine, [2, 0])
        np.testing.assert_array_equal(machine.vdiv(a, b).values, [5, 0])

    def test_float_arithmetic(self, machine):
        a = self._vec(machine, [1.5, 2.5], DataType.FLOAT32)
        b = self._vec(machine, [0.5, 0.25], DataType.FLOAT32)
        np.testing.assert_allclose(machine.vmul(a, b).values, [0.75, 0.625])

    def test_setdup_and_copy_and_convert(self, machine):
        machine.vsetdimc(1)
        machine.vsetdiml(0, 4)
        dup = machine.vsetdup(DataType.INT16, 3)
        assert dup.values.dtype == np.int16
        copy = machine.vcpy(dup)
        np.testing.assert_array_equal(copy.values, dup.values)
        wide = machine.vcvt(dup, DataType.INT32)
        assert wide.dtype is DataType.INT32
        np.testing.assert_array_equal(wide.values, [3, 3, 3, 3])

    def test_operand_conforming_pads_with_zero(self, machine):
        a = self._vec(machine, [1, 2])
        machine.vsetdiml(0, 4)
        b = machine.vsetdup(DataType.INT32, 10)
        result = machine.vadd(a, b)
        np.testing.assert_array_equal(result.values, [11, 12, 10, 10])


class TestTraceBookkeeping:
    def test_register_numbers_increase(self, machine):
        machine.vsetdimc(1)
        machine.vsetdiml(0, 4)
        a = machine.vsetdup(DataType.INT32, 1)
        b = machine.vsetdup(DataType.INT32, 2)
        c = machine.vadd(a, b)
        assert a.register < b.register < c.register

    def test_stats_classification(self, machine):
        data = alloc(machine, np.arange(4, dtype=np.int32))
        machine.vsetdimc(1)
        machine.vsetdiml(0, 4)
        v = machine.vsld(DataType.INT32, data.address, (1,))
        machine.vcpy(v)
        machine.vadd(v, v)
        machine.scalar(5)
        stats = machine.stats()
        assert stats.as_dict() == {
            "config": 2,
            "move": 1,
            "memory": 1,
            "arithmetic": 1,
            "vector_total": 5,
            "scalar": 5,
        }

    def test_reset_trace(self, machine):
        machine.vsetdimc(2)
        machine.reset_trace()
        assert machine.trace == []
        assert machine.cr.dim_count == 1


class TestMDV:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MDV(0, DataType.INT32, VectorShape((4,)), np.zeros(3, dtype=np.int32))

    def test_lane_indexing(self):
        mdv = MDV(0, DataType.INT32, VectorShape((2, 2)), np.array([1, 2, 3, 4]))
        assert mdv.lane(1, 0) == 2
        assert mdv.lane(0, 1) == 3

    def test_as_ndarray_shape(self):
        mdv = MDV(0, DataType.INT32, VectorShape((4, 2)), np.arange(8))
        assert mdv.as_ndarray().shape == (2, 4)
