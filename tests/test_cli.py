"""Tests for the unified ``python -m repro`` CLI and the repro.sweep shim.

The expensive full-scale experiment exports run in CI; here the CLI is
exercised on cheap experiments (tables, ad-hoc sweeps) and the export
schema is pinned against the checked-in golden outline.
"""

import csv
import json
import os

import pytest

from repro.cli import main as cli_main, schema_outline
from repro.experiments.registry import experiment_names
from repro.experiments.tables import TablesResult
from repro.sweep import main as legacy_main

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


@pytest.fixture(scope="session")
def schema_cache_dir(tmp_path_factory):
    """Persistent store shared by every schema-golden export.

    Honouring $REPRO_SWEEP_CACHE_DIR means CI (and any dev box that sets
    it) answers the fixed-shape experiments from the warm cache; otherwise
    one session-scoped directory at least shares jobs across the 11
    parametrized runs (figure11 reuses figure10's spec, figure12 is the
    union of its sub-experiments, ...).
    """
    env = os.environ.get("REPRO_SWEEP_CACHE_DIR")
    if env:
        return env
    # A fixed name under the session basetemp (not mktemp, which numbers
    # its directories): test_read_api resolves the same path, so the
    # round-trip suite reuses these warm results instead of re-simulating
    # all 11 experiments a second time.
    root = tmp_path_factory.getbasetemp() / "schema-cache"
    root.mkdir(exist_ok=True)
    return str(root)


class TestList:
    def test_lists_experiments_sweeps_and_cache(self, tmp_path, capsys):
        assert cli_main(["--cache-dir", str(tmp_path), "list"]) == 0
        out = capsys.readouterr().out
        assert "Experiments" in out
        assert "figure7" in out and "tables" in out
        assert "Named sweeps" in out
        assert str(tmp_path) in out


class TestRunExperimentCommand:
    def test_tables_json_export(self, tmp_path, capsys):
        out_path = tmp_path / "tables.json"
        argv = ["--cache-dir", str(tmp_path / "cache"), "run", "tables",
                "--jobs", "1", "--export", "json", "--out", str(out_path)]
        assert cli_main(argv) == 0
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == 1
        assert payload["experiment"] == "tables"
        assert payload["options"]["scale"] == 0.5
        assert "num_arrays" in json.dumps(payload["options"]["config"])
        # The exported result deserializes back into the result type.
        restored = TablesResult.from_dict(payload["result"])
        assert restored.table5["mve_overhead_percent"] == pytest.approx(3.6, abs=0.2)

    def test_tables_csv_export_to_stdout(self, tmp_path, capsys):
        argv = ["--cache-dir", str(tmp_path / "cache"), "run", "tables",
                "--jobs", "1", "--export", "csv"]
        assert cli_main(argv) == 0
        rows = list(csv.DictReader(capsys.readouterr().out.splitlines()))
        sections = {row["section"] for row in rows}
        assert {"table1", "table2", "table3", "summary"} <= sections
        opcodes = {row["opcode"] for row in rows if row["section"] == "table2"}
        assert "vadd" in opcodes

    def test_human_readable_run_prints_tables(self, tmp_path, capsys):
        argv = ["--cache-dir", str(tmp_path / "cache"), "run", "tables", "--jobs", "1"]
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "tables.table2" in out and "vadd" in out
        assert "assembled in" in out

    def test_unknown_experiment_is_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="figure99"):
            cli_main(["--cache-dir", str(tmp_path), "run", "figure99"])

    def test_experiment_name_combined_with_sweep_or_kernels_is_rejected(self, tmp_path):
        """Regression: `run tables --sweep figure10` used to silently drop
        the experiment name and run the sweep."""
        with pytest.raises(SystemExit, match="not both"):
            cli_main(["--cache-dir", str(tmp_path), "run", "tables", "--sweep", "figure10"])
        with pytest.raises(SystemExit, match="not both"):
            cli_main(["--cache-dir", str(tmp_path), "run", "tables", "--kernels", "csum"])


class TestRunSweepCommand:
    def test_adhoc_sweep_json_export(self, tmp_path):
        out_path = tmp_path / "sweep.json"
        argv = ["--cache-dir", str(tmp_path / "cache"), "run", "--kernels", "csum",
                "--scale", "0.25", "--jobs", "1", "--export", "json",
                "--out", str(out_path)]
        assert cli_main(argv) == 0
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == 1 and payload["sweep"] == "custom"
        (job,) = payload["jobs"]
        assert job["kernel"] == "csum" and job["kind"] == "mve"
        assert job["source"] == "computed"
        assert job["result"]["total_cycles"] > 0
        assert len(job["cache_key"]) == 64

    def test_adhoc_sweep_csv_export(self, tmp_path, capsys):
        argv = ["--cache-dir", str(tmp_path / "cache"), "run", "--kernels",
                "csum,memcpy", "--scale", "0.25", "--jobs", "1", "--export", "csv"]
        assert cli_main(argv) == 0
        rows = list(csv.DictReader(capsys.readouterr().out.splitlines()))
        assert {row["kernel"] for row in rows} == {"csum", "memcpy"}
        assert all(float(row["result.total_cycles"]) > 0 for row in rows)

    def test_progress_streams_to_stderr(self, tmp_path, capsys):
        argv = ["--cache-dir", str(tmp_path / "cache"), "run", "--kernels",
                "csum,memcpy", "--scale", "0.25", "--jobs", "1"]
        assert cli_main(argv) == 0
        err = capsys.readouterr().err
        assert "[1/2]" in err and "[2/2]" in err

    def test_no_progress_silences_stderr(self, tmp_path, capsys):
        argv = ["--cache-dir", str(tmp_path / "cache"), "run", "--kernels", "csum",
                "--scale", "0.25", "--jobs", "1", "--no-progress"]
        assert cli_main(argv) == 0
        assert "[1/1]" not in capsys.readouterr().err


class TestExportLineTerminators:
    """Regression: ``_write_export`` wrote CSV text through a default
    text-mode handle (no ``newline=""``), which doubled the csv module's
    ``\\r\\n`` terminators to ``\\r\\r\\n`` on Windows.  Exports now write
    rendered bytes, so the terminators are platform-independent."""

    def test_csv_export_bytes_use_exact_crlf(self, tmp_path):
        out_path = tmp_path / "tables.csv"
        argv = ["--cache-dir", str(tmp_path / "cache"), "run", "tables",
                "--jobs", "1", "--export", "csv", "--out", str(out_path)]
        assert cli_main(argv) == 0
        data = out_path.read_bytes()
        assert b"\r\r\n" not in data
        # Every line terminator is exactly \r\n (RFC 4180): as many bare
        # newlines as CRLF pairs means no lone \n ever hits the file.
        assert data.count(b"\n") == data.count(b"\r\n") > 0
        assert data.endswith(b"\r\n")

    def test_json_export_bytes_keep_bare_lf(self, tmp_path):
        out_path = tmp_path / "tables.json"
        argv = ["--cache-dir", str(tmp_path / "cache"), "run", "tables",
                "--jobs", "1", "--export", "json", "--out", str(out_path)]
        assert cli_main(argv) == 0
        data = out_path.read_bytes()
        assert b"\r" not in data
        assert data.endswith(b"\n")


class TestTraceCommand:
    def test_capture_then_stats_hits_the_trace_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert cli_main(["--cache-dir", cache_dir, "trace", "capture", "csum",
                         "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "captured in" in out and "columnar npz" in out

        # stats answers from the store: no fresh capture
        assert cli_main(["--cache-dir", cache_dir, "trace", "stats", "csum",
                         "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "[cache]" in out
        assert "Dynamic instruction mix" in out
        assert "vsld" in out and "arithmetic" in out

    def test_stats_without_cache_captures_fresh(self, tmp_path, capsys):
        assert cli_main(["--cache-dir", str(tmp_path), "trace", "stats", "csum",
                         "--scale", "0.25", "--no-cache"]) == 0
        assert "captured in" in capsys.readouterr().out
        assert not any((tmp_path).glob("*/*.json"))

    def test_list_marks_cached_and_rvv_kernels(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert cli_main(["--cache-dir", cache_dir, "trace", "capture", "csum"]) == 0
        capsys.readouterr()
        assert cli_main(["--cache-dir", cache_dir, "trace", "list"]) == 0
        out = capsys.readouterr().out
        (csum_row,) = [line for line in out.splitlines() if line.startswith("csum ")]
        assert "yes" in csum_row  # rvv support and cached marker
        assert "gemm" in out

    def test_unknown_kernel_and_missing_lowering_are_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown kernel"):
            cli_main(["--cache-dir", str(tmp_path), "trace", "stats", "nope"])
        with pytest.raises(SystemExit, match="no rvv lowering"):
            cli_main(["--cache-dir", str(tmp_path), "trace", "stats", "memcpy",
                      "--kind", "rvv"])
        with pytest.raises(SystemExit, match="pass a kernel"):
            cli_main(["--cache-dir", str(tmp_path), "trace", "capture"])


class TestTraceDiff:
    def test_diffs_mve_against_rvv_instruction_mix(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = ["--cache-dir", cache_dir, "trace", "diff", "csum",
                "--scale", "0.25", "--against", "kind=rvv"]
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "base:" in out and "against:" in out
        assert "csum/mve" in out and "csum/rvv" in out
        assert "Dynamic instruction mix" in out
        assert "ratio" in out and "delta" in out
        assert "Per-opcode counts" in out

        # Both sides cached now: a re-diff captures nothing.
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert out.count("[cache]") == 2
        assert "captured in" not in out

    def test_against_overrides_scale_and_lanes(self, tmp_path, capsys):
        argv = ["--cache-dir", str(tmp_path / "cache"), "trace", "diff", "csum",
                "--scale", "0.25", "--against", "scale=0.5,lanes=4096"]
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "scale=0.25" in out and "scale=0.5" in out

    def test_missing_or_malformed_against_is_rejected(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with pytest.raises(SystemExit, match="pass --against"):
            cli_main(["--cache-dir", cache_dir, "trace", "diff", "csum"])
        with pytest.raises(SystemExit, match="bad --against entry"):
            cli_main(["--cache-dir", cache_dir, "trace", "diff", "csum",
                      "--against", "rvv"])
        with pytest.raises(SystemExit, match="bad --against entry"):
            cli_main(["--cache-dir", cache_dir, "trace", "diff", "csum",
                      "--against", "warp=9"])
        with pytest.raises(SystemExit, match="unknown kernel"):
            cli_main(["--cache-dir", cache_dir, "trace", "diff", "csum",
                      "--against", "kernel=nope"])
        with pytest.raises(SystemExit, match="unknown kind"):
            cli_main(["--cache-dir", cache_dir, "trace", "diff", "csum",
                      "--against", "kind=avx"])
        with pytest.raises(SystemExit, match="scale must be a number"):
            cli_main(["--cache-dir", cache_dir, "trace", "diff", "csum",
                      "--against", "scale=fast"])


class TestCacheCommand:
    def test_info_and_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        cli_main(["--cache-dir", cache_dir, "run", "--kernels", "csum",
                  "--scale", "0.25", "--jobs", "1", "--no-progress"])
        capsys.readouterr()
        # One simulation result plus its capture-stage trace artifact.
        assert cli_main(["--cache-dir", cache_dir, "cache"]) == 0
        assert "(2 entries)" in capsys.readouterr().out
        assert cli_main(["--cache-dir", cache_dir, "cache", "clear"]) == 0
        assert "removed 2" in capsys.readouterr().out


class TestExportSchemaGolden:
    """Every registered experiment's export schema is pinned by a golden.

    The outline is value- and scale-free (lists collapse to their first
    element's shape), so the reduced-scale runs here pin the same outline
    the CI full-scale figure7 smoke step compares.  Regenerate after an
    intentional result-shape change with::

        PYTHONPATH=src python tests/test_cli.py --update-schemas
    """

    def test_every_experiment_has_a_golden(self):
        goldens = {
            name[: -len("_export_schema.json")]
            for name in os.listdir(GOLDEN_DIR)
            if name.endswith("_export_schema.json")
        }
        assert goldens == set(experiment_names())

    @pytest.mark.parametrize("name", experiment_names())
    def test_export_schema_matches_golden(self, name, tmp_path, schema_cache_dir):
        out_path = tmp_path / f"{name}.json"
        argv = ["--cache-dir", schema_cache_dir, "run", name, "--scale", "0.1",
                "--export", "json", "--out", str(out_path), "--no-progress"]
        assert cli_main(argv) == 0
        payload = json.loads(out_path.read_text())
        assert payload["experiment"] == name
        with open(os.path.join(GOLDEN_DIR, f"{name}_export_schema.json")) as handle:
            golden = json.load(handle)
        assert schema_outline(payload["result"]) == golden


class TestDeprecatedSweepShim:
    def test_shim_delegates_and_warns(self, tmp_path, capsys):
        argv = ["--cache-dir", str(tmp_path / "cache"), "run", "--kernels", "csum",
                "--scale", "0.25", "--jobs", "1"]
        assert legacy_main(argv) == 0
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        assert "1 jobs" in captured.out and "1 simulated" in captured.out

    def test_shim_named_sweep_matches_experiment_jobs(self):
        from repro.experiments import ExperimentOptions, get_experiment
        from repro.sweep import named_sweep, named_sweep_names

        assert "figure7" in named_sweep_names()
        spec = named_sweep("figure13")
        assert spec.jobs() == get_experiment("figure13").jobs(ExperimentOptions())

    def test_named_sweeps_carry_their_own_name(self):
        """Regression: figure11 reuses figure10's spec, so exposing it as a
        raw sweep would export payloads labelled \"figure10\"; multi-spec
        figure12 cannot be one raw sweep either."""
        from repro.sweep import named_sweep, named_sweep_names

        names = named_sweep_names()
        assert "figure11" not in names and "figure12" not in names
        for name in names:
            assert named_sweep(name).name == name
        with pytest.raises(KeyError, match="not a single raw sweep"):
            named_sweep("figure11")


# ---------------------------------------------------------------------- #
#  Golden regeneration: PYTHONPATH=src python tests/test_cli.py --update-schemas
# ---------------------------------------------------------------------- #


def _update_schema_goldens() -> None:
    import tempfile

    # Hermetic like the pytest run (see conftest.py): regeneration must not
    # publish reduced-scale results to a real cache service or pollute the
    # developer's default cache directory.
    os.environ.pop("REPRO_REMOTE_CACHE", None)
    cache_dir = tempfile.mkdtemp(prefix="repro-schema-cache-")
    for name in experiment_names():
        out_path = os.path.join(tempfile.mkdtemp(), f"{name}.json")
        argv = ["--cache-dir", cache_dir, "run", name, "--scale", "0.1",
                "--export", "json", "--out", out_path, "--no-progress"]
        assert cli_main(argv) == 0
        with open(out_path) as handle:
            payload = json.load(handle)
        golden_path = os.path.join(GOLDEN_DIR, f"{name}_export_schema.json")
        with open(golden_path, "w") as handle:
            json.dump(schema_outline(payload["result"]), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"updated {golden_path}")


if __name__ == "__main__":
    import sys

    if "--update-schemas" in sys.argv:
        _update_schema_goldens()
    else:
        raise SystemExit("usage: PYTHONPATH=src python tests/test_cli.py --update-schemas")
