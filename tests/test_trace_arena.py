"""Zero-copy trace plane suite: arena roundtrip, degradation, pool lifetime.

Pins the tentpole contracts of :mod:`repro.core.trace_arena` and the
persistent :class:`~repro.experiments.adapters.LocalPoolAdapter`:

* publish/attach reconstructs the exact entry list, over read-only views,
  for every distinct trace spec of every registered experiment -- and
  replay is a deterministic function of that entry list, which is what
  makes ``REPRO_SHM_TRACE=0`` vs the default bit-identical by
  construction (the pooled end-to-end tests below also check the actual
  ``SimulationResult`` dicts),
* segments are refcount-unlinked per batch and swept on ``close()`` --
  nothing named ``repro-arena-*`` outlives an engine,
* ``REPRO_SHM_TRACE=0`` degrades silently; an ``OSError`` at segment
  creation degrades with exactly one ``RuntimeWarning`` -- both
  bit-identical to the arena path,
* a pool whose workers are SIGKILLed is recreated once and finishes the
  batch, leaking no segments,
* the pool persists across batches (``pool_reuses``) and the worker-side
  attach LRU returns the *same list object*, keeping the identity-keyed
  compile memo warm.
"""

import os
import pickle
import signal
import warnings

import pytest

import repro.core.trace_arena as ta
from repro.compiler.pipeline import compile_cache_info, compile_trace_cached
from repro.core.cache import ResultStore
from repro.core.traces import TraceSpec
from repro.experiments.adapters import LocalPoolAdapter
from repro.experiments.registry import all_experiments
from repro.experiments.sweep import KernelJob, ParallelSweepEngine


@pytest.fixture(autouse=True)
def _fresh_worker_cache():
    """Each test sees an empty parent-process attach LRU (worker processes
    fork with whatever the parent holds, so a stale entry from an earlier
    test could mask a broken attach path)."""
    ta._worker_traces.clear()
    yield
    ta._worker_traces.clear()


@pytest.fixture(scope="module")
def csum_trace():
    return TraceSpec("csum", "mve", 0.25).capture().trace


def assert_no_shm_leaks():
    assert not ta.live_segments()
    shm_dir = os.path.join(os.sep, "dev", "shm")
    if os.path.isdir(shm_dir):
        leaked = [n for n in os.listdir(shm_dir) if n.startswith(ta.ARENA_PREFIX)]
        assert not leaked, f"leaked trace-arena segments: {leaked}"


class TestTraceArena:
    """Parent-side publish/refcount lifecycle and worker-side attach."""

    def test_publish_attach_roundtrip(self, csum_trace):
        arena = ta.TraceArena()
        try:
            handle = arena.publish("spec-a", csum_trace)
            assert handle is not None
            assert handle.entries == len(csum_trace)
            assert ta.live_segments() == [handle.segment]
            assert ta.attached_trace(handle) == csum_trace
        finally:
            arena.close()
        assert_no_shm_leaks()

    def test_handles_ship_small(self, csum_trace):
        """The whole point: tasks pickle a handle, not the trace."""
        arena = ta.TraceArena()
        try:
            handle = arena.publish("spec-a", csum_trace)
            assert len(pickle.dumps(handle)) < len(pickle.dumps(csum_trace)) / 10
        finally:
            arena.close()

    def test_publish_is_memoized_per_spec(self, csum_trace):
        arena = ta.TraceArena()
        try:
            first = arena.publish("spec-a", csum_trace)
            assert arena.publish("spec-a", csum_trace) is first
            assert arena.published == 1
        finally:
            arena.close()

    def test_refcount_unlinks_on_last_release(self, csum_trace):
        arena = ta.TraceArena()
        try:
            handle = arena.publish("spec-a", csum_trace)
            arena.retain("spec-a")
            arena.retain("spec-a")
            arena.release("spec-a")
            assert ta.live_segments() == [handle.segment]
            arena.release("spec-a")
            assert not ta.live_segments()
            # The handle is dropped with the segment, so a retry after a
            # pool recreation republishes instead of shipping a dangling
            # segment name.
            again = arena.publish("spec-a", csum_trace)
            assert again is not None and again.segment != handle.segment
            assert arena.published == 2
        finally:
            arena.close()
        assert_no_shm_leaks()

    def test_worker_views_are_readonly(self, csum_trace, monkeypatch):
        """Attach decodes over a read-only memoryview: no worker can
        scribble on a segment another worker is decoding."""
        seen = {}
        real = ta.entries_from_columns

        def spying(columns, n, notes=()):
            seen["writable"] = [v.flags.writeable for v in columns.values()]
            return real(columns, n, notes)

        monkeypatch.setattr(ta, "entries_from_columns", spying)
        arena = ta.TraceArena()
        try:
            ta.attached_trace(arena.publish("spec-a", csum_trace))
        finally:
            arena.close()
        assert seen["writable"] and not any(seen["writable"])

    def test_attach_lru_returns_same_object_and_keeps_compile_memo_warm(
        self, csum_trace
    ):
        arena = ta.TraceArena()
        try:
            handle = arena.publish("spec-a", csum_trace)
            first = ta.attached_trace(handle)
            assert ta.attached_trace(handle) is first
            assert ta.attached_trace_cache_len() == 1
            compiled = compile_trace_cached(first)
            before = compile_cache_info()["hits"]
            assert compile_trace_cached(ta.attached_trace(handle)) is compiled
            assert compile_cache_info()["hits"] == before + 1
        finally:
            arena.close()
        assert_no_shm_leaks()

    def test_oserror_marks_arena_dead(self, csum_trace, monkeypatch):
        class Raising:
            def SharedMemory(self, *args, **kwargs):
                raise OSError("no /dev/shm")

        monkeypatch.setattr(ta, "shared_memory", Raising())
        arena = ta.TraceArena()
        assert arena.publish("spec-a", csum_trace) is None
        assert arena.dead
        assert arena.publish("spec-b", csum_trace) is None
        assert arena.published == 0
        assert_no_shm_leaks()

    def test_env_escape_hatch_disables_arena(self, csum_trace, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_TRACE", "0")
        assert not ta.arena_enabled()
        arena = ta.TraceArena()
        assert arena.dead
        assert arena.publish("spec-a", csum_trace) is None
        assert_no_shm_leaks()


def pool_jobs():
    """Two kernels x two schemes: two resolved trace groups, so the pool
    path (which requires more than one task) always engages."""
    return [
        KernelJob(kernel=kernel, scale=0.25, scheme_name=scheme)
        for kernel in ("csum", "gemm")
        for scheme in ("bit-serial", "bit-parallel")
    ]


def warm_traces_only(store_root, jobs):
    """Capture once serially, then drop the results but keep the trace
    payloads: the pooled engine under test must replay (results cold)
    from stored captures (traces warm)."""
    ParallelSweepEngine(jobs=1, store=ResultStore(store_root)).run_jobs(jobs)
    trace_keys = {job.trace_spec().cache_key() for job in jobs}
    for path in store_root.glob("*/*.json"):
        if path.stem not in trace_keys:
            path.unlink()


def outcome_map(outcomes):
    return {
        job.cache_key(): (out.result.to_dict(), out.spills)
        for job, out in outcomes.items()
    }


@pytest.fixture(scope="module")
def serial_expected():
    """Ground truth for the pooled equivalence tests, computed in-process."""
    engine = ParallelSweepEngine(jobs=1)
    return outcome_map(engine.run_jobs(pool_jobs()))


def run_pooled(tmp_path, jobs=2):
    """A pooled engine over a warm-trace store; returns (engine, outcomes)."""
    warm_traces_only(tmp_path, pool_jobs())
    engine = ParallelSweepEngine(jobs=jobs, store=ResultStore(tmp_path))
    outcomes = engine.run_jobs(pool_jobs())
    return engine, outcomes


class TestPoolEquivalence:
    """End-to-end: every shipping mode produces bit-identical results."""

    def test_arena_path_matches_serial(self, tmp_path, serial_expected):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            engine, outcomes = run_pooled(tmp_path)
        engine.close()
        assert outcome_map(outcomes) == serial_expected
        # Exactly one publish per distinct resolved trace.
        specs = {job.trace_spec() for job in pool_jobs()}
        assert engine.arena_publishes == {spec: 1 for spec in specs}
        assert not [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert_no_shm_leaks()

    def test_env_escape_hatch_is_silent_and_identical(
        self, tmp_path, serial_expected, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SHM_TRACE", "0")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            engine, outcomes = run_pooled(tmp_path)
        engine.close()
        assert outcome_map(outcomes) == serial_expected
        assert engine.arena_publishes == {}
        assert not [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert_no_shm_leaks()

    def test_shm_oserror_degrades_with_one_warning(
        self, tmp_path, serial_expected, monkeypatch
    ):
        class Raising:
            def SharedMemory(self, *args, **kwargs):
                raise OSError("shm creation blocked")

        monkeypatch.setattr(ta, "shared_memory", Raising())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            engine, outcomes = run_pooled(tmp_path)
        engine.close()
        assert outcome_map(outcomes) == serial_expected
        assert engine.arena_publishes == {}
        degraded = [
            w
            for w in caught
            if issubclass(w.category, RuntimeWarning)
            and "trace arena unavailable" in str(w.message)
        ]
        assert len(degraded) == 1
        assert_no_shm_leaks()

    def test_killed_pool_workers_mid_run_recover(self, tmp_path, serial_expected):
        warm_traces_only(tmp_path, pool_jobs())
        adapter = LocalPoolAdapter(jobs=2)
        engine = ParallelSweepEngine(store=ResultStore(tmp_path), adapter=adapter)
        try:
            # First batch brings the persistent pool up.
            first: dict = {}
            engine.stream_jobs(
                pool_jobs(), on_result=lambda job, out, *_: first.__setitem__(job, out)
            )
            assert outcome_map(first) == serial_expected
            pool = adapter._pool
            assert pool is not None
            for pid in list(pool._processes):
                os.kill(pid, signal.SIGKILL)
            # Results persisted in the first batch would short-circuit the
            # second; make it cold again (traces stay warm).
            warm_traces_only(tmp_path, pool_jobs())
            engine._trace_store_hit_specs.clear()
            second: dict = {}
            engine.stream_jobs(
                pool_jobs(), on_result=lambda job, out, *_: second.__setitem__(job, out)
            )
            assert outcome_map(second) == serial_expected
            # The broken pool was recreated, not limped along or leaked.
            assert adapter._pool is not None and adapter._pool is not pool
        finally:
            engine.close()
        assert adapter._pool is None
        assert_no_shm_leaks()


class TestPersistentPool:
    """The pool outlives batches and closes with the engine."""

    def test_pool_survives_batches_and_counts_reuse(self, tmp_path, serial_expected):
        warm_traces_only(tmp_path, pool_jobs())
        adapter = LocalPoolAdapter(jobs=2)
        with ParallelSweepEngine(store=ResultStore(tmp_path), adapter=adapter) as engine:
            collected: dict = {}
            engine.stream_jobs(
                pool_jobs(),
                on_result=lambda job, out, *_: collected.__setitem__(job, out),
            )
            assert outcome_map(collected) == serial_expected
            pool = adapter._pool
            assert pool is not None and engine.pool_reuses == 0
            warm_traces_only(tmp_path, pool_jobs())
            engine.stream_jobs(pool_jobs(), on_result=lambda *args: None)
            # Same pool object, counted as a reuse; each batch republishes
            # every resolved trace exactly once (segments are per-batch).
            assert adapter._pool is pool
            assert engine.pool_reuses >= 1
            specs = {job.trace_spec() for job in pool_jobs()}
            assert engine.arena_publishes == {spec: 2 for spec in specs}
        assert adapter._pool is None
        assert_no_shm_leaks()

    def test_nonpersistent_adapter_restores_pool_per_batch(
        self, tmp_path, serial_expected
    ):
        warm_traces_only(tmp_path, pool_jobs())
        adapter = LocalPoolAdapter(jobs=2, persistent=False)
        engine = ParallelSweepEngine(store=ResultStore(tmp_path), adapter=adapter)
        collected: dict = {}
        engine.stream_jobs(
            pool_jobs(), on_result=lambda job, out, *_: collected.__setitem__(job, out)
        )
        assert outcome_map(collected) == serial_expected
        assert adapter._pool is None
        assert_no_shm_leaks()


class TestAllExperimentSpecRoundtrip:
    """Acceptance: over the deduped job sets of all registered experiments,
    the arena path is bit-identical to pickled shipping.  Replay consumes
    nothing but the entry list, so exact entry reconstruction for every
    distinct spec *is* the bit-identity argument; the pooled end-to-end
    tests above pin the actual result dicts on both paths."""

    def test_every_spec_survives_the_arena(self):
        experiments = all_experiments()
        assert len(experiments) == 11
        jobs = []
        for experiment in experiments:
            jobs.extend(experiment.jobs())
        specs = list(dict.fromkeys(job.trace_spec() for job in dict.fromkeys(jobs)))
        assert len(specs) >= 11
        arena = ta.TraceArena()
        try:
            for spec in specs:
                trace = spec.capture().trace
                handle = arena.publish(spec.cache_key(), trace)
                assert handle is not None, spec
                assert ta.attached_trace(handle) == trace, spec
                # Unlink as batch completion would: capture memory stays
                # bounded by one trace over the whole sweep.
                arena.retain(handle.spec_key)
                arena.release(handle.spec_key)
        finally:
            arena.close()
        assert arena.published == len(specs)
        assert_no_shm_leaks()
