"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.intrinsics import MVEMachine
from repro.isa import DataType, VectorShape, resolve_strides
from repro.isa.registers import ControlRegisters
from repro.memory import FlatMemory

settings.register_profile("repro", deadline=None, max_examples=50)
settings.load_profile("repro")

dims_strategy = st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=4)


class TestShapeProperties:
    @given(dims_strategy)
    def test_flatten_unflatten_roundtrip(self, lengths):
        shape = VectorShape(tuple(lengths))
        for lane in range(shape.total_elements):
            assert shape.flatten_index(shape.unflatten_lane(lane)) == lane

    @given(dims_strategy)
    def test_flatten_is_bijective(self, lengths):
        shape = VectorShape(tuple(lengths))
        lanes = {
            shape.flatten_index(shape.unflatten_lane(i)) for i in range(shape.total_elements)
        }
        assert len(lanes) == shape.total_elements

    @given(dims_strategy)
    def test_total_elements_is_product(self, lengths):
        assert VectorShape(tuple(lengths)).total_elements == int(np.prod(lengths))


class TestStrideProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=4),
        st.lists(st.integers(min_value=1, max_value=16), min_size=4, max_size=4),
        st.lists(st.integers(min_value=0, max_value=512), min_size=4, max_size=4),
    )
    def test_resolved_strides_non_negative(self, modes, lengths, registers):
        strides = resolve_strides(modes, lengths, registers)
        assert len(strides) == len(modes)
        assert all(s >= 0 for s in strides)

    @given(st.lists(st.integers(min_value=1, max_value=16), min_size=2, max_size=4))
    def test_sequential_mode_equals_cumulative_product(self, lengths):
        modes = [1] + [2] * (len(lengths) - 1)
        strides = resolve_strides(modes, lengths, [0] * len(lengths))
        expected = 1
        for dim in range(1, len(lengths)):
            expected *= lengths[dim - 1]
            assert strides[dim] == expected


class TestMaskProperties:
    @given(st.integers(min_value=1, max_value=1024), st.sets(st.integers(0, 255), max_size=16))
    def test_active_mask_length_matches_dimension(self, length, masked_off):
        cr = ControlRegisters()
        cr.set_dim_count(2)
        cr.set_dim_length(1, length)
        for element in masked_off:
            cr.set_mask(element, False)
        mask = cr.active_mask()
        assert len(mask) == length


def _machine_with(values, dtype):
    memory = FlatMemory()
    machine = MVEMachine(memory)
    allocation = memory.allocate_array(np.asarray(values, dtype=dtype.numpy_dtype), dtype)
    machine.vsetdimc(1)
    machine.vsetdiml(0, len(values))
    vector = machine.vsld(dtype, allocation.address, (1,))
    return machine, vector, allocation


int32_arrays = st.lists(
    st.integers(min_value=-(2**30), max_value=2**30 - 1), min_size=1, max_size=64
)


class TestFunctionalProperties:
    @given(int32_arrays)
    def test_load_store_roundtrip(self, values):
        machine, vector, _ = _machine_with(values, DataType.INT32)
        out = machine.memory.allocate(DataType.INT32, len(values))
        machine.vsst(vector, out.address, (1,))
        np.testing.assert_array_equal(out.read(), np.asarray(values, dtype=np.int32))

    @given(int32_arrays)
    def test_add_matches_numpy(self, values):
        machine, vector, _ = _machine_with(values, DataType.INT32)
        doubled = machine.vadd(vector, vector)
        expected = (np.asarray(values, dtype=np.int64) * 2).astype(np.int32)
        np.testing.assert_array_equal(doubled.values, expected)

    @given(int32_arrays)
    def test_xor_with_self_is_zero(self, values):
        machine, vector, _ = _machine_with(values, DataType.INT32)
        np.testing.assert_array_equal(
            machine.vxor(vector, vector).values, np.zeros(len(values), dtype=np.int32)
        )

    @given(int32_arrays)
    def test_min_le_max(self, values):
        machine, vector, _ = _machine_with(values, DataType.INT32)
        reversed_vec = machine.vsetdup(DataType.INT32, 0)
        low = machine.vmin(vector, reversed_vec)
        high = machine.vmax(vector, reversed_vec)
        assert np.all(low.values <= high.values)

    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=32),
        st.integers(min_value=1, max_value=7),
    )
    def test_rotate_preserves_popcount(self, values, amount):
        machine, vector, _ = _machine_with(values, DataType.UINT8)
        rotated = machine.vrot_imm(vector, amount)
        original_bits = [bin(int(v) & 0xFF).count("1") for v in vector.values]
        rotated_bits = [bin(int(v) & 0xFF).count("1") for v in rotated.values]
        assert original_bits == rotated_bits

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
    )
    def test_strided_2d_load_matches_numpy_slicing(self, rows, cols, tile_cols):
        tile_cols = min(tile_cols, cols)
        matrix = np.arange(rows * cols, dtype=np.int32).reshape(rows, cols)
        memory = FlatMemory()
        machine = MVEMachine(memory)
        allocation = memory.allocate_array(matrix.reshape(-1), DataType.INT32)
        machine.vsetdimc(2)
        machine.vsetdiml(0, tile_cols)
        machine.vsetdiml(1, rows)
        machine.vsetldstr(1, cols)
        value = machine.vsld(DataType.INT32, allocation.address, (1, 3))
        np.testing.assert_array_equal(value.values, matrix[:, :tile_cols].reshape(-1))

    @given(int32_arrays)
    def test_sub_matches_numpy(self, values):
        machine, vector, _ = _machine_with(values, DataType.INT32)
        arr = np.asarray(values, dtype=np.int32)
        shifted = machine.vshr_imm(vector, 1)
        np.testing.assert_array_equal(
            machine.vsub(vector, shifted).values, arr - (arr >> 1)
        )

    @given(st.lists(st.integers(min_value=-(2**15), max_value=2**15 - 1), min_size=1, max_size=64))
    def test_mul_matches_numpy(self, values):
        machine, vector, _ = _machine_with(values, DataType.INT32)
        expected = np.asarray(values, dtype=np.int32) * np.asarray(values, dtype=np.int32)
        np.testing.assert_array_equal(machine.vmul(vector, vector).values, expected)

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32),
            min_size=1,
            max_size=64,
        )
    )
    def test_float_add_matches_numpy(self, values):
        machine, vector, _ = _machine_with(values, DataType.FLOAT32)
        arr = np.asarray(values, dtype=np.float32)
        np.testing.assert_array_equal(machine.vadd(vector, vector).values, arr + arr)

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=64))
    def test_and_or_match_numpy(self, values):
        machine, vector, _ = _machine_with(values, DataType.UINT8)
        arr = np.asarray(values, dtype=np.uint8)
        mask = machine.vsetdup(DataType.UINT8, 0x0F)
        np.testing.assert_array_equal(machine.vand(vector, mask).values, arr & 0x0F)
        np.testing.assert_array_equal(machine.vor(vector, mask).values, arr | 0x0F)

    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=32),
        st.integers(min_value=0, max_value=7),
    )
    def test_shift_left_matches_numpy(self, values, amount):
        machine, vector, _ = _machine_with(values, DataType.UINT8)
        expected = (np.asarray(values, dtype=np.uint16) << amount).astype(np.uint8)
        np.testing.assert_array_equal(machine.vshl_imm(vector, amount).values, expected)

    @given(int32_arrays)
    def test_vcpy_is_identity(self, values):
        machine, vector, _ = _machine_with(values, DataType.INT32)
        np.testing.assert_array_equal(
            machine.vcpy(vector).values, np.asarray(values, dtype=np.int32)
        )

    @given(st.lists(st.integers(min_value=-(2**20), max_value=2**20), min_size=1, max_size=64))
    def test_vcvt_matches_numpy_astype(self, values):
        machine, vector, _ = _machine_with(values, DataType.INT32)
        converted = machine.vcvt(vector, DataType.FLOAT32)
        np.testing.assert_array_equal(
            converted.values, np.asarray(values, dtype=np.int32).astype(np.float32)
        )

    @given(int32_arrays)
    def test_comparisons_match_numpy(self, values):
        machine, vector, _ = _machine_with(values, DataType.INT32)
        zero = machine.vsetdup(DataType.INT32, 0)
        arr = np.asarray(values, dtype=np.int32)
        np.testing.assert_array_equal(machine.vgt(vector, zero).values != 0, arr > 0)
        np.testing.assert_array_equal(machine.vlte(vector, zero).values != 0, arr <= 0)


class TestMemoryProperties:
    @given(
        st.lists(st.integers(min_value=-(2**30), max_value=2**30 - 1), min_size=1, max_size=32),
        st.integers(min_value=2, max_value=5),
    )
    def test_strided_store_matches_numpy_slicing(self, values, stride):
        machine, vector, _ = _machine_with(values, DataType.INT32)
        out = machine.memory.allocate(DataType.INT32, len(values) * stride)
        machine.vsetststr(0, stride)
        machine.vsst(vector, out.address, (3,))
        np.testing.assert_array_equal(
            out.read()[:: stride][: len(values)], np.asarray(values, dtype=np.int32)
        )

    @given(st.permutations(list(range(16))))
    def test_random_load_matches_fancy_indexing(self, order):
        memory = FlatMemory()
        machine = MVEMachine(memory)
        data = np.arange(100, 100 + len(order), dtype=np.int32)
        allocation = memory.allocate_array(data, DataType.INT32)
        pointers = np.asarray(
            [allocation.address + index * 4 for index in order], dtype=np.uint64
        )
        table = memory.allocate_array(pointers, DataType.UINT64)
        machine.vsetdimc(1)
        machine.vsetdiml(0, len(order))
        gathered = machine.vrld(DataType.INT32, table.address, (1,))
        np.testing.assert_array_equal(gathered.values, data[np.asarray(order)])

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
    )
    def test_2d_load_store_roundtrip(self, rows, cols):
        matrix = np.arange(rows * cols, dtype=np.int32).reshape(rows, cols)
        memory = FlatMemory()
        machine = MVEMachine(memory)
        source = memory.allocate_array(matrix.reshape(-1), DataType.INT32)
        dest = memory.allocate(DataType.INT32, rows * cols)
        machine.vsetdimc(2)
        machine.vsetdiml(0, cols)
        machine.vsetdiml(1, rows)
        value = machine.vsld(DataType.INT32, source.address, (1, 2))
        machine.vsst(value, dest.address, (1, 2))
        np.testing.assert_array_equal(dest.read().reshape(rows, cols), matrix)

    @given(
        st.lists(st.integers(min_value=-(2**30), max_value=2**30 - 1), min_size=4, max_size=32),
        st.sets(st.integers(min_value=0, max_value=3), min_size=1, max_size=3),
    )
    def test_masked_store_leaves_masked_rows_untouched(self, values, masked_off):
        rows = 4
        cols = len(values) // rows
        if cols == 0:
            return
        values = values[: rows * cols]
        memory = FlatMemory()
        machine = MVEMachine(memory)
        source = memory.allocate_array(np.asarray(values, np.int32), DataType.INT32)
        sentinel = np.full(rows * cols, -1, dtype=np.int32)
        dest = memory.allocate_array(sentinel, DataType.INT32)
        machine.vsetdimc(2)
        machine.vsetdiml(0, cols)
        machine.vsetdiml(1, rows)
        value = machine.vsld(DataType.INT32, source.address, (1, 2))
        for row in masked_off:
            machine.vunsetmask(row)
        machine.vsst(value, dest.address, (1, 2))
        machine.vresetmask()
        written = dest.read().reshape(rows, cols)
        expected = np.asarray(values, np.int32).reshape(rows, cols)
        for row in range(rows):
            if row in masked_off:
                np.testing.assert_array_equal(written[row], np.full(cols, -1, np.int32))
            else:
                np.testing.assert_array_equal(written[row], expected[row])

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=2, max_size=64))
    def test_tree_reduce_preserves_sum(self, values):
        from repro.workloads.base import tree_reduce

        memory = FlatMemory()
        machine = MVEMachine(memory)
        allocation = memory.allocate_array(np.asarray(values, np.int32), DataType.INT32)
        scratch = memory.allocate(DataType.INT32, 8192)
        machine.vsetdimc(1)
        machine.vsetdiml(0, len(values))
        vector = machine.vsld(DataType.INT32, allocation.address, (1,))
        reduced, remaining = tree_reduce(
            machine, vector, len(values), scratch.address, stop_at=2
        )
        assert int(reduced.values[:remaining].sum()) == int(np.sum(values))


class TestCacheEngineParity:
    """The batched numpy cache engine is bit-for-bit identical to the scalar
    reference: random access streams (single core/engine accesses plus
    vector block accesses with conflict-heavy strided patterns) must produce
    identical latencies, hit levels and statistics at every step."""

    @staticmethod
    def _small_hierarchy(cls):
        from repro.memory import CacheConfig, HierarchyConfig

        config = HierarchyConfig(
            l1d=CacheConfig("L1-D", 2048, 2, hit_latency=4),
            l2=CacheConfig("L2", 8192, 8, hit_latency=12, mshr_entries=5),
            llc=CacheConfig("LLC", 16384, 4, hit_latency=31),
        )
        return cls(config, l2_compute_ways=4)

    @staticmethod
    def _observable(hierarchy):
        levels = [
            (c.stats.hits, c.stats.misses, c.stats.evictions, c.stats.writebacks)
            for c in (hierarchy.l1d, hierarchy.l2, hierarchy.llc)
        ]
        dram = hierarchy.dram.stats
        return levels + [
            (dram.reads, dram.writes, dram.row_hits, dram.row_misses,
             dram.bytes_transferred, dram.busy_cycles),
            (hierarchy.l2.dirty_line_count(), hierarchy.l2.valid_line_count(),
             hierarchy.llc.dirty_line_count(), hierarchy.flush_dirty_cycles()),
        ]

    op_strategy = st.one_of(
        st.tuples(
            st.sampled_from(["core", "l2_core", "l2_engine"]),
            st.integers(min_value=0, max_value=(1 << 15) - 1),
            st.booleans(),
        ),
        st.tuples(
            st.just("block"),
            st.lists(st.integers(min_value=0, max_value=511), min_size=0, max_size=40),
            st.booleans(),
        ),
        st.tuples(
            st.just("strided"),
            st.tuples(
                st.integers(min_value=0, max_value=255),  # base line
                st.sampled_from([1, 2, 8, 16, 64, 128]),  # line stride
                st.integers(min_value=1, max_value=48),  # count
            ),
            st.booleans(),
        ),
    )

    @given(st.lists(op_strategy, min_size=1, max_size=40))
    @settings(max_examples=60)
    def test_random_streams_identical(self, ops):
        from repro.memory import CacheHierarchy, VectorCacheHierarchy

        scalar = self._small_hierarchy(CacheHierarchy)
        vector = self._small_hierarchy(VectorCacheHierarchy)
        for kind, arg, is_write in ops:
            if kind == "core":
                a, b = scalar.core_access(arg, is_write), vector.core_access(arg, is_write)
            elif kind in ("l2_core", "l2_engine"):
                from_core = kind == "l2_core"
                a = scalar.l2_access(arg, is_write, from_core=from_core)
                b = vector.l2_access(arg, is_write, from_core=from_core)
            else:
                if kind == "block":
                    addresses = [line * 64 for line in arg]
                else:
                    base, stride, count = arg
                    addresses = [(base + i * stride) * 64 for i in range(count)]
                a = scalar.vector_block_access(addresses, is_write)
                b = vector.vector_block_access(np.asarray(addresses, dtype=np.int64), is_write)
                assert a == b
                assert isinstance(a, int) and isinstance(b, int)
                continue
            assert (a.latency, a.hit_level) == (b.latency, b.hit_level)
        assert self._observable(scalar) == self._observable(vector)

    @given(
        st.lists(st.integers(min_value=0, max_value=(1 << 16) - 1), min_size=1, max_size=200),
        st.booleans(),
    )
    @settings(max_examples=40)
    def test_dram_batch_matches_sequential(self, addresses, is_write):
        from repro.memory import DRAMModel

        serial, batched = DRAMModel(), DRAMModel()
        aligned = [(a // 64) * 64 for a in addresses]
        expected = [serial.access(a, is_write) for a in aligned]
        actual = batched.access_batch(np.asarray(aligned, dtype=np.int64), is_write)
        assert actual.tolist() == expected
        assert vars(batched.stats) == vars(serial.stats)
