"""Tests for the sweep engine, the persistent result store and runner keying."""

import dataclasses
import json
import os
import time

import pytest

from repro.core.cache import CACHE_SCHEMA_VERSION, ResultStore, stable_hash
from repro.core.config import default_config
from repro.experiments import ExperimentRunner
from repro.experiments.sweep import (
    KernelJob,
    ParallelSweepEngine,
    SweepSpec,
    default_job_count,
)
from repro.sweep import main as sweep_cli

SMALL_JOB = KernelJob(kernel="csum", scale=0.25)


@pytest.fixture(autouse=True)
def _no_arena_segments_after_each_engine():
    """Every engine this module builds (pooled ones included) must leave
    /dev/shm clean at test teardown: arena segments are per-batch, not
    per-engine-lifetime, so they may never survive a run_jobs return."""
    yield
    shm_dir = os.path.join(os.sep, "dev", "shm")
    if os.path.isdir(shm_dir):
        leaked = sorted(
            name for name in os.listdir(shm_dir) if name.startswith("repro-arena-")
        )
        assert not leaked, f"leaked trace-arena segments: {leaked}"


class TestResultStore:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        payload = {"result": {"total_cycles": 12.5}, "spills": 3}
        store.store("ab" + "0" * 62, payload)
        loaded = store.load("ab" + "0" * 62)
        assert loaded["result"] == payload["result"]
        assert loaded["spills"] == 3
        assert loaded["schema"] == CACHE_SCHEMA_VERSION
        assert len(store) == 1

    def test_miss_on_absent_key(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.load("cd" + "0" * 62) is None
        assert store.misses == 1

    def test_corrupted_entry_is_dropped_and_recomputed(self, tmp_path):
        store = ResultStore(tmp_path)
        engine = ParallelSweepEngine(jobs=1, store=store)
        outcome = engine.run_one(SMALL_JOB)
        path = store._path(SMALL_JOB.cache_key())
        assert path.exists()

        # Truncate the entry mid-payload, as an interrupted write would.
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        fresh = ParallelSweepEngine(jobs=1, store=store)
        recomputed = fresh.run_one(SMALL_JOB)
        assert recomputed.source == "computed"
        assert recomputed.result.to_dict() == outcome.result.to_dict()
        # The recomputed result was re-persisted over the corrupted file.
        assert json.loads(path.read_text())["spills"] == recomputed.spills

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = SMALL_JOB.cache_key()
        store.store(key, {"result": {}, "spills": 0})
        raw = json.loads(store._path(key).read_text())
        raw["schema"] = CACHE_SCHEMA_VERSION + 1
        store._path(key).write_text(json.dumps(raw))
        assert store.load(key) is None

    def test_clear_removes_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        ParallelSweepEngine(jobs=1, store=store).run_one(SMALL_JOB)
        # A staged run persists two records: the simulation result and the
        # capture-stage trace artifact it replayed.
        assert len(store) == 2
        assert store.clear() == 2
        assert len(store) == 0


class TestCacheKeying:
    def test_key_depends_on_every_config_field(self):
        base = SMALL_JOB.cache_key()
        variants = [
            dataclasses.replace(SMALL_JOB.config, float_latency_factor=3.0),
            dataclasses.replace(SMALL_JOB.config, sram_cycle_multiplier=2.0),
            dataclasses.replace(SMALL_JOB.config, l2_compute_ways=2),
            SMALL_JOB.config.with_arrays(16),
        ]
        keys = {dataclasses.replace(SMALL_JOB, config=cfg).cache_key() for cfg in variants}
        assert base not in keys
        assert len(keys) == len(variants)

    def test_key_depends_on_kernel_parameters(self):
        assert SMALL_JOB.cache_key() != dataclasses.replace(SMALL_JOB, scale=0.5).cache_key()
        assert (
            SMALL_JOB.cache_key()
            != dataclasses.replace(SMALL_JOB, scheme_name="bit-parallel").cache_key()
        )
        assert SMALL_JOB.cache_key() != dataclasses.replace(SMALL_JOB, kind="rvv").cache_key()

    def test_stable_hash_is_order_insensitive(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})


class TestParallelSweepEngine:
    def test_memo_and_disk_sources(self, tmp_path):
        store = ResultStore(tmp_path)
        engine = ParallelSweepEngine(jobs=1, store=store)
        assert engine.run_one(SMALL_JOB).source == "computed"
        assert engine.run_one(SMALL_JOB).source == "memo"
        assert ParallelSweepEngine(jobs=1, store=store).run_one(SMALL_JOB).source == "disk"

    def test_no_cache_bypasses_store(self, tmp_path):
        # store=None is the single off-switch for persistence.
        engine = ParallelSweepEngine(jobs=1, store=None)
        engine.run_one(SMALL_JOB)
        assert len(ResultStore(tmp_path)) == 0
        # And nothing is read back either: a fresh engine recomputes.
        fresh = ParallelSweepEngine(jobs=1, store=None)
        assert fresh.run_one(SMALL_JOB).source == "computed"

    def test_parallel_run_matches_serial(self, tmp_path):
        spec = SweepSpec(
            name="mini",
            kernels=[("csum", {"scale": 0.25}), ("memcpy", {"scale": 0.25}),
                     ("gemm", {"scale": 0.25}), ("adler32", {"scale": 0.25})],
        )
        serial = ParallelSweepEngine(jobs=1).run_jobs(spec.jobs())
        parallel = ParallelSweepEngine(jobs=4, store=ResultStore(tmp_path)).run_jobs(spec.jobs())
        assert serial.keys() == parallel.keys()
        for job, outcome in serial.items():
            assert parallel[job].result.to_dict() == outcome.result.to_dict()
            assert parallel[job].spills == outcome.spills

    def test_warm_cache_is_at_least_5x_faster(self, tmp_path):
        """The acceptance-criterion demonstration, on a single sizeable job."""
        store = ResultStore(tmp_path)
        job = KernelJob(kernel="gemm", scale=0.5)

        start = time.perf_counter()
        ParallelSweepEngine(jobs=1, store=store).run_one(job)
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        outcome = ParallelSweepEngine(jobs=1, store=store).run_one(job)
        warm_s = time.perf_counter() - start

        assert outcome.source == "disk"
        print(f"\ncold {cold_s * 1e3:.1f} ms vs warm {warm_s * 1e3:.1f} ms "
              f"({cold_s / max(warm_s, 1e-9):.0f}x)")
        assert warm_s * 5 <= cold_s


class TestDefaultJobCount:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "3")
        assert default_job_count() == 3

    def test_invalid_env_warns_and_falls_back(self, monkeypatch):
        """Regression: a non-integer REPRO_SWEEP_JOBS used to raise a bare
        ValueError deep inside the engine."""
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "many")
        with pytest.warns(RuntimeWarning, match="REPRO_SWEEP_JOBS"):
            assert default_job_count() == max(1, os.cpu_count() or 1)

    def test_zero_is_clamped(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "0")
        assert default_job_count() == 1


class TestStreaming:
    SPEC = SweepSpec(
        name="stream",
        kernels=[("csum", {"scale": 0.25}), ("memcpy", {"scale": 0.25}),
                 ("adler32", {"scale": 0.25})],
    )

    def test_serial_on_result_streams_and_persists_incrementally(self, tmp_path):
        store = ResultStore(tmp_path)
        engine = ParallelSweepEngine(jobs=1, store=store)
        seen = []

        def on_result(job, outcome, completed, total):
            # Partial results are persisted before the callback fires.
            assert store.load(job.cache_key()) is not None
            seen.append((job, outcome.source, completed, total))

        outcomes = engine.run_jobs(self.SPEC.jobs(), on_result=on_result)
        assert [c for *_, c, _ in seen] == [1, 2, 3]
        assert all(total == 3 for *_, total in seen)
        assert all(source == "computed" for _, source, *_ in seen)
        assert {job for job, *_ in seen} == set(outcomes)

    def test_cached_jobs_stream_first(self, tmp_path):
        store = ResultStore(tmp_path)
        ParallelSweepEngine(jobs=1, store=store).run_jobs(self.SPEC.jobs()[:2])
        engine = ParallelSweepEngine(jobs=1, store=store)
        sources = []
        engine.run_jobs(
            self.SPEC.jobs(),
            on_result=lambda job, outcome, completed, total: sources.append(outcome.source),
        )
        assert sources == ["disk", "disk", "computed"]

    def test_parallel_on_result_covers_every_job(self, tmp_path):
        engine = ParallelSweepEngine(jobs=4, store=ResultStore(tmp_path))
        seen = []
        outcomes = engine.run_jobs(
            self.SPEC.jobs(),
            on_result=lambda job, outcome, completed, total: seen.append((job, completed)),
        )
        # Completion order is arbitrary, but the progress counter is dense
        # and every job is reported exactly once.
        assert sorted(c for _, c in seen) == [1, 2, 3]
        assert {job for job, _ in seen} == set(outcomes)
        serial = ParallelSweepEngine(jobs=1).run_jobs(self.SPEC.jobs())
        for job, outcome in serial.items():
            assert outcomes[job].result.to_dict() == outcome.result.to_dict()

    def test_run_jobs_preserves_request_order(self, tmp_path):
        engine = ParallelSweepEngine(jobs=4, store=ResultStore(tmp_path))
        jobs = self.SPEC.jobs()
        assert list(engine.run_jobs(jobs)) == jobs

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_callback_oserror_propagates_without_resimulation(self, tmp_path, jobs):
        """Regression: an OSError raised by the on_result callback (e.g. a
        BrokenPipeError from a closed progress stream) must propagate, not be
        mistaken for a broken worker pool and trigger silent re-simulation."""
        engine = ParallelSweepEngine(jobs=jobs, store=ResultStore(tmp_path))

        def explode(job, outcome, completed, total):
            raise BrokenPipeError("progress stream closed")

        with pytest.raises(BrokenPipeError):
            engine.run_jobs(self.SPEC.jobs(), on_result=explode)
        assert engine.computed == 1  # failed after the first emit, no redo


class TestBaselineMemo:
    def test_run_neon_answers_from_memo_not_store(self, tmp_path):
        """Regression: run_neon/run_gpu re-read and re-deserialized the
        persistent store on every call."""
        store = ResultStore(tmp_path)
        runner = ExperimentRunner(engine=ParallelSweepEngine(jobs=1, store=store))
        first = runner.run_neon("csum", scale=0.25)
        lookups = store.hits + store.misses
        assert runner.run_neon("csum", scale=0.25) == first
        assert runner.run_gpu("csum", scale=0.25) == runner.run_gpu("csum", scale=0.25)
        assert store.hits + store.misses == lookups + 1  # one gpu miss, no re-reads

    def test_run_neon_honours_config_override(self):
        runner = ExperimentRunner()
        slow = dataclasses.replace(default_config(), frequency_ghz=1.4)
        base = runner.run_neon("csum", scale=0.25)
        slowed = runner.run_neon("csum", scale=0.25, config=slow)
        assert slowed.frequency_ghz == 1.4
        assert slowed.time_ms > base.time_ms

    def test_run_gpu_honours_config_keying(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = ExperimentRunner(engine=ParallelSweepEngine(jobs=1, store=store))
        wide = default_config().with_arrays(64)
        runner.run_gpu("csum", scale=0.25)
        entries = len(store)
        runner.run_gpu("csum", scale=0.25, config=wide)
        assert len(store) == entries + 1  # distinct config, distinct entry


class TestSweepSpec:
    def test_cartesian_expansion(self):
        spec = SweepSpec(
            kernels=[("csum", {"scale": 0.25}), ("gemm", {"scale": 0.25})],
            kinds=("mve", "rvv"),
            schemes=("bit-serial", "bit-parallel"),
            array_counts=(16, 32),
        )
        jobs = spec.jobs()
        assert len(jobs) == 2 * 2 * 2 * 2
        assert len(set(jobs)) == len(jobs)

    def test_scheme_axis_normalizes_config(self):
        spec = SweepSpec(kernels=[("csum", {})], schemes=("bit-parallel",))
        (job,) = spec.jobs()
        assert job.config.scheme_name == "bit-parallel"

    def test_named_specs_match_figure_loop_jobs(self):
        """The CLI's named sweeps and the figure loops share one job set."""
        from repro.experiments.figure10 import (
            FIGURE10_KERNELS,
            figure10_sweep_spec,
            kernel_run_parameters,
        )
        from repro.experiments.figure13 import FIGURE13_KERNELS, figure13_sweep_spec
        from repro.sram.schemes import SCHEME_NAMES

        runner = ExperimentRunner()
        assert set(figure10_sweep_spec(runner.config).jobs()) == {
            runner.job(name, kind, **kernel_run_parameters(name))
            for name, _ in FIGURE10_KERNELS
            for kind in ("mve", "rvv")
        }
        assert set(figure13_sweep_spec(base_config=runner.config).jobs()) == {
            runner.job(name, kind, scheme_name=scheme, **kernel_run_parameters(name))
            for scheme in SCHEME_NAMES
            for name in FIGURE13_KERNELS
            for kind in ("mve", "rvv")
        }

    def test_kernel_run_exposes_executed_kernel(self):
        """KernelRun.kernel lazily executes the lowering, so post-run state
        (kernel.output()) is populated exactly as on the pre-engine path."""
        import numpy as np

        run = ExperimentRunner().run_mve("csum", scale=0.25)
        output = run.kernel.output()
        np.testing.assert_array_equal(np.asarray(output), np.asarray(run.kernel.reference()))

    def test_job_normalizes_scheme_into_config(self):
        # Directly-constructed jobs hash identically to spec/runner jobs
        # for the same simulation (scheme_name wins over config.scheme_name).
        direct = KernelJob(kernel="csum", scheme_name="bit-parallel")
        (from_spec,) = SweepSpec(
            kernels=[("csum", {"scale": 0.5})], schemes=("bit-parallel",)
        ).jobs()
        assert direct == from_spec
        assert direct.cache_key() == from_spec.cache_key()


class TestRunnerKeying:
    """Regression: the seed runner keyed only on engine.num_arrays, so any
    other config change (cache geometry, latency factors, ...) returned a
    stale result from the first config it saw."""

    def test_distinct_configs_produce_distinct_results(self):
        runner = ExperimentRunner()
        slow = dataclasses.replace(default_config(), float_latency_factor=6.0)
        fast = runner.run_mve("gemm", scale=0.25)
        slowed = runner.run_mve("gemm", scale=0.25, config=slow)
        assert slowed.result.total_cycles > fast.result.total_cycles

    def test_distinct_sram_speeds_produce_distinct_results(self):
        runner = ExperimentRunner()
        slow_sram = dataclasses.replace(default_config(), sram_cycle_multiplier=4.0)
        fast = runner.run_mve("csum", scale=0.25)
        slowed = runner.run_mve("csum", scale=0.25, config=slow_sram)
        assert slowed.result.total_cycles > fast.result.total_cycles


class TestSweepCli:
    def test_run_list_and_clear_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = ["--cache-dir", cache_dir, "run", "--kernels", "csum,memcpy",
                "--scale", "0.25", "--jobs", "1"]
        assert sweep_cli(argv) == 0
        out = capsys.readouterr().out
        assert "2 jobs" in out and "2 simulated" in out

        assert sweep_cli(argv) == 0
        out = capsys.readouterr().out
        assert "0 simulated, 2 from cache" in out

        assert sweep_cli(["--cache-dir", cache_dir, "list"]) == 0
        assert "Named sweeps" in capsys.readouterr().out

        # 2 simulation results + 2 capture-stage trace artifacts.
        assert sweep_cli(["--cache-dir", cache_dir, "clear-cache"]) == 0
        assert "removed 4" in capsys.readouterr().out

    def test_run_no_cache_leaves_store_empty(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        argv = ["--cache-dir", str(cache_dir), "run", "--kernels", "csum",
                "--scale", "0.25", "--jobs", "1", "--no-cache"]
        assert sweep_cli(argv) == 0
        assert "cache disabled" in capsys.readouterr().out
        assert not cache_dir.exists() or not any(cache_dir.glob("*/*.json"))

    def test_unknown_kernel_is_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            sweep_cli(["--cache-dir", str(tmp_path), "run", "--kernels", "nope"])
