"""Tests for the experiment registry and result (de)serialization.

Covers the API-redesign acceptance criteria: every figure/table is
registered, registry-built job sets are identical (same cache keys) to the
pre-redesign ``run_figureN`` paths, and every result type survives a JSON
round trip bit-exactly.
"""

import dataclasses
import json

import pytest

from repro.core.cache import ResultStore
from repro.core.config import default_config
from repro.experiments import (
    ExperimentOptions,
    ExperimentRunner,
    TablesResult,
    build_runner,
    experiment_names,
    get_experiment,
    run_experiment,
    run_tables,
)
from repro.experiments.figure7 import Figure7Result, LibraryComparison, figure7_sweep_spec, run_figure7
from repro.experiments.figure8 import Figure8Result, GpuComparison, figure8_sweep_spec
from repro.experiments.figure9 import Figure9Result, SweepPoint, figure9_sweep_spec
from repro.experiments.figure10 import (
    FIGURE10_KERNELS,
    Figure10Result,
    RvvComparison,
    figure10_sweep_spec,
    kernel_run_parameters,
)
from repro.experiments.figure11 import Figure11Result, InstructionMix
from repro.experiments.figure12 import (
    DualityCacheComparison,
    Figure12Result,
    Figure12aResult,
    Figure12bResult,
    Figure12cResult,
    PrecisionPoint,
    ScalabilityPoint,
    figure12a_sweep_spec,
    figure12b_sweep_spec,
    run_figure12a,
)
from repro.experiments.figure13 import Figure13Result, SchemeComparison, figure13_sweep_spec
from repro.experiments.sweep import ParallelSweepEngine


ALL_EXPERIMENTS = {
    "tables",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure12a",
    "figure12b",
    "figure12c",
    "figure13",
}


class TestRegistryCompleteness:
    def test_every_figure_and_table_is_registered(self):
        assert set(experiment_names()) == ALL_EXPERIMENTS

    def test_unknown_experiment_raises_with_choices(self):
        with pytest.raises(KeyError, match="figure7"):
            get_experiment("figure99")

    def test_registry_jobs_match_legacy_sweep_specs(self):
        """The registry builds the exact job sets the run_figureN paths use."""
        options = ExperimentOptions(scale=0.5)
        legacy = {
            "figure7": figure7_sweep_spec(0.5),
            "figure8": figure8_sweep_spec(0.5),
            "figure9": figure9_sweep_spec(),
            "figure10": figure10_sweep_spec(),
            "figure11": figure10_sweep_spec(),  # same runs, different view
            "figure12a": figure12a_sweep_spec(),
            "figure12b": figure12b_sweep_spec(),
            "figure13": figure13_sweep_spec(),
        }
        for name, spec in legacy.items():
            assert get_experiment(name).jobs(options) == list(dict.fromkeys(spec.jobs())), name
        union = set(figure12a_sweep_spec().jobs()) | set(figure12b_sweep_spec().jobs())
        assert set(get_experiment("figure12").jobs(options)) == union

    def test_registry_cache_keys_match_legacy_runner_jobs(self):
        """Bit-identical cache keys: registry jobs hash exactly as the jobs
        the figure loops request through the runner."""
        runner = ExperimentRunner()
        options = ExperimentOptions(config=runner.config)
        registry_jobs = set(get_experiment("figure10").jobs(options))
        legacy_jobs = {
            runner.job(name, kind, **kernel_run_parameters(name))
            for name, _ in FIGURE10_KERNELS
            for kind in ("mve", "rvv")
        }
        assert registry_jobs == legacy_jobs
        assert {j.cache_key() for j in registry_jobs} == {
            j.cache_key() for j in legacy_jobs
        }

    def test_static_experiments_have_no_jobs(self):
        assert get_experiment("tables").jobs() == []
        assert get_experiment("figure12c").jobs() == []


def roundtrip(result):
    """to_dict -> JSON -> from_dict; must compare equal (bit-exact floats)."""
    payload = json.loads(json.dumps(result.to_dict()))
    return type(result).from_dict(payload)


SYNTHETIC_RESULTS = [
    Figure7Result(
        libraries=[
            LibraryComparison(
                library="zlib", dims="1D", speedup=2.5, energy_ratio=8.0,
                idle_fraction=0.4, compute_fraction=0.25, data_fraction=0.35,
                kernels=["adler32", "crc32"],
            )
        ],
        mean_speedup=2.5, mean_energy_ratio=8.0, mean_idle_fraction=0.4,
        mean_compute_fraction=0.25, mean_data_fraction=0.35,
    ),
    Figure8Result(
        kernels=[
            GpuComparison(
                kernel="gemm", time_ratio_with_transfer=9.3,
                time_ratio_kernel_only=2.4, energy_ratio=5.2,
                gpu_transfer_fraction=0.7,
            )
        ],
        mean_time_ratio=9.3, mean_kernel_only_ratio=2.4, mean_energy_ratio=5.2,
    ),
    Figure9Result(
        gemm_points=[
            SweepPoint(kernel="gemm", shape=(32, 32, 32), flops=65536.0,
                       mve_time_ms=0.01, gpu_time_ms=0.05)
        ],
        spmm_points=[
            SweepPoint(kernel="spmm", shape=(32, 64, 32, 8), flops=16384.0,
                       mve_time_ms=0.02, gpu_time_ms=0.04)
        ],
    ),
    Figure10Result(
        kernels=[
            RvvComparison(
                kernel="gemm", dims="2D", time_ratio=0.5,
                vector_instruction_ratio=2.3, scalar_instruction_ratio=2.0,
                mve_breakdown={"idle": 0.4, "compute": 0.3, "data_access": 0.3},
                rvv_breakdown={"idle": 0.6, "compute": 0.2, "data_access": 0.2},
                mve_vector_instructions={"vadd": 10, "vmul": 5},
                rvv_vector_instructions={"vadd": 30, "vmul": 12},
                mve_scalar_instructions=100, rvv_scalar_instructions=200,
                mve_cb_utilization=0.9, rvv_cb_utilization=0.5,
            )
        ],
        mean_speedup_over_rvv=2.0, mean_vector_instruction_reduction=2.3,
        mean_scalar_instruction_reduction=2.0, mean_mve_cb_utilization=0.9,
        mean_rvv_cb_utilization=0.5,
    ),
    Figure11Result(
        kernels=[
            InstructionMix(
                kernel="gemm", dims="2D",
                mve_counts={"memory": 4, "arithmetic": 11},
                rvv_counts={"memory": 12, "arithmetic": 30},
                mve_scalar=100, rvv_scalar=200,
            )
        ],
        mean_vector_reduction=2.3, mean_scalar_reduction=2.0,
    ),
    Figure12Result(
        duality_cache=[
            DualityCacheComparison(
                kernel="gemm", dc_over_mve_time=1.5,
                dc_breakdown={"idle": 0.0, "compute": 0.9, "data_access": 0.1},
            )
        ],
        scalability=[
            ScalabilityPoint(kernel="gemm", num_arrays=8, normalized_time=1.0,
                             breakdown={"idle": 0.4, "compute": 0.3, "data_access": 0.3})
        ],
        precision=[
            PrecisionPoint(precision="FLOAT32", normalized_time=1.0, speedup_over_neon=2.9)
        ],
        mean_dc_slowdown=1.5,
    ),
    Figure12aResult(rows=[
        DualityCacheComparison(kernel="fir_s", dc_over_mve_time=2.2,
                               dc_breakdown={"idle": 0.0, "compute": 0.7, "data_access": 0.3})
    ]),
    Figure12bResult(points=[
        ScalabilityPoint(kernel="fir_l", num_arrays=64, normalized_time=0.2,
                         breakdown={"idle": 0.5, "compute": 0.2, "data_access": 0.3})
    ]),
    Figure12cResult(points=[
        PrecisionPoint(precision="INT16", normalized_time=0.4, speedup_over_neon=5.0)
    ]),
    Figure13Result(schemes=[
        SchemeComparison(
            scheme="bit-serial", time_ratio=0.26,
            mve_breakdown={"idle": 0.4, "compute": 0.3, "data_access": 0.3},
            rvv_breakdown={"idle": 0.6, "compute": 0.2, "data_access": 0.2},
        )
    ]),
]


class TestResultSerialization:
    @pytest.mark.parametrize(
        "result", SYNTHETIC_RESULTS, ids=lambda r: type(r).__name__
    )
    def test_synthetic_roundtrip(self, result):
        restored = roundtrip(result)
        assert restored == result
        # Nested dataclasses are rebuilt as their classes, not dicts.
        assert restored.to_dict() == result.to_dict()

    def test_tuple_fields_survive_roundtrip(self):
        point = SweepPoint(kernel="gemm", shape=(128, 64, 64), flops=1.0,
                           mve_time_ms=1.0, gpu_time_ms=2.0)
        assert roundtrip(point).shape == (128, 64, 64)

    def test_tables_roundtrip(self):
        result = run_tables()
        assert roundtrip(result) == result

    def test_real_figure7_roundtrip(self):
        """An engine-produced result (numpy-derived floats included) survives
        the JSON round trip bit-exactly."""
        runner = ExperimentRunner(default_scale=0.1)
        result = run_figure7(runner, scale=0.1, libraries=["zlib"])
        assert roundtrip(result) == result


class TestRunExperiment:
    def test_assembled_result_is_cached_in_store(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = build_runner(jobs=1, store=store)
        options = ExperimentOptions(config=runner.config)
        result = run_experiment("tables", runner=runner, options=options)
        assert isinstance(result, TablesResult)
        key = get_experiment("tables").cache_key(options)
        assert store.load(key) is not None
        # A fresh runner on the same store answers without reassembling.
        again = run_experiment("tables", runner=build_runner(jobs=1, store=store))
        assert again == result

    def test_no_cache_skips_the_store(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = build_runner(jobs=1, store=store)
        run_experiment("tables", runner=runner, use_cache=False)
        assert len(store) == 0

    def test_no_cache_without_runner_builds_storeless_engine(self, monkeypatch, tmp_path):
        """Regression: use_cache=False with an auto-built runner must not
        attach the default persistent store to the engine."""
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path))
        run_experiment("tables", use_cache=False)
        assert len(ResultStore(tmp_path)) == 0

    def test_ignored_scale_does_not_change_cache_key(self):
        """Regression: fixed-shape experiments told the user --scale was
        ignored but still keyed the assembled result on it."""
        figure10 = get_experiment("figure10")
        config = default_config()
        assert figure10.cache_key(
            ExperimentOptions(scale=0.5, config=config)
        ) == figure10.cache_key(ExperimentOptions(scale=0.7, config=config))
        figure7 = get_experiment("figure7")
        assert figure7.cache_key(
            ExperimentOptions(scale=0.5, config=config)
        ) != figure7.cache_key(ExperimentOptions(scale=0.7, config=config))

    def test_engine_backed_experiment_with_streaming(self, tmp_path):
        """run_experiment prefetches the registry job set through the engine,
        streaming per-job progress, and returns the assembled result."""
        store = ResultStore(tmp_path)
        runner = build_runner(jobs=1, store=store)
        seen = []
        result = run_experiment(
            "figure12a",
            runner=runner,
            on_result=lambda job, outcome, completed, total: seen.append(
                (job.kernel, completed, total)
            ),
        )
        expected = get_experiment("figure12a").jobs(
            ExperimentOptions(config=runner.config)
        )
        assert [c for _, c, _ in seen] == list(range(1, len(expected) + 1))
        assert all(total == len(expected) for *_, total in seen)
        assert result == Figure12aResult(rows=run_figure12a(runner))

    def test_config_override_rebinds_runner(self, tmp_path):
        """An explicit options.config produces jobs keyed on that config."""
        runner = build_runner(jobs=1, store=ResultStore(tmp_path))
        wide = default_config().with_arrays(64)
        result = run_experiment(
            "figure12a", runner=runner, options=ExperimentOptions(config=wide)
        )
        default = run_experiment("figure12a", runner=runner)
        assert result != default
