"""Fleet-mode tests: job queue, coordinator protocol, workers, auth, bulk.

The contract under test: any number of ``repro worker`` processes pointed
at one coordinator drain an enqueued experiment *cooperatively* -- every
job simulated exactly once fleet-wide, results bit-identical to a
single-machine run -- and every fleet fault degrades safely: a worker
killed mid-lease is requeued after the lease TTL, a coordinator dying
mid-run costs the worker one warning before it exits local-only (the PR 4
RemoteStore contract), late acks and stale heartbeats can never complete
or resurrect a lease they no longer own, and a token-protected server
rejects every unauthorized mutation while reads stay open.
"""

import json
import threading
import time
import urllib.error
import urllib.request
import warnings
from dataclasses import dataclass

import pytest

from repro.core.cache import CACHE_SCHEMA_VERSION, ResultStore
from repro.core.cache_service import CacheServer, RemoteStore
from repro.core.coordinator import CoordinatorClient, CoordinatorError, JobQueue
from repro.experiments import registry
from repro.experiments.registry import (
    ExperimentOptions,
    build_runner,
    experiment_partitions,
    run_experiment,
)
from repro.experiments.sweep import SweepSpec
from repro.worker import WorkerReport, resolve_partition_jobs, run_worker

KEY_A = "ab" * 32
KEY_B = "cd" * 32

TOKEN = "fleet-secret"


# ---------------------------------------------------------------------- #
#  A tiny registered experiment (removed again on teardown: the registry
#  completeness test asserts exactly the paper's experiment set)
# ---------------------------------------------------------------------- #

MINI_NAME = "fleet-mini"
MINI_SCALE = 0.25


@dataclass
class MiniResult:
    cycles: dict

    def to_dict(self) -> dict:
        return {"cycles": dict(self.cycles)}

    @classmethod
    def from_dict(cls, data: dict) -> "MiniResult":
        return cls(cycles=dict(data["cycles"]))


def _mini_specs(options):
    return (
        SweepSpec(
            name=MINI_NAME,
            kernels=[
                ("csum", {"scale": options.scale}),
                ("memcpy", {"scale": options.scale}),
            ],
            schemes=("bit-serial", "bit-parallel"),
        ),
    )


def _mini_assemble(runner, options):
    cycles = {}
    for spec in _mini_specs(options):
        for job in spec.jobs():
            outcome = runner.engine.run_one(job)
            cycles[f"{job.kernel}/{job.scheme_name}"] = outcome.result.total_cycles
    return MiniResult(cycles=cycles)


@pytest.fixture
def mini_experiment():
    experiment = registry.register_experiment(
        MINI_NAME,
        "fleet drain test experiment",
        MiniResult,
        _mini_assemble,
        _mini_specs,
        uses_scale=True,
    )
    yield experiment
    registry._REGISTRY.pop(MINI_NAME, None)


def mini_options():
    return ExperimentOptions(scale=MINI_SCALE)


def reference_result(experiment):
    """The local, store-free ground truth for the mini experiment."""
    runner = build_runner(jobs=1, default_scale=MINI_SCALE)
    result = run_experiment(
        MINI_NAME, runner=runner, options=mini_options(), use_cache=False
    )
    return json.dumps(result.to_dict(), sort_keys=True)


def assemble_from_service(server, root):
    """Run the experiment against a fresh local dir + the service; returns
    (canonical result JSON, jobs this runner had to simulate)."""
    store = ResultStore(root, remote=server.url)
    runner = build_runner(jobs=1, store=store, default_scale=MINI_SCALE)
    result = run_experiment(MINI_NAME, runner=runner, options=mini_options())
    return json.dumps(result.to_dict(), sort_keys=True), runner.engine.computed


# ---------------------------------------------------------------------- #
#  Fixtures
# ---------------------------------------------------------------------- #


@pytest.fixture
def server(tmp_path):
    srv = CacheServer(("127.0.0.1", 0), root=tmp_path / "server")
    srv.start_in_background()
    yield srv
    srv.shutdown()
    srv.server_close()


#: canned partitions for protocol tests that must not touch the registry
FAKE_PARTITIONS = [["aa" * 32, "bb" * 32], ["cc" * 32]]


def fake_expand(name, scale):
    if name != "exp":
        raise KeyError(name)
    return [list(keys) for keys in FAKE_PARTITIONS]


@pytest.fixture
def queue_server(tmp_path):
    srv = CacheServer(
        ("127.0.0.1", 0),
        root=tmp_path / "server",
        queue=JobQueue(lease_ttl_s=30.0, expand=fake_expand),
    )
    srv.start_in_background()
    yield srv
    srv.shutdown()
    srv.server_close()


@pytest.fixture
def auth_server(tmp_path):
    srv = CacheServer(
        ("127.0.0.1", 0),
        root=tmp_path / "server",
        token=TOKEN,
        queue=JobQueue(expand=fake_expand),
    )
    srv.start_in_background()
    yield srv
    srv.shutdown()
    srv.server_close()


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_queue(ttl=60.0):
    clock = FakeClock()
    queue = JobQueue(lease_ttl_s=ttl, clock=clock, expand=fake_expand)
    return queue, clock


def coordinator_warnings(caught):
    return [
        str(w.message)
        for w in caught
        if issubclass(w.category, RuntimeWarning) and "coordinator" in str(w.message)
    ]


# ---------------------------------------------------------------------- #
#  JobQueue semantics (deterministic, fake clock)
# ---------------------------------------------------------------------- #


class TestJobQueue:
    def test_enqueue_lease_ack_roundtrip(self):
        queue, clock = make_queue()
        summary = queue.enqueue("exp", 0.5)
        assert summary["partitions"] == 2
        assert summary["jobs"] == 3
        assert summary["queued"] == 2 and summary["already_queued"] == 0

        first, drained = queue.lease("w1")
        assert not drained
        assert first["keys"] == FAKE_PARTITIONS[first["index"]]
        assert first["attempts"] == 1
        assert queue.ack("w1", first["id"]) == (True, None)

        second, _ = queue.lease("w1")
        assert second["id"] != first["id"]
        assert queue.ack("w1", second["id"]) == (True, None)
        none, drained = queue.lease("w1")
        assert none is None and drained
        assert queue.stats()["completed"] == 2

    def test_enqueue_is_idempotent_while_queued(self):
        queue, clock = make_queue()
        queue.enqueue("exp")
        again = queue.enqueue("exp")
        assert again["queued"] == 0 and again["already_queued"] == 2
        # Completed partitions may be re-queued (the warm store makes the
        # re-run free), pending/leased ones never duplicate.
        leased, _ = queue.lease("w1")
        queue.ack("w1", leased["id"])
        third = queue.enqueue("exp")
        assert third["queued"] == 1 and third["already_queued"] == 1

    def test_unknown_experiment_raises(self):
        queue, _ = make_queue()
        with pytest.raises(KeyError):
            queue.enqueue("nonsense")

    def test_expired_lease_is_requeued_for_another_worker(self):
        queue, clock = make_queue(ttl=10.0)
        queue.enqueue("exp")
        dead_lease, _ = queue.lease("doomed")
        clock.advance(10.1)
        # Requeued to the back: drain both pending partitions to find it.
        leases = [queue.lease("survivor")[0], queue.lease("survivor")[0]]
        recovered = next(l for l in leases if l["id"] == dead_lease["id"])
        assert recovered["attempts"] == 2
        assert queue.requeued == 1
        # The original holder's late ack is answered stale, not applied.
        assert queue.ack("doomed", dead_lease["id"]) == (False, "lease not held")
        assert queue.ack("survivor", recovered["id"]) == (True, None)

    def test_heartbeat_extends_live_leases(self):
        queue, clock = make_queue(ttl=10.0)
        queue.enqueue("exp")
        leased, _ = queue.lease("w1")
        clock.advance(8.0)
        assert queue.heartbeat("w1") == 1
        clock.advance(8.0)  # 16s total: past the original deadline
        assert queue.ack("w1", leased["id"]) == (True, None)

    def test_stale_heartbeat_cannot_resurrect_a_lapsed_lease(self):
        queue, clock = make_queue(ttl=10.0)
        queue.enqueue("exp")
        leased, _ = queue.lease("w1")
        clock.advance(10.1)
        # Expiry runs before the extension: nothing left to extend.
        assert queue.heartbeat("w1") == 0
        released = [queue.lease("w2")[0], queue.lease("w2")[0]]
        assert leased["id"] in [l["id"] for l in released]
        # Even heartbeating again cannot steal it back.
        assert queue.heartbeat("w1") == 0
        assert queue.ack("w1", leased["id"]) == (False, "lease not held")

    def test_double_ack_is_rejected(self):
        queue, _ = make_queue()
        queue.enqueue("exp")
        leased, _ = queue.lease("w1")
        assert queue.ack("w1", leased["id"]) == (True, None)
        assert queue.ack("w1", leased["id"]) == (False, "already completed")
        assert queue.completed == 1

    def test_ack_for_unknown_partition_is_rejected(self):
        queue, _ = make_queue()
        queue.enqueue("exp")
        assert queue.ack("w1", "not-a-partition") == (False, "unknown partition")

    def test_nack_requeues_for_the_next_lease(self):
        queue, _ = make_queue()
        queue.enqueue("exp")
        leased, _ = queue.lease("w1")
        assert queue.nack("w1", leased["id"]) is True
        # Only the current holder may nack.
        assert queue.nack("w1", leased["id"]) is False
        # The nacked partition is leaseable again (2 pending in total).
        ids = {queue.lease("w2")[0]["id"], queue.lease("w2")[0]["id"]}
        assert leased["id"] in ids

    def test_stats_snapshot(self):
        queue, clock = make_queue(ttl=10.0)
        queue.enqueue("exp")
        queue.lease("w1")
        stats = queue.stats()
        assert stats["pending"] == 1 and stats["leased"] == 1
        assert stats["completed"] == 0 and stats["requeued"] == 0
        assert stats["workers"] == 1 and stats["lease_ttl_s"] == 10.0
        clock.advance(11.0)
        stats = queue.stats()
        # The lapsed lease is back in pending and its worker aged out.
        assert stats["pending"] == 2 and stats["leased"] == 0
        assert stats["requeued"] == 1 and stats["workers"] == 0


# ---------------------------------------------------------------------- #
#  The HTTP protocol: CoordinatorClient against a live server
# ---------------------------------------------------------------------- #


class TestCoordinatorProtocol:
    def test_enqueue_lease_ack_over_http(self, queue_server):
        client = CoordinatorClient(queue_server.url, worker_id="w1")
        summary = client.enqueue("exp")
        assert summary["partitions"] == 2 and summary["queued"] == 2

        answer = client.lease()
        assert answer["drained"] is False
        # The server's TTL drives the client's heartbeat cadence.
        assert client.lease_ttl_s == 30.0
        partition = answer["partition"]
        assert partition["keys"] == FAKE_PARTITIONS[partition["index"]]
        assert client.heartbeat() is True
        assert client.ack(partition["id"]) == "ok"
        # A double ack is an application-level 409, answered "stale"
        # without killing the client.
        assert client.ack(partition["id"]) == "stale"
        assert not client.dead

        second = client.lease()["partition"]
        assert client.nack(second["id"], reason="testing") is True
        third = client.lease()["partition"]
        assert third["id"] == second["id"] and third["attempts"] == 2
        assert client.ack(third["id"]) == "ok"
        final = client.lease()
        assert final["partition"] is None and final["drained"] is True

        stats = queue_server.stats()
        assert stats["queue"]["completed"] == 2
        assert stats["enqueues"] == 1 and stats["acks"] == 2
        assert stats["nacks"] == 1 and stats["heartbeats"] == 1

    def test_unknown_experiment_is_a_400_not_a_death(self, queue_server):
        client = CoordinatorClient(queue_server.url, worker_id="w1")
        with pytest.raises(CoordinatorError) as excinfo:
            client.enqueue("nonsense")
        assert excinfo.value.status == 400
        assert not client.dead
        assert client.enqueue("exp")["queued"] == 2

    def test_dead_coordinator_warns_once_then_noops(self, tmp_path):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = CoordinatorClient(f"http://127.0.0.1:{port}", worker_id="w1")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert client.lease() is None
            assert client.enqueue("exp") is None
            assert client.ack("whatever") is None
            assert client.heartbeat() is False
        assert client.dead
        messages = coordinator_warnings(caught)
        assert len(messages) == 1, messages
        assert "degrading to local-only" in messages[0]


# ---------------------------------------------------------------------- #
#  Token auth: mutations closed, reads open
# ---------------------------------------------------------------------- #


def http_status(url, method="GET", body=None, token=None):
    request = urllib.request.Request(url, data=body, method=method)
    if body is not None:
        request.add_header("Content-Type", "application/json")
    if token is not None:
        request.add_header("Authorization", f"Bearer {token}")
    try:
        with urllib.request.urlopen(request, timeout=5) as response:
            return response.status
    except urllib.error.HTTPError as error:
        return error.code


class TestTokenAuth:
    def test_put_requires_the_token(self, auth_server):
        body = json.dumps({"schema": CACHE_SCHEMA_VERSION, "result": {}}).encode()
        url = f"{auth_server.url}/v1/entry/{KEY_A}"
        assert http_status(url, "PUT", body) == 401
        assert http_status(url, "PUT", body, token="wrong-token") == 401
        assert not auth_server.backend.contains(KEY_A)
        assert http_status(url, "PUT", body, token=TOKEN) == 204
        assert auth_server.backend.contains(KEY_A)
        assert auth_server.stats()["unauthorized"] == 2

    def test_reads_stay_open_without_the_token(self, auth_server):
        auth_server.backend.store(
            KEY_A, {"schema": CACHE_SCHEMA_VERSION, "result": {"x": 1}}
        )
        remote = RemoteStore(auth_server.url)  # no token at all
        assert remote.load(KEY_A)["result"] == {"x": 1}
        assert remote.contains(KEY_A)
        assert remote.contains_batch([KEY_A, KEY_B]) == {KEY_A: True, KEY_B: False}
        assert remote.load_batch([KEY_A])[KEY_A]["result"] == {"x": 1}
        assert remote.stats()["auth"] is True
        assert not remote.dead

    def test_tokened_store_mutates_untokened_one_degrades(self, auth_server):
        record = {"schema": CACHE_SCHEMA_VERSION, "result": {}}
        trusted = RemoteStore(auth_server.url, token=TOKEN)
        assert trusted.store(KEY_A, record)

        intruder = RemoteStore(auth_server.url, token="wrong-token")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert not intruder.store(KEY_B, record)
        # The 401 rides the standard one-warning degradation: the sweep
        # still completes on the local tier.
        assert intruder.dead
        assert not auth_server.backend.contains(KEY_B)
        assert len([w for w in caught if "remote cache" in str(w.message)]) == 1

    def test_bulk_put_requires_token_but_bulk_get_does_not(self, auth_server):
        auth_server.backend.store(
            KEY_A, {"schema": CACHE_SCHEMA_VERSION, "result": {"x": 1}}
        )
        url = f"{auth_server.url}/v1/entries"
        get_only = json.dumps({"get": [KEY_A]}).encode()
        with_put = json.dumps(
            {"put": {KEY_B: {"schema": CACHE_SCHEMA_VERSION, "result": {}}}}
        ).encode()
        assert http_status(url, "POST", get_only) == 200
        assert http_status(url, "POST", with_put) == 401
        assert not auth_server.backend.contains(KEY_B)
        assert http_status(url, "POST", with_put, token=TOKEN) == 200
        assert auth_server.backend.contains(KEY_B)

    def test_queue_surface_requires_the_token(self, auth_server):
        url = f"{auth_server.url}/v1/queue/"
        body = json.dumps({"worker": "w1", "experiment": "exp"}).encode()
        for action in ("enqueue", "lease", "ack", "nack", "heartbeat"):
            assert http_status(url + action, "POST", body) == 401
            assert http_status(url + action, "POST", body, token="wrong") == 401
        # A 401 is an operator problem, not connectivity: the client raises
        # instead of flipping dead.
        anonymous = CoordinatorClient(auth_server.url, worker_id="w1", token=None)
        with pytest.raises(CoordinatorError) as excinfo:
            anonymous.lease()
        assert excinfo.value.status == 401
        assert not anonymous.dead

        trusted = CoordinatorClient(auth_server.url, worker_id="w1", token=TOKEN)
        assert trusted.enqueue("exp")["queued"] == 2
        assert trusted.lease()["partition"] is not None

    def test_clients_default_to_the_token_env_var(self, auth_server, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_TOKEN", TOKEN)
        assert RemoteStore(auth_server.url).store(
            KEY_A, {"schema": CACHE_SCHEMA_VERSION, "result": {}}
        )
        client = CoordinatorClient(auth_server.url, worker_id="w1")
        assert client.enqueue("exp")["partitions"] == 2


# ---------------------------------------------------------------------- #
#  Bulk entry transfer
# ---------------------------------------------------------------------- #


class TestBulkEntries:
    def test_load_batch_mixes_hits_and_misses(self, server):
        record = {"schema": CACHE_SCHEMA_VERSION, "result": {"x": 1}}
        remote = RemoteStore(server.url)
        remote.store(KEY_A, record)
        batch = remote.load_batch([KEY_A, KEY_B])
        assert batch == {KEY_A: record, KEY_B: None}
        assert remote.hits == 1 and remote.misses == 1
        assert server.stats()["entries_served"] == 1

    def test_store_batch_uploads_only_valid_records(self, server):
        remote = RemoteStore(server.url)
        record = {"schema": CACHE_SCHEMA_VERSION, "result": {}}
        accepted = remote.store_batch(
            {KEY_A: record, KEY_B: record, "not-a-key": record}
        )
        assert sorted(accepted) == sorted([KEY_A, KEY_B])
        assert server.backend.contains(KEY_A) and server.backend.contains(KEY_B)
        assert server.stats()["entries_stored"] == 2

    def test_prefetch_pulls_records_in_one_round_trip(self, server, tmp_path):
        writer = ResultStore(tmp_path / "writer", remote=server.url)
        writer.store(KEY_A, {"result": {"x": 1}})

        reader = ResultStore(tmp_path / "reader", remote=server.url)
        reader.prefetch([KEY_A, KEY_B])
        # The hit landed in the local tier up front; its first read still
        # reports the true origin, exactly like a per-key read-through.
        assert reader.load(KEY_A)["result"] == {"x": 1}
        assert reader.last_tier == "remote"
        assert reader.load(KEY_A)["result"] == {"x": 1}
        assert reader.last_tier == "local"
        # The miss was marked absent: no per-key GET was ever issued.
        assert reader.load(KEY_B) is None
        assert server.stats()["gets"] == 0


# ---------------------------------------------------------------------- #
#  Workers: cooperative drain, exactly-once, bit-identical assembly
# ---------------------------------------------------------------------- #


class TestWorkerDrain:
    def test_two_workers_drain_exactly_once_and_match_local(
        self, mini_experiment, server, tmp_path
    ):
        partitions = experiment_partitions(MINI_NAME, mini_options())
        job_keys = sorted(
            job.cache_key() for partition in partitions for job in partition
        )
        client = CoordinatorClient(server.url, worker_id="enqueuer")
        summary = client.enqueue(MINI_NAME, MINI_SCALE)
        assert summary["partitions"] == len(partitions)
        assert summary["jobs"] == len(job_keys)

        reports = {}

        def drain(name):
            reports[name] = run_worker(
                server.url,
                cache_dir=str(tmp_path / name),
                worker_id=name,
                drain=True,
                poll_s=0.05,
            )

        threads = [
            threading.Thread(target=drain, args=(name,)) for name in ("w1", "w2")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert set(reports) == {"w1", "w2"}

        # Exactly-once: the union of per-worker simulated jobs is the job
        # set, with no key simulated twice anywhere in the fleet.
        simulated = sorted(
            key for report in reports.values() for key in report.simulated_keys()
        )
        assert simulated == job_keys
        assert sum(r.acked for r in reports.values()) == len(partitions)
        assert all(r.stale_acks == 0 for r in reports.values())
        assert all(not r.coordinator_lost for r in reports.values())

        queue_stats = server.stats()["queue"]
        assert queue_stats["completed"] == len(partitions)
        assert queue_stats["requeued"] == 0

        # Assembly from a fresh machine answers everything from the shared
        # tier and matches a store-free local run byte for byte.
        assembled, computed = assemble_from_service(server, tmp_path / "assembler")
        assert computed == 0
        assert assembled == reference_result(mini_experiment)

    def test_worker_report_round_trips_through_json(self, tmp_path):
        report = WorkerReport(worker="w1", coordinator="http://x")
        report.acked = 2
        report.partitions.append(
            {"id": "p", "experiment": "e", "jobs": 1, "simulated": [KEY_A], "ack": "ok"}
        )
        path = tmp_path / "report.json"
        from repro.worker import write_report

        write_report(report, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["acked"] == 2
        assert loaded["partitions"][0]["simulated"] == [KEY_A]


class TestFleetFaultInjection:
    def test_worker_killed_mid_lease_is_requeued_and_completed(
        self, mini_experiment, tmp_path
    ):
        """A worker leases a partition and dies without acking: after the
        lease TTL the partition requeues and a surviving worker finishes
        the sweep, bit-identical, with the ghost's late ack answered
        stale."""
        srv = CacheServer(
            ("127.0.0.1", 0), root=tmp_path / "server", lease_ttl_s=0.3
        )
        srv.start_in_background()
        try:
            partitions = experiment_partitions(MINI_NAME, mini_options())
            CoordinatorClient(srv.url, worker_id="enqueuer").enqueue(
                MINI_NAME, MINI_SCALE
            )
            ghost = CoordinatorClient(srv.url, worker_id="ghost")
            doomed = ghost.lease()["partition"]
            assert doomed is not None
            # The ghost never acks and never heartbeats; its lease lapses.
            time.sleep(0.35)

            report = run_worker(
                srv.url,
                cache_dir=str(tmp_path / "survivor"),
                worker_id="survivor",
                drain=True,
                poll_s=0.05,
            )
            assert report.acked == len(partitions)
            assert not report.coordinator_lost

            stats = srv.stats()["queue"]
            assert stats["completed"] == len(partitions)
            assert stats["requeued"] >= 1
            # The dead worker's partition was among the survivor's work.
            assert doomed["id"] in [p["id"] for p in report.partitions]
            # A late ack from the ghost cannot double-complete it.
            assert ghost.ack(doomed["id"]) == "stale"

            assembled, computed = assemble_from_service(srv, tmp_path / "assembler")
            assert computed == 0
            assert assembled == reference_result(mini_experiment)
        finally:
            srv.shutdown()
            srv.server_close()

    def test_coordinator_death_degrades_with_one_warning(
        self, mini_experiment, tmp_path
    ):
        """The coordinator dies mid-run: the worker finishes its in-flight
        partition, warns exactly once, and exits local-only -- the PR 4
        RemoteStore degradation contract, applied to scheduling."""
        srv = CacheServer(("127.0.0.1", 0), root=tmp_path / "server")
        srv.start_in_background()
        killed = []

        def kill_after_first_ack(message):
            if "ack=" in message and not killed:
                killed.append(message)
                srv.shutdown()
                srv.server_close()

        try:
            CoordinatorClient(srv.url, worker_id="enqueuer").enqueue(
                MINI_NAME, MINI_SCALE
            )
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                report = run_worker(
                    srv.url,
                    cache_dir=str(tmp_path / "worker"),
                    worker_id="worker",
                    drain=True,
                    poll_s=0.05,
                    log=kill_after_first_ack,
                )
        finally:
            if not killed:
                srv.shutdown()
                srv.server_close()
        assert killed
        assert report.coordinator_lost is True
        assert report.acked == 1  # the in-flight partition completed
        messages = coordinator_warnings(caught)
        assert len(messages) == 1, messages
        assert "degrading to local-only" in messages[0]
        # The completed partition's results survive in the local tier.
        local = ResultStore(tmp_path / "worker")
        for key in report.simulated_keys():
            assert local.load(key) is not None

    def test_version_skewed_partition_is_nacked_not_simulated(
        self, mini_experiment, tmp_path
    ):
        """A coordinator advertising cache keys this worker's source tree
        cannot reproduce (fleet version skew) gets a nack, never a wrong
        simulation published under a wrong key."""
        skewed = JobQueue(
            expand=lambda name, scale: [["00" * 32, "11" * 32]]
        )
        srv = CacheServer(
            ("127.0.0.1", 0), root=tmp_path / "server", queue=skewed
        )
        srv.start_in_background()
        try:
            CoordinatorClient(srv.url, worker_id="enqueuer").enqueue(
                MINI_NAME, MINI_SCALE
            )
            report = run_worker(
                srv.url,
                cache_dir=str(tmp_path / "worker"),
                worker_id="worker",
                max_partitions=1,
                poll_s=0.01,
            )
            assert report.mismatched == 1
            assert report.acked == 0 and report.simulated_keys() == []
            # Nothing was published to the shared tier.
            assert len(srv.backend) == 0
            # The partition went back to pending for a matching worker.
            assert srv.stats()["queue"]["pending"] == 1
        finally:
            srv.shutdown()
            srv.server_close()

    def test_partition_without_id_is_skipped_not_nacked(
        self, mini_experiment, tmp_path
    ):
        """Regression: a lease answer whose partition lacks an ``id`` used
        to be nacked with ``partition.get("id", "")`` -- an empty id the
        coordinator 404s.  Now the worker logs and skips it (counting it
        as mismatched) and never calls nack at all."""

        class NoIdClient:
            base_url = "stub://coordinator"
            worker_id = "worker"
            token = None
            lease_ttl_s = 30.0
            dead = False

            def __init__(self):
                self.nacks = []
                self.leases = 0

            def lease(self):
                self.leases += 1
                if self.leases == 1:
                    return {
                        "partition": {
                            "experiment": MINI_NAME,
                            "scale": MINI_SCALE,
                        }
                    }
                return {"partition": None, "drained": True}

            def nack(self, partition_id, reason=""):
                self.nacks.append((partition_id, reason))

            def ack(self, partition_id):
                raise AssertionError("nothing to ack for an id-less partition")

            def heartbeat(self):
                pass

        client = NoIdClient()
        messages = []
        report = run_worker(
            "stub://coordinator",
            worker_id="worker",
            poll_s=0.01,
            drain=True,
            client=client,
            store=ResultStore(tmp_path / "worker"),
            log=messages.append,
        )
        assert report.mismatched == 1
        assert report.acked == 0 and report.partitions == []
        assert client.nacks == []  # never nack an id the coordinator 404s
        assert any("without an id" in message for message in messages)
        # The worker moved on and exited cleanly on the drained answer.
        assert client.leases == 2
        assert not report.coordinator_lost

    def test_resolve_partition_jobs_validates_the_descriptor(self, mini_experiment):
        partitions = experiment_partitions(MINI_NAME, mini_options())
        good = {
            "id": "p0",
            "experiment": MINI_NAME,
            "scale": MINI_SCALE,
            "index": 0,
            "total": len(partitions),
            "keys": [job.cache_key() for job in partitions[0]],
        }
        jobs = resolve_partition_jobs(good)
        assert [job.cache_key() for job in jobs] == good["keys"]

        assert resolve_partition_jobs({**good, "keys": ["00" * 32]}) is None
        assert resolve_partition_jobs({**good, "index": 99}) is None
        assert resolve_partition_jobs({**good, "total": 99}) is None
        assert resolve_partition_jobs({**good, "experiment": "nonsense"}) is None
        assert resolve_partition_jobs({**good, "index": "0"}) is None
